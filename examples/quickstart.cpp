// Quickstart: build a tiny coupled design by hand, run STA, run static
// noise analysis in all three modes, and print the report.
//
// The circuit: two parallel wires w0 (victim) and w1 (aggressor) coupled by
// 8 fF, each driven from a primary input and received by an inverter.
#include <iostream>

#include "library/library.hpp"
#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "parasitics/rcnet.hpp"
#include "report/table.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;

  // 1. A generated standard-cell library (see DESIGN.md: substitution for
  //    proprietary liberty data).
  const lib::Library library = lib::default_library();
  std::cout << "library '" << library.name() << "' with " << library.size()
            << " cells, vdd = " << library.vdd() << " V\n\n";

  // 2. The design: in0 -> w0 -> INV -> out0, in1 -> w1 -> INV -> out1.
  net::Design d(library, "quickstart");
  const NetId w0 = d.add_net("w0");
  const NetId w1 = d.add_net("w1");
  d.add_input_port("in0", w0, {500 * OHM, 30 * PS});
  d.add_input_port("in1", w1, {500 * OHM, 20 * PS});
  const InstId rx0 = d.add_instance("rx0", "INV_X1");
  const InstId rx1 = d.add_instance("rx1", "INV_X1");
  d.connect(rx0, "A", w0);
  d.connect(rx1, "A", w1);
  const NetId y0 = d.add_net("y0");
  const NetId y1 = d.add_net("y1");
  d.connect(rx0, "Y", y0);
  d.connect(rx1, "Y", y1);
  d.add_output_port("out0", y0);
  d.add_output_port("out1", y1);

  // 3. Parasitics: each wire is a 2-segment RC ladder; segments couple.
  para::Parasitics p(d.net_count());
  for (const NetId w : {w0, w1}) {
    para::RcNet& rc = p.net(w);
    const auto mid = rc.add_node(2 * FF);
    const auto far = rc.add_node(2 * FF);
    rc.add_res(0, mid, 50 * OHM);
    rc.add_res(mid, far, 50 * OHM);
    rc.attach_pin(far, d.net(w).loads.front());
  }
  p.add_coupling(w0, 1, w1, 1, 4 * FF);
  p.add_coupling(w0, 2, w1, 2, 4 * FF);
  p.net(y0).add_cap(0, 1 * FF);
  p.net(y1).add_cap(0, 1 * FF);

  // 4. STA: the aggressor (in1) switches in a late window, so it cannot
  //    align with anything early.
  sta::Options sopt;
  sopt.clock_period = 1 * NS;
  sopt.input_arrivals["in0"] = Interval{0.0, 50 * PS};
  sopt.input_arrivals["in1"] = Interval{300 * PS, 420 * PS};
  const sta::Result timing = sta::run(d, p, sopt);
  std::cout << "STA: w1 switching window = " << timing.net(w1).window.str()
            << ", slew " << report::fmt_ps(timing.net(w1).slew_min) << " .. "
            << report::fmt_ps(timing.net(w1).slew_max) << "\n\n";

  // 5. Noise analysis under all three filtering regimes.
  report::TextTable table({"mode", "w0 peak", "w0 width", "noise window",
                           "violations"});
  for (const auto mode :
       {noise::AnalysisMode::kNoFiltering, noise::AnalysisMode::kSwitchingWindows,
        noise::AnalysisMode::kNoiseWindows}) {
    noise::Options nopt;
    nopt.mode = mode;
    nopt.clock_period = sopt.clock_period;
    const noise::Result r = noise::analyze(d, p, timing, nopt);
    const noise::NetNoise& nn = r.net(w0);
    table.add_row({noise::to_string(mode), report::fmt_mv(nn.total_peak),
                   report::fmt_ps(nn.width),
                   mode == noise::AnalysisMode::kNoFiltering ? "(always)"
                                                             : nn.window.str(),
                   std::to_string(r.violations.size())});
  }
  table.print(std::cout);

  std::cout << "\nThe victim's glitch is identical in every mode here (one "
               "aggressor),\nbut the noise window pins down *when* it can "
               "occur - the information\nthe latch sensitivity check uses on "
               "real designs.\n";
  return 0;
}
