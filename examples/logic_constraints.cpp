// Functional filtering walkthrough: a bus whose line pairs carry one-hot
// encoded selects: at most one line of each pair switches per cycle.
// Declaring the pairs as mutex groups removes the impossible worst case
// that plain analysis assumes.
#include <iostream>

#include "gen/bus.hpp"
#include "noise/analyzer.hpp"
#include "report/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;
  const lib::Library library = lib::default_library();

  gen::BusConfig cfg;
  cfg.bits = 32;
  cfg.segments = 4;
  cfg.coupling_adj = 6 * FF;
  cfg.stagger_groups = 1;  // fully overlapping windows: timing can't help
  gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  // Lines (w0,w1), (w2,w3), ... are one-hot pairs.
  noise::Constraints pairs;
  for (std::size_t b = 0; b + 1 < cfg.bits; b += 2) {
    const std::vector<NetId> pair{*g.design.find_net("w" + std::to_string(b)),
                                  *g.design.find_net("w" + std::to_string(b + 1))};
    pairs.add_mutex_group(pair);
  }

  const NetId victim = *g.design.find_net("w16");
  report::TextTable t({"constraints", "victim peak", "in worst set", "violations"});
  for (const bool constrained : {false, true}) {
    noise::Options o;
    o.clock_period = g.sta_options.clock_period;
    if (constrained) o.constraints = pairs;
    const noise::Result r = noise::analyze(g.design, g.para, timing, o);
    std::size_t worst = 0;
    for (const auto& c : r.net(victim).contributions) worst += c.in_worst;
    t.add_row({constrained ? "mutex pairs" : "none",
               report::fmt_mv(r.net(victim).total_peak), std::to_string(worst),
               std::to_string(r.violations.size())});
  }
  t.print(std::cout);

  std::cout << "\nOnce the pairs are declared, at most one member of each pair\n"
               "joins the worst set: the grouped scan keeps only the heaviest\n"
               "active member per group.\n";
  return 0;
}
