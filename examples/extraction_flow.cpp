// Full physical flow: geometry -> closed-form extraction -> STA -> noise,
// sweeping wire pitch to show the spacing/noise tradeoff a designer
// actually turns.
#include <iostream>

#include "gen/routed_bus.hpp"
#include "noise/analyzer.hpp"
#include "report/table.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;
  const lib::Library library = lib::default_library();
  const extract::Tech tech = extract::Tech::generic();

  std::cout << "geometry -> extraction -> noise: 32-bit routed bus, pitch sweep\n\n";

  report::TextTable t({"pitch (um)", "coupling caps", "total Cc", "peak (no-filter)",
                       "peak (windows)", "worst slack"});
  for (const double pitch : {0.4e-6, 0.5e-6, 0.7e-6, 1.0e-6}) {
    gen::RoutedBusConfig cfg;
    cfg.bits = 32;
    cfg.pitch = pitch;
    cfg.stagger = 600e-12;  // widely staggered arrival groups
    gen::RoutedGenerated g = gen::make_routed_bus(library, tech, cfg);
    const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

    double peak_none = 0.0;
    double peak_win = 0.0;
    double slack_win = 1e30;
    for (const auto mode :
         {noise::AnalysisMode::kNoFiltering, noise::AnalysisMode::kNoiseWindows}) {
      noise::Options o;
      o.mode = mode;
      o.clock_period = g.sta_options.clock_period;
      const noise::Result r = noise::analyze(g.design, g.para, timing, o);
      const double peak = r.net(*g.design.find_net("w16")).total_peak;
      if (mode == noise::AnalysisMode::kNoFiltering) {
        peak_none = peak;
      } else {
        peak_win = peak;
        for (const double s : r.endpoint_slacks) slack_win = std::min(slack_win, s);
        if (r.endpoint_slacks.empty()) slack_win = 0.0;
      }
    }
    t.add_row({report::fmt_fixed(pitch * 1e6, 2),
               std::to_string(g.stats.coupling_caps),
               report::fmt_fixed(g.stats.total_coupling_cap * 1e12, 2) + " pF",
               report::fmt_mv(peak_none), report::fmt_mv(peak_win),
               report::fmt_mv(slack_win)});
  }
  t.print(std::cout);

  std::cout << "\nCoupling falls as 1/pitch; the glitch amplitudes and noise\n"
               "margins follow; the windowed peak stays below the all-at-once\n"
               "sum wherever the stagger groups cannot align.\n";
  return 0;
}
