// Bus crosstalk walkthrough: generate a 64-bit coupled bus, run STA and
// noise analysis, and show how switching windows and noise windows peel
// away pessimism on a mid-bus victim.
#include <iostream>

#include "gen/bus.hpp"
#include "noise/analyzer.hpp"
#include "report/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;
  const lib::Library library = lib::default_library();

  gen::BusConfig cfg;
  cfg.bits = 64;
  cfg.segments = 4;
  cfg.stagger_groups = 4;
  cfg.stagger = 250 * PS;
  gen::Generated g = gen::make_bus(library, cfg);

  std::cout << "bus design: " << g.design.net_count() << " nets, "
            << g.design.instance_count() << " instances, "
            << g.para.couplings().size() << " coupling caps\n";

  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  // Pick the middle wire as the victim to examine.
  const NetId victim = *g.design.find_net("w32");

  report::TextTable table({"mode", "aggressors in worst set", "victim peak",
                           "width", "violations", "noisy nets"});
  for (const auto mode :
       {noise::AnalysisMode::kNoFiltering, noise::AnalysisMode::kSwitchingWindows,
        noise::AnalysisMode::kNoiseWindows}) {
    noise::Options nopt;
    nopt.mode = mode;
    nopt.clock_period = g.sta_options.clock_period;
    const noise::Result r = noise::analyze(g.design, g.para, timing, nopt);
    const noise::NetNoise& nn = r.net(victim);
    std::size_t worst = 0;
    for (const auto& c : nn.contributions) worst += c.in_worst ? 1 : 0;
    table.add_row({noise::to_string(mode), std::to_string(worst),
                   report::fmt_mv(nn.total_peak), report::fmt_ps(nn.width),
                   std::to_string(r.violations.size()),
                   std::to_string(r.noisy_nets)});
  }
  table.print(std::cout);

  std::cout << "\nWith four stagger groups only ~1/4 of the aggressors can\n"
               "switch together; the scan-line alignment finds that worst\n"
               "subset instead of summing everyone (the no-filtering row).\n";
  return 0;
}
