// Validate the analytic glitch models against the built-in MNA transient
// engine on one victim/aggressor pair, and emit a SPICE deck for external
// cross-checking with ngspice/HSPICE.
#include <fstream>
#include <iostream>

#include "gen/bus.hpp"
#include "noise/glitch_models.hpp"
#include "report/table.hpp"
#include "spice/cluster.hpp"
#include "spice/deck.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;
  const lib::Library library = lib::default_library();

  gen::BusConfig cfg;
  cfg.bits = 8;
  cfg.segments = 4;
  gen::Generated g = gen::make_bus(library, cfg);

  const NetId victim = *g.design.find_net("w3");
  const NetId aggressor = *g.design.find_net("w4");
  const double slew = 25 * PS;
  const double vdd = library.vdd();

  // Golden: full-cluster MNA transient.
  const spice::TranOptions tran{2 * NS, 0.25 * PS};
  const noise::GlitchEstimate golden =
      noise::estimate_mna(g.design, g.para, victim, aggressor, slew, vdd, tran);

  const noise::CouplingScenario sc =
      noise::scenario_for(g.design, g.para, victim, aggressor, slew, vdd);
  std::cout << "scenario: Rh = " << sc.r_hold << " ohm, Cg = "
            << report::fmt_ff(sc.c_ground) << ", Cc = " << report::fmt_ff(sc.c_couple)
            << ", tr = " << report::fmt_ps(sc.slew) << "\n\n";

  report::TextTable table({"model", "peak", "width", "peak err vs golden"});
  auto row = [&](const char* name, const noise::GlitchEstimate& e) {
    const double err = golden.peak > 0.0 ? (e.peak - golden.peak) / golden.peak : 0.0;
    table.add_row({name, report::fmt_mv(e.peak), report::fmt_ps(e.width),
                   report::fmt_fixed(100.0 * err, 1) + " %"});
  };
  row("mna-golden", golden);
  row("charge-sharing", noise::estimate_charge_sharing(sc));
  row("devgan-bound", noise::estimate_devgan(sc));
  row("two-pi", noise::estimate_two_pi(sc));
  table.print(std::cout);

  // Emit the cluster as a SPICE deck for external simulators.
  spice::ClusterSpec spec;
  spec.victim = victim;
  spec.vdd = vdd;
  spec.aggressors.push_back({aggressor, 0.0, slew, true});
  const spice::Cluster cl = spice::build_cluster(g.design, g.para, spec);
  spice::DeckOptions dopt;
  dopt.title = "noisewin validation cluster w3/w4";
  dopt.tran = tran;
  dopt.probes = {cl.victim_probe};
  std::ofstream deck("cluster_w3_w4.sp");
  spice::write_deck(deck, cl.circuit, dopt);
  std::cout << "\nwrote cluster_w3_w4.sp (" << cl.circuit.element_count()
            << " elements) - runnable with: ngspice -b cluster_w3_w4.sp\n";
  return 0;
}
