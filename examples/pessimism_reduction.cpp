// Pessimism reduction on a sequential design: generate a pipeline whose
// capture-flop data nets are coupled, and show that the latch
// sensitivity-window check (noise windows) clears violations the
// amplitude-only analysis reports.
#include <iostream>

#include "gen/pipeline.hpp"
#include "noise/analyzer.hpp"
#include "report/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace nw;
  const lib::Library library = lib::default_library();

  gen::PipelineConfig cfg;
  cfg.paths = 48;
  cfg.coupling_cap = 22 * FF;
  gen::Generated g = gen::make_pipeline(library, cfg);

  std::cout << "pipeline: " << g.design.instance_count() << " instances, "
            << g.design.sequentials().size() << " flops, "
            << g.para.couplings().size() << " coupling caps, period "
            << report::fmt_ps(g.sta_options.clock_period) << "\n\n";

  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  std::cout << "worst setup slack: " << report::fmt_ps(timing.worst_slack()) << "\n\n";

  report::TextTable table({"mode", "endpoints", "violations", "worst slack"});
  for (const auto mode :
       {noise::AnalysisMode::kNoFiltering, noise::AnalysisMode::kSwitchingWindows,
        noise::AnalysisMode::kNoiseWindows}) {
    noise::Options nopt;
    nopt.mode = mode;
    nopt.clock_period = g.sta_options.clock_period;
    const noise::Result r = noise::analyze(g.design, g.para, timing, nopt);
    double worst = 1e30;
    for (const double s : r.endpoint_slacks) worst = std::min(worst, s);
    table.add_row({noise::to_string(mode), std::to_string(r.endpoints_checked),
                   std::to_string(r.violations.size()),
                   r.endpoint_slacks.empty() ? "-" : report::fmt_mv(worst)});
  }
  table.print(std::cout);

  std::cout << "\nGlitches land early in the cycle; the capture window sits\n"
               "at the next clock edge. Amplitude-only modes flag them all,\n"
               "the noise-window mode keeps only those that can actually be\n"
               "sampled.\n";
  return 0;
}
