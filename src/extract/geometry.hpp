// Routed-wire geometry for parasitic extraction.
//
// A minimal physical view: every net is a Route made of axis-parallel
// rectangular wire Segments on named metal layers. The extractor
// (extract/extractor.hpp) turns geometry + layer technology coefficients
// into parasitics/Parasitics — the front-end a signoff noise flow assumes
// (FastCap/FastHenry-class field solvers are substituted by standard
// area/fringe/spacing closed forms; see DESIGN.md).
//
// Units: coordinates and widths in meters.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace nw::extract {

/// Axis-parallel wire piece. Direction is inferred from the endpoints;
/// zero-length segments are invalid.
struct Segment {
  int layer = 0;
  double x0 = 0.0, y0 = 0.0;
  double x1 = 0.0, y1 = 0.0;
  double width = 1e-7;

  [[nodiscard]] bool horizontal() const noexcept { return y0 == y1; }
  [[nodiscard]] bool vertical() const noexcept { return x0 == x1; }
  [[nodiscard]] double length() const noexcept {
    return horizontal() ? std::abs(x1 - x0) : std::abs(y1 - y0);
  }
  /// Perpendicular position of the wire centerline (for spacing).
  [[nodiscard]] double track() const noexcept { return horizontal() ? y0 : x0; }
  /// Extent along the wire direction as [lo, hi].
  [[nodiscard]] std::pair<double, double> span() const noexcept {
    return horizontal() ? std::minmax(x0, x1) : std::minmax(y0, y1);
  }
};

/// A pin attachment point: design pin `pin` sits at the end of segment
/// `segment` (`at_start` selects which end).
struct PinAttach {
  PinId pin;
  std::size_t segment = 0;
  bool at_start = false;
};

/// The geometry of one net. Segments must form a connected chain/tree:
/// consecutive segments share an endpoint (the extractor verifies
/// electrical connectivity by coordinate matching).
struct Route {
  NetId net;
  std::vector<Segment> segments;
  std::vector<PinAttach> pins;
  /// Which segment end the driver sits at (root of the RC tree).
  std::size_t driver_segment = 0;
  bool driver_at_start = true;
};

/// Per-layer technology coefficients (closed-form extraction model).
struct LayerTech {
  double sheet_res = 0.08;       ///< [ohm/square]
  double c_area = 3.0e-5;        ///< area cap to ground [F/m^2]
  double c_fringe = 4.0e-11;     ///< fringe cap per edge length [F/m]
  /// Lateral coupling: Cc = c_couple * overlap_length / spacing, applied
  /// to same-layer parallel wires closer than `max_spacing`.
  double c_couple = 1.0e-17;     ///< [F] (per unit length/spacing ratio)
  double max_spacing = 1.0e-6;   ///< coupling cutoff [m]
};

/// The technology: one entry per layer index used by segments.
struct Tech {
  std::vector<LayerTech> layers;

  [[nodiscard]] const LayerTech& layer(int idx) const {
    if (idx < 0 || static_cast<std::size_t>(idx) >= layers.size()) {
      throw std::out_of_range("Tech: layer " + std::to_string(idx));
    }
    return layers[static_cast<std::size_t>(idx)];
  }

  /// A representative 2-metal-layer stack (130 nm-era magnitudes).
  [[nodiscard]] static Tech generic();
};

}  // namespace nw::extract
