#include "extract/extractor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace nw::extract {

namespace {

/// Coordinates snapped to a 0.1 nm grid so shared endpoints compare equal.
using Key = std::pair<long long, long long>;

Key key_of(double x, double y) {
  constexpr double kGrid = 1e-10;
  return {static_cast<long long>(std::llround(x / kGrid)),
          static_cast<long long>(std::llround(y / kGrid))};
}

struct SegmentNodes {
  std::uint32_t start = 0;
  std::uint32_t end = 0;
};

}  // namespace

Tech Tech::generic() {
  Tech t;
  LayerTech m1;
  m1.sheet_res = 0.12;
  m1.c_area = 3.2e-5;
  m1.c_fringe = 4.5e-11;
  m1.c_couple = 1.2e-17;
  m1.max_spacing = 8e-7;
  LayerTech m2 = m1;
  m2.sheet_res = 0.08;
  m2.c_area = 2.6e-5;
  m2.c_fringe = 4.0e-11;
  t.layers = {m1, m2};
  return t;
}

para::Parasitics extract(const net::Design& design, std::span<const Route> routes,
                         const Tech& tech, ExtractStats* stats) {
  para::Parasitics para(design.net_count());
  ExtractStats st;

  // Per-route node maps for coupling-node lookup after the build.
  std::vector<std::vector<SegmentNodes>> seg_nodes(routes.size());

  for (std::size_t ri = 0; ri < routes.size(); ++ri) {
    const Route& route = routes[ri];
    if (route.net.index() >= design.net_count()) {
      throw std::invalid_argument("extract: route for unknown net");
    }
    if (route.segments.empty()) {
      throw std::invalid_argument("extract: empty route for net '" +
                                  design.net(route.net).name + "'");
    }
    if (route.driver_segment >= route.segments.size()) {
      throw std::invalid_argument("extract: bad driver segment");
    }
    para::RcNet& rc = para.net(route.net);

    // The driver endpoint becomes RC node 0.
    const Segment& ds = route.segments[route.driver_segment];
    const Key driver_key = route.driver_at_start ? key_of(ds.x0, ds.y0)
                                                 : key_of(ds.x1, ds.y1);
    std::map<Key, std::uint32_t> nodes;
    nodes.emplace(driver_key, 0);
    auto node_at = [&](double x, double y) {
      const Key k = key_of(x, y);
      const auto it = nodes.find(k);
      if (it != nodes.end()) return it->second;
      const std::uint32_t n = rc.add_node();
      nodes.emplace(k, n);
      return n;
    };

    seg_nodes[ri].reserve(route.segments.size());
    for (const Segment& s : route.segments) {
      if (!s.horizontal() && !s.vertical()) {
        throw std::invalid_argument("extract: segment is not axis-parallel");
      }
      const double len = s.length();
      if (len <= 0.0 || s.width <= 0.0) {
        throw std::invalid_argument("extract: degenerate segment on net '" +
                                    design.net(route.net).name + "'");
      }
      const LayerTech& lt = tech.layer(s.layer);
      const std::uint32_t a = node_at(s.x0, s.y0);
      const std::uint32_t b = node_at(s.x1, s.y1);
      if (a == b) {
        throw std::invalid_argument("extract: zero-span segment");
      }
      rc.add_res(a, b, lt.sheet_res * len / s.width);
      const double cg = lt.c_area * len * s.width + 2.0 * lt.c_fringe * len;
      rc.add_cap(a, 0.5 * cg);
      rc.add_cap(b, 0.5 * cg);
      st.total_ground_cap += cg;
      seg_nodes[ri].push_back({a, b});
    }

    if (!rc.is_tree()) {
      throw std::invalid_argument("extract: route of net '" +
                                  design.net(route.net).name +
                                  "' is not a connected tree");
    }

    for (const PinAttach& pa : route.pins) {
      if (pa.segment >= route.segments.size()) {
        throw std::invalid_argument("extract: pin attach beyond route");
      }
      const SegmentNodes& sn = seg_nodes[ri][pa.segment];
      rc.attach_pin(pa.at_start ? sn.start : sn.end, pa.pin);
    }

    st.nodes += rc.node_count();
    st.resistors += rc.res_count();
  }

  // Same-layer lateral coupling between parallel segments of different
  // nets: Cc = c_couple * overlap / spacing for spacing <= max_spacing.
  struct Flat {
    std::size_t route;
    std::size_t seg;
  };
  std::vector<Flat> flats;
  for (std::size_t ri = 0; ri < routes.size(); ++ri) {
    for (std::size_t si = 0; si < routes[ri].segments.size(); ++si) {
      flats.push_back({ri, si});
    }
  }
  for (std::size_t i = 0; i < flats.size(); ++i) {
    const Segment& a = routes[flats[i].route].segments[flats[i].seg];
    for (std::size_t j = i + 1; j < flats.size(); ++j) {
      const Segment& b = routes[flats[j].route].segments[flats[j].seg];
      if (routes[flats[i].route].net == routes[flats[j].route].net) continue;
      if (a.layer != b.layer) continue;
      if (a.horizontal() != b.horizontal()) continue;
      const LayerTech& lt = tech.layer(a.layer);
      const double spacing = std::abs(a.track() - b.track());
      if (spacing <= 0.0 || spacing > lt.max_spacing) continue;
      const auto [alo, ahi] = a.span();
      const auto [blo, bhi] = b.span();
      const double overlap = std::min(ahi, bhi) - std::max(alo, blo);
      if (overlap <= 0.0) continue;
      const double cc = lt.c_couple * overlap / spacing;

      // Attach at the segment end closest to the overlap midpoint.
      const double mid = 0.5 * (std::max(alo, blo) + std::min(ahi, bhi));
      auto pick = [&](const Segment& s, const SegmentNodes& sn) {
        const double d0 = std::abs((s.horizontal() ? s.x0 : s.y0) - mid);
        const double d1 = std::abs((s.horizontal() ? s.x1 : s.y1) - mid);
        return d0 <= d1 ? sn.start : sn.end;
      };
      para.add_coupling(routes[flats[i].route].net,
                        pick(a, seg_nodes[flats[i].route][flats[i].seg]),
                        routes[flats[j].route].net,
                        pick(b, seg_nodes[flats[j].route][flats[j].seg]), cc);
      ++st.coupling_caps;
      st.total_coupling_cap += cc;
    }
  }

  if (stats) *stats = st;
  return para;
}

}  // namespace nw::extract
