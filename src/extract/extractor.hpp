// Closed-form parasitic extraction: Routes + Tech -> Parasitics.
//
// Per segment:  R = sheet_res * length / width,
//               Cg = c_area * length * width + 2 * c_fringe * length,
// split half/half onto the segment's two RC nodes. Same-layer parallel
// segments with centerline spacing s <= max_spacing and overlap length L
// get a coupling cap Cc = c_couple * L / s at their overlap-midpoint
// nodes. Each route becomes an RC tree rooted at the driver end.
#pragma once

#include <span>

#include "extract/geometry.hpp"
#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"

namespace nw::extract {

struct ExtractStats {
  std::size_t nodes = 0;
  std::size_t resistors = 0;
  std::size_t coupling_caps = 0;
  double total_ground_cap = 0.0;  ///< [F]
  double total_coupling_cap = 0.0;  ///< [F]
};

/// Extract parasitics for `design` from the given routes. Nets without a
/// route get an empty (driver-only) RC net. Throws std::invalid_argument
/// for disconnected routes, bad pin attachments, or unknown layers.
[[nodiscard]] para::Parasitics extract(const net::Design& design,
                                       std::span<const Route> routes, const Tech& tech,
                                       ExtractStats* stats = nullptr);

}  // namespace nw::extract
