#include "netlist/verilog.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nw::net {

void write_netlist(std::ostream& os, const Design& design) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "module " << design.name() << "\n";
  for (const PinId p : design.input_ports()) {
    const Pin& pin = design.pin(p);
    const PortDrive& pd = design.port_drive(p);
    os << "input " << pin.port_name << ' ' << design.net(pin.net).name << " drive "
       << pd.resistance << " slew " << pd.slew << "\n";
  }
  for (const PinId p : design.output_ports()) {
    const Pin& pin = design.pin(p);
    os << "output " << pin.port_name << ' ' << design.net(pin.net).name << " cap "
       << design.pin_cap(p) << "\n";
  }
  // Wires not already introduced by a port line.
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const Net& n = design.net(NetId{i});
    bool from_port = false;
    if (n.driver.valid() && design.pin(n.driver).kind == PinKind::kInputPort) {
      from_port = true;
    }
    for (const PinId l : n.loads) {
      from_port |= design.pin(l).kind == PinKind::kOutputPort;
    }
    if (!from_port) os << "wire " << n.name << "\n";
  }
  for (std::size_t i = 0; i < design.instance_count(); ++i) {
    const Instance& inst = design.instance(InstId{i});
    const lib::Cell& cell = design.library().cell(inst.cell);
    os << "inst " << inst.name << ' ' << cell.name;
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      const Pin& p = design.pin(inst.pins[pi]);
      if (!p.net.valid()) continue;
      os << ' ' << cell.pins[pi].name << '=' << design.net(p.net).name;
    }
    os << "\n";
  }
  os << "endmodule\n";
}

std::string write_netlist_string(const Design& design) {
  std::ostringstream os;
  write_netlist(os, design);
  return os.str();
}

Design read_netlist(std::istream& is, const lib::Library& library) {
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error("nv line " + std::to_string(lineno) + ": " + msg);
  };

  // First line: module header.
  std::string design_name = "top";
  bool in_module = false;
  Design design(library, design_name);
  bool have_design = false;

  auto get_or_make_net = [&](std::string_view name) {
    const auto id = design.find_net(std::string(name));
    if (id) return *id;
    return design.add_net(std::string(name));
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto t = nw::trim(line);
    if (t.empty() || nw::starts_with(t, "//")) continue;
    const auto toks = nw::split(t);
    const auto key = toks[0];

    if (key == "module") {
      if (in_module) fail("nested module");
      if (toks.size() < 2) fail("module needs a name");
      design = Design(library, std::string(toks[1]));
      in_module = true;
      have_design = true;
    } else if (key == "endmodule") {
      if (!in_module) fail("endmodule outside module");
      return design;
    } else if (key == "input") {
      if (!in_module || toks.size() < 3) fail("bad input line");
      const NetId net = get_or_make_net(toks[2]);
      PortDrive pd;
      for (std::size_t i = 3; i + 1 < toks.size(); i += 2) {
        if (toks[i] == "drive") {
          pd.resistance = nw::parse_double(toks[i + 1]);
        } else if (toks[i] == "slew") {
          pd.slew = nw::parse_double(toks[i + 1]);
        } else {
          fail("unknown input attribute '" + std::string(toks[i]) + "'");
        }
      }
      design.add_input_port(std::string(toks[1]), net, pd);
    } else if (key == "output") {
      if (!in_module || toks.size() < 3) fail("bad output line");
      const NetId net = get_or_make_net(toks[2]);
      double cap = 5e-15;
      for (std::size_t i = 3; i + 1 < toks.size(); i += 2) {
        if (toks[i] == "cap") {
          cap = nw::parse_double(toks[i + 1]);
        } else {
          fail("unknown output attribute '" + std::string(toks[i]) + "'");
        }
      }
      design.add_output_port(std::string(toks[1]), net, cap);
    } else if (key == "wire") {
      if (!in_module || toks.size() < 2) fail("bad wire line");
      if (design.find_net(std::string(toks[1]))) fail("duplicate wire '" + std::string(toks[1]) + "'");
      design.add_net(std::string(toks[1]));
    } else if (key == "inst") {
      if (!in_module || toks.size() < 3) fail("bad inst line");
      InstId inst;
      try {
        inst = design.add_instance(std::string(toks[1]), std::string(toks[2]));
      } catch (const std::invalid_argument& e) {
        fail(e.what());
      }
      for (std::size_t i = 3; i < toks.size(); ++i) {
        const auto eq = toks[i].find('=');
        if (eq == std::string_view::npos) fail("expected PIN=net, got '" + std::string(toks[i]) + "'");
        const auto pin_name = toks[i].substr(0, eq);
        const auto net_name = toks[i].substr(eq + 1);
        const auto net = design.find_net(std::string(net_name));
        if (!net) fail("undeclared net '" + std::string(net_name) + "'");
        try {
          design.connect(inst, std::string(pin_name), *net);
        } catch (const std::invalid_argument& e) {
          fail(e.what());
        }
      }
    } else {
      fail("unknown keyword '" + std::string(key) + "'");
    }
  }
  if (!have_design || in_module) fail("missing endmodule");
  return design;
}

Design read_netlist_string(const std::string& text, const lib::Library& library) {
  std::istringstream is(text);
  return read_netlist(is, library);
}

}  // namespace nw::net
