// Structural netlist text format (".nv", a Verilog-lite).
//
// noisewin's exchange triple is .nlib (library) + .nv (netlist) + .nwspef
// (parasitics): enough to run the whole analysis from files, which is what
// the CLI driver does. The format is line-oriented:
//
//   module <name>
//   input <port> <net> [drive <ohm>] [slew <s>]
//   output <port> <net> [cap <F>]
//   wire <net>
//   inst <name> <cell> <PIN>=<net> [<PIN>=<net> ...]
//   endmodule
//
// Nets must be declared (as wire or via a port line) before use; pins
// named in `inst` lines must exist on the cell. Round-trips exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"

namespace nw::net {

void write_netlist(std::ostream& os, const Design& design);
[[nodiscard]] std::string write_netlist_string(const Design& design);

/// Parse; throws std::runtime_error (with a line number) on malformed
/// input, unknown cells/pins, or connectivity errors.
[[nodiscard]] Design read_netlist(std::istream& is, const lib::Library& library);
[[nodiscard]] Design read_netlist_string(const std::string& text,
                                         const lib::Library& library);

}  // namespace nw::net
