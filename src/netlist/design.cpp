#include "netlist/design.hpp"

#include <deque>
#include <stdexcept>

namespace nw::net {

PinId Design::make_pin(Pin p) {
  const PinId id{pins_.size()};
  pins_.push_back(std::move(p));
  return id;
}

NetId Design::add_net(const std::string& net_name) {
  if (net_index_.contains(net_name)) {
    throw std::invalid_argument("Design::add_net: duplicate net '" + net_name + "'");
  }
  const NetId id{nets_.size()};
  Net n;
  n.name = net_name;
  nets_.push_back(std::move(n));
  net_index_.emplace(net_name, id);
  return id;
}

InstId Design::add_instance(const std::string& inst_name, const std::string& cell_name) {
  if (inst_index_.contains(inst_name)) {
    throw std::invalid_argument("Design::add_instance: duplicate instance '" + inst_name + "'");
  }
  const auto cell_idx = lib_->find(cell_name);
  if (!cell_idx) {
    throw std::invalid_argument("Design::add_instance: unknown cell '" + cell_name + "'");
  }
  const InstId id{insts_.size()};
  Instance inst;
  inst.name = inst_name;
  inst.cell = *cell_idx;
  const lib::Cell& cell = lib_->cell(*cell_idx);
  inst.pins.reserve(cell.pins.size());
  for (std::size_t i = 0; i < cell.pins.size(); ++i) {
    Pin p;
    p.kind = PinKind::kInstance;
    p.inst = id;
    p.cell_pin = i;
    inst.pins.push_back(make_pin(std::move(p)));
  }
  insts_.push_back(std::move(inst));
  inst_index_.emplace(inst_name, id);
  if (cell.is_sequential()) seqs_.push_back(id);
  return id;
}

void Design::connect(InstId inst, const std::string& pin_name, NetId net) {
  const Instance& instance = insts_.at(inst.index());
  const lib::Cell& cell = lib_->cell(instance.cell);
  const auto pin_idx = cell.find_pin(pin_name);
  if (!pin_idx) {
    throw std::invalid_argument("Design::connect: cell '" + cell.name +
                                "' has no pin '" + pin_name + "'");
  }
  const PinId pid = instance.pins.at(*pin_idx);
  Pin& p = pins_.at(pid.index());
  if (p.net.valid()) {
    throw std::invalid_argument("Design::connect: pin already connected: " +
                                this->pin_name(pid));
  }
  p.net = net;
  Net& n = nets_.at(net.index());
  if (cell.pins[*pin_idx].dir == lib::PinDir::kOutput) {
    if (n.driver.valid()) {
      throw std::invalid_argument("Design::connect: net '" + n.name +
                                  "' already has a driver");
    }
    n.driver = pid;
  } else {
    n.loads.push_back(pid);
  }
}

PinId Design::add_input_port(const std::string& port_name, NetId net, PortDrive drive) {
  Net& n = nets_.at(net.index());
  if (n.driver.valid()) {
    throw std::invalid_argument("Design::add_input_port: net '" + n.name +
                                "' already has a driver");
  }
  Pin p;
  p.kind = PinKind::kInputPort;
  p.net = net;
  p.port_name = port_name;
  const PinId pid = make_pin(std::move(p));
  n.driver = pid;
  in_ports_.push_back(pid);
  port_drives_.emplace(pid.value(), drive);
  return pid;
}

PinId Design::add_output_port(const std::string& port_name, NetId net, double load_cap) {
  Pin p;
  p.kind = PinKind::kOutputPort;
  p.net = net;
  p.port_name = port_name;
  const PinId pid = make_pin(std::move(p));
  nets_.at(net.index()).loads.push_back(pid);
  out_ports_.push_back(pid);
  port_caps_.emplace(pid.value(), load_cap);
  return pid;
}

std::string Design::set_instance_cell(InstId inst, const std::string& cell_name) {
  Instance& instance = insts_.at(inst.index());
  const lib::Cell& old_cell = lib_->cell(instance.cell);
  const auto new_idx = lib_->find(cell_name);
  if (!new_idx) {
    throw std::invalid_argument("Design::set_instance_cell: unknown cell '" +
                                cell_name + "'");
  }
  const lib::Cell& new_cell = lib_->cell(*new_idx);
  const auto mismatch = [&](const std::string& what) {
    throw std::invalid_argument("Design::set_instance_cell: cell '" + cell_name +
                                "' is not footprint-compatible with '" +
                                old_cell.name + "' on '" + instance.name +
                                "' (" + what + ")");
  };
  if (new_cell.kind != old_cell.kind) mismatch("sequential kind differs");
  if (new_cell.pins.size() != old_cell.pins.size()) mismatch("pin count differs");
  for (std::size_t i = 0; i < old_cell.pins.size(); ++i) {
    if (new_cell.pins[i].name != old_cell.pins[i].name) mismatch("pin names differ");
    if (new_cell.pins[i].dir != old_cell.pins[i].dir) mismatch("pin directions differ");
    if (new_cell.pins[i].role != old_cell.pins[i].role) mismatch("pin roles differ");
  }
  instance.cell = *new_idx;
  return old_cell.name;
}

std::optional<NetId> Design::find_net(const std::string& net_name) const {
  const auto it = net_index_.find(net_name);
  if (it == net_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<InstId> Design::find_instance(const std::string& inst_name) const {
  const auto it = inst_index_.find(inst_name);
  if (it == inst_index_.end()) return std::nullopt;
  return it->second;
}

std::string Design::pin_name(PinId id) const {
  const Pin& p = pin(id);
  if (p.kind != PinKind::kInstance) return p.port_name;
  return instance(p.inst).name + "/" + cell_of(p.inst).pins[p.cell_pin].name;
}

double Design::pin_cap(PinId id) const {
  const Pin& p = pin(id);
  switch (p.kind) {
    case PinKind::kInstance:
      return lib_pin(id).cap;
    case PinKind::kOutputPort: {
      const auto it = port_caps_.find(id.value());
      return it == port_caps_.end() ? 0.0 : it->second;
    }
    case PinKind::kInputPort:
      return 0.0;
  }
  return 0.0;
}

const PortDrive& Design::port_drive(PinId id) const {
  const auto it = port_drives_.find(id.value());
  if (it == port_drives_.end()) {
    throw std::invalid_argument("Design::port_drive: not an input port pin");
  }
  return it->second;
}

double Design::driver_resistance(NetId net_id, bool holding) const {
  const Net& n = net(net_id);
  if (!n.driver.valid()) {
    throw std::invalid_argument("Design::driver_resistance: undriven net '" + n.name + "'");
  }
  const Pin& drv = pin(n.driver);
  if (drv.kind == PinKind::kInputPort) return port_drive(n.driver).resistance;
  const lib::Cell& cell = cell_of(drv.inst);
  return holding ? cell.holding_resistance : cell.drive_resistance;
}

std::vector<std::string> Design::lint() const {
  std::vector<std::string> problems;
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (!pins_[i].net.valid()) {
      problems.push_back("unconnected pin: " + pin_name(PinId{i}));
    }
  }
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i].driver.valid()) {
      problems.push_back("undriven net: " + nets_[i].name);
    }
    if (nets_[i].loads.empty()) {
      problems.push_back("unloaded net: " + nets_[i].name);
    }
  }
  return problems;
}

std::vector<InstId> Design::topological_order() const {
  // Kahn's algorithm over combinational fanin edges. An instance's inputs
  // that are driven by ports or sequential outputs don't create
  // dependencies; a DFF/latch instance itself has no combinational
  // input->output path, so it is a source for ordering purposes.
  std::vector<std::size_t> fanin_pending(insts_.size(), 0);
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    const lib::Cell& cell = lib_->cell(insts_[i].cell);
    if (cell.is_sequential()) continue;  // sources
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kInput) continue;
      const Pin& p = pins_[insts_[i].pins[pi].index()];
      if (!p.net.valid()) continue;
      const PinId drv = nets_[p.net.index()].driver;
      if (!drv.valid()) continue;
      const Pin& d = pins_[drv.index()];
      if (d.kind == PinKind::kInstance && !lib_->cell(insts_[d.inst.index()].cell).is_sequential()) {
        ++fanin_pending[i];
      }
    }
  }

  std::deque<InstId> ready;
  for (std::size_t i = 0; i < insts_.size(); ++i) {
    if (fanin_pending[i] == 0) ready.push_back(InstId{i});
  }

  std::vector<InstId> order;
  order.reserve(insts_.size());
  while (!ready.empty()) {
    const InstId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    const Instance& inst = insts_[id.index()];
    const lib::Cell& cell = lib_->cell(inst.cell);
    if (cell.is_sequential()) continue;  // Q edges don't gate combinational order
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kOutput) continue;
      const Pin& p = pins_[inst.pins[pi].index()];
      if (!p.net.valid()) continue;
      for (const PinId load : nets_[p.net.index()].loads) {
        const Pin& lp = pins_[load.index()];
        if (lp.kind != PinKind::kInstance) continue;
        const std::size_t li = lp.inst.index();
        if (lib_->cell(insts_[li].cell).is_sequential()) continue;
        if (--fanin_pending[li] == 0) ready.push_back(InstId{li});
      }
    }
  }

  if (order.size() != insts_.size()) {
    for (std::size_t i = 0; i < insts_.size(); ++i) {
      if (fanin_pending[i] > 0) {
        throw std::runtime_error("Design::topological_order: combinational loop through '" +
                                 insts_[i].name + "'");
      }
    }
  }
  return order;
}

std::size_t Design::memory_bytes() const noexcept {
  // Capacity-based, like the other subsystem estimators: counts the heap
  // the containers hold, not just the bytes in use, because capacity is
  // what the process actually pays for.
  const auto string_bytes = [](const std::string& s) {
    return s.capacity() > sizeof(std::string) ? s.capacity() : 0;
  };
  // unordered_map nodes: payload + hash-node overhead (next pointer +
  // cached hash), plus one bucket pointer each.
  constexpr std::size_t kMapNodeOverhead = 2 * sizeof(void*);
  std::size_t bytes = string_bytes(name_);
  bytes += nets_.capacity() * sizeof(Net);
  for (const Net& n : nets_) {
    bytes += string_bytes(n.name) + n.loads.capacity() * sizeof(PinId);
  }
  bytes += insts_.capacity() * sizeof(Instance);
  for (const Instance& i : insts_) {
    bytes += string_bytes(i.name) + i.pins.capacity() * sizeof(PinId);
  }
  bytes += pins_.capacity() * sizeof(Pin);
  for (const Pin& p : pins_) bytes += string_bytes(p.port_name);
  bytes += in_ports_.capacity() * sizeof(PinId);
  bytes += out_ports_.capacity() * sizeof(PinId);
  bytes += seqs_.capacity() * sizeof(InstId);
  for (const auto& [name, id] : net_index_) {
    bytes += string_bytes(name) + sizeof(name) + sizeof(id) + kMapNodeOverhead;
  }
  for (const auto& [name, id] : inst_index_) {
    bytes += string_bytes(name) + sizeof(name) + sizeof(id) + kMapNodeOverhead;
  }
  bytes += net_index_.bucket_count() * sizeof(void*);
  bytes += inst_index_.bucket_count() * sizeof(void*);
  bytes += port_drives_.size() * (sizeof(PinId::value_type) + sizeof(PortDrive) + kMapNodeOverhead);
  bytes += port_caps_.size() * (sizeof(PinId::value_type) + sizeof(double) + kMapNodeOverhead);
  bytes += port_drives_.bucket_count() * sizeof(void*);
  bytes += port_caps_.bucket_count() * sizeof(void*);
  return bytes;
}

}  // namespace nw::net
