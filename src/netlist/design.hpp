// Gate-level design: instances of library cells wired by nets, plus
// primary ports. Single-driver nets (standard for signoff netlists).
//
// The Design owns all connectivity; parasitics, timing, and noise results
// live in sibling structures indexed by the same NetId/InstId/PinId spaces.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "library/library.hpp"
#include "util/ids.hpp"

namespace nw::net {

enum class PinKind {
  kInstance,     ///< pin of a cell instance
  kInputPort,    ///< primary input: drives a net from outside
  kOutputPort,   ///< primary output: loads a net
};

struct Pin {
  PinKind kind = PinKind::kInstance;
  InstId inst;                  ///< valid iff kind == kInstance
  std::size_t cell_pin = 0;     ///< index into the cell's pin list
  NetId net;                    ///< connected net (may be invalid while building)
  std::string port_name;        ///< valid iff kind != kInstance
};

struct Instance {
  std::string name;
  std::size_t cell = 0;         ///< index into the library
  std::vector<PinId> pins;      ///< parallel to the cell's pin list
};

struct Net {
  std::string name;
  PinId driver;                 ///< the single driving pin (output/input-port)
  std::vector<PinId> loads;     ///< input pins and output ports
};

/// External characteristics of a primary input: how strongly it is driven
/// and how fast it transitions. Consumed by STA and noise analysis.
struct PortDrive {
  double resistance = 1e3;      ///< driver output resistance [ohm]
  double slew = 30e-12;         ///< transition time [s]
};

class Design {
 public:
  /// The library must outlive the design.
  explicit Design(const lib::Library& library, std::string name = "top")
      : lib_(&library), name_(std::move(name)) {}

  [[nodiscard]] const lib::Library& library() const noexcept { return *lib_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // ---- construction -------------------------------------------------------

  /// Create a net; throws on duplicate name.
  NetId add_net(const std::string& net_name);

  /// Create an instance of `cell_name` (throws if the cell is unknown or the
  /// instance name is a duplicate). Pins start unconnected.
  InstId add_instance(const std::string& inst_name, const std::string& cell_name);

  /// Connect instance pin `pin_name` to `net`. Output pins become the net's
  /// driver (throws if the net already has one); input pins become loads.
  void connect(InstId inst, const std::string& pin_name, NetId net);

  /// Create a primary input port driving `net` (throws if driven already).
  PinId add_input_port(const std::string& port_name, NetId net, PortDrive drive = {});

  /// Create a primary output port loading `net`.
  PinId add_output_port(const std::string& port_name, NetId net, double load_cap = 5e-15);

  // ---- ECO mutation -------------------------------------------------------

  /// Swap an instance onto another library cell with the same footprint
  /// (driver up/down-sizing: INV_X1 -> INV_X2). The new cell must have the
  /// same pin names, directions, and roles, and the same sequential kind;
  /// connectivity is untouched. Returns the previous cell's name (the
  /// inverse edit). Throws std::invalid_argument on an unknown cell or a
  /// footprint mismatch.
  std::string set_instance_cell(InstId inst, const std::string& cell_name);

  // ---- access -------------------------------------------------------------

  [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }
  [[nodiscard]] std::size_t instance_count() const noexcept { return insts_.size(); }
  [[nodiscard]] std::size_t pin_count() const noexcept { return pins_.size(); }

  [[nodiscard]] const Net& net(NetId id) const { return nets_.at(id.index()); }
  [[nodiscard]] const Instance& instance(InstId id) const { return insts_.at(id.index()); }
  [[nodiscard]] const Pin& pin(PinId id) const { return pins_.at(id.index()); }

  [[nodiscard]] std::optional<NetId> find_net(const std::string& net_name) const;
  [[nodiscard]] std::optional<InstId> find_instance(const std::string& inst_name) const;

  /// The library cell of an instance.
  [[nodiscard]] const lib::Cell& cell_of(InstId id) const {
    return lib_->cell(instance(id).cell);
  }
  /// The library cell of an instance pin's owner (kInstance pins only).
  [[nodiscard]] const lib::Cell& cell_of(PinId id) const {
    return cell_of(pin(id).inst);
  }
  /// The library pin model behind a pin (kInstance pins only).
  [[nodiscard]] const lib::Pin& lib_pin(PinId id) const {
    const Pin& p = pin(id);
    return cell_of(p.inst).pins.at(p.cell_pin);
  }

  /// Human-readable "inst/PIN" or port name for diagnostics.
  [[nodiscard]] std::string pin_name(PinId id) const;

  /// Input pin capacitance presented by a pin to its net [F].
  [[nodiscard]] double pin_cap(PinId id) const;

  /// Port drive info for input-port pins.
  [[nodiscard]] const PortDrive& port_drive(PinId id) const;

  /// Output resistance of the pin driving `net`: the cell's drive (or
  /// holding) resistance for instance pins, the port drive resistance for
  /// input ports. Throws if the net is undriven.
  [[nodiscard]] double driver_resistance(NetId net, bool holding) const;

  [[nodiscard]] const std::vector<PinId>& input_ports() const noexcept { return in_ports_; }
  [[nodiscard]] const std::vector<PinId>& output_ports() const noexcept { return out_ports_; }

  /// All sequential (DFF/latch) instances.
  [[nodiscard]] const std::vector<InstId>& sequentials() const noexcept { return seqs_; }

  // ---- structure ----------------------------------------------------------

  /// Verify all pins are connected and every net has a driver; returns a
  /// list of problems (empty = clean).
  [[nodiscard]] std::vector<std::string> lint() const;

  /// Topological order of instances over combinational arcs (sequential
  /// outputs and ports act as sources). Throws std::runtime_error on a
  /// combinational loop, naming an instance on the cycle.
  [[nodiscard]] std::vector<InstId> topological_order() const;

  /// Capacity-based estimate of the heap bytes this design owns (nets,
  /// instances, pins, name indexes). Feeds the "design" memory account via
  /// a size-accounting hook — the connectivity containers keep their plain
  /// allocators.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  PinId make_pin(Pin p);

  const lib::Library* lib_;
  std::string name_;
  std::vector<Net> nets_;
  std::vector<Instance> insts_;
  std::vector<Pin> pins_;
  std::vector<PinId> in_ports_;
  std::vector<PinId> out_ports_;
  std::vector<InstId> seqs_;
  std::unordered_map<std::string, NetId> net_index_;
  std::unordered_map<std::string, InstId> inst_index_;
  std::unordered_map<PinId::value_type, PortDrive> port_drives_;
  std::unordered_map<PinId::value_type, double> port_caps_;
};

}  // namespace nw::net
