#include "spice/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "parasitics/reduce.hpp"

namespace nw::spice {

double driver_resistance(const net::Design& design, NetId net, bool holding) {
  return design.driver_resistance(net, holding);
}

namespace {

/// Instantiate one net's RC tree into the circuit; returns circuit node per
/// RC node. Load pin caps become grounded caps at their attachment points.
std::vector<std::size_t> emit_net(Circuit& ckt, const net::Design& design,
                                  const para::Parasitics& para, NetId id,
                                  const std::string& prefix) {
  const para::RcNet& rc = para.net(id);
  std::vector<std::size_t> nodes(rc.node_count());
  for (std::uint32_t n = 0; n < rc.node_count(); ++n) {
    nodes[n] = ckt.add_node(prefix + "_" + std::to_string(n));
    if (rc.node(n).cground > 0.0) ckt.add_cap(nodes[n], 0, rc.node(n).cground);
  }
  for (const auto& r : rc.resistors()) ckt.add_res(nodes[r.a], nodes[r.b], r.r);
  for (const PinId load : design.net(id).loads) {
    const double cap = design.pin_cap(load);
    if (cap <= 0.0) continue;
    auto n = rc.node_of_pin(load);
    if (n >= rc.node_count()) n = 0;  // unattached load lumps at the driver
    ckt.add_cap(nodes[n], 0, cap);
  }
  return nodes;
}

}  // namespace

Cluster build_cluster(const net::Design& design, const para::Parasitics& para,
                      const ClusterSpec& spec) {
  Cluster cl;
  Circuit& ckt = cl.circuit;

  std::unordered_set<NetId::value_type> seen{spec.victim.value()};
  for (const auto& a : spec.aggressors) {
    if (a.net == spec.victim) {
      throw std::invalid_argument("build_cluster: aggressor equals victim");
    }
    if (!seen.insert(a.net.value()).second) {
      throw std::invalid_argument("build_cluster: duplicate aggressor net");
    }
  }

  // Victim tree + holding driver.
  cl.victim_nodes = emit_net(ckt, design, para, spec.victim,
                             "v_" + design.net(spec.victim).name);
  const double r_hold = driver_resistance(design, spec.victim, /*holding=*/true);
  cl.baseline = spec.victim_high ? spec.vdd : 0.0;
  if (spec.victim_high) {
    const std::size_t rail = ckt.add_node("vdd_hold");
    ckt.add_vsrc(rail, 0, Pwl::dc(spec.vdd));
    ckt.add_res(cl.victim_nodes[0], rail, r_hold);
  } else {
    ckt.add_res(cl.victim_nodes[0], 0, r_hold);
  }

  // Aggressor trees + switching drivers.
  std::unordered_map<NetId::value_type, std::vector<std::size_t>> agg_nodes;
  for (const auto& a : spec.aggressors) {
    auto nodes = emit_net(ckt, design, para, a.net, "a_" + design.net(a.net).name);
    const double r_drv = driver_resistance(design, a.net, /*holding=*/false);
    const std::size_t src = ckt.add_node("src_" + design.net(a.net).name);
    const double v0 = a.rising ? 0.0 : spec.vdd;
    const double v1 = a.rising ? spec.vdd : 0.0;
    ckt.add_vsrc(src, 0, Pwl::ramp(a.start, a.slew, v0, v1));
    ckt.add_res(nodes[0], src, r_drv);
    agg_nodes.emplace(a.net.value(), std::move(nodes));
  }

  // Coupling caps: in-cluster <-> in-cluster become real coupling caps;
  // cluster <-> external are grounded on the cluster side (quiet neighbour
  // == AC ground). Each cap is processed once.
  auto cluster_node = [&](NetId n, std::uint32_t rc_node) -> std::size_t {
    if (n == spec.victim) return cl.victim_nodes.at(rc_node);
    return agg_nodes.at(n.value()).at(rc_node);
  };
  std::unordered_set<std::size_t> done;
  for (const auto net_id : seen) {
    for (const auto ci : para.couplings_of(NetId{net_id})) {
      if (!done.insert(ci).second) continue;
      const auto& cc = para.coupling(ci);
      const bool a_in = seen.contains(cc.net_a.value());
      const bool b_in = seen.contains(cc.net_b.value());
      if (a_in && b_in) {
        ckt.add_cap(cluster_node(cc.net_a, cc.node_a), cluster_node(cc.net_b, cc.node_b),
                    cc.c);
      } else if (a_in) {
        ckt.add_cap(cluster_node(cc.net_a, cc.node_a), 0, cc.c);
      } else if (b_in) {
        ckt.add_cap(cluster_node(cc.net_b, cc.node_b), 0, cc.c);
      }
    }
  }

  // Probe the electrically farthest victim node (worst receiver).
  const para::RcNet& vrc = para.net(spec.victim);
  if (vrc.res_count() > 0) {
    const auto delays = para::elmore_delays(vrc);
    std::uint32_t best = 0;
    for (std::uint32_t n = 1; n < vrc.node_count(); ++n) {
      if (delays[n] > delays[best]) best = n;
    }
    cl.victim_probe = cl.victim_nodes[best];
  } else {
    cl.victim_probe = cl.victim_nodes[0];
  }
  return cl;
}

}  // namespace nw::spice
