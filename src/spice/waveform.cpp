#include "spice/waveform.hpp"

#include <algorithm>
#include <cmath>

namespace nw::spice {

double Waveform::at(double t) const noexcept {
  if (samples_.empty()) return 0.0;
  const double x = (t - t0_) / dt_;
  if (x <= 0.0) return samples_.front();
  const auto last = static_cast<double>(samples_.size() - 1);
  if (x >= last) return samples_.back();
  const auto i = static_cast<std::size_t>(x);
  const double f = x - static_cast<double>(i);
  return samples_[i] * (1.0 - f) + samples_[i + 1] * f;
}

double Waveform::max_value() const noexcept {
  double m = samples_.empty() ? 0.0 : samples_[0];
  for (const double v : samples_) m = std::max(m, v);
  return m;
}

double Waveform::min_value() const noexcept {
  double m = samples_.empty() ? 0.0 : samples_[0];
  for (const double v : samples_) m = std::min(m, v);
  return m;
}

GlitchMeasure measure_glitch(const Waveform& w, double baseline, double width_fraction) {
  GlitchMeasure g;
  if (w.empty()) return g;

  // Find the extreme deviation and its polarity.
  double best = 0.0;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double dev = w.sample(i) - baseline;
    if (std::abs(dev) > std::abs(best)) {
      best = dev;
      best_i = i;
    }
  }
  g.peak = std::abs(best);
  g.t_peak = w.time_at(best_i);
  g.positive = best >= 0.0;
  if (g.peak == 0.0) return g;

  // Width: total time the same-polarity deviation exceeds fraction*peak.
  const double thresh = width_fraction * g.peak;
  const double sign = g.positive ? 1.0 : -1.0;
  double width = 0.0;
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    const double d0 = sign * (w.sample(i) - baseline);
    const double d1 = sign * (w.sample(i + 1) - baseline);
    // Trapezoidal area of the positive part.
    if (d0 > 0.0 || d1 > 0.0) {
      area += 0.5 * (std::max(d0, 0.0) + std::max(d1, 0.0)) * w.dt();
    }
    // Fraction of the step above the width threshold (linear interp).
    const bool a0 = d0 >= thresh;
    const bool a1 = d1 >= thresh;
    if (a0 && a1) {
      width += w.dt();
    } else if (a0 != a1) {
      const double f = (thresh - d0) / (d1 - d0);
      width += w.dt() * (a0 ? f : (1.0 - f));
    }
  }
  g.width = width;
  g.area = area;
  return g;
}

double max_abs_difference(const Waveform& a, const Waveform& b, std::size_t n) {
  if (a.empty() || b.empty() || n == 0) return 0.0;
  const double t0 = std::max(a.t0(), b.t0());
  const double t1 = std::min(a.time_at(a.size() - 1), b.time_at(b.size() - 1));
  if (t1 <= t0) return 0.0;
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(n - 1);
    m = std::max(m, std::abs(a.at(t) - b.at(t)));
  }
  return m;
}

}  // namespace nw::spice
