// SPICE deck generation: render a Circuit as a standard .sp netlist
// (resistors, capacitors, PWL voltage sources, DC current sources, .tran)
// runnable by ngspice/HSPICE for external cross-validation of the built-in
// transient engine.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace nw::spice {

struct DeckOptions {
  std::string title = "noisewin cluster";
  TranOptions tran;
  std::vector<std::size_t> probes;  ///< nodes to .print
};

void write_deck(std::ostream& os, const Circuit& ckt, const DeckOptions& opt);
[[nodiscard]] std::string write_deck_string(const Circuit& ckt, const DeckOptions& opt);

}  // namespace nw::spice
