#include "spice/transient.hpp"

#include <cmath>
#include <stdexcept>

#include "la/sparse.hpp"

namespace nw::spice {

Waveform TransientResult::waveform(std::size_t node) const {
  std::vector<double> samples(steps_);
  for (std::size_t k = 0; k < steps_; ++k) samples[k] = v(node, k);
  return Waveform(0.0, dt_, std::move(samples));
}

TransientResult simulate(const Circuit& ckt, const TranOptions& opt) {
  if (opt.dt <= 0.0 || opt.t_stop <= 0.0) {
    throw std::invalid_argument("simulate: dt and t_stop must be positive");
  }
  const std::size_t n_nodes = ckt.node_count();       // incl. ground
  const std::size_t nv = n_nodes - 1;                 // voltage unknowns
  const std::size_t ns = ckt.vsources().size();       // source currents
  const std::size_t dim = nv + ns;
  const auto steps = static_cast<std::size_t>(std::ceil(opt.t_stop / opt.dt)) + 1;

  // Index helpers: node k (k>=1) -> unknown k-1; vsource j -> nv + j.
  auto vi = [](std::size_t node) { return node - 1; };

  // Assemble G (conductances + source incidence) and C (capacitances).
  la::TripletBuilder g(dim);
  la::TripletBuilder c(dim);

  for (const auto& r : ckt.resistors()) {
    const double cond = 1.0 / r.r;
    if (r.a != 0) g.add(vi(r.a), vi(r.a), cond);
    if (r.b != 0) g.add(vi(r.b), vi(r.b), cond);
    if (r.a != 0 && r.b != 0) {
      g.add(vi(r.a), vi(r.b), -cond);
      g.add(vi(r.b), vi(r.a), -cond);
    }
  }
  for (const auto& cap : ckt.capacitors()) {
    if (cap.a != 0) c.add(vi(cap.a), vi(cap.a), cap.c);
    if (cap.b != 0) c.add(vi(cap.b), vi(cap.b), cap.c);
    if (cap.a != 0 && cap.b != 0) {
      c.add(vi(cap.a), vi(cap.b), -cap.c);
      c.add(vi(cap.b), vi(cap.a), -cap.c);
    }
  }
  for (std::size_t j = 0; j < ns; ++j) {
    const auto& src = ckt.vsources()[j];
    const std::size_t row = nv + j;
    if (src.pos != 0) {
      g.add(vi(src.pos), row, 1.0);
      g.add(row, vi(src.pos), 1.0);
    }
    if (src.neg != 0) {
      g.add(vi(src.neg), row, -1.0);
      g.add(row, vi(src.neg), -1.0);
    }
  }

  // Theta scheme on the KCL rows:
  //   (C/h + theta G) x_{k+1} = (C/h - (1-theta) G) x_k
  //                             + theta b_{k+1} + (1-theta) b_k
  // with theta = 1/2 (trapezoidal) or 1 (Backward Euler). Voltage-source
  // rows are algebraic constraints (v_p - v_n = V(t)) and are kept
  // unscaled so they hold exactly at t_{k+1}.
  const double theta = opt.method == Integrator::kBackwardEuler ? 1.0 : 0.5;
  const double inv_h = 1.0 / opt.dt;
  la::TripletBuilder lhs(dim);
  la::TripletBuilder rhs_mat(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    const bool constraint_row = r >= nv;
    for (const auto& [col, val] : g.row(r)) {
      if (constraint_row) {
        lhs.add(r, col, val);
      } else {
        lhs.add(r, col, theta * val);
        if (theta < 1.0) rhs_mat.add(r, col, -(1.0 - theta) * val);
      }
    }
    for (const auto& [col, val] : c.row(r)) {
      lhs.add(r, col, inv_h * val);
      rhs_mat.add(r, col, inv_h * val);
    }
  }
  const la::SparseLu lu(lhs);
  const la::SparseMatrix rhs_m(rhs_mat);

  auto source_vec = [&](double t) {
    std::vector<double> b(dim, 0.0);
    for (const auto& src : ckt.isources()) {
      if (src.from != 0) b[vi(src.from)] -= src.i;
      if (src.to != 0) b[vi(src.to)] += src.i;
    }
    for (std::size_t j = 0; j < ns; ++j) {
      b[nv + j] = ckt.vsources()[j].wave.at(t);
    }
    return b;
  };

  // DC operating point at t = 0: solve G x = b(0). Floating pure-C nodes
  // make G singular; regularize with a tiny leak to ground.
  la::TripletBuilder g_dc(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (const auto& [col, val] : g.row(r)) g_dc.add(r, col, val);
  }
  for (std::size_t r = 0; r < nv; ++r) g_dc.add(r, r, 1e-12);
  const la::SparseLu lu_dc(g_dc);
  std::vector<double> x = lu_dc.solve(source_vec(0.0));

  TransientResult res(opt.dt, n_nodes, steps);
  for (std::size_t node = 1; node < n_nodes; ++node) res.set(node, 0, x[vi(node)]);

  std::vector<double> b_prev = source_vec(0.0);
  for (std::size_t k = 1; k < steps; ++k) {
    const double t = opt.dt * static_cast<double>(k);
    std::vector<double> b_now = source_vec(t);
    std::vector<double> rhs = rhs_m.multiply(x);
    for (std::size_t i = 0; i < nv; ++i) {
      rhs[i] += theta * b_now[i] + (1.0 - theta) * b_prev[i];
    }
    // Constraint rows: v_p - v_n = V(t_{k+1}) exactly.
    for (std::size_t j = 0; j < ns; ++j) rhs[nv + j] = b_now[nv + j];
    x = lu.solve(rhs);
    for (std::size_t node = 1; node < n_nodes; ++node) res.set(node, k, x[vi(node)]);
    b_prev = std::move(b_now);
  }
  return res;
}

}  // namespace nw::spice
