// Victim-cluster circuit extraction.
//
// Noise on a victim net is a local phenomenon: the victim's RC tree, its
// holding driver, its receivers' pin loads, the coupling caps, and the
// excited aggressor nets behind their drivers. This builder carves that
// cluster out of a full Design/Parasitics into a spice::Circuit, used both
// by the MNA-exact glitch model and by the golden-reference accuracy
// experiments. Quiet neighbours are treated as AC ground (their coupling
// caps are grounded), the standard signoff simplification.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"
#include "spice/circuit.hpp"

namespace nw::spice {

/// One switching aggressor in the cluster.
struct AggressorExcitation {
  NetId net;
  double start = 0.0;      ///< ramp start time [s]
  double slew = 30e-12;    ///< transition time [s]
  bool rising = true;      ///< direction of the aggressor edge
};

struct ClusterSpec {
  NetId victim;
  std::vector<AggressorExcitation> aggressors;
  double vdd = 1.2;
  bool victim_high = false;  ///< quiet level; false = held low (positive glitch)
};

struct Cluster {
  Circuit circuit;
  std::vector<std::size_t> victim_nodes;  ///< circuit node per victim RC node
  std::size_t victim_probe = 0;           ///< far-end victim node
  double baseline = 0.0;                  ///< victim quiet level [V]
};

/// Build the cluster circuit. Throws std::invalid_argument if an aggressor
/// equals the victim or appears twice.
[[nodiscard]] Cluster build_cluster(const net::Design& design,
                                    const para::Parasitics& para,
                                    const ClusterSpec& spec);

/// Output resistance of the pin driving `net`: cell drive/holding
/// resistance for instance pins, port drive resistance for input ports.
/// `holding` selects the quiet-state (holding) value.
[[nodiscard]] double driver_resistance(const net::Design& design, NetId net,
                                       bool holding);

}  // namespace nw::spice
