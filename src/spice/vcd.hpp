// VCD (Value Change Dump) export of transient waveforms, viewable in
// GTKWave & friends. Analog node voltages are emitted as VCD `real`
// variables.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/transient.hpp"

namespace nw::spice {

struct VcdOptions {
  std::string module = "noisewin";
  std::size_t stride = 1;   ///< emit every Nth sample (file-size control)
};

/// Dump the given nodes' waveforms. Node names come from the circuit.
/// Throws std::invalid_argument for bad nodes or a zero stride.
void write_vcd(std::ostream& os, const Circuit& ckt, const TransientResult& result,
               std::vector<std::size_t> nodes, const VcdOptions& opt = {});

[[nodiscard]] std::string write_vcd_string(const Circuit& ckt,
                                           const TransientResult& result,
                                           std::vector<std::size_t> nodes,
                                           const VcdOptions& opt = {});

}  // namespace nw::spice
