// MNA transient simulation (trapezoidal rule, fixed step).
//
// Unknowns are the non-ground node voltages plus one branch current per
// voltage source. For the linear RC + source networks of noise analysis
// the system matrix is constant, so it is assembled and LU-factorized once
// and every timestep is a single solve — the same discretization SPICE
// applies to these elements, which is what makes this engine a legitimate
// golden reference (see DESIGN.md substitutions).
#pragma once

#include <cstddef>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace nw::spice {

/// Integration scheme. Trapezoidal is 2nd-order accurate (the SPICE
/// default); Backward Euler is 1st-order but L-stable — it damps the
/// numerical ringing trapezoidal can show on very stiff networks.
enum class Integrator { kTrapezoidal, kBackwardEuler };

struct TranOptions {
  double t_stop = 1e-9;   ///< simulation end time [s]
  double dt = 0.25e-12;   ///< fixed timestep [s]
  Integrator method = Integrator::kTrapezoidal;
};

class TransientResult {
 public:
  TransientResult(double dt, std::size_t node_count, std::size_t steps)
      : dt_(dt), node_count_(node_count), steps_(steps),
        data_(node_count * steps, 0.0) {}

  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }

  /// Voltage of node `n` at step `k` (node 0 = ground = 0 V always).
  [[nodiscard]] double v(std::size_t n, std::size_t k) const {
    return n == 0 ? 0.0 : data_.at((n - 1) * steps_ + k);
  }
  void set(std::size_t n, std::size_t k, double val) {
    if (n > 0) data_.at((n - 1) * steps_ + k) = val;
  }

  /// Extract a node's full waveform.
  [[nodiscard]] Waveform waveform(std::size_t node) const;

 private:
  double dt_;
  std::size_t node_count_;  ///< including ground
  std::size_t steps_;
  std::vector<double> data_;  ///< (node-1) major, step minor
};

/// Simulate. Throws std::runtime_error if the MNA matrix is singular
/// (floating nodes) and std::invalid_argument for a bad option set.
[[nodiscard]] TransientResult simulate(const Circuit& ckt, const TranOptions& opt);

}  // namespace nw::spice
