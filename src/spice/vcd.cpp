#include "spice/vcd.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nw::spice {

void write_vcd(std::ostream& os, const Circuit& ckt, const TransientResult& result,
               std::vector<std::size_t> nodes, const VcdOptions& opt) {
  if (opt.stride == 0) throw std::invalid_argument("write_vcd: zero stride");
  for (const auto n : nodes) {
    if (n == 0 || n >= ckt.node_count()) {
      throw std::invalid_argument("write_vcd: bad node index");
    }
  }

  // Identifier codes: printable ASCII starting at '!'.
  auto code_of = [](std::size_t i) {
    std::string code;
    std::size_t v = i;
    do {
      code.push_back(static_cast<char>('!' + v % 94));
      v /= 94;
    } while (v > 0);
    return code;
  };

  os << "$timescale 1fs $end\n";
  os << "$scope module " << opt.module << " $end\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    os << "$var real 64 " << code_of(i) << ' ' << ckt.node_name(nodes[i]) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  os << std::setprecision(9);
  std::vector<double> last(nodes.size(), NAN);
  for (std::size_t k = 0; k < result.steps(); k += opt.stride) {
    const auto t_fs = static_cast<long long>(
        std::llround(result.dt() * static_cast<double>(k) / 1e-15));
    bool stamped = false;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const double v = result.v(nodes[i], k);
      if (v == last[i]) continue;
      if (!stamped) {
        os << '#' << t_fs << "\n";
        stamped = true;
      }
      os << 'r' << v << ' ' << code_of(i) << "\n";
      last[i] = v;
    }
  }
  os << '#'
     << static_cast<long long>(std::llround(
            result.dt() * static_cast<double>(result.steps() - 1) / 1e-15))
     << "\n";
}

std::string write_vcd_string(const Circuit& ckt, const TransientResult& result,
                             std::vector<std::size_t> nodes, const VcdOptions& opt) {
  std::ostringstream os;
  write_vcd(os, ckt, result, std::move(nodes), opt);
  return os.str();
}

}  // namespace nw::spice
