// Flat linear circuit for noise validation: R, C, piecewise-linear voltage
// sources, and DC current sources. Node 0 is ground.
//
// This is the substrate behind both the SPICE deck writer (decks runnable
// by any external simulator) and the built-in MNA transient engine used as
// the golden reference for glitch accuracy experiments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nw::spice {

/// One breakpoint of a piecewise-linear source.
struct PwlPoint {
  double t = 0.0;
  double v = 0.0;
};

/// Piecewise-linear waveform: value holds before the first and after the
/// last breakpoint; linear in between. Breakpoints must be time-sorted.
class Pwl {
 public:
  Pwl() = default;
  explicit Pwl(std::vector<PwlPoint> points);

  /// Constant source.
  [[nodiscard]] static Pwl dc(double v) { return Pwl({{0.0, v}}); }
  /// A single ramp from v0 to v1 starting at t0 with transition time tr.
  [[nodiscard]] static Pwl ramp(double t0, double tr, double v0, double v1);
  /// A pulse: ramp up at t0 (tr), hold for `hold`, ramp back down (tr).
  [[nodiscard]] static Pwl pulse(double t0, double tr, double hold, double v0, double v1);

  [[nodiscard]] double at(double t) const noexcept;
  [[nodiscard]] const std::vector<PwlPoint>& points() const noexcept { return pts_; }

 private:
  std::vector<PwlPoint> pts_;
};

struct Resistor {
  std::size_t a = 0;
  std::size_t b = 0;
  double r = 0.0;
};

struct Capacitor {
  std::size_t a = 0;
  std::size_t b = 0;
  double c = 0.0;
};

struct VoltageSource {
  std::size_t pos = 0;
  std::size_t neg = 0;
  Pwl wave;
};

struct CurrentSource {
  std::size_t from = 0;  ///< current flows from -> to through the source
  std::size_t to = 0;
  double i = 0.0;
};

class Circuit {
 public:
  Circuit() { node_names_.emplace_back("0"); }  // ground

  /// Create a node; returns its index (>= 1).
  std::size_t add_node(std::string name = {});

  [[nodiscard]] std::size_t node_count() const noexcept { return node_names_.size(); }
  [[nodiscard]] const std::string& node_name(std::size_t n) const {
    return node_names_.at(n);
  }

  void add_res(std::size_t a, std::size_t b, double r);
  void add_cap(std::size_t a, std::size_t b, double c);
  std::size_t add_vsrc(std::size_t pos, std::size_t neg, Pwl wave);
  void add_isrc(std::size_t from, std::size_t to, double i);

  [[nodiscard]] const std::vector<Resistor>& resistors() const noexcept { return rs_; }
  [[nodiscard]] const std::vector<Capacitor>& capacitors() const noexcept { return cs_; }
  [[nodiscard]] const std::vector<VoltageSource>& vsources() const noexcept { return vs_; }
  [[nodiscard]] const std::vector<CurrentSource>& isources() const noexcept { return is_; }

  /// Count of circuit elements (model-size metric in benches).
  [[nodiscard]] std::size_t element_count() const noexcept {
    return rs_.size() + cs_.size() + vs_.size() + is_.size();
  }

 private:
  void check_node(std::size_t n, const char* what) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> rs_;
  std::vector<Capacitor> cs_;
  std::vector<VoltageSource> vs_;
  std::vector<CurrentSource> is_;
};

}  // namespace nw::spice
