#include "spice/deck.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace nw::spice {

void write_deck(std::ostream& os, const Circuit& ckt, const DeckOptions& opt) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "* " << opt.title << "\n";
  std::size_t idx = 0;
  for (const auto& r : ckt.resistors()) {
    os << "R" << idx++ << ' ' << ckt.node_name(r.a) << ' ' << ckt.node_name(r.b)
       << ' ' << r.r << "\n";
  }
  idx = 0;
  for (const auto& c : ckt.capacitors()) {
    os << "C" << idx++ << ' ' << ckt.node_name(c.a) << ' ' << ckt.node_name(c.b)
       << ' ' << c.c << "\n";
  }
  idx = 0;
  for (const auto& v : ckt.vsources()) {
    os << "V" << idx++ << ' ' << ckt.node_name(v.pos) << ' ' << ckt.node_name(v.neg)
       << " PWL(";
    bool first = true;
    for (const auto& p : v.wave.points()) {
      if (!first) os << ' ';
      os << p.t << ' ' << p.v;
      first = false;
    }
    os << ")\n";
  }
  idx = 0;
  for (const auto& i : ckt.isources()) {
    os << "I" << idx++ << ' ' << ckt.node_name(i.from) << ' ' << ckt.node_name(i.to)
       << " DC " << i.i << "\n";
  }
  os << ".tran " << opt.tran.dt << ' ' << opt.tran.t_stop << "\n";
  if (!opt.probes.empty()) {
    os << ".print tran";
    for (const auto n : opt.probes) os << " v(" << ckt.node_name(n) << ")";
    os << "\n";
  }
  os << ".end\n";
}

std::string write_deck_string(const Circuit& ckt, const DeckOptions& opt) {
  std::ostringstream os;
  write_deck(os, ckt, opt);
  return os.str();
}

}  // namespace nw::spice
