#include "spice/circuit.hpp"

#include <algorithm>
#include <stdexcept>

namespace nw::spice {

Pwl::Pwl(std::vector<PwlPoint> points) : pts_(std::move(points)) {
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    if (!(pts_[i - 1].t <= pts_[i].t)) {
      throw std::invalid_argument("Pwl: breakpoints not time-sorted");
    }
  }
}

Pwl Pwl::ramp(double t0, double tr, double v0, double v1) {
  if (tr <= 0.0) throw std::invalid_argument("Pwl::ramp: non-positive transition");
  return Pwl({{t0, v0}, {t0 + tr, v1}});
}

Pwl Pwl::pulse(double t0, double tr, double hold, double v0, double v1) {
  if (tr <= 0.0 || hold < 0.0) throw std::invalid_argument("Pwl::pulse: bad shape");
  return Pwl({{t0, v0}, {t0 + tr, v1}, {t0 + tr + hold, v1}, {t0 + 2 * tr + hold, v0}});
}

double Pwl::at(double t) const noexcept {
  if (pts_.empty()) return 0.0;
  if (t <= pts_.front().t) return pts_.front().v;
  if (t >= pts_.back().t) return pts_.back().v;
  const auto it = std::upper_bound(pts_.begin(), pts_.end(), t,
                                   [](double x, const PwlPoint& p) { return x < p.t; });
  const PwlPoint& hi = *it;
  const PwlPoint& lo = *std::prev(it);
  if (hi.t == lo.t) return hi.v;
  const double f = (t - lo.t) / (hi.t - lo.t);
  return lo.v + f * (hi.v - lo.v);
}

std::size_t Circuit::add_node(std::string name) {
  const std::size_t idx = node_names_.size();
  if (name.empty()) name = "n" + std::to_string(idx);
  node_names_.push_back(std::move(name));
  return idx;
}

void Circuit::check_node(std::size_t n, const char* what) const {
  if (n >= node_names_.size()) {
    throw std::out_of_range(std::string(what) + ": node index out of range");
  }
}

void Circuit::add_res(std::size_t a, std::size_t b, double r) {
  check_node(a, "add_res");
  check_node(b, "add_res");
  if (r <= 0.0) throw std::invalid_argument("add_res: non-positive resistance");
  if (a == b) throw std::invalid_argument("add_res: both terminals on same node");
  rs_.push_back({a, b, r});
}

void Circuit::add_cap(std::size_t a, std::size_t b, double c) {
  check_node(a, "add_cap");
  check_node(b, "add_cap");
  if (c <= 0.0) throw std::invalid_argument("add_cap: non-positive capacitance");
  if (a == b) throw std::invalid_argument("add_cap: both terminals on same node");
  cs_.push_back({a, b, c});
}

std::size_t Circuit::add_vsrc(std::size_t pos, std::size_t neg, Pwl wave) {
  check_node(pos, "add_vsrc");
  check_node(neg, "add_vsrc");
  if (pos == neg) throw std::invalid_argument("add_vsrc: both terminals on same node");
  vs_.push_back({pos, neg, std::move(wave)});
  return vs_.size() - 1;
}

void Circuit::add_isrc(std::size_t from, std::size_t to, double i) {
  check_node(from, "add_isrc");
  check_node(to, "add_isrc");
  is_.push_back({from, to, i});
}

}  // namespace nw::spice
