// Uniformly sampled waveform with the glitch measurements the accuracy
// experiments need (peak, time of peak, width at a fraction of peak).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nw::spice {

class Waveform {
 public:
  Waveform() = default;
  Waveform(double t0, double dt, std::vector<double> samples)
      : t0_(t0), dt_(dt), samples_(std::move(samples)) {}

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double t0() const noexcept { return t0_; }
  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] double time_at(std::size_t i) const noexcept {
    return t0_ + dt_ * static_cast<double>(i);
  }
  [[nodiscard]] double sample(std::size_t i) const { return samples_.at(i); }
  [[nodiscard]] std::span<const double> samples() const noexcept { return samples_; }

  /// Linear interpolation at time t (clamped to the ends).
  [[nodiscard]] double at(double t) const noexcept;

  [[nodiscard]] double max_value() const noexcept;
  [[nodiscard]] double min_value() const noexcept;

 private:
  double t0_ = 0.0;
  double dt_ = 1.0;
  std::vector<double> samples_;
};

/// A measured glitch: excursion of a waveform away from its baseline.
struct GlitchMeasure {
  double peak = 0.0;     ///< |max deviation from baseline| [V]
  double t_peak = 0.0;   ///< time of the peak [s]
  double width = 0.0;    ///< time spent above 50% of peak [s]
  double area = 0.0;     ///< integral of deviation above baseline [V*s]
  bool positive = true;  ///< polarity of the excursion
};

/// Measure the largest same-polarity excursion from `baseline`.
/// `width_fraction` sets the width threshold (default half-peak).
[[nodiscard]] GlitchMeasure measure_glitch(const Waveform& w, double baseline,
                                           double width_fraction = 0.5);

/// Pointwise max abs difference between two waveforms over their common
/// span, sampled at `n` points (accuracy metric between golden/model).
[[nodiscard]] double max_abs_difference(const Waveform& a, const Waveform& b,
                                        std::size_t n = 512);

}  // namespace nw::spice
