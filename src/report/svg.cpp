#include "report/svg.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "report/table.hpp"

namespace nw::report {

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out += c;
    }
  }
  return out;
}

LinearScale::LinearScale(double data_lo, double data_hi, double px_lo, double px_hi)
    : d0_(data_lo), d1_(data_hi), p0_(px_lo), p1_(px_hi) {}

double LinearScale::operator()(double v) const noexcept {
  if (!(d1_ > d0_)) return (p0_ + p1_) / 2.0;
  const double t = (v - d0_) / (d1_ - d0_);
  return p0_ + t * (p1_ - p0_);
}

namespace {

/// Fixed-point pixel coordinate (avoids locale/exponent surprises).
std::string px(double v) { return fmt_fixed(v, 1); }

std::string tick_text(double v, double scale, std::string_view unit) {
  std::ostringstream os;
  os << fmt_fixed(v * scale, 2);
  if (!unit.empty()) os << ' ' << unit;
  return os.str();
}

// Inline SVG inside an HTML document needs no xmlns (the HTML parser
// assigns the namespace) — and the dashboard must carry no URL at all to
// stay verifiably self-contained (validate_obs.py rejects "http").
void open_svg(std::ostream& os, double width, double height) {
  os << "<svg viewBox=\"0 0 " << px(width) << ' ' << px(height) << "\" width=\""
     << px(width) << "\" height=\"" << px(height) << "\" role=\"img\">\n";
}

void axis_ticks(std::ostream& os, double lo, double hi, const LinearScale& x,
                double y_top, double y_bottom, double axis_scale,
                std::string_view axis_unit) {
  constexpr int kTicks = 5;
  for (int i = 0; i <= kTicks; ++i) {
    const double v = lo + (hi - lo) * i / kTicks;
    const double xx = x(v);
    os << "  <line class=\"grid\" x1=\"" << px(xx) << "\" y1=\"" << px(y_top)
       << "\" x2=\"" << px(xx) << "\" y2=\"" << px(y_bottom) << "\"/>\n";
    os << "  <text class=\"tick\" x=\"" << px(xx) << "\" y=\"" << px(y_bottom + 14)
       << "\" text-anchor=\"middle\">" << html_escape(tick_text(v, axis_scale, axis_unit))
       << "</text>\n";
  }
}

}  // namespace

void write_bar_chart(std::ostream& os, const std::vector<Bar>& bars,
                     const ChartGeom& geom, bool cumulative_line) {
  const double height = geom.row_height * static_cast<double>(bars.size()) + 8.0;
  open_svg(os, geom.width, height);
  double max_value = 0.0;
  double total = 0.0;
  for (const Bar& b : bars) {
    max_value = std::max(max_value, b.value);
    total += b.value;
  }
  const LinearScale x(0.0, max_value > 0.0 ? max_value : 1.0, geom.label_width,
                      geom.width - 70.0);
  double cumulative = 0.0;
  std::ostringstream line;
  for (std::size_t i = 0; i < bars.size(); ++i) {
    const Bar& b = bars[i];
    const double y = 4.0 + geom.row_height * static_cast<double>(i);
    const double bar_h = geom.row_height - 6.0;
    os << "  <text class=\"label\" x=\"" << px(geom.label_width - 8.0) << "\" y=\""
       << px(y + bar_h - 4.0) << "\" text-anchor=\"end\">" << html_escape(b.label)
       << "</text>\n";
    os << "  <rect class=\"" << html_escape(b.cls) << "\" x=\"" << px(geom.label_width)
       << "\" y=\"" << px(y) << "\" width=\""
       << px(std::max(x(b.value) - geom.label_width, 1.0)) << "\" height=\""
       << px(bar_h) << "\"/>\n";
    os << "  <text class=\"value\" x=\"" << px(x(b.value) + 6.0) << "\" y=\""
       << px(y + bar_h - 4.0) << "\">" << html_escape(b.value_text) << "</text>\n";
    if (cumulative_line && total > 0.0) {
      cumulative += b.value;
      const double cx = geom.label_width +
                        (cumulative / total) * (geom.width - 70.0 - geom.label_width);
      line << px(cx) << ',' << px(y + bar_h / 2.0) << ' ';
    }
  }
  if (cumulative_line && !bars.empty() && total > 0.0) {
    os << "  <polyline class=\"cumline\" fill=\"none\" points=\"" << line.str()
       << "\"/>\n";
  }
  os << "</svg>\n";
}

void write_histogram(std::ostream& os, const std::vector<HistogramBin>& bins,
                     const ChartGeom& geom, double axis_scale,
                     std::string_view axis_unit) {
  const double height = geom.plot_height + geom.axis_height + 8.0;
  open_svg(os, geom.width, height);
  if (!bins.empty()) {
    std::size_t max_count = 1;
    for (const HistogramBin& b : bins) max_count = std::max(max_count, b.count);
    const double lo = bins.front().lo;
    const double hi = bins.back().hi;
    const LinearScale x(lo, hi, 40.0, geom.width - 16.0);
    const LinearScale y(0.0, static_cast<double>(max_count), geom.plot_height + 4.0,
                        4.0);
    axis_ticks(os, lo, hi, x, 4.0, geom.plot_height + 4.0, axis_scale, axis_unit);
    for (const HistogramBin& b : bins) {
      if (b.count == 0) continue;
      const double x0 = x(b.lo);
      const double x1 = x(b.hi);
      const double yy = y(static_cast<double>(b.count));
      os << "  <rect class=\"" << html_escape(b.cls) << "\" x=\"" << px(x0 + 1.0)
         << "\" y=\"" << px(yy) << "\" width=\"" << px(std::max(x1 - x0 - 2.0, 1.0))
         << "\" height=\"" << px(geom.plot_height + 4.0 - yy) << "\"><title>"
         << b.count << "</title></rect>\n";
    }
  }
  os << "</svg>\n";
}

void write_timeline(std::ostream& os, const std::vector<TimelineRow>& rows,
                    double axis_lo, double axis_hi, const ChartGeom& geom,
                    double axis_scale, std::string_view axis_unit) {
  const double height =
      geom.row_height * static_cast<double>(rows.size()) + geom.axis_height + 8.0;
  open_svg(os, geom.width, height);
  const LinearScale x(axis_lo, axis_hi, geom.label_width, geom.width - 16.0);
  const double plot_bottom = 4.0 + geom.row_height * static_cast<double>(rows.size());
  axis_ticks(os, axis_lo, axis_hi, x, 4.0, plot_bottom, axis_scale, axis_unit);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TimelineRow& row = rows[i];
    const double y = 4.0 + geom.row_height * static_cast<double>(i);
    const double row_h = geom.row_height - 8.0;
    os << "  <text class=\"label\" x=\"" << px(geom.label_width - 8.0) << "\" y=\""
       << px(y + row_h - 2.0) << "\" text-anchor=\"end\">" << html_escape(row.label)
       << "</text>\n";
    for (const TimelineSpan& s : row.spans) {
      const double lo = std::max(s.lo, axis_lo);
      const double hi = std::min(s.hi, axis_hi);
      if (!(hi > lo)) continue;
      os << "  <rect class=\"" << html_escape(s.cls) << "\" x=\"" << px(x(lo))
         << "\" y=\"" << px(y) << "\" width=\"" << px(std::max(x(hi) - x(lo), 1.5))
         << "\" height=\"" << px(row_h) << "\"/>\n";
    }
  }
  os << "</svg>\n";
}

}  // namespace nw::report
