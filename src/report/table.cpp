#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace nw::report {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << str(); }

std::string fmt_ps(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << seconds * 1e12 << " ps";
  return os.str();
}

std::string fmt_mv(double volts) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << volts * 1e3 << " mV";
  return os.str();
}

std::string fmt_ff(double farads) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << farads * 1e15 << " fF";
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_sci(double v) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(2) << v;
  return os.str();
}

}  // namespace nw::report
