// Fixed-width text tables and CSV emission for benches and examples.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace nw::report {

/// Column-aligned text table (right-aligned numeric style).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string csv() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds as picoseconds with 1 decimal ("123.4 ps").
[[nodiscard]] std::string fmt_ps(double seconds);
/// Format volts as millivolts with 1 decimal ("87.3 mV").
[[nodiscard]] std::string fmt_mv(double volts);
/// Format farads as femtofarads ("4.0 fF").
[[nodiscard]] std::string fmt_ff(double farads);
/// Fixed-point with `digits` decimals.
[[nodiscard]] std::string fmt_fixed(double v, int digits = 2);
/// Scientific with 3 significant digits.
[[nodiscard]] std::string fmt_sci(double v);

}  // namespace nw::report
