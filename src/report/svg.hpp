// Minimal inline-SVG chart primitives for self-contained HTML reports.
//
// Everything renders into an open stream as a single `<svg>` element with
// no external references — styling comes from CSS classes the embedding
// page defines in its one `<style>` block, so the produced HTML stays a
// single self-contained file (tools/validate_obs.py --html-report checks
// exactly that). The helpers are generic over labels/values; the noise
// dashboard (noise/html_report.cpp) supplies the domain content.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nw::report {

/// Escape `&<>"'` for safe embedding in HTML text and attribute values.
[[nodiscard]] std::string html_escape(std::string_view s);

/// Linear data→pixel mapping; a degenerate data range maps to the pixel
/// midpoint instead of dividing by zero.
class LinearScale {
 public:
  LinearScale(double data_lo, double data_hi, double px_lo, double px_hi);
  [[nodiscard]] double operator()(double v) const noexcept;

 private:
  double d0_, d1_, p0_, p1_;
};

/// Shared chart geometry (pixels).
struct ChartGeom {
  double width = 840.0;       ///< total svg width
  double label_width = 200.0; ///< left gutter for row labels
  double row_height = 24.0;   ///< per-row height (bar charts, timelines)
  double plot_height = 160.0; ///< plot area height (histograms)
  double axis_height = 24.0;  ///< bottom gutter for tick labels
};

/// One horizontal bar; `value_text` is pre-formatted by the caller and
/// `cls` selects the CSS class of the bar rect.
struct Bar {
  std::string label;
  double value = 0.0;
  std::string value_text;
  std::string cls = "bar";
};

/// Horizontal bar chart, one row per Bar, drawn in the given order.
/// With `cumulative_line` a polyline of the running value share (0..100%
/// of the total) is overlaid — the Pareto rendering.
void write_bar_chart(std::ostream& os, const std::vector<Bar>& bars,
                     const ChartGeom& geom, bool cumulative_line = false);

/// One vertical histogram bin covering [lo, hi) with `count` observations.
struct HistogramBin {
  double lo = 0.0;
  double hi = 0.0;
  std::size_t count = 0;
  std::string cls = "bin";
};

/// Vertical histogram over contiguous bins; tick labels are the bin edges
/// scaled by `axis_scale` with `axis_unit` appended (e.g. 1e3, "mV").
void write_histogram(std::ostream& os, const std::vector<HistogramBin>& bins,
                     const ChartGeom& geom, double axis_scale,
                     std::string_view axis_unit);

/// One span on a timeline row; `cls` selects the CSS class of the rect.
struct TimelineSpan {
  double lo = 0.0;
  double hi = 0.0;
  std::string cls = "span";
};

struct TimelineRow {
  std::string label;
  std::vector<TimelineSpan> spans;
};

/// Rows of labeled horizontal spans over one shared time axis
/// [axis_lo, axis_hi]; spans are clamped to the axis. Tick labels are
/// scaled by `axis_scale` with `axis_unit` appended (e.g. 1e9, "ns").
void write_timeline(std::ostream& os, const std::vector<TimelineRow>& rows,
                    double axis_lo, double axis_hi, const ChartGeom& geom,
                    double axis_scale, std::string_view axis_unit);

}  // namespace nw::report
