// Sampling profiler over the tracer's RAII spans (no native unwinding).
//
// Every obs::Span pushes its name onto the calling thread's active-frame
// stack while the profiler runs (and pops it at destruction), so at any
// instant each thread's stack reads root→leaf as "what the thread is doing
// now" — phase → level/iteration → executor chunk. A ticker thread wakes
// `hz` times per second, snapshots every registered thread's stack, and
// aggregates samples into collapsed-stack ("folded") lines:
//
//   main;iteration 1;propagate;propagate-level 412
//   worker 3;propagate-level 388
//
// which is the format standard flamegraph tooling consumes directly
// (flamegraph.pl, speedscope, inferno).
//
// Why this is deterministic-safe: sampling only *reads* span state. The
// ticker never touches the metrics registry, never claims executor chunks,
// and the per-span cost (a bounded memcpy push/pop) does not reorder any
// parallel work — so results, violations, provenance, and deterministic
// counters are byte-identical with profiling on or off, at any rate
// (property-tested in tests/test_profile.cpp).
//
// Concurrency: each thread's stack is a fixed-depth seqlock — the owner
// thread pushes/pops with two atomic bumps around a bounded copy; the
// ticker retries/discards a snapshot whose sequence moved underneath it
// (counted, never blocking the owner). A sample landing between a pop and
// the next push sees the shorter — still valid — stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nw::obs {

/// One aggregated collapsed-stack line: `stack` is the semicolon-joined
/// frame path (root frame = thread name), `count` the number of samples.
struct FoldedEntry {
  std::string stack;
  std::uint64_t count = 0;
};

/// Process-wide sampling profiler (static-only interface, like Tracer).
/// At most one ticker runs at a time; start/stop are cheap and may bracket
/// a single request (the session `profile` protocol command) or a whole
/// CLI run (--profile-out/--profile-hz).
class Profiler {
 public:
  Profiler() = delete;

  /// Sampling rates outside [1, kMaxHz] are rejected (start returns false);
  /// the CLI maps `--profile-hz 0` to "profiling off" before getting here.
  static constexpr int kMaxHz = 20000;

  /// Launch the ticker at `hz` samples/second. Returns false (and changes
  /// nothing) if a ticker is already running or `hz` is out of range.
  /// Spans opened *before* start never pushed a frame, so a mid-run start
  /// only sees spans opened after it — document-accurate, not a bug.
  [[nodiscard]] static bool start(int hz);

  /// Stop the ticker (joins it; idempotent). Aggregated samples are kept
  /// until clear() so they can still be dumped after stopping.
  static void stop();

  /// Drop every aggregated sample and counter (thread registrations kept).
  static void clear();

  [[nodiscard]] static bool running() noexcept;
  [[nodiscard]] static int hz() noexcept;

  /// Ticks that found at least one non-empty stack, summed over threads —
  /// i.e. the total of every FoldedEntry::count.
  [[nodiscard]] static std::uint64_t total_samples();

  /// Snapshots discarded because a push raced the ticker (diagnostic).
  [[nodiscard]] static std::uint64_t torn_samples();

  /// Approximate bytes held by the folded-stack aggregate (string storage +
  /// map nodes). Feeds the memtrack "trace_buffers" sampled account.
  [[nodiscard]] static std::uint64_t approx_bytes();

  /// Aggregated folded stacks, sorted by stack string (stable across
  /// identical sample sets). Safe while the ticker runs.
  [[nodiscard]] static std::vector<FoldedEntry> snapshot();

  /// Write `stack count` lines (the collapsed-stack format), sorted.
  static void write_folded(std::ostream& os);
};

/// Top-`limit` stacks of `now - before` by descending count delta (ties by
/// stack string) — the bounded one-shot capture attached to slow-request
/// slowlog entries. Entries whose count did not grow are dropped.
[[nodiscard]] std::vector<FoldedEntry> folded_delta(
    const std::vector<FoldedEntry>& before, const std::vector<FoldedEntry>& now,
    std::size_t limit);

/// Label the calling thread's folded-stack root frame. Tracer::
/// set_thread_name forwards here, so executor workers are named once.
void profile_set_thread_name(std::string_view name);

}  // namespace nw::obs
