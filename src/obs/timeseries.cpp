#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

namespace nw::obs {

namespace {

// Fixed-format non-scientific rendering for sample values: stable across
// locales, compact, and precise enough for gauges/counters/latencies
// (values are operator-facing telemetry, not bit-exact analysis results).
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  if (v == static_cast<std::uint64_t>(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out += buf;
}

void append_t_ms(std::string& out, double t_ms) {
  if (!std::isfinite(t_ms) || t_ms < 0.0) t_ms = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", t_ms);
  out += buf;
}

}  // namespace

std::string TimeSeriesSnapshot::json() const {
  std::string out;
  out.reserve(128 + samples.size() * (16 + series.size() * 8));
  out += "{\"interval_ms\":";
  append_number(out, interval_ms);
  out += ",\"capacity\":";
  append_number(out, static_cast<double>(capacity));
  out += ",\"total\":";
  append_number(out, static_cast<double>(total));
  out += ",\"series\":[";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out += ',';
    out += '"';
    // Series names are fixed identifiers chosen by the code, never user
    // input; keep the escape trivial (they contain no quotes/backslashes).
    out += series[i];
    out += '"';
  }
  out += "],\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"t_ms\":";
    append_t_ms(out, samples[i].t_ms);
    out += ",\"v\":[";
    for (std::size_t j = 0; j < samples[i].v.size(); ++j) {
      if (j != 0) out += ',';
      append_number(out, samples[i].v[j]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

TimeSeriesRing::TimeSeriesRing(std::vector<std::string> series,
                               std::size_t capacity)
    : series_(std::move(series)), capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TimeSeriesRing::record(double t_ms, std::vector<double> values) {
  values.resize(series_.size(), 0.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(TimeSample{t_ms, std::move(values)});
  } else {
    TimeSample& slot = ring_[total_ % capacity_];
    slot.t_ms = t_ms;
    slot.v = std::move(values);
  }
  ++total_;
}

TimeSeriesSnapshot TimeSeriesRing::snapshot(std::size_t last_n) const {
  std::lock_guard<std::mutex> lock(mu_);
  TimeSeriesSnapshot snap;
  snap.interval_ms = interval_ms_;
  snap.capacity = capacity_;
  snap.total = total_;
  snap.series = series_;
  const std::size_t have = ring_.size();
  std::size_t n = (last_n == 0) ? have : std::min(last_n, have);
  snap.samples.reserve(n);
  // Oldest retained sample lives at total_ % capacity_ once wrapped,
  // at 0 before that; emit the last n in chronological order.
  const std::size_t first = (have < capacity_) ? 0 : total_ % capacity_;
  for (std::size_t i = have - n; i < have; ++i) {
    snap.samples.push_back(ring_[(first + i) % have]);
  }
  return snap;
}

std::size_t TimeSeriesRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TimeSeriesRing::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void TimeSeriesRing::set_interval_ms(int interval_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  interval_ms_ = interval_ms;
}

RotatingQuantile::RotatingQuantile(std::vector<double> bounds,
                                   std::size_t windows)
    : bounds_(std::move(bounds)) {
  wins_.resize(std::max<std::size_t>(1, windows));
  for (Window& w : wins_) w.counts.assign(bounds_.size() + 1, 0);
}

void RotatingQuantile::observe(double v) {
  if (!std::isfinite(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  Window& w = wins_[cur_];
  ++w.counts[bucket];
  if (w.count == 0) {
    w.min = w.max = v;
  } else {
    w.min = std::min(w.min, v);
    w.max = std::max(w.max, v);
  }
  ++w.count;
  w.sum += v;
}

void RotatingQuantile::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  cur_ = (cur_ + 1) % wins_.size();
  Window& w = wins_[cur_];
  std::fill(w.counts.begin(), w.counts.end(), 0);
  w.count = 0;
  w.sum = 0.0;
  w.min = 0.0;
  w.max = 0.0;
}

HistogramData RotatingQuantile::merged_locked() const {
  HistogramData h;
  h.bounds = bounds_;
  h.counts.assign(bounds_.size() + 1, 0);
  for (const Window& w : wins_) {
    if (w.count == 0) continue;
    for (std::size_t i = 0; i < w.counts.size(); ++i) h.counts[i] += w.counts[i];
    if (h.count == 0) {
      h.min = w.min;
      h.max = w.max;
    } else {
      h.min = std::min(h.min, w.min);
      h.max = std::max(h.max, w.max);
    }
    h.count += w.count;
    h.sum += w.sum;
  }
  return h;
}

double RotatingQuantile::quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_quantile(merged_locked(), q);
}

std::uint64_t RotatingQuantile::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Window& w : wins_) total += w.count;
  return total;
}

Sampler::Sampler(TimeSeriesRing& ring, SampleFn fn, int interval_ms)
    : ring_(ring),
      fn_(std::move(fn)),
      interval_ms_(std::clamp(interval_ms, 1, 60000)) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  t0_ = std::chrono::steady_clock::now();
  ring_.set_interval_ms(interval_ms_);
  // First sample lands synchronously (t = 0), so a ring is never empty
  // between start() and the first tick; the thread takes over from t0+1.
  ring_.record(0.0, fn_ ? fn_() : std::vector<double>{});
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  std::thread joiner;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    joiner = std::move(thread_);
  }
  cv_.notify_all();
  if (joiner.joinable()) joiner.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void Sampler::loop() {
  auto next = t0_ + std::chrono::milliseconds(interval_ms_);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_until(lock, next, [this] { return stop_; });
      if (stop_) return;
    }
    const double t_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0_)
            .count();
    ring_.record(t_ms, fn_ ? fn_() : std::vector<double>{});
    next += std::chrono::milliseconds(interval_ms_);
  }
}

}  // namespace nw::obs
