#include "obs/resource.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define NW_HAVE_GETRUSAGE 1
#endif

namespace nw::obs {

namespace {

/// Parse "VmRSS:     1234 kB" lines. Returns 0 when the key is absent.
std::size_t proc_status_kb(const char* line, const char* key) noexcept {
  const std::size_t key_len = std::strlen(key);
  if (std::strncmp(line, key, key_len) != 0) return 0;
  unsigned long long kb = 0;
  if (std::sscanf(line + key_len, " %llu", &kb) != 1) return 0;
  return static_cast<std::size_t>(kb);
}

}  // namespace

ResourceSample sample_resources() noexcept {
  ResourceSample s;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      if (const std::size_t kb = proc_status_kb(line, "VmRSS:")) {
        s.rss_bytes = kb * 1024;
      } else if (const std::size_t kb2 = proc_status_kb(line, "VmHWM:")) {
        s.peak_rss_bytes = kb2 * 1024;
      }
      if (s.rss_bytes && s.peak_rss_bytes) break;
    }
    std::fclose(f);
  }
#ifdef NW_HAVE_GETRUSAGE
  if (s.peak_rss_bytes == 0) {
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
      // Linux reports ru_maxrss in kB (macOS in bytes; kB is the safe floor
      // for the platforms we build on).
      s.peak_rss_bytes = static_cast<std::size_t>(ru.ru_maxrss) * 1024;
    }
  }
#endif
  if (s.peak_rss_bytes < s.rss_bytes) s.peak_rss_bytes = s.rss_bytes;
  return s;
}

}  // namespace nw::obs
