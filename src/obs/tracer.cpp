#include "obs/tracer.hpp"

#include <algorithm>

#include "obs/log.hpp"
#include "obs/profile.hpp"
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>

namespace nw::obs {

namespace {

/// Per-thread event buffer. Registered once per thread and kept alive by
/// the registry after the thread exits, so worker spans survive pool
/// teardown until the next clear().
struct Buffer {
  int tid = 0;
  std::string thread_name;
  std::mutex mutex;  ///< uncontended in steady state (owner thread appends)
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<Buffer>> buffers;
  int next_tid = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: threads may record at exit
  return *r;
}

Buffer& local_buffer() {
  thread_local std::shared_ptr<Buffer> tl_buffer = [] {
    auto buf = std::make_shared<Buffer>();
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    buf->tid = reg.next_tid++;
    reg.buffers.push_back(buf);
    return buf;
  }();
  return *tl_buffer;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

/// Counter samples arrive from one low-rate sampler thread, so a single
/// mutex-guarded vector (leaked like the registry) is plenty.
struct CounterStore {
  std::mutex mutex;
  std::vector<CounterEvent> events;
};

CounterStore& counter_store() {
  static CounterStore* s = new CounterStore;
  return *s;
}

}  // namespace

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kPhase: return "phase";
    case SpanKind::kLevel: return "level";
    case SpanKind::kIteration: return "iteration";
    case SpanKind::kTask: return "task";
    case SpanKind::kRequest: return "request";
  }
  return "?";
}

namespace detail {

std::atomic<unsigned> g_span_mask{0};

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

void record(TraceEvent&& ev) {
  Buffer& buf = local_buffer();
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

}  // namespace detail

void Tracer::enable() {
  (void)epoch();  // pin the epoch before the first span
  detail::g_span_mask.fetch_or(detail::kSpanTraceBit, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_span_mask.fetch_and(~detail::kSpanTraceBit, std::memory_order_relaxed);
}

void Tracer::clear() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    buf->events.clear();
  }
  CounterStore& cs = counter_store();
  std::lock_guard<std::mutex> clk(cs.mutex);
  cs.events.clear();
}

void Tracer::counter(std::string_view name, double value) {
  if (!trace_enabled()) return;
  CounterEvent ev;
  ev.name = std::string(name);
  ev.value = value;
  ev.ts_ns = detail::now_ns();
  CounterStore& cs = counter_store();
  std::lock_guard<std::mutex> lock(cs.mutex);
  cs.events.push_back(std::move(ev));
}

std::vector<CounterEvent> Tracer::counters() {
  CounterStore& cs = counter_store();
  std::lock_guard<std::mutex> lock(cs.mutex);
  return cs.events;
}

void Tracer::set_thread_name(std::string name) {
  // One call labels every consumer: the trace track, the profiler's
  // folded-stack root frame, and the log-line origin segment.
  profile_set_thread_name(name);
  set_log_thread_name(name);
  Buffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.thread_name = std::move(name);
}

std::size_t Tracer::buffered_bytes() {
  std::size_t total = 0;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    total += sizeof(Buffer) + buf->thread_name.capacity();
    total += buf->events.capacity() * sizeof(TraceEvent);
    for (const TraceEvent& ev : buf->events) {
      // Count only heap names; SSO storage is already inside sizeof above.
      if (ev.name.capacity() > sizeof(std::string)) total += ev.name.capacity();
    }
  }
  return total;
}

std::vector<TraceEvent> Tracer::events() {
  std::vector<TraceEvent> out;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> blk(buf->mutex);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.start_ns < b.start_ns;
  });
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Tracer::write_chrome(std::ostream& os) {
  // Collect names under the registry lock, events via the sorted snapshot.
  std::vector<std::pair<int, std::string>> thread_names;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& buf : reg.buffers) {
      std::lock_guard<std::mutex> blk(buf->mutex);
      if (!buf->thread_name.empty()) thread_names.emplace_back(buf->tid, buf->thread_name);
    }
  }
  const std::vector<TraceEvent> evs = events();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  sep();
  os << R"({"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"noisewin"}})";
  for (const auto& [tid, name] : thread_names) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << tid
       << R"(,"name":"thread_name","args":{"name":")" << json_escape(name) << "\"}}";
  }
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::fixed << std::setprecision(3);
  for (const TraceEvent& ev : evs) {
    sep();
    os << R"({"ph":"X","pid":0,"tid":)" << ev.tid << R"(,"name":")"
       << json_escape(ev.name) << R"(","cat":")" << to_string(ev.kind) << R"(","ts":)"
       << static_cast<double>(ev.start_ns) / 1e3 << R"(,"dur":)"
       << static_cast<double>(ev.dur_ns) / 1e3 << "}";
  }
  // Counter samples render as value tracks. Chrome keys each track by
  // (pid, name); tid 0 keeps them grouped above the span threads.
  for (const CounterEvent& ev : Tracer::counters()) {
    sep();
    os << R"({"ph":"C","pid":0,"tid":0,"name":")" << json_escape(ev.name)
       << R"(","ts":)" << static_cast<double>(ev.ts_ns) / 1e3 << R"(,"args":{")"
       << json_escape(ev.name) << "\":" << ev.value << "}}";
  }
  os.flags(flags);
  os.precision(precision);
  os << "\n]}\n";
}

void Span::arm(std::string_view name, SpanKind kind) {
  if (profile_enabled()) {
    detail::push_frame(name);
    pushed_ = true;
  }
  if (!trace_enabled()) return;  // profiler-only: no event, no name copy
  name_ = std::string(name);
  kind_ = kind;
  start_ns_ = detail::now_ns();
}

void Span::finish() {
  // Tracing may have been disabled mid-span; still record for balance —
  // a dangling open span would break per-thread nesting.
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.kind = kind_;
  ev.start_ns = start_ns_;
  ev.dur_ns = detail::now_ns() - start_ns_;
  detail::record(std::move(ev));
}

}  // namespace nw::obs
