#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/tracer.hpp"  // json_escape

#ifndef NW_GIT_DESCRIBE
#define NW_GIT_DESCRIBE "unknown"
#endif

namespace nw::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i < d.counts.size(); ++i) {
    d.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  return d;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

struct Registry::Entry {
  std::string name;
  std::string help;
  std::string unit;
  MetricSample::Kind kind;
  bool deterministic = true;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> hist;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Entry& Registry::find_or_create(std::string_view name, std::string_view help,
                                          std::string_view unit,
                                          MetricSample::Kind kind, bool deterministic,
                                          std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::logic_error("Registry: metric '" + e->name +
                               "' re-registered with a different kind");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->unit = std::string(unit);
  e->kind = kind;
  e->deterministic = deterministic;
  if (kind == MetricSample::Kind::kHistogram) {
    e->hist = std::make_unique<Histogram>(std::move(bounds));
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           bool deterministic) {
  return find_or_create(name, help, "", MetricSample::Kind::kCounter, deterministic, {})
      .counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view unit, bool deterministic) {
  return find_or_create(name, help, unit, MetricSample::Kind::kGauge, deterministic, {})
      .gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, std::string_view unit,
                               bool deterministic) {
  return *find_or_create(name, help, unit, MetricSample::Kind::kHistogram, deterministic,
                         std::move(bounds))
              .hist;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.help = e->help;
    s.unit = e->unit;
    s.kind = e->kind;
    s.deterministic = e->deterministic;
    switch (e->kind) {
      case MetricSample::Kind::kCounter: s.count = e->counter.value(); break;
      case MetricSample::Kind::kGauge: s.value = e->gauge.value(); break;
      case MetricSample::Kind::kHistogram: s.hist = e->hist->data(); break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

const char* build_version() noexcept { return NW_GIT_DESCRIBE; }

namespace {

/// Full-precision double rendering that stays valid JSON (no inf/nan).
std::string json_number(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

void write_histogram(std::ostream& os, const MetricSample& s) {
  os << "{\"unit\":\"" << json_escape(s.unit) << "\",\"bounds\":[";
  for (std::size_t i = 0; i < s.hist.bounds.size(); ++i) {
    if (i) os << ",";
    os << json_number(s.hist.bounds[i]);
  }
  os << "],\"counts\":[";
  for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
    if (i) os << ",";
    os << s.hist.counts[i];
  }
  os << "],\"count\":" << s.hist.count << ",\"sum\":" << json_number(s.hist.sum) << "}";
}

}  // namespace

void write_stats_json(std::ostream& os, const RunMeta& meta,
                      const MetricsSnapshot& snap) {
  os << "{\n\"meta\":{\"schema_version\":1,\"design\":\"" << json_escape(meta.design)
     << "\",\"mode\":\"" << json_escape(meta.mode) << "\",\"model\":\""
     << json_escape(meta.model) << "\",\"options_digest\":\""
     << json_escape(meta.options_digest) << "\",\"build\":\""
     << json_escape(meta.build) << "\",\"threads\":" << meta.threads
     << ",\"iterations\":" << meta.iterations << "},\n";

  const auto section = [&](const char* title, MetricSample::Kind kind,
                           bool deterministic) {
    os << "\"" << title << "\":{";
    bool first = true;
    for (const auto& s : snap.samples) {
      if (s.deterministic != deterministic) continue;
      if (deterministic && s.kind != kind) continue;
      if (!first) os << ",";
      first = false;
      os << "\n  \"" << json_escape(s.name) << "\":";
      switch (s.kind) {
        case MetricSample::Kind::kCounter: os << s.count; break;
        case MetricSample::Kind::kGauge: os << json_number(s.value); break;
        case MetricSample::Kind::kHistogram: write_histogram(os, s); break;
      }
    }
    os << "}";
  };
  section("counters", MetricSample::Kind::kCounter, true);
  os << ",\n";
  section("gauges", MetricSample::Kind::kGauge, true);
  os << ",\n";
  section("histograms", MetricSample::Kind::kHistogram, true);
  os << ",\n";
  // Nondeterministic metrics of every kind: the timing section.
  section("timing", MetricSample::Kind::kGauge, false);
  os << "\n}\n";
}

}  // namespace nw::obs
