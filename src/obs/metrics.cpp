#include "obs/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/memtrack.hpp"
#include "obs/tracer.hpp"  // json_escape

#ifndef NW_GIT_DESCRIBE
#define NW_GIT_DESCRIBE "unknown"
#endif

#ifndef NW_GIT_SHA
#define NW_GIT_SHA "unknown"
#endif

namespace nw::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

namespace {

/// CAS-loop update of a running extreme. The first observation must win
/// regardless of value, so "empty" is flagged by count == 0 at the caller
/// and this only races against other real observations.
template <typename Better>
void update_extreme(std::atomic<double>& slot, double v, bool first, Better better) {
  double cur = slot.load(std::memory_order_relaxed);
  while (first || better(v, cur)) {
    if (slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) return;
    first = false;
  }
}

}  // namespace

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  const bool first = count_.fetch_add(1, std::memory_order_relaxed) == 0;
  sum_.fetch_add(v, std::memory_order_relaxed);
  update_extreme(min_, v, first, [](double a, double b) { return a < b; });
  update_extreme(max_, v, first, [](double a, double b) { return a > b; });
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i < d.counts.size(); ++i) {
    d.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  d.count = count_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = d.count > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
  d.max = d.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return d;
}

double histogram_quantile(const HistogramData& h, double q) noexcept {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested observation (1-based, midpoint convention keeps
  // p50 of a single value at that value).
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t in_bucket = h.counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= rank) {
      // Bucket i spans (lo, hi]; pin the outermost edges to the exact
      // extremes so quantiles never leave the observed range.
      const double lo = i == 0 ? h.min : std::max(h.min, h.bounds[i - 1]);
      const double hi = i < h.bounds.size() ? std::min(h.max, h.bounds[i]) : h.max;
      const double within =
          std::clamp((rank - static_cast<double>(cum)) / static_cast<double>(in_bucket),
                     0.0, 1.0);
      return std::clamp(lo + (hi - lo) * within, h.min, h.max);
    }
    cum += in_bucket;
  }
  return h.max;
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const auto& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

struct Registry::Entry {
  std::string name;
  std::string help;
  std::string unit;
  MetricSample::Kind kind;
  bool deterministic = true;
  bool resource = false;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> hist;
};

Registry::Registry() = default;
Registry::~Registry() = default;

Registry::Entry& Registry::find_or_create(std::string_view name, std::string_view help,
                                          std::string_view unit,
                                          MetricSample::Kind kind, bool deterministic,
                                          bool resource, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& e : entries_) {
    if (e->name == name) {
      if (e->kind != kind) {
        throw std::logic_error("Registry: metric '" + e->name +
                               "' re-registered with a different kind");
      }
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->unit = std::string(unit);
  e->kind = kind;
  // Resource metrics are environment readings (RSS, live byte counts) and
  // can never be deterministic across machines or thread counts.
  e->deterministic = deterministic && !resource;
  e->resource = resource;
  if (kind == MetricSample::Kind::kHistogram) {
    e->hist = std::make_unique<Histogram>(std::move(bounds));
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           bool deterministic, bool resource) {
  return find_or_create(name, help, "", MetricSample::Kind::kCounter, deterministic,
                        resource, {})
      .counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       std::string_view unit, bool deterministic, bool resource) {
  return find_or_create(name, help, unit, MetricSample::Kind::kGauge, deterministic,
                        resource, {})
      .gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, std::string_view unit,
                               bool deterministic, bool resource) {
  return *find_or_create(name, help, unit, MetricSample::Kind::kHistogram, deterministic,
                         resource, std::move(bounds))
              .hist;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.help = e->help;
    s.unit = e->unit;
    s.kind = e->kind;
    s.deterministic = e->deterministic;
    s.resource = e->resource;
    switch (e->kind) {
      case MetricSample::Kind::kCounter: s.count = e->counter.value(); break;
      case MetricSample::Kind::kGauge: s.value = e->gauge.value(); break;
      case MetricSample::Kind::kHistogram: s.hist = e->hist->data(); break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

const char* build_version() noexcept { return NW_GIT_DESCRIBE; }

const char* git_sha() noexcept { return NW_GIT_SHA; }

const char* build_type() noexcept {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

namespace {

/// Full-precision double rendering that stays valid JSON (no inf/nan).
std::string json_number(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

void write_histogram(std::ostream& os, const MetricSample& s) {
  os << "{\"unit\":\"" << json_escape(s.unit) << "\",\"bounds\":[";
  for (std::size_t i = 0; i < s.hist.bounds.size(); ++i) {
    if (i) os << ",";
    os << json_number(s.hist.bounds[i]);
  }
  os << "],\"counts\":[";
  for (std::size_t i = 0; i < s.hist.counts.size(); ++i) {
    if (i) os << ",";
    os << s.hist.counts[i];
  }
  os << "],\"count\":" << s.hist.count << ",\"sum\":" << json_number(s.hist.sum)
     << ",\"min\":" << json_number(s.hist.min) << ",\"max\":" << json_number(s.hist.max)
     << ",\"p50\":" << json_number(histogram_quantile(s.hist, 0.50))
     << ",\"p95\":" << json_number(histogram_quantile(s.hist, 0.95))
     << ",\"p99\":" << json_number(histogram_quantile(s.hist, 0.99)) << "}";
}

void write_sample_value(std::ostream& os, const MetricSample& s) {
  switch (s.kind) {
    case MetricSample::Kind::kCounter: os << s.count; break;
    case MetricSample::Kind::kGauge: os << json_number(s.value); break;
    case MetricSample::Kind::kHistogram: write_histogram(os, s); break;
  }
}

}  // namespace

void write_stats_json(std::ostream& os, const RunMeta& meta,
                      const MetricsSnapshot& snap,
                      std::span<const std::pair<std::string, std::string>> extra) {
  os << "{\n\"meta\":{\"schema_version\":" << kStatsSchemaVersion << ",\"design\":\""
     << json_escape(meta.design) << "\",\"mode\":\"" << json_escape(meta.mode)
     << "\",\"model\":\"" << json_escape(meta.model) << "\",\"options_digest\":\""
     << json_escape(meta.options_digest) << "\",\"build\":\""
     << json_escape(meta.build) << "\",\"simd\":\""
     << json_escape(meta.simd.empty() ? "scalar" : meta.simd)
     << "\",\"threads\":" << meta.threads
     << ",\"iterations\":" << meta.iterations << "},\n";

  // Section membership is a partition: deterministic metrics split by kind,
  // resource metrics (always nondeterministic) get their own section, and
  // whatever nondeterminism remains is timing.
  const auto section = [&](const char* title, auto include) {
    os << "\"" << title << "\":{";
    bool first = true;
    for (const auto& s : snap.samples) {
      if (!include(s)) continue;
      if (!first) os << ",";
      first = false;
      os << "\n  \"" << json_escape(s.name) << "\":";
      write_sample_value(os, s);
    }
    os << "}";
  };
  section("counters", [](const MetricSample& s) {
    return s.deterministic && s.kind == MetricSample::Kind::kCounter;
  });
  os << ",\n";
  section("gauges", [](const MetricSample& s) {
    return s.deterministic && s.kind == MetricSample::Kind::kGauge;
  });
  os << ",\n";
  section("histograms", [](const MetricSample& s) {
    return s.deterministic && s.kind == MetricSample::Kind::kHistogram;
  });
  os << ",\n";
  section("resources", [](const MetricSample& s) { return s.resource; });
  os << ",\n";
  section("timing",
          [](const MetricSample& s) { return !s.deterministic && !s.resource; });
  // v5: memory accounting travels with every stats document, so it is
  // rendered here rather than threaded through `extra` by each caller.
  os << ",\n\"memory\":";
  write_memory_json(os);
  for (const auto& [title, json] : extra) {
    os << ",\n\"" << json_escape(title) << "\":" << json;
  }
  os << "\n}\n";
}

}  // namespace nw::obs
