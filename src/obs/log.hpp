// Leveled, rate-limited, thread-safe diagnostic logging.
//
// Replaces ad-hoc std::cerr writes. Usage:
//
//   NW_LOG(kWarn) << "lint: " << problem;
//   NW_LOG(kDebug) << "refinement converged after " << iter << " passes";
//
// The macro guards with one inlined relaxed load, so a disabled level
// costs a test-and-branch and never evaluates its stream arguments. Each
// call site rate-limits itself: the first kLogBurst hits always log, then
// only every kLogEvery-th does, with a "(n suppressed)" note — a hot loop
// cannot flood the sink. Lines are assembled off-lock and written under
// one mutex, so concurrent threads never interleave characters.
//
// The sink defaults to std::cerr and can be redirected (the CLI points it
// at its own error stream; tests capture it). `set_log_level` picks the
// most verbose level that still logs (default kWarn).
//
// Line format (origin segments appear only when set for the thread):
//   [HH:MM:SS.mmm] [nw:<level>] [<thread>] [conn <id>] <message>
// The wall-clock stamp and per-thread origin make one daemon log usable
// for cross-connection forensics; the `[nw:<level>]` token stays intact
// for grep.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace nw::obs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

[[nodiscard]] const char* to_string(LogLevel l) noexcept;

namespace detail {
extern std::atomic<int> g_log_level;
}  // namespace detail

[[nodiscard]] inline bool log_enabled(LogLevel l) noexcept {
  return static_cast<int>(l) <= detail::g_log_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel l) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Redirect the sink (nullptr restores std::cerr). The caller keeps the
/// stream alive while it is installed.
void set_log_sink(std::ostream* os) noexcept;

/// Label the calling thread's log lines (e.g. "conn-3"). Empty clears.
/// Tracer::set_thread_name forwards here, so one call names the trace
/// track, the profiler root frame, and the log origin together.
void set_log_thread_name(std::string_view name);

/// Attribute the calling thread's log lines to a daemon connection
/// (0 clears). Lines render "... [conn N] ..." while set, which is what
/// ties a slow-request warning back to the client that sent it.
void set_log_connection(std::uint64_t id) noexcept;

namespace detail {

constexpr std::uint64_t kLogBurst = 8;   ///< first hits per site always log
constexpr std::uint64_t kLogEvery = 64;  ///< afterwards: every n-th hit

/// Per-call-site rate-limit state (one function-local static per NW_LOG).
struct LogSite {
  std::atomic<std::uint64_t> hits{0};

  /// >= 0: write this hit, noting that many suppressed since the last
  /// write; < 0: drop it.
  [[nodiscard]] std::int64_t admit() noexcept {
    const std::uint64_t n = hits.fetch_add(1, std::memory_order_relaxed);
    if (n < kLogBurst) return 0;
    const std::uint64_t k = n - kLogBurst;
    if (k % kLogEvery == 0) {
      return k == 0 ? 0 : static_cast<std::int64_t>(kLogEvery - 1);
    }
    return -1;
  }
};

/// One log line, buffered locally and flushed atomically on destruction.
/// A rate-suppressed line still evaluates its stream arguments but writes
/// nothing (the site is already hot, so the cost is bounded and rare).
class LogLine {
 public:
  LogLine(LogLevel level, LogSite& site) : level_(level), suppressed_(site.admit()) {}
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  [[nodiscard]] std::ostream& stream() noexcept { return os_; }

 private:
  LogLevel level_;
  std::int64_t suppressed_;  ///< < 0: drop the line entirely
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace nw::obs

/// NW_LOG(kWarn) << ...;  — levels are members of nw::obs::LogLevel.
/// Expands to a statement; the else-branches keep it one statement so it
/// nests inside unbraced ifs like a function call would.
#define NW_LOG(level)                                                        \
  if (!::nw::obs::log_enabled(::nw::obs::LogLevel::level)) {                 \
  } else if (static ::nw::obs::detail::LogSite nw_log_site_; false) {        \
  } else                                                                     \
    ::nw::obs::detail::LogLine(::nw::obs::LogLevel::level, nw_log_site_).stream()
