#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "obs/tracer.hpp"

namespace nw::obs {

namespace {

constexpr std::size_t kMaxDepth = 32;  ///< frames beyond this are dropped
constexpr std::size_t kMaxFrame = 64;  ///< bytes per frame (NUL-truncated)

/// Per-thread active-frame stack. The owner thread mutates it (push/pop);
/// the ticker reads it under the seqlock protocol described in the header.
/// Registered once per thread and kept alive by the registry after the
/// thread exits (an exited thread's stack is empty, so it samples as
/// nothing).
struct FrameStack {
  std::atomic<std::uint32_t> seq{0};  ///< odd while a push is mutating frames
  std::atomic<std::int32_t> depth{0};
  char frames[kMaxDepth][kMaxFrame];
  std::mutex name_mutex;
  std::string name;  ///< root frame; "thread <tid>" until set
  int tid = 0;
};

struct StackRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<FrameStack>> stacks;
  int next_tid = 0;
};

StackRegistry& stack_registry() {
  static StackRegistry* r = new StackRegistry;  // leaked: threads may push at exit
  return *r;
}

FrameStack& local_stack() {
  thread_local std::shared_ptr<FrameStack> tl_stack = [] {
    auto fs = std::make_shared<FrameStack>();
    StackRegistry& reg = stack_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    fs->tid = reg.next_tid++;
    fs->name = "thread " + std::to_string(fs->tid);
    reg.stacks.push_back(fs);
    return fs;
  }();
  return *tl_stack;
}

/// Ticker state. Leaked for the same reason as the registries.
struct ProfState {
  std::mutex mutex;  ///< guards everything below plus `counts`
  std::map<std::string, std::uint64_t> counts;  ///< folded stack -> samples
  std::thread ticker;
  std::atomic<bool> run{false};
  int hz = 0;
  std::uint64_t samples = 0;
  std::uint64_t torn = 0;
};

ProfState& prof() {
  static ProfState* p = new ProfState;
  return *p;
}

/// One seqlock read of a thread's stack into `out` (returns frame count,
/// -1 when torn). A torn read means a push rewrote a frame mid-copy; the
/// sample is discarded rather than reporting a garbled name.
int read_stack(FrameStack& fs, char out[kMaxDepth][kMaxFrame]) {
  const std::uint32_t s1 = fs.seq.load(std::memory_order_acquire);
  if ((s1 & 1u) != 0) return -1;
  std::int32_t d = fs.depth.load(std::memory_order_acquire);
  if (d <= 0) return 0;
  if (d > static_cast<std::int32_t>(kMaxDepth)) d = kMaxDepth;
  std::memcpy(out, fs.frames, static_cast<std::size_t>(d) * kMaxFrame);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint32_t s2 = fs.seq.load(std::memory_order_relaxed);
  return s1 == s2 ? d : -1;
}

void sample_once(ProfState& p) {
  // Snapshot the stack list (cheap: shared_ptr copies) so stack reads do
  // not hold the registry lock while new threads register.
  std::vector<std::shared_ptr<FrameStack>> stacks;
  {
    StackRegistry& reg = stack_registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    stacks = reg.stacks;
  }
  char frames[kMaxDepth][kMaxFrame];
  std::string key;
  for (const auto& fs : stacks) {
    const int d = read_stack(*fs, frames);
    if (d < 0) {
      std::lock_guard<std::mutex> lock(p.mutex);
      ++p.torn;
      continue;
    }
    if (d == 0) continue;  // idle thread: nothing to attribute
    key.clear();
    {
      std::lock_guard<std::mutex> lock(fs->name_mutex);
      key = fs->name;
    }
    for (int i = 0; i < d; ++i) {
      key += ';';
      frames[i][kMaxFrame - 1] = '\0';
      key += frames[i];
    }
    std::lock_guard<std::mutex> lock(p.mutex);
    ++p.counts[key];
    ++p.samples;
  }
}

void ticker_loop(ProfState& p, int hz) {
  profile_set_thread_name("profiler");
  const auto period = std::chrono::nanoseconds(1000000000LL / hz);
  auto next = std::chrono::steady_clock::now() + period;
  while (p.run.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_until(next);
    next += period;
    if (!p.run.load(std::memory_order_relaxed)) break;
    sample_once(p);
    // If sampling fell behind (machine load), skip missed ticks instead of
    // bursting: the folded counts stay proportional to wall time.
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + period;
  }
}

}  // namespace

namespace detail {

void push_frame(std::string_view name) {
  FrameStack& fs = local_stack();
  const std::int32_t d = fs.depth.load(std::memory_order_relaxed);
  if (d >= static_cast<std::int32_t>(kMaxDepth)) {
    // Over-deep stack: keep the pop balanced but drop the frame bytes.
    fs.depth.store(d + 1, std::memory_order_relaxed);
    return;
  }
  fs.seq.fetch_add(1, std::memory_order_acq_rel);  // odd: frames mutating
  const std::size_t len = std::min(name.size(), kMaxFrame - 1);
  std::memcpy(fs.frames[d], name.data(), len);
  fs.frames[d][len] = '\0';
  fs.depth.store(d + 1, std::memory_order_release);
  fs.seq.fetch_add(1, std::memory_order_release);  // even: stable again
}

void pop_frame() noexcept {
  // Shrinking never invalidates concurrently copied bytes (frames below
  // the old depth are untouched until the next push, which bumps seq), so
  // no seqlock round trip is needed here.
  FrameStack& fs = local_stack();
  fs.depth.fetch_sub(1, std::memory_order_release);
}

}  // namespace detail

void profile_set_thread_name(std::string_view name) {
  FrameStack& fs = local_stack();
  std::lock_guard<std::mutex> lock(fs.name_mutex);
  fs.name.assign(name);
}

bool Profiler::start(int hz) {
  if (hz <= 0 || hz > kMaxHz) return false;
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  if (p.ticker.joinable()) return false;
  p.hz = hz;
  p.run.store(true, std::memory_order_relaxed);
  detail::g_span_mask.fetch_or(detail::kSpanProfileBit, std::memory_order_relaxed);
  p.ticker = std::thread([&p, hz] { ticker_loop(p, hz); });
  return true;
}

void Profiler::stop() {
  ProfState& p = prof();
  std::thread ticker;
  {
    std::lock_guard<std::mutex> lock(p.mutex);
    if (!p.ticker.joinable()) return;
    detail::g_span_mask.fetch_and(~detail::kSpanProfileBit,
                                  std::memory_order_relaxed);
    p.run.store(false, std::memory_order_relaxed);
    ticker = std::move(p.ticker);
  }
  ticker.join();  // outside the lock: the ticker takes p.mutex per sample
}

void Profiler::clear() {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  p.counts.clear();
  p.samples = 0;
  p.torn = 0;
}

bool Profiler::running() noexcept {
  return profile_enabled();
}

int Profiler::hz() noexcept {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.hz;
}

std::uint64_t Profiler::total_samples() {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.samples;
}

std::uint64_t Profiler::torn_samples() {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  return p.torn;
}

std::uint64_t Profiler::approx_bytes() {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  std::uint64_t bytes = 0;
  for (const auto& [stack, count] : p.counts) {
    // One map node (two pointers of red-black overhead is close enough) plus
    // the key's heap storage when it outgrew the SSO buffer.
    bytes += sizeof(std::pair<const std::string, std::uint64_t>) + 3 * sizeof(void*);
    if (stack.capacity() > sizeof(std::string)) bytes += stack.capacity();
    (void)count;
  }
  return bytes;
}

std::vector<FoldedEntry> Profiler::snapshot() {
  ProfState& p = prof();
  std::lock_guard<std::mutex> lock(p.mutex);
  std::vector<FoldedEntry> out;
  out.reserve(p.counts.size());
  for (const auto& [stack, count] : p.counts) out.push_back({stack, count});
  return out;  // std::map iteration is already stack-sorted
}

void Profiler::write_folded(std::ostream& os) {
  for (const FoldedEntry& e : snapshot()) {
    os << e.stack << ' ' << e.count << '\n';
  }
}

std::vector<FoldedEntry> folded_delta(const std::vector<FoldedEntry>& before,
                                      const std::vector<FoldedEntry>& now,
                                      std::size_t limit) {
  std::map<std::string, std::uint64_t> base;
  for (const FoldedEntry& e : before) base[e.stack] = e.count;
  std::vector<FoldedEntry> delta;
  for (const FoldedEntry& e : now) {
    const auto it = base.find(e.stack);
    const std::uint64_t prev = it == base.end() ? 0 : it->second;
    if (e.count > prev) delta.push_back({e.stack, e.count - prev});
  }
  std::sort(delta.begin(), delta.end(), [](const FoldedEntry& a, const FoldedEntry& b) {
    return a.count != b.count ? a.count > b.count : a.stack < b.stack;
  });
  if (delta.size() > limit) delta.resize(limit);
  return delta;
}

}  // namespace nw::obs
