// Per-subsystem memory accounting: named byte accounts, a tracking STL
// allocator, and an instrumented bump arena.
//
// The observability stack answers "where does time go" down to span level;
// this header makes it answer "where does memory go" with the same rigor.
// Every subsystem that owns a scale-proportional structure charges a named
// account — either for real (its containers allocate through TrackedAlloc /
// ArenaAllocator, so current/peak/allocs/frees are exact) or through a
// size-accounting hook (the owner charges an estimate via ScopedMemCharge /
// delta charges where swapping the allocator would be invasive). The
// account table is the "memory" section of the schema-v5 stats JSON, the
// #memory dashboard panel, the CLI --mem-report table, and the per-account
// peak-bytes metrics the perf baseline gates on.
//
// Overhead contract: accounting is on by default and costs a few relaxed
// atomic operations per allocation on tracked containers (the peak update
// is a short CAS loop, contended only while the high-water mark moves).
// When disabled (MemTracker::set_enabled(false)) every charge site reduces
// to one relaxed load and a branch — the same budget as a disarmed trace
// span. Toggling while tracked containers are live skews current/alloc
// counts (charges and releases stop pairing up); the intended use is a
// process-lifetime switch, and the analysis Result is byte-identical with
// tracking on or off either way (property-tested in test_memtrack.cpp).
//
// Thread-safety: accounts are lock-free atomics, safe to charge from any
// thread (executor workers charge KernelBuffers slabs concurrently). The
// Arena itself is single-threaded like the build phases that use it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <type_traits>
#include <vector>

namespace nw::obs {

/// The fixed account table, one entry per byte-owning subsystem. Fixed at
/// compile time so charge sites index an array instead of hashing names,
/// and so every stats export lists the same accounts in the same order.
enum class MemAccountId : unsigned {
  kDesign = 0,       ///< netlist: nets/instances/pins + name indexes
  kParasitics,       ///< RC networks + coupling caps + incidence lists
  kSta,              ///< sta::Result: pin/net timing, endpoints
  kAnalysisContext,  ///< adjacency rows (arena), levels, windows, endpoints
  kKernelBuffers,    ///< flat CSR + scenario slabs (tracked allocator)
  kResult,           ///< noise::Result + provenance held by the caller
  kSessionCache,     ///< session LRU: retained Results + STA per slot
  kUndoJournal,      ///< session undo journal entries + captured state
  kTraceBuffers,     ///< tracer event buffers + profiler folded aggregate
  kDaemonQueues,     ///< daemon per-connection request-line queues
  kCount,
};

inline constexpr std::size_t kMemAccountCount =
    static_cast<std::size_t>(MemAccountId::kCount);

/// Stable snake_case account name ("design", "kernel_buffers", ...) — the
/// JSON key, the mem_<name>_peak_bytes metric stem, and the table label.
[[nodiscard]] const char* to_string(MemAccountId id) noexcept;

namespace detail {
extern std::atomic<bool> g_mem_enabled;
}

/// The charge sites' fast guard: one relaxed load, inlined.
[[nodiscard]] inline bool memtrack_enabled() noexcept {
  return detail::g_mem_enabled.load(std::memory_order_relaxed);
}

/// One account: live bytes, high-water mark, and charge/release event
/// counts. All operations are lock-free; peak uses the same CAS-maximum
/// idiom as Histogram's min/max tracking.
class MemAccount {
 public:
  void charge(std::size_t bytes) noexcept {
    if (!memtrack_enabled()) return;
    const auto delta = static_cast<std::int64_t>(bytes);
    const std::int64_t now =
        current_.fetch_add(delta, std::memory_order_relaxed) + delta;
    allocs_.fetch_add(1, std::memory_order_relaxed);
    update_peak(now);
  }

  void release(std::size_t bytes) noexcept {
    if (!memtrack_enabled()) return;
    current_.fetch_sub(static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
    frees_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sampled owners (trace buffers: the tracer is global, so the tracker
  /// samples it at snapshot time) set an absolute level; the delta is
  /// applied as one charge or release so peak stays the true high-water
  /// mark. Last-writer-wins under concurrent adjusts — fine for the
  /// single logical owner each sampled account has.
  void adjust_to(std::size_t bytes) noexcept {
    if (!memtrack_enabled()) return;
    const auto target = static_cast<std::int64_t>(bytes);
    const std::int64_t cur = current_.load(std::memory_order_relaxed);
    if (target > cur) {
      charge(static_cast<std::size_t>(target - cur));
    } else if (target < cur) {
      release(static_cast<std::size_t>(cur - target));
    }
  }

  /// Live bytes, clamped at 0 (a release outrunning its charge across an
  /// enable toggle can dip the raw counter negative).
  [[nodiscard]] std::uint64_t current() const noexcept {
    const std::int64_t v = current_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  }
  [[nodiscard]] std::uint64_t peak() const noexcept {
    const std::int64_t p = peak_.load(std::memory_order_relaxed);
    const std::int64_t c = current_.load(std::memory_order_relaxed);
    const std::int64_t v = p > c ? p : c;
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  }
  [[nodiscard]] std::uint64_t allocs() const noexcept {
    return allocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frees() const noexcept {
    return frees_.load(std::memory_order_relaxed);
  }

  /// Tests only: forget everything, including the high-water mark.
  void reset() noexcept {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
    frees_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_peak(std::int64_t now) noexcept {
    std::int64_t seen = peak_.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak_.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
};

/// One account's values at snapshot time (plain data for renderers).
struct MemAccountSample {
  const char* name = "";
  std::uint64_t current_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
};

/// Process-wide account table (static-only interface, like Tracer).
class MemTracker {
 public:
  MemTracker() = delete;

  /// Master switch; on by default. Off reduces every charge site to a
  /// relaxed load + branch (see the header contract on toggling).
  static void set_enabled(bool on) noexcept;
  [[nodiscard]] static bool enabled() noexcept { return memtrack_enabled(); }

  [[nodiscard]] static MemAccount& account(MemAccountId id) noexcept;

  /// All accounts in enum order. Refreshes the sampled accounts (trace
  /// buffers from the tracer/profiler) first, so exports are current.
  [[nodiscard]] static std::vector<MemAccountSample> snapshot();

  /// Sum of account currents / peaks. The peak total is a sum of
  /// per-account high-water marks — an upper bound, not a simultaneous
  /// process maximum.
  [[nodiscard]] static std::uint64_t total_current() noexcept;
  [[nodiscard]] static std::uint64_t total_peak() noexcept;

  /// Tests only: zero every account (high-water marks included).
  static void reset() noexcept;
};

/// The stats-JSON "memory" section (schema v5): {"enabled":...,"accounts":
/// {name:{current_bytes,peak_bytes,allocs,frees},...},"total_current_bytes"
/// :...,"total_peak_bytes":...}. Every account appears, charged or not.
void write_memory_json(std::ostream& os);

/// The --mem-report table: one row per account plus RSS, aligned columns.
void write_memory_table(std::ostream& os);

/// Size-accounting hook for owners where swapping the allocator is
/// invasive: charges an estimated byte count on construction, releases the
/// same count on destruction — so current returns to zero at teardown by
/// construction. Movable so owners can store it next to the owned object.
class ScopedMemCharge {
 public:
  ScopedMemCharge() = default;
  ScopedMemCharge(MemAccountId id, std::size_t bytes)
      : account_(&MemTracker::account(id)), bytes_(bytes) {
    account_->charge(bytes_);
  }
  ~ScopedMemCharge() { reset(); }

  ScopedMemCharge(ScopedMemCharge&& other) noexcept
      : account_(other.account_), bytes_(other.bytes_) {
    other.account_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&& other) noexcept {
    if (this != &other) {
      reset();
      account_ = other.account_;
      bytes_ = other.bytes_;
      other.account_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;

  /// Release now (idempotent).
  void reset() noexcept {
    if (account_ != nullptr) account_->release(bytes_);
    account_ = nullptr;
    bytes_ = 0;
  }

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

 private:
  MemAccount* account_ = nullptr;
  std::size_t bytes_ = 0;
};

/// STL-compatible tracking allocator bound to an account at compile time.
/// Stateless (all instances equal), so containers using it stay as cheap to
/// move/swap as with std::allocator; each allocation charges exactly
/// n * sizeof(T) and the matching deallocation releases it.
template <class T, MemAccountId Id>
struct TrackedAlloc {
  using value_type = T;
  using is_always_equal = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;

  TrackedAlloc() = default;
  template <class U>
  TrackedAlloc(const TrackedAlloc<U, Id>&) noexcept {}  // NOLINT(runtime/explicit)

  template <class U>
  struct rebind {
    using other = TrackedAlloc<U, Id>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    T* p = std::allocator<T>{}.allocate(n);
    MemTracker::account(Id).charge(n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    MemTracker::account(Id).release(n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  friend bool operator==(const TrackedAlloc&, const TrackedAlloc&) noexcept {
    return true;
  }
};

/// Instrumented bump arena: grabs account-charged blocks from the heap and
/// hands out aligned slices with a pointer bump. Deallocation is a no-op —
/// memory comes back wholesale at reset()/destruction — which fits
/// build-once-free-together structures (the AnalysisContext adjacency
/// rows; ROADMAP item 2's sharded per-region state). NOT thread-safe: one
/// arena per building thread, like the serial build phases that use it.
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(MemAccountId account, std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned slice of `bytes`; a request larger than the block size gets a
  /// dedicated block. Alignment must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::size_t align = alignof(std::max_align_t));

  /// Typed convenience: uninitialized storage for `n` objects of T.
  template <class T>
  [[nodiscard]] T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Drop every block and release the account charge.
  void reset() noexcept;

  [[nodiscard]] std::size_t block_count() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] MemAccountId account() const noexcept { return account_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t min_bytes);

  MemAccountId account_;
  std::size_t block_bytes_;
  std::size_t capacity_ = 0;  ///< summed block capacity (the charged bytes)
  std::size_t used_ = 0;      ///< summed bump offsets
  std::vector<Block> blocks_;
};

/// STL adapter over Arena for containers whose elements live exactly as
/// long as the arena (the AnalysisContext's per-victim adjacency rows).
/// With a null arena (default-constructed containers, tests building
/// contexts by hand) it falls back to the heap, still charging `Id` — so
/// accounting stays exact either way. deallocate() through an arena is a
/// no-op: reallocation garbage is reclaimed at arena reset, which is why
/// rows reserve their exact final size before filling.
template <class T, MemAccountId Id>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U, Id>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  template <class U>
  struct rebind {
    using other = ArenaAllocator<U, Id>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return arena_->allocate_array<T>(n);  // blocks charge on growth
    }
    T* p = std::allocator<T>{}.allocate(n);
    MemTracker::account(Id).charge(n * sizeof(T));
    return p;
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) return;  // bump arena: reclaimed wholesale
    MemTracker::account(Id).release(n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) noexcept {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace nw::obs
