// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// with a machine-readable JSON export (the CLI's --stats-json artifact).
//
// The analyzer owns one Registry per run, updates it from the serial fold
// sections of each pipeline stage (so deterministic metrics are
// bit-identical across thread counts — the same guarantee the Result
// carries), and snapshots it into the Result. Wall-time metrics are the
// only nondeterministic ones; they are registered with
// `deterministic = false` and land in a separate "timing" section of the
// JSON, so consumers (CI, the bench trajectory) can diff the rest exactly.
//
// Thread-safety: every metric type is safe for concurrent updates (atomic
// counters/buckets); registration and snapshotting take the registry lock.
// Determinism of a metric is a property of *where* it is updated from —
// serial code in index order — not of the type.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nw::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (phase wall times, resolved thread count).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Value-type histogram contents (also the snapshot representation).
/// `bounds` are ascending inclusive upper bounds; an implicit overflow
/// bucket makes counts.size() == bounds.size() + 1.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram. observe() is wait-free per bucket.
class Histogram {
 public:
  /// `bounds` must be strictly ascending (checked).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  [[nodiscard]] HistogramData data() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One exported metric value (plain data; what Registry::snapshot yields).
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  std::string unit;  ///< "", "s", "V", ...
  Kind kind = Kind::kCounter;
  bool deterministic = true;  ///< false = wall-time / scheduling dependent

  std::uint64_t count = 0;  ///< counter value
  double value = 0.0;       ///< gauge value
  HistogramData hist;       ///< histogram contents
};

/// A run's exported metrics, in registration order.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// nullptr when absent.
  [[nodiscard]] const MetricSample* find(std::string_view name) const noexcept;
};

/// Names metrics and hands out stable references. References stay valid
/// for the registry's lifetime. Re-registering a name returns the existing
/// metric (kind mismatch throws).
class Registry {
 public:
  Registry();
  ~Registry();  // out of line: Entry is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   bool deterministic = true);
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view unit = "",
               bool deterministic = true);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, std::string_view unit = "",
                       bool deterministic = true);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view help,
                        std::string_view unit, MetricSample::Kind kind,
                        bool deterministic, std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Identity of one run, embedded in the stats JSON so trajectories can be
/// compared across PRs and machines.
struct RunMeta {
  std::string design;          ///< design name
  std::string mode;            ///< analysis mode string
  std::string model;           ///< glitch model string
  std::string options_digest;  ///< stable hash of every analysis option
  std::string build;           ///< git describe (or "unknown")
  int threads = 1;             ///< resolved executor parallelism
  int iterations = 1;          ///< analysis passes run
};

/// The compile-time build id (git describe at configure time).
[[nodiscard]] const char* build_version() noexcept;

/// Machine-readable run report. Layout (schema_version 1):
///   {"meta":{...},
///    "counters":{name:value,...},            // deterministic only
///    "gauges":{name:value,...},              // deterministic only
///    "histograms":{name:{unit,bounds,counts,count,sum},...},
///    "timing":{name:<gauge value or histogram object>,...}}  // nondeterministic
void write_stats_json(std::ostream& os, const RunMeta& meta,
                      const MetricsSnapshot& snap);

}  // namespace nw::obs
