// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// with a machine-readable JSON export (the CLI's --stats-json artifact).
//
// The analyzer owns one Registry per run, updates it from the serial fold
// sections of each pipeline stage (so deterministic metrics are
// bit-identical across thread counts — the same guarantee the Result
// carries), and snapshots it into the Result. Wall-time metrics are the
// only nondeterministic ones; they are registered with
// `deterministic = false` and land in a separate "timing" section of the
// JSON, so consumers (CI, the bench trajectory) can diff the rest exactly.
//
// Thread-safety: every metric type is safe for concurrent updates (atomic
// counters/buckets); registration and snapshotting take the registry lock.
// Determinism of a metric is a property of *where* it is updated from —
// serial code in index order — not of the type.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nw::obs {

/// Version of the --stats-json layout written by write_stats_json. v2 added
/// the "resources" section, histogram min/max tracking, and the
/// p50/p95/p99 quantile summaries. v3 adds the "executor" section
/// (per-worker busy/idle, per-region utilization and imbalance, work
/// attribution — rendered by noise::executor_stats_json and passed through
/// `extra`). v4 adds the "timeseries" section (bounded ring of periodic
/// live-telemetry samples, rendered by obs::TimeSeriesSnapshot::json and
/// passed through `extra`), a "conn" field on slowlog entries, and the
/// daemon's aggregated request_ms_* latency histograms. v5 adds the
/// "memory" section (per-account heap accounting from obs::MemTracker —
/// current/peak bytes and alloc/free counts per named subsystem account,
/// rendered directly by write_stats_json so every stats writer carries
/// it). Clients feature-detect it through the `stats_schema` field of
/// the server's `hello` response.
inline constexpr int kStatsSchemaVersion = 5;

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (phase wall times, resolved thread count).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Value-type histogram contents (also the snapshot representation).
/// `bounds` are ascending inclusive upper bounds; an implicit overflow
/// bucket makes counts.size() == bounds.size() + 1. `min`/`max` are the
/// exact extremes of every observed value (0 while count == 0).
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Quantile estimate from bucketed data: linear interpolation inside the
/// bucket holding the q-th observation, with the first bucket's lower edge
/// and the overflow bucket's upper edge pinned to the exact min/max. The
/// result is clamped to [min, max]; an empty histogram yields 0. `q` is
/// clamped to [0, 1].
[[nodiscard]] double histogram_quantile(const HistogramData& h, double q) noexcept;

/// Fixed-bucket histogram. observe() is wait-free per bucket; min/max use
/// a short CAS loop (contended only while the running extreme moves).
class Histogram {
 public:
  /// `bounds` must be strictly ascending (checked).
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  [[nodiscard]] HistogramData data() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only while count_ > 0
  std::atomic<double> max_{0.0};
};

/// One exported metric value (plain data; what Registry::snapshot yields).
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  std::string name;
  std::string help;
  std::string unit;  ///< "", "s", "V", ...
  Kind kind = Kind::kCounter;
  bool deterministic = true;  ///< false = wall-time / scheduling dependent
  bool resource = false;      ///< memory/RSS accounting ("resources" section)

  std::uint64_t count = 0;  ///< counter value
  double value = 0.0;       ///< gauge value
  HistogramData hist;       ///< histogram contents
};

/// A run's exported metrics, in registration order.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// nullptr when absent.
  [[nodiscard]] const MetricSample* find(std::string_view name) const noexcept;
};

/// Names metrics and hands out stable references. References stay valid
/// for the registry's lifetime. Re-registering a name returns the existing
/// metric (kind mismatch throws).
class Registry {
 public:
  Registry();
  ~Registry();  // out of line: Entry is incomplete here
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help,
                   bool deterministic = true, bool resource = false);
  Gauge& gauge(std::string_view name, std::string_view help, std::string_view unit = "",
               bool deterministic = true, bool resource = false);
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, std::string_view unit = "",
                       bool deterministic = true, bool resource = false);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry;
  Entry& find_or_create(std::string_view name, std::string_view help,
                        std::string_view unit, MetricSample::Kind kind,
                        bool deterministic, bool resource, std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Identity of one run, embedded in the stats JSON so trajectories can be
/// compared across PRs and machines.
struct RunMeta {
  std::string design;          ///< design name
  std::string mode;            ///< analysis mode string
  std::string model;           ///< glitch model string
  std::string options_digest;  ///< stable hash of every analysis option
  std::string build;           ///< git describe (or "unknown")
  std::string simd;            ///< resolved kernel path ("scalar"/"vector")
  int threads = 1;             ///< resolved executor parallelism
  int iterations = 1;          ///< analysis passes run
};

/// The compile-time build id (git describe at configure time).
[[nodiscard]] const char* build_version() noexcept;

/// The full configure-time git commit SHA ("unknown" outside a checkout).
[[nodiscard]] const char* git_sha() noexcept;

/// "Release" or "Debug" (from NDEBUG), for client feature reports and the
/// bench run records — a Debug number must never land in a perf baseline.
[[nodiscard]] const char* build_type() noexcept;

/// Machine-readable run report. Layout (kStatsSchemaVersion = 3):
///   {"meta":{...},
///    "counters":{name:value,...},            // deterministic only
///    "gauges":{name:value,...},              // deterministic only
///    "histograms":{name:{unit,bounds,counts,count,sum,min,max,
///                        p50,p95,p99},...},
///    "resources":{name:value,...},           // resource-flagged (RSS, bytes)
///    "timing":{name:<gauge value or histogram object>,...},  // nondeterministic
///    <extra sections, pre-rendered — analysis runs append "executor">}
/// `extra` appends caller-rendered sections, e.g. the server's slow log:
/// each pair is (section name, valid JSON value).
void write_stats_json(
    std::ostream& os, const RunMeta& meta, const MetricsSnapshot& snap,
    std::span<const std::pair<std::string, std::string>> extra = {});

}  // namespace nw::obs
