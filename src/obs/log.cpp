#include "obs/log.hpp"

#include <iostream>
#include <mutex>

namespace nw::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace detail

namespace {
std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;  ///< nullptr = std::cerr
}  // namespace

const char* to_string(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

void set_log_level(LogLevel l) noexcept {
  detail::g_log_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::ostream* os) noexcept {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = os;
}

namespace detail {

LogLine::~LogLine() {
  if (suppressed_ < 0) return;
  std::string line = "[nw:";
  line += to_string(level_);
  line += "] ";
  line += os_.str();
  if (suppressed_ > 0) {
    line += " (";
    line += std::to_string(suppressed_);
    line += " similar suppressed)";
  }
  line += "\n";
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& os = g_sink ? *g_sink : std::cerr;
  os << line;
  os.flush();
}

}  // namespace detail
}  // namespace nw::obs
