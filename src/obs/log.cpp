#include "obs/log.hpp"

#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>
#include <string>

namespace nw::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace detail

namespace {
std::mutex g_sink_mutex;
std::ostream* g_sink = nullptr;  ///< nullptr = std::cerr

// Per-thread origin labels; plain thread_locals, read only by the owning
// thread when it assembles a line.
thread_local std::string t_thread_label;
thread_local std::uint64_t t_conn_id = 0;

/// "[HH:MM:SS.mmm] " from the wall clock (local time, same as an operator's
/// terminal); millisecond resolution is enough to line lines up with the
/// trace's microsecond spans.
void append_wall_clock(std::string& out) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  const std::time_t secs = ts.tv_sec;
  localtime_r(&secs, &tm);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "[%02d:%02d:%02d.%03ld] ", tm.tm_hour,
                tm.tm_min, tm.tm_sec, ts.tv_nsec / 1000000);
  out += buf;
}
}  // namespace

const char* to_string(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "?";
}

void set_log_level(LogLevel l) noexcept {
  detail::g_log_level.store(static_cast<int>(l), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}

void set_log_sink(std::ostream* os) noexcept {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = os;
}

void set_log_thread_name(std::string_view name) {
  t_thread_label.assign(name);
}

void set_log_connection(std::uint64_t id) noexcept { t_conn_id = id; }

namespace detail {

LogLine::~LogLine() {
  if (suppressed_ < 0) return;
  std::string line;
  append_wall_clock(line);
  line += "[nw:";
  line += to_string(level_);
  line += "]";
  if (!t_thread_label.empty()) {
    line += " [";
    line += t_thread_label;
    line += "]";
  }
  if (t_conn_id != 0) {
    line += " [conn ";
    line += std::to_string(t_conn_id);
    line += "]";
  }
  line += " ";
  line += os_.str();
  if (suppressed_ > 0) {
    line += " (";
    line += std::to_string(suppressed_);
    line += " similar suppressed)";
  }
  line += "\n";
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::ostream& os = g_sink ? *g_sink : std::cerr;
  os << line;
  os.flush();
}

}  // namespace detail
}  // namespace nw::obs
