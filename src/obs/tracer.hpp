// Span-based tracing with Chrome trace-event (chrome://tracing / Perfetto)
// JSON output.
//
// A Span is an RAII scope marker: construction stamps a start time,
// destruction appends one complete event to a thread-local buffer. Buffers
// are registered globally (and outlive their threads), so one flush after a
// run collects every thread's spans into per-thread tracks — which is what
// makes load imbalance inside parallel regions directly visible.
//
// Overhead contract: tracing is off by default and every span site guards
// itself with `trace_enabled()` — a single inlined relaxed atomic load — so
// the disabled cost is a test-and-branch per site (DESIGN.md §4.6 budgets
// the whole subsystem at <= 2% when disabled). When enabled, a span costs
// two steady_clock reads plus one buffered append under an uncontended
// per-thread mutex.
//
// Threading contract: spans may be opened/closed on any thread; flushing
// (`events()` / `write_chrome()` / `clear()`) is safe at any time but is
// meant to run between analyses, when no spans are in flight.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace nw::obs {

/// Event category (the "cat" field of the trace-event JSON).
enum class SpanKind : std::uint8_t {
  kPhase,      ///< analyzer pipeline stage (estimate/propagate/endpoints)
  kLevel,      ///< one propagation level inside the propagate stage
  kIteration,  ///< one refinement pass of the analysis loop
  kTask,       ///< one executor chunk (per-thread work item)
  kRequest,    ///< one protocol command handled by the session server
};

[[nodiscard]] const char* to_string(SpanKind k) noexcept;

/// One completed span, in tracer-relative nanoseconds.
struct TraceEvent {
  std::string name;
  SpanKind kind = SpanKind::kPhase;
  int tid = 0;  ///< tracer-assigned dense thread id (0 = first recording thread)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
};

/// One counter sample (Chrome trace phase "C"): a named scalar at a point
/// in time. Rendered as a track alongside the span tracks, so queue depth
/// and active-analysis counts line up with the requests that caused them.
struct CounterEvent {
  std::string name;
  double value = 0.0;
  std::int64_t ts_ns = 0;
};

namespace detail {
/// One consumer-enable mask shared by every span site: bit 0 = the tracer
/// (record completed events), bit 1 = the sampling profiler (maintain the
/// per-thread active-frame stack, obs/profile.hpp). A single relaxed load
/// keeps the disabled span cost at one test-and-branch regardless of how
/// many consumers exist.
inline constexpr unsigned kSpanTraceBit = 1u;
inline constexpr unsigned kSpanProfileBit = 2u;
extern std::atomic<unsigned> g_span_mask;
[[nodiscard]] std::int64_t now_ns() noexcept;
void record(TraceEvent&& ev);
// Active-frame stack maintenance, defined in profile.cpp.
void push_frame(std::string_view name);
void pop_frame() noexcept;
}  // namespace detail

/// The span sites' fast guard: one relaxed load, inlined.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return (detail::g_span_mask.load(std::memory_order_relaxed) &
          detail::kSpanTraceBit) != 0;
}

/// True while the sampling profiler (obs/profile.hpp) is running.
[[nodiscard]] inline bool profile_enabled() noexcept {
  return (detail::g_span_mask.load(std::memory_order_relaxed) &
          detail::kSpanProfileBit) != 0;
}

/// True when any span consumer (tracer or profiler) is active — the guard
/// for span sites with dynamically built names ("level 3", "iteration 2"),
/// which skip even the name formatting when nobody is listening.
[[nodiscard]] inline bool spans_active() noexcept {
  return detail::g_span_mask.load(std::memory_order_relaxed) != 0;
}

/// Process-wide tracer control (static-only interface).
class Tracer {
 public:
  Tracer() = delete;

  static void enable();
  static void disable();
  /// Drop every recorded event (thread registrations are kept).
  static void clear();

  /// Snapshot of all recorded events, ordered by (tid, start).
  [[nodiscard]] static std::vector<TraceEvent> events();

  /// Record one counter sample at "now". No-op while tracing is disabled
  /// (same guard as spans). Safe from any thread; the expected caller is
  /// a low-rate sampler (a few Hz), so the shared store is one mutex.
  static void counter(std::string_view name, double value);

  /// Snapshot of all recorded counter samples, in record order.
  [[nodiscard]] static std::vector<CounterEvent> counters();

  /// Chrome trace-event JSON: {"traceEvents":[...]} with complete ("X")
  /// events in microseconds plus thread_name metadata — loads directly in
  /// chrome://tracing and Perfetto.
  static void write_chrome(std::ostream& os);

  /// Label the calling thread's track (e.g. "worker 3").
  static void set_thread_name(std::string name);

  /// Approximate bytes held by the recorded-event buffers across every
  /// thread (capacity-based, so it reflects actual allocations). Feeds the
  /// `trace_buffer_bytes` resource gauge.
  [[nodiscard]] static std::size_t buffered_bytes();
};

/// RAII span. Does nothing (beyond the enabled check) when both the tracer
/// and the profiler are off. When the profiler is on, construction pushes
/// the span name onto the calling thread's active-frame stack (popped at
/// destruction) so the sampling ticker can attribute wall time to it.
class Span {
 public:
  explicit Span(std::string_view name, SpanKind kind = SpanKind::kPhase) {
    if (spans_active()) arm(name, kind);
  }
  ~Span() {
    if (start_ns_ >= 0) finish();
    if (pushed_) detail::pop_frame();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void arm(std::string_view name, SpanKind kind);
  void finish();

  std::string name_;
  SpanKind kind_ = SpanKind::kPhase;
  std::int64_t start_ns_ = -1;  ///< -1 = not armed (tracing was off)
  bool pushed_ = false;         ///< frame pushed for the profiler at arm time
};

/// Minimal JSON string escaping (shared by the trace and stats writers).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace nw::obs
