// Process resource sampling for the stats JSON "resources" section.
//
// Linux primary path reads /proc/self/status (VmRSS / VmHWM, kB granularity);
// the portable fallback is getrusage(RUSAGE_SELF).ru_maxrss, which only
// yields the peak. Values are best-effort: 0 means "could not be sampled",
// and callers export them through resource-flagged gauges so they never
// land in a deterministic stats section.
#pragma once

#include <cstddef>

namespace nw::obs {

/// One sample of the process memory footprint, in bytes. Fields are 0 when
/// the platform could not provide them.
struct ResourceSample {
  std::size_t rss_bytes = 0;       ///< current resident set size
  std::size_t peak_rss_bytes = 0;  ///< high-water resident set size
};

/// Sample the current process. Never throws; unobtainable fields stay 0.
[[nodiscard]] ResourceSample sample_resources() noexcept;

}  // namespace nw::obs
