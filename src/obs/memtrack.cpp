#include "obs/memtrack.hpp"

#include <array>
#include <cstdio>
#include <ostream>

#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/tracer.hpp"

namespace nw::obs {

namespace detail {
std::atomic<bool> g_mem_enabled{true};
}

namespace {

/// The process-wide account table. Function-local static so charge sites in
/// other statics (thread-local scratch, early CLI setup) never race
/// initialization order.
std::array<MemAccount, kMemAccountCount>& accounts() noexcept {
  static std::array<MemAccount, kMemAccountCount> table;
  return table;
}

/// Pull the sampled accounts up to date: the tracer and profiler are
/// process-global consumers with no single owner to charge deltas, so the
/// tracker samples their capacity-based footprints at snapshot time.
void refresh_sampled() noexcept {
  accounts()[static_cast<std::size_t>(MemAccountId::kTraceBuffers)].adjust_to(
      Tracer::buffered_bytes() + Profiler::approx_bytes());
}

}  // namespace

const char* to_string(MemAccountId id) noexcept {
  switch (id) {
    case MemAccountId::kDesign: return "design";
    case MemAccountId::kParasitics: return "parasitics";
    case MemAccountId::kSta: return "sta";
    case MemAccountId::kAnalysisContext: return "analysis_context";
    case MemAccountId::kKernelBuffers: return "kernel_buffers";
    case MemAccountId::kResult: return "result";
    case MemAccountId::kSessionCache: return "session_cache";
    case MemAccountId::kUndoJournal: return "undo_journal";
    case MemAccountId::kTraceBuffers: return "trace_buffers";
    case MemAccountId::kDaemonQueues: return "daemon_queues";
    case MemAccountId::kCount: break;
  }
  return "?";
}

void MemTracker::set_enabled(bool on) noexcept {
  detail::g_mem_enabled.store(on, std::memory_order_relaxed);
}

MemAccount& MemTracker::account(MemAccountId id) noexcept {
  return accounts()[static_cast<std::size_t>(id)];
}

std::vector<MemAccountSample> MemTracker::snapshot() {
  refresh_sampled();
  std::vector<MemAccountSample> out;
  out.reserve(kMemAccountCount);
  for (std::size_t i = 0; i < kMemAccountCount; ++i) {
    const MemAccount& a = accounts()[i];
    MemAccountSample s;
    s.name = to_string(static_cast<MemAccountId>(i));
    s.current_bytes = a.current();
    s.peak_bytes = a.peak();
    s.allocs = a.allocs();
    s.frees = a.frees();
    out.push_back(s);
  }
  return out;
}

std::uint64_t MemTracker::total_current() noexcept {
  std::uint64_t total = 0;
  for (const MemAccount& a : accounts()) total += a.current();
  return total;
}

std::uint64_t MemTracker::total_peak() noexcept {
  std::uint64_t total = 0;
  for (const MemAccount& a : accounts()) total += a.peak();
  return total;
}

void MemTracker::reset() noexcept {
  for (MemAccount& a : accounts()) a.reset();
}

void write_memory_json(std::ostream& os) {
  const std::vector<MemAccountSample> snap = MemTracker::snapshot();
  os << "{\"enabled\":" << (MemTracker::enabled() ? "true" : "false")
     << ",\"accounts\":{";
  bool first = true;
  std::uint64_t total_current = 0;
  std::uint64_t total_peak = 0;
  for (const MemAccountSample& a : snap) {
    if (!first) os << ',';
    first = false;
    os << '"' << a.name << "\":{\"current_bytes\":" << a.current_bytes
       << ",\"peak_bytes\":" << a.peak_bytes << ",\"allocs\":" << a.allocs
       << ",\"frees\":" << a.frees << '}';
    total_current += a.current_bytes;
    total_peak += a.peak_bytes;
  }
  os << "},\"total_current_bytes\":" << total_current
     << ",\"total_peak_bytes\":" << total_peak << '}';
}

namespace {

/// "12.3 MB" style rendering for the human table (JSON stays in raw bytes).
void human_bytes(char* buf, std::size_t len, double v) {
  const char* unit = "B";
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0;
    unit = "GB";
  } else if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KB";
  }
  std::snprintf(buf, len, "%.1f %s", v, unit);
}

}  // namespace

void write_memory_table(std::ostream& os) {
  const std::vector<MemAccountSample> snap = MemTracker::snapshot();
  const ResourceSample rs = sample_resources();
  char line[160];
  char cur[32];
  char peak[32];
  os << "memory accounts ("
     << (MemTracker::enabled() ? "tracking on" : "tracking off") << ")\n";
  std::snprintf(line, sizeof line, "  %-18s %12s %12s %10s %10s\n", "account",
                "current", "peak", "allocs", "frees");
  os << line;
  std::uint64_t total_current = 0;
  std::uint64_t total_peak = 0;
  for (const MemAccountSample& a : snap) {
    human_bytes(cur, sizeof cur, static_cast<double>(a.current_bytes));
    human_bytes(peak, sizeof peak, static_cast<double>(a.peak_bytes));
    std::snprintf(line, sizeof line, "  %-18s %12s %12s %10llu %10llu\n", a.name,
                  cur, peak, static_cast<unsigned long long>(a.allocs),
                  static_cast<unsigned long long>(a.frees));
    os << line;
    total_current += a.current_bytes;
    total_peak += a.peak_bytes;
  }
  human_bytes(cur, sizeof cur, static_cast<double>(total_current));
  human_bytes(peak, sizeof peak, static_cast<double>(total_peak));
  std::snprintf(line, sizeof line, "  %-18s %12s %12s\n", "tracked total", cur,
                peak);
  os << line;
  human_bytes(cur, sizeof cur, static_cast<double>(rs.rss_bytes));
  human_bytes(peak, sizeof peak, static_cast<double>(rs.peak_rss_bytes));
  std::snprintf(line, sizeof line, "  %-18s %12s %12s\n", "process rss", cur,
                peak);
  os << line;
}

// ---- Arena ----------------------------------------------------------------

Arena::Arena(MemAccountId account, std::size_t block_bytes)
    : account_(account),
      block_bytes_(block_bytes > 0 ? block_bytes : kDefaultBlockBytes) {}

Arena::~Arena() { reset(); }

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  Block* b = blocks_.empty() ? nullptr : &blocks_.back();
  std::size_t offset = 0;
  if (b != nullptr) {
    offset = (b->used + align - 1) & ~(align - 1);
    if (offset + bytes > b->cap) b = nullptr;
  }
  if (b == nullptr) {
    // Over-aligned requests still land correctly: new[] storage is aligned
    // for max_align_t, and `align` beyond that is rejected by the kernels'
    // POD element types long before it could matter here.
    b = &grow(bytes + align);
    offset = (b->used + align - 1) & ~(align - 1);
  }
  used_ += (offset - b->used) + bytes;
  b->used = offset + bytes;
  return b->data.get() + offset;
}

Arena::Block& Arena::grow(std::size_t min_bytes) {
  Block b;
  b.cap = min_bytes > block_bytes_ ? min_bytes : block_bytes_;
  b.data = std::make_unique<std::byte[]>(b.cap);
  MemTracker::account(account_).charge(b.cap);
  capacity_ += b.cap;
  blocks_.push_back(std::move(b));
  return blocks_.back();
}

void Arena::reset() noexcept {
  for (const Block& b : blocks_) {
    MemTracker::account(account_).release(b.cap);
  }
  blocks_.clear();
  capacity_ = 0;
  used_ = 0;
}

}  // namespace nw::obs
