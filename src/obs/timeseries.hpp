// Live telemetry: a bounded ring of periodic metric samples, a rotating
// windowed quantile estimator, and the sampler thread that feeds them.
//
// The stats-JSON artifact (metrics.hpp) is a post-mortem: one snapshot at
// exit. The daemon needs the *trajectory* — queue depth, active analyses,
// shed counts, RSS — while it is serving, with bounded memory and without
// perturbing the analysis it observes. TimeSeriesRing keeps the last
// `capacity` samples of a fixed series list; Sampler is a ticker thread
// (the same shape as the profiler's, obs/profile.hpp) that calls a
// read-only sample function at a fixed interval and records the result.
//
// Determinism: sampling only ever *reads* gauges, counters, and /proc —
// it never touches analysis state. Analysis results are byte-identical
// with the sampler on or off at any interval (property-tested in
// tests/test_timeseries.cpp), the same invariant the profiler keeps.
//
// RotatingQuantile answers "p95 analyze latency over the last ~N seconds"
// (as opposed to since-process-start, which a plain Histogram gives): W
// fixed-bucket sub-windows, observe() lands in the current one, rotate()
// (called from the sampler tick) advances to and clears the oldest, and
// quantile() merges all live sub-windows through histogram_quantile.
//
// Thread-safety: every class here takes a short internal mutex; holders
// never block on I/O or on each other ("lock-light", not lock-free — the
// sample rate is a few Hz, contention is negligible).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace nw::obs {

/// One periodic sample: milliseconds since the ring's epoch (sampler
/// start) plus one value per series, in series order.
struct TimeSample {
  double t_ms = 0.0;
  std::vector<double> v;
};

/// A copy of the ring for export. `total` counts every sample ever
/// recorded (so consumers can detect wraparound: total > samples.size()).
struct TimeSeriesSnapshot {
  int interval_ms = 0;
  std::size_t capacity = 0;
  std::uint64_t total = 0;
  std::vector<std::string> series;
  std::vector<TimeSample> samples;  ///< oldest first, t_ms nondecreasing

  [[nodiscard]] bool empty() const noexcept { return samples.empty(); }

  /// The "timeseries" stats-JSON section (schema v4):
  ///   {"interval_ms":N,"capacity":N,"total":N,
  ///    "series":["queue_depth",...],
  ///    "samples":[{"t_ms":12.5,"v":[0,3,...]},...]}
  [[nodiscard]] std::string json() const;
};

/// Fixed-capacity ring of TimeSamples over a fixed series list. One
/// writer (the sampler), any number of snapshot readers.
class TimeSeriesRing {
 public:
  /// `capacity` is clamped to at least 1.
  TimeSeriesRing(std::vector<std::string> series, std::size_t capacity);

  /// Append one sample; overwrites the oldest once full. `values` is
  /// padded / truncated to the series arity.
  void record(double t_ms, std::vector<double> values);

  /// Last `last_n` samples, oldest first (0 = everything retained).
  [[nodiscard]] TimeSeriesSnapshot snapshot(std::size_t last_n = 0) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const std::vector<std::string>& series() const noexcept {
    return series_;
  }

  /// Recorded into snapshots for consumers; set by the sampler.
  void set_interval_ms(int interval_ms);

 private:
  std::vector<std::string> series_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  int interval_ms_ = 0;
  std::vector<TimeSample> ring_;  ///< slot = total_ % capacity_
  std::uint64_t total_ = 0;
};

/// Windowed quantile estimator: W sub-windows of fixed-bucket counts.
/// observe() is concurrent-safe; rotate() advances the window (typically
/// once per sampler tick, so the horizon is windows x interval).
class RotatingQuantile {
 public:
  /// `bounds` as for Histogram (strictly ascending upper bounds);
  /// `windows` clamped to at least 1.
  RotatingQuantile(std::vector<double> bounds, std::size_t windows);

  void observe(double v);
  void rotate();

  /// Quantile over all live sub-windows (0 when empty). Interpolated via
  /// histogram_quantile; min/max are tracked per sub-window horizon.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::size_t windows() const noexcept { return wins_.size(); }

 private:
  struct Window {
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  [[nodiscard]] HistogramData merged_locked() const;

  std::vector<double> bounds_;
  mutable std::mutex mu_;
  std::vector<Window> wins_;
  std::size_t cur_ = 0;
};

/// Ticker thread recording into a TimeSeriesRing at a fixed interval.
/// start()/stop() are idempotent; stop() joins. The sample function runs
/// on the sampler thread and must only read shared state.
class Sampler {
 public:
  using SampleFn = std::function<std::vector<double>()>;

  /// `interval_ms` clamped to [1, 60000]. Does not start.
  Sampler(TimeSeriesRing& ring, SampleFn fn, int interval_ms);
  ~Sampler();  ///< stops and joins if still running

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Records one sample immediately (t=0), then one per interval.
  void start();
  void stop();
  [[nodiscard]] bool running() const;
  [[nodiscard]] int interval_ms() const noexcept { return interval_ms_; }

 private:
  void loop();

  TimeSeriesRing& ring_;
  SampleFn fn_;
  int interval_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace nw::obs
