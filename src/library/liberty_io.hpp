// Text serialization of Library ("liberty-lite", extension .nlib).
//
// A compact line-oriented format: one keyword per line, tables flattened as
// `t1 <n> ; axis... ; values...` / `t2 <nx> <ny> ; xaxis ; yaxis ; values`.
// Round-trips exactly (doubles printed with max_digits10).
#pragma once

#include <iosfwd>
#include <string>

#include "library/library.hpp"

namespace nw::lib {

/// Serialize a library to the .nlib text format.
void write_library(std::ostream& os, const Library& lib);
[[nodiscard]] std::string write_library_string(const Library& lib);

/// Parse an .nlib stream. Throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Library read_library(std::istream& is);
[[nodiscard]] Library read_library_string(const std::string& text);

}  // namespace nw::lib
