#include "library/library.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace nw::lib {

std::size_t Library::add_cell(Cell cell) {
  if (index_.contains(cell.name)) {
    throw std::invalid_argument("Library::add_cell: duplicate cell '" + cell.name + "'");
  }
  const std::size_t idx = cells_.size();
  index_.emplace(cell.name, idx);
  cells_.push_back(std::move(cell));
  return idx;
}

std::optional<std::size_t> Library::find(const std::string& cell_name) const {
  const auto it = index_.find(cell_name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Cell& Library::require(const std::string& cell_name) const {
  const auto idx = find(cell_name);
  if (!idx) throw std::out_of_range("Library: no cell named '" + cell_name + "'");
  return cells_[*idx];
}

namespace model {

double delay(double drive_res, double intrinsic, double slew_in, double c_load) {
  return intrinsic + 0.69 * drive_res * c_load + 0.25 * slew_in;
}

double slew_out(double drive_res, double slew_in, double c_load) {
  const double rc = 2.2 * drive_res * c_load;
  // A gate cannot produce an output edge much faster than a fraction of the
  // input edge; blend keeps the surface smooth and monotone.
  return std::sqrt(rc * rc + 0.09 * slew_in * slew_in);
}

double immunity_threshold(const TechParams& tp, double width) {
  const double dc = tp.dc_margin_frac * tp.vdd;
  const double w = std::max(width, 0.0);
  return dc + (tp.vdd - dc) * std::exp(-w / tp.immunity_tau);
}

double propagated_peak(const TechParams& tp, double drive_res, double in_peak,
                       double in_width) {
  // Static transfer: logistic around the switching threshold.
  const double vth = tp.vth_frac * tp.vdd;
  const double x = (in_peak - vth) / (tp.prop_sharpness * tp.vdd);
  const double dc_out = tp.vdd / (1.0 + std::exp(-x));
  // Dynamic attenuation: narrow glitches are filtered by the output RC.
  // Use the X1 input cap as the representative self-load time constant.
  const double tau = drive_res * 10e-15;
  const double w = std::max(in_width, 0.0);
  const double atten = 1.0 - std::exp(-w / std::max(tau, 1e-15));
  return dc_out * atten;
}

double propagated_width(const TechParams& tp, double drive_res, double in_peak,
                        double in_width) {
  (void)in_peak;
  const double tau = drive_res * 10e-15;
  // Output glitch is the input width smeared by the gate's own response.
  return in_width + 0.69 * tau + 0.1 * tp.immunity_tau;
}

}  // namespace model

namespace {

std::vector<double> slew_axis() {
  return {5 * PS, 20 * PS, 60 * PS, 150 * PS, 400 * PS};
}

std::vector<double> cap_axis() {
  return {1 * FF, 5 * FF, 20 * FF, 80 * FF, 300 * FF};
}

std::vector<double> peak_axis(double vdd) {
  return {0.05 * vdd, 0.2 * vdd, 0.35 * vdd, 0.5 * vdd, 0.7 * vdd, 0.9 * vdd, vdd};
}

std::vector<double> width_axis() {
  return {5 * PS, 20 * PS, 60 * PS, 150 * PS, 400 * PS, 1 * NS};
}

Table2D delay_table(double drive_res, double intrinsic) {
  return Table2D::sample(slew_axis(), cap_axis(), [=](double s, double c) {
    return model::delay(drive_res, intrinsic, s, c);
  });
}

Table2D slew_table(double drive_res) {
  return Table2D::sample(slew_axis(), cap_axis(), [=](double s, double c) {
    return model::slew_out(drive_res, s, c);
  });
}

NoiseImmunity make_immunity(const TechParams& tp) {
  NoiseImmunity im;
  im.threshold_vs_width = Table1D::sample(width_axis(), [&](double w) {
    return model::immunity_threshold(tp, w);
  });
  return im;
}

NoisePropagation make_propagation(const TechParams& tp, double drive_res) {
  NoisePropagation np;
  np.out_peak = Table2D::sample(peak_axis(tp.vdd), width_axis(), [&](double p, double w) {
    return model::propagated_peak(tp, drive_res, p, w);
  });
  np.out_width = Table2D::sample(peak_axis(tp.vdd), width_axis(), [&](double p, double w) {
    return model::propagated_width(tp, drive_res, p, w);
  });
  return np;
}

/// Build a combinational cell with `n_inputs` inputs named A, B and output Y.
Cell make_comb(const TechParams& tp, const std::string& name, std::size_t n_inputs,
               double size_x, ArcSense sense) {
  Cell c;
  c.name = name;
  c.kind = CellKind::kCombinational;
  const double drive = tp.base_drive_res / size_x;
  c.drive_resistance = drive;
  c.holding_resistance = drive * tp.hold_res_factor;

  static constexpr const char* kInputNames[] = {"A", "B", "C", "D"};
  for (std::size_t i = 0; i < n_inputs; ++i) {
    c.pins.push_back({kInputNames[i], PinDir::kInput, PinRole::kNone,
                      tp.input_cap * size_x});
  }
  c.pins.push_back({"Y", PinDir::kOutput, PinRole::kNone, 0.0});

  const double intrinsic = tp.intrinsic_delay * (1.0 + 0.3 * (static_cast<double>(n_inputs) - 1.0));
  for (std::size_t i = 0; i < n_inputs; ++i) {
    TimingArc arc;
    arc.from_pin = i;
    arc.to_pin = n_inputs;  // Y
    arc.sense = sense;
    arc.delay_rise = delay_table(drive, intrinsic);
    arc.delay_fall = delay_table(drive, intrinsic);
    arc.slew_rise = slew_table(drive);
    arc.slew_fall = slew_table(drive);
    c.arcs.push_back(std::move(arc));
  }

  c.immunity = make_immunity(tp);
  c.propagation = make_propagation(tp, drive);
  return c;
}

Cell make_dff(const TechParams& tp) {
  Cell c;
  c.name = "DFF_X1";
  c.kind = CellKind::kDff;
  const double drive = tp.base_drive_res;
  c.drive_resistance = drive;
  c.holding_resistance = drive * tp.hold_res_factor;
  c.pins.push_back({"D", PinDir::kInput, PinRole::kData, tp.input_cap});
  c.pins.push_back({"CK", PinDir::kInput, PinRole::kClock, tp.input_cap * 1.5});
  c.pins.push_back({"Q", PinDir::kOutput, PinRole::kNone, 0.0});
  // Clock-to-Q arc.
  TimingArc arc;
  arc.from_pin = 1;
  arc.to_pin = 2;
  arc.sense = ArcSense::kPositiveUnate;
  arc.delay_rise = delay_table(drive, tp.intrinsic_delay * 2.0);
  arc.delay_fall = delay_table(drive, tp.intrinsic_delay * 2.0);
  arc.slew_rise = slew_table(drive);
  arc.slew_fall = slew_table(drive);
  c.arcs.push_back(std::move(arc));
  c.setup = 40 * PS;
  c.hold = 20 * PS;
  c.immunity = make_immunity(tp);
  c.propagation = make_propagation(tp, drive);
  return c;
}

Cell make_latch(const TechParams& tp) {
  Cell c = make_dff(tp);
  c.name = "LATCH_X1";
  c.kind = CellKind::kLatch;
  c.pins[1].name = "EN";
  c.pins[1].role = PinRole::kEnable;
  c.setup = 30 * PS;
  c.hold = 30 * PS;
  return c;
}

}  // namespace

Library default_library(const TechParams& tp) {
  Library lib("nw_generic_130", tp.vdd);
  lib.add_cell(make_comb(tp, "INV_X1", 1, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "INV_X2", 1, 2.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "INV_X4", 1, 4.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "BUF_X1", 1, 1.0, ArcSense::kPositiveUnate));
  lib.add_cell(make_comb(tp, "BUF_X2", 1, 2.0, ArcSense::kPositiveUnate));
  lib.add_cell(make_comb(tp, "BUF_X4", 1, 4.0, ArcSense::kPositiveUnate));
  lib.add_cell(make_comb(tp, "NAND2_X1", 2, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "NOR2_X1", 2, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "AND2_X1", 2, 1.0, ArcSense::kPositiveUnate));
  lib.add_cell(make_comb(tp, "OR2_X1", 2, 1.0, ArcSense::kPositiveUnate));
  lib.add_cell(make_comb(tp, "XOR2_X1", 2, 1.0, ArcSense::kNonUnate));
  lib.add_cell(make_comb(tp, "NAND3_X1", 3, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "NOR3_X1", 3, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "AOI21_X1", 3, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "OAI21_X1", 3, 1.0, ArcSense::kNegativeUnate));
  lib.add_cell(make_comb(tp, "MUX2_X1", 3, 1.0, ArcSense::kNonUnate));
  lib.add_cell(make_dff(tp));
  lib.add_cell(make_latch(tp));
  return lib;
}

}  // namespace nw::lib
