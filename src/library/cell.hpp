// Cell model: pins, timing arcs, drive/holding resistance, and the noise
// data static noise analysis consumes — immunity curves and propagation
// tables.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "library/table.hpp"

namespace nw::lib {

enum class PinDir { kInput, kOutput };

/// Pin roles for sequential cells; combinational pins are kNone.
enum class PinRole { kNone, kClock, kData, kEnable };

struct Pin {
  std::string name;
  PinDir dir = PinDir::kInput;
  PinRole role = PinRole::kNone;
  double cap = 0.0;  ///< input pin capacitance [F] (0 for outputs)
};

/// Arc sense: how an input transition relates to the output transition.
enum class ArcSense { kPositiveUnate, kNegativeUnate, kNonUnate };

/// A combinational (or clock->output) timing arc with NLDM tables indexed
/// by (input slew [s], output load [F]).
struct TimingArc {
  std::size_t from_pin = 0;
  std::size_t to_pin = 0;
  ArcSense sense = ArcSense::kNegativeUnate;
  Table2D delay_rise;   ///< output-rise delay
  Table2D delay_fall;   ///< output-fall delay
  Table2D slew_rise;    ///< output-rise transition time
  Table2D slew_fall;    ///< output-fall transition time
};

/// Noise immunity of a cell input: the minimum glitch peak [V] that can
/// upset the gate, as a function of glitch width [s]. Narrow glitches are
/// filtered by the gate's inertia, so the curve decreases with width and
/// asymptotes to the DC noise margin.
struct NoiseImmunity {
  Table1D threshold_vs_width;

  [[nodiscard]] double threshold(double width) const {
    return threshold_vs_width.lookup(width);
  }
  /// Noise slack: threshold(width) - peak. Negative means a violation.
  [[nodiscard]] double slack(double peak, double width) const {
    return threshold(width) - peak;
  }
};

/// Noise transfer through a cell: for an input glitch (peak [V], width [s]),
/// the output glitch peak [V] and width [s]. Both tables are indexed
/// (peak, width) and must be monotone non-decreasing in both arguments.
struct NoisePropagation {
  Table2D out_peak;
  Table2D out_width;
};

enum class CellKind { kCombinational, kDff, kLatch };

/// A library cell. Invariants: exactly one output pin for combinational
/// cells; sequential cells have data/clock(/enable) roles assigned.
struct Cell {
  std::string name;
  CellKind kind = CellKind::kCombinational;
  std::vector<Pin> pins;
  std::vector<TimingArc> arcs;

  double drive_resistance = 0.0;    ///< switching output resistance [ohm]
  double holding_resistance = 0.0;  ///< quiet-state output resistance [ohm]

  NoiseImmunity immunity;           ///< applies to every input pin
  NoisePropagation propagation;     ///< input glitch -> output glitch

  /// Sequential-only: setup/hold around the clock edge [s]. The latch
  /// sensitivity window for noise is [t_clk - setup, t_clk + hold].
  double setup = 0.0;
  double hold = 0.0;

  [[nodiscard]] std::optional<std::size_t> find_pin(const std::string& pin_name) const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].name == pin_name) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::size_t> output_pin() const {
    for (std::size_t i = 0; i < pins.size(); ++i) {
      if (pins[i].dir == PinDir::kOutput) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t input_count() const noexcept {
    std::size_t n = 0;
    for (const auto& p : pins) n += (p.dir == PinDir::kInput) ? 1 : 0;
    return n;
  }

  [[nodiscard]] bool is_sequential() const noexcept {
    return kind != CellKind::kCombinational;
  }
};

}  // namespace nw::lib
