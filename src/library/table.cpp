#include "library/table.hpp"

namespace nw::lib {

namespace {
void check_axis(std::span<const double> axis, const char* what) {
  if (axis.empty()) throw std::invalid_argument(std::string(what) + ": empty axis");
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (!(axis[i - 1] < axis[i])) {
      throw std::invalid_argument(std::string(what) + ": axis not strictly increasing");
    }
  }
}
}  // namespace

AxisPos locate(std::span<const double> axis, double x) {
  AxisPos p;
  if (axis.size() < 2) {
    p.seg = 0;
    p.frac = 0.0;
    return p;
  }
  std::size_t lo = 0;
  std::size_t hi = axis.size() - 1;
  if (x <= axis.front()) {
    p.seg = 0;
  } else if (x >= axis.back()) {
    p.seg = axis.size() - 2;
  } else {
    while (hi - lo > 1) {
      const std::size_t mid = (lo + hi) / 2;
      if (axis[mid] <= x) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    p.seg = lo;
  }
  const double x0 = axis[p.seg];
  const double x1 = axis[p.seg + 1];
  p.frac = (x - x0) / (x1 - x0);
  return p;
}

Table1D::Table1D(std::vector<double> axis, std::vector<double> values)
    : axis_(std::move(axis)), values_(std::move(values)) {
  check_axis(axis_, "Table1D");
  if (axis_.size() != values_.size()) {
    throw std::invalid_argument("Table1D: axis/value size mismatch");
  }
}

double Table1D::lookup(double x) const {
  if (axis_.empty()) throw std::logic_error("Table1D::lookup on empty table");
  if (axis_.size() == 1) return values_[0];
  const AxisPos p = locate(axis_, x);
  const double v0 = values_[p.seg];
  const double v1 = values_[p.seg + 1];
  return v0 + (v1 - v0) * p.frac;
}

Table2D::Table2D(std::vector<double> x_axis, std::vector<double> y_axis,
                 std::vector<double> values)
    : x_(std::move(x_axis)), y_(std::move(y_axis)), v_(std::move(values)) {
  check_axis(x_, "Table2D(x)");
  check_axis(y_, "Table2D(y)");
  if (v_.size() != x_.size() * y_.size()) {
    throw std::invalid_argument("Table2D: value count mismatch");
  }
}

double Table2D::lookup(double x, double y) const {
  if (x_.empty()) throw std::logic_error("Table2D::lookup on empty table");
  if (x_.size() == 1 && y_.size() == 1) return v_[0];
  if (x_.size() == 1) {
    const AxisPos py = locate(y_, y);
    const double v0 = value_at(0, py.seg);
    const double v1 = value_at(0, py.seg + 1);
    return v0 + (v1 - v0) * py.frac;
  }
  if (y_.size() == 1) {
    const AxisPos px = locate(x_, x);
    const double v0 = value_at(px.seg, 0);
    const double v1 = value_at(px.seg + 1, 0);
    return v0 + (v1 - v0) * px.frac;
  }
  const AxisPos px = locate(x_, x);
  const AxisPos py = locate(y_, y);
  const double v00 = value_at(px.seg, py.seg);
  const double v01 = value_at(px.seg, py.seg + 1);
  const double v10 = value_at(px.seg + 1, py.seg);
  const double v11 = value_at(px.seg + 1, py.seg + 1);
  const double a = v00 + (v01 - v00) * py.frac;
  const double b = v10 + (v11 - v10) * py.frac;
  return a + (b - a) * px.frac;
}

}  // namespace nw::lib
