// The cell library: cell storage/lookup plus a generated default library.
//
// No proprietary liberty data is available offline, so `default_library()`
// characterizes a small standard-cell set from a parameterized first-order
// CMOS model (documented in DESIGN.md as a substitution). The shapes —
// delay vs load, immunity vs width, propagation gain vs peak — follow the
// standard characterization forms; absolute values are representative of a
// ~130 nm node (the DAC 2003 era).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "library/cell.hpp"

namespace nw::lib {

/// Knobs for the generated default library.
struct TechParams {
  double vdd = 1.2;                 ///< supply [V]
  double vth_frac = 0.45;           ///< switching threshold as fraction of vdd
  double base_drive_res = 2.5e3;    ///< X1 drive resistance [ohm]
  double hold_res_factor = 1.2;     ///< holding = factor * drive
  double input_cap = 2e-15;         ///< X1 input pin cap [F]
  double intrinsic_delay = 15e-12;  ///< X1 parasitic delay [s]
  double immunity_tau = 60e-12;     ///< immunity curve time constant [s]
  double dc_margin_frac = 0.42;     ///< wide-glitch immunity as fraction of vdd
  double prop_sharpness = 0.12;     ///< propagation sigmoid sharpness (fraction of vdd)
};

class Library {
 public:
  Library() = default;
  explicit Library(std::string name, double vdd) : name_(std::move(name)), vdd_(vdd) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double vdd() const noexcept { return vdd_; }
  void set_vdd(double v) noexcept { vdd_ = v; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Add a cell; throws std::invalid_argument on duplicate name.
  std::size_t add_cell(Cell cell);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] const Cell& cell(std::size_t i) const { return cells_.at(i); }
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }

  [[nodiscard]] std::optional<std::size_t> find(const std::string& cell_name) const;
  /// Lookup that throws std::out_of_range with the cell name on a miss.
  [[nodiscard]] const Cell& require(const std::string& cell_name) const;

 private:
  std::string name_ = "unnamed";
  double vdd_ = 1.2;
  std::vector<Cell> cells_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Build the default generated library:
///   INV_X1/X2/X4, BUF_X1/X2, NAND2_X1, NOR2_X1, AND2_X1, OR2_X1, XOR2_X1,
///   DFF_X1, LATCH_X1.
[[nodiscard]] Library default_library(const TechParams& tp = {});

/// The analytic forms used to characterize the default library; exposed so
/// tests can verify that the sampled tables faithfully reproduce them.
namespace model {
/// Gate delay: intrinsic + 0.69 R_drive C_load + slew pushout.
[[nodiscard]] double delay(double drive_res, double intrinsic, double slew_in,
                           double c_load);
/// Output slew: 2.2 R_drive C_load floor-limited by a fraction of input slew.
[[nodiscard]] double slew_out(double drive_res, double slew_in, double c_load);
/// Immunity threshold vs glitch width.
[[nodiscard]] double immunity_threshold(const TechParams& tp, double width);
/// Propagated glitch peak for an input glitch (peak, width).
[[nodiscard]] double propagated_peak(const TechParams& tp, double drive_res,
                                     double in_peak, double in_width);
/// Propagated glitch width.
[[nodiscard]] double propagated_width(const TechParams& tp, double drive_res,
                                      double in_peak, double in_width);
}  // namespace model

}  // namespace nw::lib
