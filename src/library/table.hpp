// NLDM-style lookup tables with linear interpolation/extrapolation.
//
// Liberty characterization stores delay, slew, noise immunity, and noise
// propagation as small sampled tables over (input slew x load) or
// (glitch peak x glitch width); downstream engines interpolate. These are
// exactly that, minus the liberty syntax.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace nw::lib {

/// 1-D piecewise-linear table y(x). The axis must be strictly increasing.
/// Queries outside the axis range extrapolate linearly from the edge
/// segment (NLDM convention).
class Table1D {
 public:
  Table1D() = default;
  Table1D(std::vector<double> axis, std::vector<double> values);

  [[nodiscard]] bool empty() const noexcept { return axis_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return axis_.size(); }
  [[nodiscard]] std::span<const double> axis() const noexcept { return axis_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  [[nodiscard]] double lookup(double x) const;

  /// Build from an analytic function sampled at the given axis points.
  template <typename Fn>
  [[nodiscard]] static Table1D sample(std::vector<double> axis, Fn&& fn) {
    std::vector<double> vals;
    vals.reserve(axis.size());
    for (const double x : axis) vals.push_back(fn(x));
    return Table1D(std::move(axis), std::move(vals));
  }

 private:
  std::vector<double> axis_;
  std::vector<double> values_;
};

/// 2-D bilinear table z(x, y); both axes strictly increasing; values stored
/// row-major as values[ix * ny + iy]. Out-of-range queries extrapolate.
class Table2D {
 public:
  Table2D() = default;
  Table2D(std::vector<double> x_axis, std::vector<double> y_axis,
          std::vector<double> values);

  [[nodiscard]] bool empty() const noexcept { return x_.empty(); }
  [[nodiscard]] std::span<const double> x_axis() const noexcept { return x_; }
  [[nodiscard]] std::span<const double> y_axis() const noexcept { return y_; }
  [[nodiscard]] std::span<const double> values() const noexcept { return v_; }
  [[nodiscard]] double value_at(std::size_t ix, std::size_t iy) const {
    return v_[ix * y_.size() + iy];
  }

  [[nodiscard]] double lookup(double x, double y) const;

  template <typename Fn>
  [[nodiscard]] static Table2D sample(std::vector<double> xs, std::vector<double> ys,
                                      Fn&& fn) {
    std::vector<double> vals;
    vals.reserve(xs.size() * ys.size());
    for (const double x : xs) {
      for (const double y : ys) vals.push_back(fn(x, y));
    }
    return Table2D(std::move(xs), std::move(ys), std::move(vals));
  }

 private:
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> v_;
};

/// Locate x in axis: returns segment index i such that axis[i] <= x <=
/// axis[i+1] (clamped to the outermost segment for extrapolation) plus the
/// interpolation fraction, which may fall outside [0,1] when extrapolating.
struct AxisPos {
  std::size_t seg = 0;
  double frac = 0.0;
};
[[nodiscard]] AxisPos locate(std::span<const double> axis, double x);

}  // namespace nw::lib
