#include "library/liberty_io.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "util/strings.hpp"

namespace nw::lib {

namespace {

void write_doubles(std::ostream& os, std::span<const double> xs) {
  for (const double x : xs) os << ' ' << x;
}

void write_t1(std::ostream& os, const char* key, const Table1D& t) {
  os << key << " t1 " << t.size() << " ;";
  write_doubles(os, t.axis());
  os << " ;";
  write_doubles(os, t.values());
  os << "\n";
}

void write_t2(std::ostream& os, const char* key, const Table2D& t) {
  os << key << " t2 " << t.x_axis().size() << ' ' << t.y_axis().size() << " ;";
  write_doubles(os, t.x_axis());
  os << " ;";
  write_doubles(os, t.y_axis());
  os << " ;";
  write_doubles(os, t.values());
  os << "\n";
}

const char* sense_str(ArcSense s) {
  switch (s) {
    case ArcSense::kPositiveUnate: return "pos";
    case ArcSense::kNegativeUnate: return "neg";
    case ArcSense::kNonUnate: return "non";
  }
  return "neg";
}

ArcSense parse_sense(std::string_view s) {
  if (s == "pos") return ArcSense::kPositiveUnate;
  if (s == "neg") return ArcSense::kNegativeUnate;
  if (s == "non") return ArcSense::kNonUnate;
  throw std::runtime_error("nlib: bad arc sense '" + std::string(s) + "'");
}

const char* kind_str(CellKind k) {
  switch (k) {
    case CellKind::kCombinational: return "comb";
    case CellKind::kDff: return "dff";
    case CellKind::kLatch: return "latch";
  }
  return "comb";
}

CellKind parse_kind(std::string_view s) {
  if (s == "comb") return CellKind::kCombinational;
  if (s == "dff") return CellKind::kDff;
  if (s == "latch") return CellKind::kLatch;
  throw std::runtime_error("nlib: bad cell kind '" + std::string(s) + "'");
}

const char* role_str(PinRole r) {
  switch (r) {
    case PinRole::kNone: return "none";
    case PinRole::kClock: return "clock";
    case PinRole::kData: return "data";
    case PinRole::kEnable: return "enable";
  }
  return "none";
}

PinRole parse_role(std::string_view s) {
  if (s == "none") return PinRole::kNone;
  if (s == "clock") return PinRole::kClock;
  if (s == "data") return PinRole::kData;
  if (s == "enable") return PinRole::kEnable;
  throw std::runtime_error("nlib: bad pin role '" + std::string(s) + "'");
}

/// Tokenized line reader with 1-based line numbers for error messages.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next non-empty, non-comment line split on whitespace; empty when EOF.
  std::vector<std::string_view> next() {
    tokens_.clear();
    while (std::getline(is_, line_)) {
      ++lineno_;
      const std::string_view t = nw::trim(line_);
      if (t.empty() || nw::starts_with(t, "#")) continue;
      tokens_ = nw::split(t);
      return tokens_;
    }
    return tokens_;
  }

  [[nodiscard]] int lineno() const noexcept { return lineno_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("nlib line " + std::to_string(lineno_) + ": " + msg);
  }

 private:
  std::istream& is_;
  std::string line_;
  std::vector<std::string_view> tokens_;
  int lineno_ = 0;
};

/// Parse `t1 <n> ; axis ; values` starting at toks[start].
Table1D parse_t1(LineReader& lr, std::span<const std::string_view> toks, std::size_t start) {
  if (start >= toks.size() || toks[start] != "t1") lr.fail("expected t1 table");
  const std::size_t n = nw::parse_uint(toks[start + 1]);
  std::size_t i = start + 2;
  auto take_group = [&](std::size_t count) {
    if (i >= toks.size() || toks[i] != ";") lr.fail("expected ';' in t1");
    ++i;
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      if (i >= toks.size()) lr.fail("t1: not enough numbers");
      out.push_back(nw::parse_double(toks[i++]));
    }
    return out;
  };
  auto axis = take_group(n);
  auto vals = take_group(n);
  return Table1D(std::move(axis), std::move(vals));
}

Table2D parse_t2(LineReader& lr, std::span<const std::string_view> toks, std::size_t start) {
  if (start >= toks.size() || toks[start] != "t2") lr.fail("expected t2 table");
  const std::size_t nx = nw::parse_uint(toks[start + 1]);
  const std::size_t ny = nw::parse_uint(toks[start + 2]);
  std::size_t i = start + 3;
  auto take_group = [&](std::size_t count) {
    if (i >= toks.size() || toks[i] != ";") lr.fail("expected ';' in t2");
    ++i;
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      if (i >= toks.size()) lr.fail("t2: not enough numbers");
      out.push_back(nw::parse_double(toks[i++]));
    }
    return out;
  };
  auto xs = take_group(nx);
  auto ys = take_group(ny);
  auto vals = take_group(nx * ny);
  return Table2D(std::move(xs), std::move(ys), std::move(vals));
}

}  // namespace

void write_library(std::ostream& os, const Library& lib) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "library " << lib.name() << " vdd " << lib.vdd() << "\n";
  for (const auto& c : lib.cells()) {
    os << "cell " << c.name << " kind " << kind_str(c.kind) << " drive "
       << c.drive_resistance << " holdres " << c.holding_resistance << " setup "
       << c.setup << " holdt " << c.hold << "\n";
    for (const auto& p : c.pins) {
      os << "pin " << p.name << ' ' << (p.dir == PinDir::kInput ? "input" : "output")
         << " role " << role_str(p.role) << " cap " << p.cap << "\n";
    }
    for (const auto& a : c.arcs) {
      os << "arc " << a.from_pin << ' ' << a.to_pin << ' ' << sense_str(a.sense) << "\n";
      write_t2(os, "delay_rise", a.delay_rise);
      write_t2(os, "delay_fall", a.delay_fall);
      write_t2(os, "slew_rise", a.slew_rise);
      write_t2(os, "slew_fall", a.slew_fall);
    }
    write_t1(os, "immunity", c.immunity.threshold_vs_width);
    write_t2(os, "prop_peak", c.propagation.out_peak);
    write_t2(os, "prop_width", c.propagation.out_width);
    os << "end_cell\n";
  }
  os << "end_library\n";
}

std::string write_library_string(const Library& lib) {
  std::ostringstream os;
  write_library(os, lib);
  return os.str();
}

Library read_library(std::istream& is) {
  LineReader lr(is);
  auto toks = lr.next();
  if (toks.size() < 4 || toks[0] != "library" || toks[2] != "vdd") {
    lr.fail("expected 'library <name> vdd <v>'");
  }
  Library lib(std::string(toks[1]), nw::parse_double(toks[3]));

  Cell cur;
  bool in_cell = false;
  for (toks = lr.next(); !toks.empty(); toks = lr.next()) {
    const auto key = toks[0];
    if (key == "end_library") return lib;
    if (key == "cell") {
      if (in_cell) lr.fail("nested cell");
      if (toks.size() < 12) lr.fail("short cell header");
      cur = Cell{};
      cur.name = std::string(toks[1]);
      cur.kind = parse_kind(toks[3]);
      cur.drive_resistance = nw::parse_double(toks[5]);
      cur.holding_resistance = nw::parse_double(toks[7]);
      cur.setup = nw::parse_double(toks[9]);
      cur.hold = nw::parse_double(toks[11]);
      in_cell = true;
    } else if (key == "pin") {
      if (!in_cell || toks.size() < 7) lr.fail("bad pin line");
      Pin p;
      p.name = std::string(toks[1]);
      p.dir = (toks[2] == "input") ? PinDir::kInput : PinDir::kOutput;
      p.role = parse_role(toks[4]);
      p.cap = nw::parse_double(toks[6]);
      cur.pins.push_back(std::move(p));
    } else if (key == "arc") {
      if (!in_cell || toks.size() < 4) lr.fail("bad arc line");
      TimingArc arc;
      arc.from_pin = nw::parse_uint(toks[1]);
      arc.to_pin = nw::parse_uint(toks[2]);
      arc.sense = parse_sense(toks[3]);
      auto t = lr.next();
      if (t.empty() || t[0] != "delay_rise") lr.fail("expected delay_rise");
      arc.delay_rise = parse_t2(lr, t, 1);
      t = lr.next();
      if (t.empty() || t[0] != "delay_fall") lr.fail("expected delay_fall");
      arc.delay_fall = parse_t2(lr, t, 1);
      t = lr.next();
      if (t.empty() || t[0] != "slew_rise") lr.fail("expected slew_rise");
      arc.slew_rise = parse_t2(lr, t, 1);
      t = lr.next();
      if (t.empty() || t[0] != "slew_fall") lr.fail("expected slew_fall");
      arc.slew_fall = parse_t2(lr, t, 1);
      cur.arcs.push_back(std::move(arc));
    } else if (key == "immunity") {
      if (!in_cell) lr.fail("immunity outside cell");
      cur.immunity.threshold_vs_width = parse_t1(lr, toks, 1);
    } else if (key == "prop_peak") {
      if (!in_cell) lr.fail("prop_peak outside cell");
      cur.propagation.out_peak = parse_t2(lr, toks, 1);
    } else if (key == "prop_width") {
      if (!in_cell) lr.fail("prop_width outside cell");
      cur.propagation.out_width = parse_t2(lr, toks, 1);
    } else if (key == "end_cell") {
      if (!in_cell) lr.fail("end_cell outside cell");
      lib.add_cell(std::move(cur));
      in_cell = false;
    } else {
      lr.fail("unknown keyword '" + std::string(key) + "'");
    }
  }
  lr.fail("missing end_library");
}

Library read_library_string(const std::string& text) {
  std::istringstream is(text);
  return read_library(is);
}

}  // namespace nw::lib
