#include "gen/bus.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nw::gen {

Generated make_bus(const lib::Library& library, const BusConfig& cfg) {
  if (cfg.bits < 2) throw std::invalid_argument("make_bus: need at least 2 bits");
  if (cfg.segments < 1) throw std::invalid_argument("make_bus: need >= 1 segment");

  Generated out{net::Design(library, "bus" + std::to_string(cfg.bits)),
                para::Parasitics(0), sta::Options{}};
  net::Design& d = out.design;
  Rng rng(cfg.seed);

  // Nets and logic first; parasitics after (Parasitics is sized by net count).
  std::vector<NetId> wire(cfg.bits);
  std::vector<std::vector<NetId>> chain_nets(cfg.bits);
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    wire[b] = d.add_net("w" + std::to_string(b));
    net::PortDrive drive;
    drive.resistance =
        cfg.port_res * (1.0 + cfg.drive_jitter * rng.uniform(-1.0, 1.0));
    drive.slew = cfg.port_slew;
    d.add_input_port("in" + std::to_string(b), wire[b], drive);

    // Receiver chain: INV -> (BUF...) -> output port.
    NetId prev = wire[b];
    for (std::size_t s = 0; s < cfg.receiver_depth; ++s) {
      const std::string cell = (s == 0) ? "INV_X1" : "BUF_X1";
      const InstId g = d.add_instance(
          "rx" + std::to_string(b) + "_" + std::to_string(s), cell);
      d.connect(g, "A", prev);
      const NetId next =
          d.add_net("r" + std::to_string(b) + "_" + std::to_string(s));
      d.connect(g, "Y", next);
      chain_nets[b].push_back(next);
      prev = next;
    }
    d.add_output_port("out" + std::to_string(b), prev);
  }

  out.para = para::Parasitics(d.net_count());
  para::Parasitics& p = out.para;

  // RC ladder per line; remember per-segment node ids for coupling.
  std::vector<std::vector<std::uint32_t>> seg_node(cfg.bits);
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    para::RcNet& rc = p.net(wire[b]);
    rc.add_cap(0, 0.5 * cfg.cap_per_seg);
    std::uint32_t prev_node = 0;
    for (std::size_t s = 0; s < cfg.segments; ++s) {
      const std::uint32_t n = rc.add_node(cfg.cap_per_seg);
      rc.add_res(prev_node, n, cfg.res_per_seg);
      seg_node[b].push_back(n);
      prev_node = n;
    }
    // Attach the receiver input at the far end.
    const net::Net& nn = d.net(wire[b]);
    if (!nn.loads.empty()) rc.attach_pin(prev_node, nn.loads.front());
    // Receiver-chain nets get small lumped parasitics.
    for (const NetId cn : chain_nets[b]) p.net(cn).add_cap(0, 1e-15);
  }

  // Coupling between neighbouring lines, per segment. The jitter models
  // spacing variation along the route (uniform per line pair).
  for (std::size_t b = 0; b + 1 < cfg.bits; ++b) {
    const double f_adj = 1.0 + cfg.coupling_jitter * rng.uniform(-1.0, 1.0);
    const double f_2nd = 1.0 + cfg.coupling_jitter * rng.uniform(-1.0, 1.0);
    for (std::size_t s = 0; s < cfg.segments; ++s) {
      if (cfg.coupling_adj > 0.0) {
        p.add_coupling(wire[b], seg_node[b][s], wire[b + 1], seg_node[b + 1][s],
                       cfg.coupling_adj * f_adj);
      }
      if (b + 2 < cfg.bits && cfg.coupling_2nd > 0.0) {
        p.add_coupling(wire[b], seg_node[b][s], wire[b + 2], seg_node[b + 2][s],
                       cfg.coupling_2nd * f_2nd);
      }
    }
  }

  // Staggered arrival windows.
  out.sta_options.clock_period = cfg.clock_period;
  const std::size_t groups = std::max<std::size_t>(cfg.stagger_groups, 1);
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    const double base = static_cast<double>(b % groups) * cfg.stagger +
                        rng.uniform(0.0, cfg.jitter);
    out.sta_options.input_arrivals["in" + std::to_string(b)] =
        Interval{base, base + cfg.window_width};
  }
  return out;
}

}  // namespace nw::gen
