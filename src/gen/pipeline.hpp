// Pipeline-stage generator for latch sensitivity-window experiments.
//
// N parallel register-to-register paths: launch DFF -> short combinational
// chain -> capture DFF, all on one clock distributed through a buffer
// tree. Coupling caps land on the data nets near the capture flops, and
// the combinational depth varies per path so glitches arrive at different
// times relative to the sampling window — the scenario where the noise
// window vs. sensitivity window intersection check pays off.
#pragma once

#include <cstdint>

#include "gen/bus.hpp"

namespace nw::gen {

struct PipelineConfig {
  std::size_t paths = 32;
  std::size_t min_depth = 1;        ///< combinational stages per path (min)
  std::size_t max_depth = 5;        ///< and max (randomized in between)
  double wire_res = 30.0;           ///< capture-net wire resistance [ohm]
  double wire_cap = 2e-15;          ///< capture-net grounded cap [F]
  double coupling_cap = 6e-15;      ///< aggressor coupling onto capture nets [F]
  bool latch_capture = false;       ///< capture with level-sensitive latches
  double clock_period = 1.2e-9;
  std::uint64_t seed = 3;
};

[[nodiscard]] Generated make_pipeline(const lib::Library& library,
                                      const PipelineConfig& cfg);

}  // namespace nw::gen
