// Routed bus generator: the geometric sibling of make_bus.
//
// Instead of fabricating RC values directly, this generator lays out N
// parallel wires as real geometry (length/width/pitch on a metal layer)
// and runs the closed-form extractor — exercising the full
// geometry -> parasitics -> STA -> noise flow. Coupling strength now
// falls out of wire spacing, which is how the physical design levers
// (spacing, shielding) show up in noise results.
#pragma once

#include <cstdint>

#include "extract/extractor.hpp"
#include "gen/bus.hpp"

namespace nw::gen {

struct RoutedBusConfig {
  std::size_t bits = 32;
  std::size_t segments = 4;        ///< collinear pieces per line (RC ladder depth)
  double length = 800e-6;          ///< wire length [m]
  double width = 0.2e-6;           ///< wire width [m]
  double pitch = 0.6e-6;           ///< centerline-to-centerline spacing [m]
  int layer = 1;                   ///< metal layer index into the Tech
  double port_res = 1500.0;        ///< input driver resistance [ohm]
  double port_slew = 25e-12;       ///< input edge rate [s]
  std::size_t stagger_groups = 4;
  double stagger = 250e-12;
  double window_width = 60e-12;
  double clock_period = 2e-9;
  std::uint64_t seed = 11;
};

struct RoutedGenerated {
  net::Design design;
  para::Parasitics para;
  sta::Options sta_options;
  extract::ExtractStats stats;   ///< what the extractor produced
};

/// Build design + geometry and extract. The library must outlive the
/// returned design.
[[nodiscard]] RoutedGenerated make_routed_bus(const lib::Library& library,
                                              const extract::Tech& tech,
                                              const RoutedBusConfig& cfg);

}  // namespace nw::gen
