// Parallel coupled bus generator.
//
// The canonical crosstalk workload (and the classic DAC-era testcase): N
// parallel lines, each segmented into an RC ladder, with coupling caps
// between corresponding segments of nearby lines. Input arrivals are
// staggered in groups so that temporal filtering has something to do —
// aggressors in different stagger groups cannot align, which is exactly
// the pessimism the paper's windows remove.
#pragma once

#include <cstdint>

#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"
#include "sta/sta.hpp"

namespace nw::gen {

struct BusConfig {
  std::size_t bits = 64;
  std::size_t segments = 4;          ///< RC segments per line
  double res_per_seg = 25.0;         ///< [ohm]
  double cap_per_seg = 2e-15;        ///< grounded [F]
  double coupling_adj = 4e-15;       ///< to the adjacent line, per segment [F]
  double coupling_2nd = 0.8e-15;     ///< to the 2nd neighbour, per segment [F]
  double port_res = 500.0;           ///< input driver resistance [ohm]
  double port_slew = 20e-12;         ///< input edge rate [s]
  double coupling_jitter = 0.0;      ///< fractional random spread on coupling caps
  double drive_jitter = 0.0;         ///< fractional random spread on port resistance
  std::size_t receiver_depth = 2;    ///< INV/BUF stages behind each line
  std::size_t stagger_groups = 4;    ///< arrival groups across the bus
  double stagger = 200e-12;          ///< group-to-group arrival offset [s]
  double window_width = 50e-12;      ///< arrival uncertainty per input [s]
  double jitter = 10e-12;            ///< random per-bit window jitter [s]
  double clock_period = 2e-9;
  std::uint64_t seed = 1;
};

/// A generated testcase: design + parasitics + matching STA options.
struct Generated {
  net::Design design;
  para::Parasitics para;
  sta::Options sta_options;
};

/// Build the bus. The library must outlive the returned design.
[[nodiscard]] Generated make_bus(const lib::Library& library, const BusConfig& cfg);

}  // namespace nw::gen
