// Random logic-cloud generator with placement-derived coupling.
//
// Levelized random logic (INV/BUF/NAND2/NOR2/AND2/OR2/XOR2) whose nets are
// virtually placed on a grid; nets that land close to each other receive
// coupling caps, mimicking routed-design crosstalk (no real router exists
// offline — see DESIGN.md substitutions). Optionally a fraction of the
// final level feeds DFFs clocked through a generated buffer tree, giving
// the latch-sensitivity experiments sequential endpoints.
#pragma once

#include <cstdint>

#include "gen/bus.hpp"

namespace nw::gen {

struct RandLogicConfig {
  std::size_t primary_inputs = 32;
  std::size_t gates = 1000;
  std::size_t levels = 8;
  double wire_res = 40.0;            ///< per net [ohm]
  double wire_cap = 3e-15;           ///< per net grounded [F]
  double coupling_prob = 0.35;       ///< chance a net couples to a grid neighbour
  double coupling_cap_min = 1e-15;   ///< [F]
  double coupling_cap_max = 5e-15;   ///< [F]
  double input_spread = 400e-12;     ///< inputs arrive across [0, spread]
  double input_window = 60e-12;      ///< arrival uncertainty per input [s]
  double dff_fraction = 0.0;         ///< fraction of outputs captured by DFFs
  double clock_period = 2e-9;
  std::uint64_t seed = 7;
};

[[nodiscard]] Generated make_rand_logic(const lib::Library& library,
                                        const RandLogicConfig& cfg);

}  // namespace nw::gen
