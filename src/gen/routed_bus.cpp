#include "gen/routed_bus.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nw::gen {

RoutedGenerated make_routed_bus(const lib::Library& library, const extract::Tech& tech,
                                const RoutedBusConfig& cfg) {
  if (cfg.bits < 2) throw std::invalid_argument("make_routed_bus: need >= 2 bits");
  if (cfg.segments < 1) throw std::invalid_argument("make_routed_bus: need >= 1 segment");
  if (cfg.pitch <= cfg.width) {
    throw std::invalid_argument("make_routed_bus: pitch must exceed width");
  }

  RoutedGenerated out{net::Design(library, "rbus" + std::to_string(cfg.bits)),
                      para::Parasitics(0), sta::Options{}, {}};
  net::Design& d = out.design;
  Rng rng(cfg.seed);

  // Netlist: port -> wire -> INV -> out port (one receiver per line).
  std::vector<NetId> wire(cfg.bits);
  std::vector<extract::Route> routes;
  routes.reserve(cfg.bits);
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    wire[b] = d.add_net("w" + std::to_string(b));
    d.add_input_port("in" + std::to_string(b), wire[b],
                     {cfg.port_res, cfg.port_slew});
    const InstId rx = d.add_instance("rx" + std::to_string(b), "INV_X1");
    d.connect(rx, "A", wire[b]);
    const NetId y = d.add_net("y" + std::to_string(b));
    d.connect(rx, "Y", y);
    d.add_output_port("out" + std::to_string(b), y);
  }

  // Geometry: bit b runs horizontally at y = b * pitch, split into
  // `segments` collinear pieces; the receiver pin sits at the far end.
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    extract::Route r;
    r.net = wire[b];
    const double y = static_cast<double>(b) * cfg.pitch;
    const double step = cfg.length / static_cast<double>(cfg.segments);
    for (std::size_t s = 0; s < cfg.segments; ++s) {
      extract::Segment seg;
      seg.layer = cfg.layer;
      seg.width = cfg.width;
      seg.x0 = static_cast<double>(s) * step;
      seg.x1 = static_cast<double>(s + 1) * step;
      seg.y0 = seg.y1 = y;
      r.segments.push_back(seg);
    }
    r.driver_segment = 0;
    r.driver_at_start = true;
    r.pins.push_back({d.net(wire[b]).loads.front(), cfg.segments - 1, false});
    routes.push_back(std::move(r));
  }

  out.para = extract::extract(d, routes, tech, &out.stats);
  // Receiver-output nets carry a small lumped cap (no routed geometry).
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    const NetId y = *d.find_net("y" + std::to_string(b));
    out.para.net(y).add_cap(0, 1e-15);
  }

  out.sta_options.clock_period = cfg.clock_period;
  const std::size_t groups = std::max<std::size_t>(cfg.stagger_groups, 1);
  for (std::size_t b = 0; b < cfg.bits; ++b) {
    const double base = static_cast<double>(b % groups) * cfg.stagger +
                        rng.uniform(0.0, 10e-12);
    out.sta_options.input_arrivals["in" + std::to_string(b)] =
        Interval{base, base + cfg.window_width};
  }
  return out;
}

}  // namespace nw::gen
