#include "gen/randlogic.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nw::gen {

namespace {

struct PlacedNet {
  NetId id;
  double x = 0.0;
  double y = 0.0;
};

}  // namespace

Generated make_rand_logic(const lib::Library& library, const RandLogicConfig& cfg) {
  if (cfg.primary_inputs < 2) throw std::invalid_argument("make_rand_logic: need >= 2 PIs");
  if (cfg.levels < 1) throw std::invalid_argument("make_rand_logic: need >= 1 level");

  Generated out{net::Design(library, "rand" + std::to_string(cfg.gates)),
                para::Parasitics(0), sta::Options{}};
  net::Design& d = out.design;
  Rng rng(cfg.seed);

  static constexpr const char* kOne[] = {"INV_X1", "BUF_X1", "INV_X2"};
  static constexpr const char* kTwo[] = {"NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1",
                                         "XOR2_X1"};
  static constexpr const char* kThree[] = {"NAND3_X1", "NOR3_X1", "AOI21_X1",
                                           "OAI21_X1", "MUX2_X1"};

  std::vector<PlacedNet> placed;  // all signal nets with positions
  std::vector<NetId> level_nets;  // candidate fanin sources

  // Primary inputs.
  const bool sequential = cfg.dff_fraction > 0.0;
  NetId clock_root;
  for (std::size_t i = 0; i < cfg.primary_inputs; ++i) {
    const NetId n = d.add_net("pi" + std::to_string(i));
    net::PortDrive drive;
    drive.resistance = rng.uniform(300.0, 800.0);
    drive.slew = rng.uniform(15e-12, 60e-12);
    d.add_input_port("in" + std::to_string(i), n, drive);
    placed.push_back({n, rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    level_nets.push_back(n);
    const double base = rng.uniform(0.0, cfg.input_spread);
    out.sta_options.input_arrivals["in" + std::to_string(i)] =
        Interval{base, base + cfg.input_window};
  }
  if (sequential) {
    clock_root = d.add_net("clk");
    net::PortDrive drive;
    drive.resistance = 150.0;
    drive.slew = 15e-12;
    d.add_input_port("clk_in", clock_root, drive);
    out.sta_options.input_arrivals["clk_in"] = Interval{0.0, 0.0};
  }
  out.sta_options.clock_period = cfg.clock_period;

  // Levelized gates.
  const std::size_t per_level = std::max<std::size_t>(cfg.gates / cfg.levels, 1);
  std::vector<NetId> prev_level = level_nets;
  std::vector<NetId> last_level;
  std::size_t gate_idx = 0;
  for (std::size_t lvl = 0; lvl < cfg.levels && gate_idx < cfg.gates; ++lvl) {
    std::vector<NetId> this_level;
    const std::size_t count =
        (lvl + 1 == cfg.levels) ? cfg.gates - gate_idx : per_level;
    for (std::size_t g = 0; g < count && gate_idx < cfg.gates; ++g, ++gate_idx) {
      std::size_t n_inputs = 1;
      if (prev_level.size() >= 3 && rng.chance(0.2)) {
        n_inputs = 3;
      } else if (prev_level.size() >= 2 && rng.chance(0.6)) {
        n_inputs = 2;
      }
      const char* cell = (n_inputs == 3)   ? kThree[rng.below(std::size(kThree))]
                         : (n_inputs == 2) ? kTwo[rng.below(std::size(kTwo))]
                                           : kOne[rng.below(std::size(kOne))];
      const InstId inst = d.add_instance("g" + std::to_string(gate_idx), cell);
      // Distinct fanin nets per pin (retry a few times, then scan).
      static constexpr const char* kPins[] = {"A", "B", "C"};
      std::vector<NetId> chosen;
      for (std::size_t pi = 0; pi < n_inputs; ++pi) {
        NetId pick = prev_level[rng.below(prev_level.size())];
        for (int attempt = 0; attempt < 4; ++attempt) {
          const bool dup =
              std::find(chosen.begin(), chosen.end(), pick) != chosen.end();
          if (!dup) break;
          pick = prev_level[rng.below(prev_level.size())];
        }
        if (std::find(chosen.begin(), chosen.end(), pick) != chosen.end()) {
          for (const NetId cand : prev_level) {
            if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
              pick = cand;
              break;
            }
          }
        }
        chosen.push_back(pick);
        d.connect(inst, kPins[pi], pick);
      }
      const NetId y = d.add_net("n" + std::to_string(gate_idx));
      d.connect(inst, "Y", y);
      placed.push_back({y, rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
      this_level.push_back(y);
    }
    // Next level draws from this level plus a sprinkling of older nets.
    prev_level = this_level;
    for (std::size_t k = 0; k < this_level.size() / 4 + 1 && !level_nets.empty(); ++k) {
      prev_level.push_back(level_nets[rng.below(level_nets.size())]);
    }
    for (const auto n : this_level) level_nets.push_back(n);
    last_level = this_level;
  }

  // Sinks: DFF capture for a fraction, output ports for the rest. Unused
  // intermediate nets also get ports so the design lints clean.
  const std::size_t nets_before_sinks = d.net_count();
  std::vector<bool> has_load(nets_before_sinks, false);
  for (std::size_t i = 0; i < nets_before_sinks; ++i) {
    const net::Net& n = d.net(NetId{i});
    has_load[i] = !n.loads.empty();
  }
  std::size_t port_idx = 0;
  std::size_t dff_idx = 0;
  std::vector<InstId> clock_sinks;
  for (std::size_t i = 0; i < nets_before_sinks; ++i) {
    if (has_load[i]) continue;
    const NetId n{i};
    if (sequential && clock_root.valid() && n == clock_root) continue;
    if (sequential && rng.chance(cfg.dff_fraction)) {
      const InstId ff = d.add_instance("ff" + std::to_string(dff_idx), "DFF_X1");
      d.connect(ff, "D", n);
      const NetId q = d.add_net("q" + std::to_string(dff_idx));
      d.connect(ff, "Q", q);
      d.add_output_port("qo" + std::to_string(dff_idx), q);
      clock_sinks.push_back(ff);
      ++dff_idx;
    } else {
      d.add_output_port("out" + std::to_string(port_idx++), n);
    }
  }

  // Clock tree: a couple of buffer stages fanning out to all DFF CK pins.
  if (sequential) {
    if (clock_sinks.empty()) {
      d.add_output_port("clk_unused", clock_root);
    } else {
      const std::size_t fanout_per_buf = 8;
      std::size_t buf_idx = 0;
      std::vector<NetId> leaves;
      const std::size_t n_bufs = (clock_sinks.size() + fanout_per_buf - 1) / fanout_per_buf;
      for (std::size_t b = 0; b < n_bufs; ++b) {
        const InstId buf = d.add_instance("cbuf" + std::to_string(buf_idx), "BUF_X2");
        d.connect(buf, "A", clock_root);
        const NetId leaf = d.add_net("clk_l" + std::to_string(buf_idx));
        d.connect(buf, "Y", leaf);
        leaves.push_back(leaf);
        ++buf_idx;
      }
      for (std::size_t s = 0; s < clock_sinks.size(); ++s) {
        d.connect(clock_sinks[s], "CK", leaves[s / fanout_per_buf]);
      }
    }
  }

  // Parasitics: one RC segment per placed net (driver -> far node with the
  // first load attached), lumped caps for the rest.
  out.para = para::Parasitics(d.net_count());
  para::Parasitics& p = out.para;
  std::vector<std::uint32_t> far_node(d.net_count(), 0);
  for (const auto& pn : placed) {
    para::RcNet& rc = p.net(pn.id);
    rc.add_cap(0, 0.5 * cfg.wire_cap);
    const std::uint32_t far = rc.add_node(0.5 * cfg.wire_cap);
    rc.add_res(0, far, cfg.wire_res);
    far_node[pn.id.index()] = far;
    const net::Net& n = d.net(pn.id);
    if (!n.loads.empty()) rc.attach_pin(far, n.loads.front());
  }
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    para::RcNet& rc = p.net(NetId{i});
    if (rc.node_count() == 1 && rc.total_ground_cap() == 0.0) rc.add_cap(0, 1e-15);
  }

  // Coupling from placement proximity: sort by x, couple near neighbours.
  std::sort(placed.begin(), placed.end(),
            [](const PlacedNet& a, const PlacedNet& b) { return a.x < b.x; });
  for (std::size_t i = 0; i + 1 < placed.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(placed.size(), i + 4); ++j) {
      const double dx = placed[j].x - placed[i].x;
      const double dy = std::abs(placed[j].y - placed[i].y);
      if (dx * dx + dy * dy > 0.002) continue;
      if (!rng.chance(cfg.coupling_prob)) continue;
      const double c = rng.uniform(cfg.coupling_cap_min, cfg.coupling_cap_max);
      p.add_coupling(placed[i].id, far_node[placed[i].id.index()], placed[j].id,
                     far_node[placed[j].id.index()], c);
    }
  }
  return out;
}

}  // namespace nw::gen
