#include "gen/pipeline.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nw::gen {

Generated make_pipeline(const lib::Library& library, const PipelineConfig& cfg) {
  if (cfg.paths < 2) throw std::invalid_argument("make_pipeline: need >= 2 paths");
  if (cfg.min_depth < 1 || cfg.max_depth < cfg.min_depth) {
    throw std::invalid_argument("make_pipeline: bad depth range");
  }

  Generated out{net::Design(library, "pipe" + std::to_string(cfg.paths)),
                para::Parasitics(0), sta::Options{}};
  net::Design& d = out.design;
  Rng rng(cfg.seed);

  // Clock: port -> root buffer -> per-group leaf buffers.
  const NetId clk_in = d.add_net("clk_in");
  d.add_input_port("clk", clk_in, {150.0, 15e-12});
  const InstId root_buf = d.add_instance("cbuf_root", "BUF_X2");
  d.connect(root_buf, "A", clk_in);
  const NetId clk_root = d.add_net("clk_root");
  d.connect(root_buf, "Y", clk_root);
  const std::size_t fanout = 8;
  const std::size_t n_leaves = (2 * cfg.paths + fanout - 1) / fanout;
  std::vector<NetId> clk_leaf(n_leaves);
  for (std::size_t l = 0; l < n_leaves; ++l) {
    const InstId buf = d.add_instance("cbuf" + std::to_string(l), "BUF_X2");
    d.connect(buf, "A", clk_root);
    clk_leaf[l] = d.add_net("clk_l" + std::to_string(l));
    d.connect(buf, "Y", clk_leaf[l]);
  }
  auto leaf_for = [&](std::size_t sink_idx) { return clk_leaf[sink_idx / fanout]; };

  // Paths.
  std::vector<NetId> capture_net(cfg.paths);
  std::size_t clock_sink = 0;
  for (std::size_t pth = 0; pth < cfg.paths; ++pth) {
    const std::string ps = std::to_string(pth);
    // Launch flop fed from a primary input.
    const NetId din = d.add_net("din" + ps);
    d.add_input_port("d" + ps, din, {400.0, 25e-12});
    const InstId launch = d.add_instance("lff" + ps, "DFF_X1");
    d.connect(launch, "D", din);
    d.connect(launch, "CK", leaf_for(clock_sink++));
    NetId cur = d.add_net("lq" + ps);
    d.connect(launch, "Q", cur);

    // Combinational chain of random depth. Drive strengths alternate per
    // path: even paths end in a weak X1 (weakly held victims), odd paths in
    // a strong X4 (fast-edged aggressors) — the classic weak-victim /
    // strong-aggressor crosstalk pattern.
    const auto depth = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(cfg.min_depth),
                  static_cast<std::int64_t>(cfg.max_depth)));
    for (std::size_t s = 0; s < depth; ++s) {
      const bool last = s + 1 == depth;
      const char* cell = last ? (pth % 2 == 0 ? "INV_X1" : "INV_X4")
                              : (s % 2 == 0 ? "INV_X1" : "BUF_X1");
      const InstId g = d.add_instance("p" + ps + "_g" + std::to_string(s), cell);
      d.connect(g, "A", cur);
      cur = d.add_net("p" + ps + "_n" + std::to_string(s));
      d.connect(g, "Y", cur);
    }
    capture_net[pth] = cur;

    // Capture element (flop or transparent latch) and observation port.
    const InstId cap = d.add_instance(
        "cff" + ps, cfg.latch_capture ? "LATCH_X1" : "DFF_X1");
    d.connect(cap, "D", cur);
    d.connect(cap, cfg.latch_capture ? "EN" : "CK", leaf_for(clock_sink++));
    const NetId q = d.add_net("cq" + ps);
    d.connect(cap, "Q", q);
    d.add_output_port("q" + ps, q);

    out.sta_options.input_arrivals["d" + ps] = Interval{0.0, 50e-12};
  }
  out.sta_options.clock_period = cfg.clock_period;

  // Parasitics: capture nets get an RC segment; everything else lumped.
  out.para = para::Parasitics(d.net_count());
  para::Parasitics& p = out.para;
  std::vector<std::uint32_t> far_node(cfg.paths, 0);
  for (std::size_t pth = 0; pth < cfg.paths; ++pth) {
    para::RcNet& rc = p.net(capture_net[pth]);
    rc.add_cap(0, 0.5 * cfg.wire_cap);
    const std::uint32_t far = rc.add_node(0.5 * cfg.wire_cap);
    rc.add_res(0, far, cfg.wire_res);
    far_node[pth] = far;
    const net::Net& n = d.net(capture_net[pth]);
    if (!n.loads.empty()) rc.attach_pin(far, n.loads.front());
  }
  for (std::size_t i = 0; i < d.net_count(); ++i) {
    para::RcNet& rc = p.net(NetId{i});
    if (rc.node_count() == 1 && rc.total_ground_cap() == 0.0) rc.add_cap(0, 1.5e-15);
  }
  // Neighbouring capture nets couple (victims and aggressors alike); the
  // second neighbour couples at 60% — routed side-by-side data buses.
  for (std::size_t pth = 0; pth + 1 < cfg.paths; ++pth) {
    p.add_coupling(capture_net[pth], far_node[pth], capture_net[pth + 1],
                   far_node[pth + 1], cfg.coupling_cap);
    if (pth + 2 < cfg.paths) {
      p.add_coupling(capture_net[pth], far_node[pth], capture_net[pth + 2],
                     far_node[pth + 2], 0.6 * cfg.coupling_cap);
    }
  }
  return out;
}

}  // namespace nw::gen
