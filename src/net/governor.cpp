#include "net/governor.hpp"

#include <algorithm>
#include <cmath>

namespace nw::net {

LoadGovernor::LoadGovernor(Config config, obs::Registry& reg)
    : cfg_(config),
      ewma_ms_(config.seed_ewma_ms),
      admitted_(reg.counter(kMetricAdmitted, "analyses admitted through the gate",
                            /*deterministic=*/false)),
      shed_(reg.counter(kMetricShed, "requests shed with 'overloaded'",
                        /*deterministic=*/false)),
      inflight_g_(reg.gauge(kMetricInflight, "analyses holding a slot now", "",
                            /*deterministic=*/false)),
      waiting_g_(reg.gauge(kMetricWaiting, "admissions queued behind full slots", "",
                           /*deterministic=*/false)),
      analyze_ms_(reg.histogram(kMetricAnalyzeMs, "slot hold time per analysis",
                                {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000},
                                "ms", /*deterministic=*/false)) {
  cfg_.slots = std::max(cfg_.slots, 0);
  cfg_.max_waiters = std::max(cfg_.max_waiters, 0);
  if (ewma_ms_ <= 0.0 || !std::isfinite(ewma_ms_)) ewma_ms_ = 50.0;
}

LoadGovernor::Ticket LoadGovernor::admit(const std::string& /*cmd*/) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto shed = [&](int queue_position) {
    shed_.add();
    Ticket t;
    t.admitted = false;
    // Expected wait = positions ahead of us, each ~one analysis. Floor at
    // 1ms so a client never gets "retry immediately" while we are shedding.
    t.retry_after_ms = static_cast<int>(
        std::max(1.0, std::ceil(ewma_ms_ * std::max(1, queue_position))));
    t.reason = cfg_.slots == 0
                   ? "analysis slots disabled (maintenance mode)"
                   : "all " + std::to_string(cfg_.slots) + " analysis slots busy, " +
                         std::to_string(waiting_) + " waiting";
    return t;
  };
  if (cfg_.slots == 0) return shed(1);
  while (inflight_ >= cfg_.slots) {
    if (waiting_ >= cfg_.max_waiters) return shed(waiting_ + 1);
    ++waiting_;
    waiting_g_.set(static_cast<double>(waiting_));
    cv_.wait(lock, [this] { return inflight_ < cfg_.slots; });
    --waiting_;
    waiting_g_.set(static_cast<double>(waiting_));
  }
  ++inflight_;
  inflight_g_.set(static_cast<double>(inflight_));
  admitted_.add();
  return Ticket{};
}

void LoadGovernor::release(double analyze_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_ = std::max(0, inflight_ - 1);
    inflight_g_.set(static_cast<double>(inflight_));
    if (analyze_ms >= 0.0 && std::isfinite(analyze_ms)) {
      constexpr double kAlpha = 0.3;  // responsive but not jumpy
      ewma_ms_ = (1.0 - kAlpha) * ewma_ms_ + kAlpha * analyze_ms;
      analyze_ms_.observe(analyze_ms);
      if (latency_window_ != nullptr) latency_window_->observe(analyze_ms);
    }
  }
  cv_.notify_one();
}

double LoadGovernor::ewma_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_ms_;
}

int LoadGovernor::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int LoadGovernor::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

void LoadGovernor::set_latency_window(obs::RotatingQuantile* window) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  latency_window_ = window;
}

}  // namespace nw::net
