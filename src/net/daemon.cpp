#include "net/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "noise/progress.hpp"
#include "obs/log.hpp"
#include "obs/memtrack.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/tracer.hpp"
#include "session/json.hpp"
#include "session/protocol.hpp"
#include "session/reqobs.hpp"

namespace nw::net {

namespace {

/// Telemetry series, in ring order. Counters stay cumulative (consumers
/// difference them for trends); gauges/quantiles are instantaneous.
constexpr const char* kSeriesNames[] = {
    "queue_depth",     "active",          "accepted",        "handled",
    "shed",            "inflight",        "waiting",         "analyze_ewma_ms",
    "analyze_p50_ms",  "analyze_p95_ms",  "rss_mb",          "session_cache_bytes",
    "journal_bytes",   "tracked_mb",
};

std::vector<std::string> series_names() {
  return {std::begin(kSeriesNames), std::end(kSeriesNames)};
}

/// Sub-windows of the rotating analyze-latency quantile. One rotation per
/// sampler tick, so the horizon is kLatencyWindows x sample_interval
/// (~10 s at the 250 ms default) — "p95 lately", not "p95 since boot".
constexpr std::size_t kLatencyWindows = 40;

bool is_cancel_line(const std::string& line) {
  if (line.find("cancel") == std::string::npos) return false;  // cheap reject
  const std::optional<session::Json> req = session::json_parse(line);
  if (!req || !req->is_object()) return false;
  const session::Json* cmd = req->find("cmd");
  return cmd != nullptr && cmd->is_string() && cmd->as_string() == "cancel";
}

/// Bounded request-line queue between a connection's reader and worker.
/// `cancel` lines bypass the bound (force) — a client must always be able
/// to cancel the analysis that is filling its own queue.
class ConnQueue {
 public:
  ConnQueue(std::size_t max_queued, std::atomic<std::int64_t>& global_depth,
            obs::Gauge& depth_gauge)
      : max_queued_(max_queued), global_depth_(global_depth),
        depth_gauge_(depth_gauge) {}

  ~ConnQueue() {
    // Lines still queued at teardown (drain swallowed them) release here.
    obs::MemTracker::account(obs::MemAccountId::kDaemonQueues).release(charged_);
  }

  /// False when the queue is full (line left untouched for the reject
  /// response); `force` bypasses the bound.
  bool push(std::string& line, bool force) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return true;  // draining: swallow silently
      if (!force && max_queued_ > 0 && lines_.size() >= max_queued_) return false;
      charge_bytes(line.size());
      lines_.push_back(std::move(line));
      bump_depth(+1);
    }
    cv_.notify_one();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_one();
  }

  /// Blocking pop; false once closed and drained (EOF).
  bool pop(std::string& line) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !lines_.empty() || closed_; });
    if (lines_.empty()) return false;
    line = std::move(lines_.front());
    lines_.pop_front();
    release_bytes(line.size());
    bump_depth(-1);
    return true;
  }

  /// Remove and return the earliest queued `cancel` request, if any.
  std::optional<std::string> take_cancel() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lines_.begin(); it != lines_.end(); ++it) {
      if (!is_cancel_line(*it)) continue;
      std::string line = std::move(*it);
      lines_.erase(it);
      release_bytes(line.size());
      bump_depth(-1);
      return line;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
  }

 private:
  void bump_depth(std::int64_t delta) {
    const std::int64_t now = global_depth_.fetch_add(delta) + delta;
    depth_gauge_.set(static_cast<double>(now));
  }

  // Queued-line payload accounting (called under mutex_): the global
  // "daemon_queues" account aggregates across connections; the per-queue
  // charged total lets the destructor release exactly what this queue
  // still holds.
  void charge_bytes(std::size_t n) {
    obs::MemTracker::account(obs::MemAccountId::kDaemonQueues).charge(n);
    charged_ += n;
  }
  void release_bytes(std::size_t n) {
    obs::MemTracker::account(obs::MemAccountId::kDaemonQueues).release(n);
    charged_ -= n;
  }

  std::size_t max_queued_;
  std::atomic<std::int64_t>& global_depth_;
  obs::Gauge& depth_gauge_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  std::size_t charged_ = 0;  ///< queued-line bytes currently charged
  bool closed_ = false;
};

/// Write one line to a connection under its write mutex (responses,
/// progress events, and reader-side rejects must never interleave).
void write_line(std::ostream& out, std::mutex& write_mu, const std::string& line) {
  const std::lock_guard<std::mutex> lock(write_mu);
  out << line << '\n';
  out.flush();
}

std::string overloaded_response(const session::Json& id, const std::string& message,
                                int retry_after_ms) {
  session::Json err = session::Json::object();
  err.set("code", "overloaded");
  err.set("message", message);
  err.set("retry_after_ms", retry_after_ms);
  session::Json resp = session::Json::object();
  resp.set("id", id);
  resp.set("ok", false);
  resp.set("error", std::move(err));
  return resp.dump();
}

session::Json request_id_of(const std::string& line) {
  session::Json id;
  if (const std::optional<session::Json> req = session::json_parse(line)) {
    if (req->is_object()) {
      if (const session::Json* rid = req->find("id")) id = *rid;
    }
  }
  return id;
}

/// Per-connection progress sink: streams progress events (when enabled)
/// and intercepts queued `cancel` requests mid-analyze. Runs on the
/// connection's worker thread only; writes take the connection's write
/// mutex so reader-side rejects never interleave with an event line.
class ConnProgress final : public noise::ProgressSink {
 public:
  ConnProgress(ConnQueue& queue, std::ostream& out, std::mutex& write_mu,
               bool emit_events)
      : queue_(queue), out_(out), write_mu_(write_mu), emit_events_(emit_events) {}

  void on_progress(const noise::Progress& p) override {
    if (!emit_events_) return;
    session::Json o = session::Json::object();
    o.set("event", "progress");
    o.set("phase", p.phase);
    o.set("iteration", p.iteration);
    o.set("completed", p.completed);
    o.set("total", p.total);
    o.set("level", p.level);
    o.set("elapsed_ms", p.phase_elapsed_s * 1e3);
    o.set("eta_ms", p.eta_s * 1e3);
    write_line(out_, write_mu_, o.dump());
  }

  bool cancel_requested() override {
    if (cancelled_) return true;
    const std::optional<std::string> line = queue_.take_cancel();
    if (!line) return false;
    // Answer the cancel out-of-band, echoing its id; the analyzing request
    // in flight gets its own "cancelled" error response from the protocol.
    session::Json data = session::Json::object();
    data.set("cancelled", true);
    session::Json resp = session::Json::object();
    resp.set("id", request_id_of(*line));
    resp.set("ok", true);
    resp.set("data", std::move(data));
    write_line(out_, write_mu_, resp.dump());
    cancelled_ = true;
    return true;
  }

  /// Re-arm before each request: a consumed cancel only aborts the
  /// analysis it was consumed against.
  void begin_request() { cancelled_ = false; }

 private:
  ConnQueue& queue_;
  std::ostream& out_;
  std::mutex& write_mu_;
  bool emit_events_;
  bool cancelled_ = false;
};

}  // namespace

/// One live client connection: socket stream, bounded request queue, and
/// the reader/worker thread pair. Owned by the accept thread (conns_).
struct Daemon::Connection {
  Connection(std::uint64_t cid, int fd, int recv_timeout_ms, std::size_t max_queued,
             std::atomic<std::int64_t>& global_depth, obs::Gauge& depth_gauge)
      : id(cid),
        stream(fd, recv_timeout_ms),
        queue(max_queued, global_depth, depth_gauge) {}

  std::uint64_t id;
  SocketStream stream;
  std::mutex write_mu;
  ConnQueue queue;
  std::thread reader;
  std::thread worker;
  std::atomic<bool> done{false};

  // `watch` streamer state. Started/stopped only from the worker thread
  // (the dispatching thread) and the worker's teardown, so start/stop
  // never race each other; the mutex/cv just wake the streamer.
  std::thread watcher;
  std::mutex watch_mu;
  std::condition_variable watch_cv;
  bool watch_stop = false;
  int watch_period_ms = 0;
  std::uint64_t watch_seq = 0;
};

Daemon::Daemon(DaemonConfig config, std::shared_ptr<const Design> design,
               std::shared_ptr<const para::Parasitics> parasitics)
    : cfg_(std::move(config)),
      design_(std::move(design)),
      para_(std::move(parasitics)),
      governor_(LoadGovernor::Config{cfg_.analysis_slots, cfg_.max_waiters, 50.0},
                reg_),
      analyze_window_({1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000},
                      kLatencyWindows),
      ring_(series_names(), cfg_.sample_capacity),
      accepted_(reg_.counter(kMetricAccepted, "connections accepted",
                             /*deterministic=*/false)),
      rejected_(reg_.counter(kMetricRejected, "connections rejected at the cap",
                             /*deterministic=*/false)),
      idle_closed_(reg_.counter(kMetricIdleClosed, "connections closed for idleness",
                                /*deterministic=*/false)),
      handled_(reg_.counter(kMetricHandled, "requests answered across connections",
                            /*deterministic=*/false)),
      queue_rejected_(reg_.counter(kMetricQueueRejected,
                                   "requests shed at a full per-connection queue",
                                   /*deterministic=*/false)),
      shed_(reg_.counter(LoadGovernor::kMetricShed, "requests shed with 'overloaded'",
                         /*deterministic=*/false)),
      active_g_(reg_.gauge(kMetricActive, "connections being served now", "",
                           /*deterministic=*/false)),
      queue_depth_g_(reg_.gauge(kMetricQueueDepth,
                                "request lines queued across connections", "",
                                /*deterministic=*/false)),
      prewarm_ms_g_(reg_.gauge(kMetricPrewarmMs, "startup seed analysis wall time",
                               "ms", /*deterministic=*/false)) {
  if (design_ == nullptr || para_ == nullptr) {
    throw std::invalid_argument("Daemon: design/parasitics must not be null");
  }
  if (cfg_.max_connections < 1) cfg_.max_connections = 1;
  if (cfg_.min_watch_period_ms < 1) cfg_.min_watch_period_ms = 1;
  governor_.set_latency_window(&analyze_window_);
  if (cfg_.sample_interval_ms > 0) {
    sampler_ = std::make_unique<obs::Sampler>(
        ring_, [this] { return sample_now(); }, cfg_.sample_interval_ms);
  }
}

Daemon::~Daemon() {
  if (started_) stop();
}

void Daemon::start() {
  if (started_) throw std::logic_error("Daemon::start() called twice");
  listener_.open(cfg_.listen);
  // Prewarm: one full analysis on the shared base, exported as the seed
  // every connection adopts — connect→query is then a cache hit, never a
  // per-connection full analyze.
  const auto t0 = std::chrono::steady_clock::now();
  {
    session::Session prewarm(design_, para_, cfg_.session);
    seed_ = prewarm.export_seed();
  }
  prewarm_ms_g_.set(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  started_ = true;
  start_tp_ = std::chrono::steady_clock::now();
  if (sampler_) sampler_->start();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Daemon::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Daemon::stop() {
  request_drain();
  wait();
}

void Daemon::accept_loop() {
  obs::Tracer::set_thread_name("daemon-accept");
  while (!draining()) {
    int fd = -1;
    try {
      fd = listener_.accept(/*timeout_ms=*/100);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "noisewin daemon: accept failed: %s\n", e.what());
      break;
    }
    reap_finished(/*join_all=*/false);
    if (fd < 0) continue;
    if (static_cast<int>(conns_.size()) >= cfg_.max_connections) {
      reject_connection(fd);
      continue;
    }
    accepted_.add();
    active_g_.set(static_cast<double>(active_.fetch_add(1) + 1));
    const int timeout_ms = cfg_.idle_timeout_s > 0 ? cfg_.idle_timeout_s * 1000 : 0;
    auto conn = std::make_unique<Connection>(next_conn_id_++, fd, timeout_ms,
                                             cfg_.max_queued, queue_depth_,
                                             queue_depth_g_);
    Connection* c = conn.get();
    c->worker = std::thread([this, c] { serve_connection(*c); });
    c->reader = std::thread([this, c] { reader_loop(*c); });
    conns_.push_back(std::move(conn));
  }
  // Drain: stop listening (unlinks a unix socket), wake every blocked
  // reader via socket shutdown, then let workers finish what is queued.
  listener_.close();
  for (const auto& c : conns_) c->stream.shutdown_both();
  reap_finished(/*join_all=*/true);
  // Sampler stops last so the drain itself lands in the timeseries.
  if (sampler_) sampler_->stop();
}

void Daemon::reader_loop(Connection& conn) {
  obs::Tracer::set_thread_name("conn-" + std::to_string(conn.id) + "-rx");
  obs::set_log_connection(conn.id);
  std::string line;
  while (std::getline(conn.stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF clients
    if (line.empty()) continue;  // blank keep-alives get no response
    const bool force = is_cancel_line(line);
    if (!conn.queue.push(line, force)) {
      // Queue full: shed here, on the reader, so a client flooding its own
      // queue gets immediate structured backpressure while the worker keeps
      // serving what was admitted.
      queue_rejected_.add();
      shed_.add();
      const std::size_t depth = conn.queue.depth();
      const int retry = static_cast<int>(std::max(
          1.0, std::ceil(governor_.ewma_ms() * static_cast<double>(depth + 1))));
      write_line(conn.stream, conn.write_mu,
                 overloaded_response(
                     request_id_of(line),
                     "request queue full (" + std::to_string(depth) + " queued, cap " +
                         std::to_string(cfg_.max_queued) + ")",
                     retry));
    }
  }
  if (conn.stream.timed_out()) idle_closed_.add();
  conn.queue.close();
}

void Daemon::serve_connection(Connection& conn) {
  const std::string name = "conn-" + std::to_string(conn.id);
  obs::Tracer::set_thread_name(name);
  obs::profile_set_thread_name(name);
  obs::set_log_connection(conn.id);
  try {
    session::Session session(design_, para_, cfg_.session);
    if (!session.adopt_seed(seed_)) {
      std::fprintf(stderr, "noisewin daemon: connection %llu could not adopt seed\n",
                   static_cast<unsigned long long>(conn.id));
    }
    session::RequestContext reqobs(session.registry(), cfg_.slow_ms);
    // Correlation + aggregation: slowlog entries carry this connection's
    // id, and latency observations mirror into the daemon registry so the
    // `stats` command sees fleet-wide request_ms_* histograms.
    reqobs.set_connection(conn.id);
    reqobs.set_aggregate(&reg_);
    session::Protocol proto(session, &reqobs);
    session::ServerCaps caps;
    caps.transport = bound_endpoint().kind == Endpoint::Kind::kUnix ? "unix" : "tcp";
    caps.daemon = true;
    caps.connection_id = conn.id;
    caps.max_queued = cfg_.max_queued;
    caps.max_connections = cfg_.max_connections;
    caps.analysis_slots = cfg_.analysis_slots;
    caps.idle_timeout_s = cfg_.idle_timeout_s;
    proto.set_caps(std::move(caps));
    proto.set_gate(&governor_);
    proto.set_shutdown_handler([this] {
      request_drain();
      session::Json o = session::Json::object();
      o.set("draining", true);
      return o;
    });
    proto.set_stats_augmenter(
        [this](const session::Json& args) { return stats_sections(args); });
    proto.set_watch_handler([this, &conn](const session::Json& args) {
      return watch_command(conn, args);
    });
    // Sink always installed: cancel interception must work even with
    // progress events off (results are sink-invariant, tested property).
    ConnProgress progress(conn.queue, conn.stream, conn.write_mu,
                          cfg_.progress_events);
    session.set_progress_sink(&progress);
    std::string line;
    while (conn.queue.pop(line)) {
      progress.begin_request();
      const std::string response = proto.handle_line(line);
      write_line(conn.stream, conn.write_mu, response);
      handled_.add();
    }
    session.set_progress_sink(nullptr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "noisewin daemon: connection %llu failed: %s\n",
                 static_cast<unsigned long long>(conn.id), e.what());
  }
  // Teardown order: stop any watch streamer first (it writes to the
  // stream), then wake the reader if the worker died early.
  stop_watch(conn);
  conn.stream.shutdown_both();
  active_g_.set(static_cast<double>(active_.fetch_sub(1) - 1));
  conn.done.store(true, std::memory_order_release);
}

void Daemon::reap_finished(bool join_all) {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& c = **it;
    if (!join_all && !c.done.load(std::memory_order_acquire)) {
      ++it;
      continue;
    }
    if (c.reader.joinable()) c.reader.join();
    if (c.worker.joinable()) c.worker.join();
    it = conns_.erase(it);
  }
}

void Daemon::reject_connection(int fd) {
  rejected_.add();
  // One structured error line, then close — a client sees why instead of a
  // silent RST. The stream dtor closes the fd.
  SocketStream s(fd);
  const int retry = static_cast<int>(std::max(1.0, std::ceil(governor_.ewma_ms())));
  s << overloaded_response(session::Json{},
                           "connection limit (" + std::to_string(cfg_.max_connections) +
                               ") reached",
                           retry)
    << '\n';
  s.flush();
}

session::Json Daemon::daemon_section() const {
  session::Json o = session::Json::object();
  o.set("accepted", static_cast<double>(accepted_.value()));
  o.set("active", active_.load());
  o.set("rejected", static_cast<double>(rejected_.value()));
  o.set("idle_closed", static_cast<double>(idle_closed_.value()));
  o.set("handled", static_cast<double>(handled_.value()));
  o.set("shed", static_cast<double>(shed_.value()));
  o.set("queue_rejected", static_cast<double>(queue_rejected_.value()));
  o.set("queue_depth", static_cast<double>(queue_depth_.load()));
  o.set("analyze_ewma_ms", governor_.ewma_ms());
  o.set("max_connections", cfg_.max_connections);
  o.set("analysis_slots", cfg_.analysis_slots);
  o.set("max_queued", cfg_.max_queued);
  return o;
}

std::string Daemon::stats_section_json() const { return daemon_section().dump(); }

std::string Daemon::timeseries_section_json(std::size_t last_n) const {
  return ring_.snapshot(last_n).json();
}

obs::TimeSeriesSnapshot Daemon::timeseries_snapshot(std::size_t last_n) const {
  return ring_.snapshot(last_n);
}

std::vector<double> Daemon::sample_now() {
  // Read-only against serving state: the determinism property (analysis
  // results identical with sampling on/off) depends on it.
  const obs::ResourceSample rss = obs::sample_resources();
  const double queue_depth = static_cast<double>(queue_depth_.load());
  const double active = active_.load();
  const double inflight = governor_.inflight();
  std::vector<double> v;
  v.reserve(std::size(kSeriesNames));
  v.push_back(queue_depth);
  v.push_back(active);
  v.push_back(static_cast<double>(accepted_.value()));
  v.push_back(static_cast<double>(handled_.value()));
  v.push_back(static_cast<double>(shed_.value()));
  v.push_back(inflight);
  v.push_back(governor_.waiting());
  v.push_back(governor_.ewma_ms());
  v.push_back(analyze_window_.quantile(0.5));
  v.push_back(analyze_window_.quantile(0.95));
  v.push_back(static_cast<double>(rss.rss_bytes) / (1024.0 * 1024.0));
  // Tracked-heap series: the session accounts aggregate every live
  // connection's cache/journal footprint; tracked_mb sums all accounts.
  const double cache_bytes = static_cast<double>(
      obs::MemTracker::account(obs::MemAccountId::kSessionCache).current());
  const double journal_bytes = static_cast<double>(
      obs::MemTracker::account(obs::MemAccountId::kUndoJournal).current());
  const double tracked_bytes = static_cast<double>(obs::MemTracker::total_current());
  v.push_back(cache_bytes);
  v.push_back(journal_bytes);
  v.push_back(tracked_bytes / (1024.0 * 1024.0));
  analyze_window_.rotate();
  if (obs::trace_enabled()) {
    obs::Tracer::counter("queue_depth", queue_depth);
    obs::Tracer::counter("active_connections", active);
    obs::Tracer::counter("analyses_inflight", inflight);
    obs::Tracer::counter("tracked_bytes", tracked_bytes);
    obs::Tracer::counter("session_cache_bytes", cache_bytes);
    obs::Tracer::counter("journal_bytes", journal_bytes);
  }
  return v;
}

session::Json Daemon::live_json() {
  // One fresh sample keyed by series name (not recorded into the ring —
  // the sampler owns the ring's cadence; watch events are per-client).
  const obs::ResourceSample rss = obs::sample_resources();
  session::Json o = session::Json::object();
  o.set("queue_depth", static_cast<double>(queue_depth_.load()));
  o.set("active", active_.load());
  o.set("accepted", static_cast<double>(accepted_.value()));
  o.set("handled", static_cast<double>(handled_.value()));
  o.set("shed", static_cast<double>(shed_.value()));
  o.set("inflight", governor_.inflight());
  o.set("waiting", governor_.waiting());
  o.set("analyze_ewma_ms", governor_.ewma_ms());
  o.set("analyze_p50_ms", analyze_window_.quantile(0.5));
  o.set("analyze_p95_ms", analyze_window_.quantile(0.95));
  o.set("rss_mb", static_cast<double>(rss.rss_bytes) / (1024.0 * 1024.0));
  o.set("session_cache_bytes",
        static_cast<double>(
            obs::MemTracker::account(obs::MemAccountId::kSessionCache).current()));
  o.set("journal_bytes",
        static_cast<double>(
            obs::MemTracker::account(obs::MemAccountId::kUndoJournal).current()));
  o.set("tracked_mb",
        static_cast<double>(obs::MemTracker::total_current()) / (1024.0 * 1024.0));
  return o;
}

session::Json Daemon::stats_sections(const session::Json& args) {
  // Last-N samples on demand: {"samples": N} (default 60, clamped to the
  // ring bound; 0 = just the section metadata).
  std::size_t samples = 60;
  if (const session::Json* n = args.find("samples")) {
    if (!n->is_number() || n->as_number() < 0) {
      throw std::invalid_argument("'samples' must be a non-negative number");
    }
    samples = static_cast<std::size_t>(n->as_number());
  }
  samples = std::min(samples, ring_.capacity());
  session::Json o = session::Json::object();
  o.set("daemon", daemon_section());
  std::string err;
  std::optional<session::Json> ts = session::json_parse(
      samples == 0 ? ring_.snapshot(1).json() : ring_.snapshot(samples).json(),
      &err);
  if (samples == 0 && ts) {
    // Metadata only: strip the samples array down to empty.
    session::Json meta = session::Json::object();
    for (const auto& [k, v] : ts->members()) {
      if (k == "samples") continue;
      meta.set(k, v);
    }
    meta.set("samples", session::Json::array());
    ts = std::move(meta);
  }
  o.set("timeseries", ts ? std::move(*ts) : session::Json::object());
  // Fleet-wide per-command latency (aggregated request_ms_* histograms
  // mirrored by every connection's RequestContext).
  session::Json latency = session::Json::object();
  const std::string prefix = session::RequestContext::kLatencyPrefix;
  for (const obs::MetricSample& s : reg_.snapshot().samples) {
    if (s.kind != obs::MetricSample::Kind::kHistogram) continue;
    if (s.name.rfind(prefix, 0) != 0) continue;
    session::Json h = session::Json::object();
    h.set("count", static_cast<double>(s.hist.count));
    h.set("p50", obs::histogram_quantile(s.hist, 0.5));
    h.set("p95", obs::histogram_quantile(s.hist, 0.95));
    h.set("p99", obs::histogram_quantile(s.hist, 0.99));
    h.set("max", s.hist.max);
    latency.set(s.name.substr(prefix.size()), std::move(h));
  }
  o.set("latency", std::move(latency));
  // Live per-account heap breakdown — the same section shape the stats
  // JSON carries, so nwtop renders identical data online and offline.
  std::ostringstream mem;
  obs::write_memory_json(mem);
  std::optional<session::Json> mj = session::json_parse(mem.str());
  o.set("memory", mj ? std::move(*mj) : session::Json::object());
  return o;
}

session::Json Daemon::watch_command(Connection& conn, const session::Json& args) {
  std::string action = "start";
  if (const session::Json* a = args.find("action")) {
    if (!a->is_string()) {
      throw std::invalid_argument("'action' must be a string");
    }
    action = a->as_string();
  }
  int period_ms = 500;
  if (const session::Json* p = args.find("period_ms")) {
    if (!p->is_number() || p->as_number() < 1 || p->as_number() > 60000) {
      throw std::invalid_argument("'period_ms' must be a number in [1, 60000]");
    }
    period_ms = static_cast<int>(p->as_number());
  }
  // Per-connection rate cap: a client asking for a 1 ms firehose gets the
  // daemon's floor instead (reported back, not errored — the client can
  // see what it actually subscribed to).
  period_ms = std::max(period_ms, cfg_.min_watch_period_ms);
  if (action == "start") {
    start_watch(conn, period_ms);
  } else if (action == "stop") {
    stop_watch(conn);
  } else {
    throw std::invalid_argument("'action' must be start|stop");
  }
  session::Json o = session::Json::object();
  o.set("watching", conn.watcher.joinable());
  o.set("period_ms", action == "start" ? period_ms : 0);
  o.set("min_period_ms", cfg_.min_watch_period_ms);
  return o;
}

void Daemon::start_watch(Connection& conn, int period_ms) {
  stop_watch(conn);  // restart replaces the previous subscription
  conn.watch_stop = false;
  conn.watch_period_ms = period_ms;
  conn.watch_seq = 0;
  conn.watcher = std::thread([this, &conn] { watch_loop(conn); });
}

void Daemon::stop_watch(Connection& conn) {
  if (!conn.watcher.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(conn.watch_mu);
    conn.watch_stop = true;
  }
  conn.watch_cv.notify_all();
  conn.watcher.join();
}

void Daemon::watch_loop(Connection& conn) {
  obs::Tracer::set_thread_name("conn-" + std::to_string(conn.id) + "-watch");
  obs::set_log_connection(conn.id);
  std::unique_lock<std::mutex> lock(conn.watch_mu);
  while (!conn.watch_stop) {
    if (conn.watch_cv.wait_for(lock,
                               std::chrono::milliseconds(conn.watch_period_ms),
                               [&] { return conn.watch_stop; })) {
      return;
    }
    const std::uint64_t seq = conn.watch_seq++;
    lock.unlock();
    session::Json ev = session::Json::object();
    ev.set("event", "stats");
    ev.set("seq", static_cast<double>(seq));
    ev.set("t_ms", std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start_tp_)
                       .count());
    ev.set("daemon", live_json());
    write_line(conn.stream, conn.write_mu, ev.dump());
    const bool dead = !conn.stream;  // peer gone: stop streaming quietly
    lock.lock();
    if (dead) return;
  }
}

obs::RunMeta Daemon::meta() const {
  obs::RunMeta m;
  m.design = design_->name();
  m.mode = noise::to_string(cfg_.session.noise.mode);
  m.model = noise::to_string(cfg_.session.noise.model);
  m.options_digest = noise::options_digest(cfg_.session.noise);
  m.build = obs::build_version();
  if (seed_.result) {
    m.threads = seed_.result->run_meta.threads;
    m.iterations = seed_.result->run_meta.iterations;
  } else {
    m.threads = cfg_.session.noise.threads;
    m.iterations = 0;
  }
  return m;
}

std::uint64_t Daemon::connections_accepted() const noexcept {
  return accepted_.value();
}
std::uint64_t Daemon::connections_rejected() const noexcept {
  return rejected_.value();
}
std::uint64_t Daemon::requests_handled() const noexcept { return handled_.value(); }
std::uint64_t Daemon::requests_shed() const noexcept { return shed_.value(); }

}  // namespace nw::net
