// Multi-session network daemon: many concurrent JSONL clients over one
// shared, immutable design state.
//
// Threading model (one line per connection in a trace):
//   accept thread        poll-accept loop; reaps finished connections;
//                        owns drain (SIGTERM / `shutdown` command)
//   per-conn reader      getline → bounded request queue; full queue sheds
//                        with `overloaded` (cancel lines bypass the bound)
//   per-conn worker      Session (COW overlay over the shared base) +
//                        Protocol; pops the queue, writes responses
//   sampler thread       fixed-interval telemetry (obs/timeseries.hpp):
//                        reads daemon gauges into the bounded ring, rotates
//                        the analyze-latency window, emits trace counters
//   per-conn watcher     optional, started by the `watch` command: streams
//                        {"event":"stats",...} lines at a rate-capped period
//
// The design and parasitics load once; every connection's Session reads
// them through shared_ptr<const> and copies privately only on its first
// mutating edit (see Session's COW ctor). A prewarmed AnalysisSeed makes
// connect→query a cache hit — no per-connection full analysis.
//
// Admission control is layered: connection cap at accept, per-connection
// request-queue bound at the reader, and a LoadGovernor metering
// analysis-triggering commands across all connections. All three shed with
// structured `overloaded` errors carrying retry_after_ms — the daemon
// never stalls a well-behaved client behind a hostile one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/governor.hpp"
#include "net/socket.hpp"
#include "netlist/design.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "parasitics/rcnet.hpp"
#include "session/json.hpp"
#include "session/session.hpp"

namespace nw::net {

struct DaemonConfig {
  Endpoint listen;                ///< unix:<path> or tcp:<host>:<port>
  int max_connections = 32;       ///< concurrent clients before accept-shed
  std::size_t max_queued = 16;    ///< per-connection queued request lines
  int analysis_slots = 2;         ///< concurrent analyses (0 = shed all)
  int max_waiters = 8;            ///< admissions queued behind busy slots
  int idle_timeout_s = 300;       ///< silent-client disconnect (0 = never)
  double slow_ms = 100.0;         ///< per-connection slowlog threshold
  bool progress_events = true;    ///< stream progress event lines to clients
  int sample_interval_ms = 250;   ///< telemetry sampler period (0 = off)
  std::size_t sample_capacity = 512;  ///< timeseries ring bound (samples kept)
  int min_watch_period_ms = 50;   ///< per-connection `watch` rate cap (floor)
  session::SessionConfig session; ///< per-connection session settings
};

class Daemon {
 public:
  /// Shares ownership of the immutable base state with every connection.
  Daemon(DaemonConfig config, std::shared_ptr<const Design> design,
         std::shared_ptr<const para::Parasitics> parasitics);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen, prewarm the shared analysis seed (one full analysis),
  /// and launch the accept loop. Throws on bind/listen failure.
  void start();

  /// Ask the daemon to drain: stop accepting, let in-flight and queued
  /// requests finish, close connections. Async-signal-safe (only flips an
  /// atomic; the accept loop notices within its poll interval).
  void request_drain() noexcept { drain_.store(true, std::memory_order_relaxed); }

  /// Block until the accept loop has fully drained and every connection
  /// thread is joined.
  void wait();

  /// request_drain() + wait().
  void stop();

  [[nodiscard]] bool draining() const noexcept {
    return drain_.load(std::memory_order_relaxed);
  }

  /// Actual listen address (resolves tcp port 0). Valid after start().
  [[nodiscard]] const Endpoint& bound_endpoint() const noexcept {
    return listener_.bound_endpoint();
  }

  /// Daemon-level metrics (connection/shed counters, governor gauges).
  /// Per-connection engine metrics live in each connection's own session
  /// registry; this one aggregates the serving layer.
  [[nodiscard]] obs::Registry& registry() noexcept { return reg_; }

  /// The "daemon" extra section of the stats JSON (valid JSON object):
  /// connection counts, shed/queue-reject totals, queue depth, governor
  /// latency EWMA.
  [[nodiscard]] std::string stats_section_json() const;

  /// The "timeseries" extra section of the stats JSON (schema v4): the
  /// sampler's ring, last `last_n` samples (0 = everything retained).
  [[nodiscard]] std::string timeseries_section_json(std::size_t last_n = 0) const;

  /// Snapshot of the telemetry ring (tests + the live stats/watch paths).
  [[nodiscard]] obs::TimeSeriesSnapshot timeseries_snapshot(
      std::size_t last_n = 0) const;

  /// Identity block for the stats export (design/options of the shared base).
  [[nodiscard]] obs::RunMeta meta() const;

  // Convenience totals (tests + exit summary).
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept;
  [[nodiscard]] std::uint64_t connections_rejected() const noexcept;
  [[nodiscard]] std::uint64_t requests_handled() const noexcept;
  [[nodiscard]] std::uint64_t requests_shed() const noexcept;

  // Metric names (daemon registry; "daemon" stats section).
  static constexpr const char* kMetricAccepted = "daemon_connections_accepted";
  static constexpr const char* kMetricActive = "daemon_connections_active";
  static constexpr const char* kMetricRejected = "daemon_connections_rejected";
  static constexpr const char* kMetricIdleClosed = "daemon_connections_idle_closed";
  static constexpr const char* kMetricHandled = "daemon_requests_handled";
  static constexpr const char* kMetricQueueRejected = "daemon_queue_rejected";
  static constexpr const char* kMetricQueueDepth = "daemon_queue_depth";
  static constexpr const char* kMetricPrewarmMs = "daemon_prewarm_ms";

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection& conn);
  void serve_connection(Connection& conn);
  void reap_finished(bool join_all);
  void reject_connection(int fd);

  /// One telemetry sample (sampler thread): reads every live gauge, feeds
  /// the ring, rotates the latency window, emits trace counter events.
  [[nodiscard]] std::vector<double> sample_now();
  /// Current live gauges as an object keyed by series name (watch events).
  [[nodiscard]] session::Json live_json();
  /// The "daemon" section as a Json value (stats_section_json dumps it).
  [[nodiscard]] session::Json daemon_section() const;
  /// The `stats` command's daemon-side sections ("daemon", "timeseries",
  /// "latency"), merged into the response by the protocol's augmenter.
  [[nodiscard]] session::Json stats_sections(const session::Json& args);
  /// The `watch` command: subscribe/unsubscribe this connection's streamer.
  [[nodiscard]] session::Json watch_command(Connection& conn,
                                            const session::Json& args);
  void start_watch(Connection& conn, int period_ms);
  void stop_watch(Connection& conn);
  void watch_loop(Connection& conn);

  DaemonConfig cfg_;
  std::shared_ptr<const Design> design_;
  std::shared_ptr<const para::Parasitics> para_;
  session::AnalysisSeed seed_;

  Listener listener_;
  std::thread accept_thread_;
  std::atomic<bool> drain_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point start_tp_{};  ///< watch t_ms epoch

  std::vector<std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<int> active_{0};
  std::atomic<std::int64_t> queue_depth_{0};

  obs::Registry reg_;
  LoadGovernor governor_;
  obs::RotatingQuantile analyze_window_;  ///< fed by the governor's release
  obs::TimeSeriesRing ring_;
  std::unique_ptr<obs::Sampler> sampler_;
  obs::Counter& accepted_;
  obs::Counter& rejected_;
  obs::Counter& idle_closed_;
  obs::Counter& handled_;
  obs::Counter& queue_rejected_;
  obs::Counter& shed_;  ///< same metric LoadGovernor bumps (shared by name)
  obs::Gauge& active_g_;
  obs::Gauge& queue_depth_g_;
  obs::Gauge& prewarm_ms_g_;
};

}  // namespace nw::net
