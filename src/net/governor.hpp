// Admission control + load shedding for the daemon's analysis work.
//
// Analyses are the expensive requests (everything else is a map lookup or
// a metrics snapshot), so the governor meters exactly those: a fixed pool
// of analysis slots, a short bounded wait behind them, and structured
// shedding past that. The retry-after hint scales with the observed
// analysis latency (EWMA) times the queue position the request would have
// had — an honest estimate, not a constant.
//
// slots == 0 is maintenance mode: every analysis-triggering request sheds
// immediately (used by tests to exercise the overload path
// deterministically, and operationally to park a daemon while keeping
// cached queries alive).
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "session/protocol.hpp"

namespace nw::net {

class LoadGovernor final : public session::AnalysisGate {
 public:
  struct Config {
    int slots = 2;         ///< concurrent analyses admitted (0 = shed all)
    int max_waiters = 8;   ///< admissions allowed to queue behind full slots
    double seed_ewma_ms = 50.0;  ///< latency prior until real samples arrive
  };

  /// Registers its counters/gauges into `reg` (the daemon's registry).
  LoadGovernor(Config config, obs::Registry& reg);

  /// Blocks while all slots are busy and the wait queue is short; sheds
  /// with a retry-after hint otherwise. Thread-safe.
  [[nodiscard]] Ticket admit(const std::string& cmd) override;

  /// Return an admitted slot; `analyze_ms` updates the latency EWMA that
  /// prices future retry-after hints.
  void release(double analyze_ms) override;

  [[nodiscard]] double ewma_ms() const;

  /// Live occupancy, for the telemetry sampler (thread-safe reads).
  [[nodiscard]] int inflight() const;
  [[nodiscard]] int waiting() const;

  /// Also feed each released analysis latency into a rotating window (the
  /// daemon's, so the timeseries can report p50/p95 over the last few
  /// seconds instead of since-start). nullptr disables. Not owned; install
  /// before serving starts and keep alive while the governor runs.
  void set_latency_window(obs::RotatingQuantile* window) noexcept;

  // Metric names (in the daemon registry; surfaced by the "daemon"
  // stats-JSON section and tools/validate_obs.py).
  static constexpr const char* kMetricAdmitted = "daemon_analyses_admitted";
  static constexpr const char* kMetricShed = "daemon_requests_shed";
  static constexpr const char* kMetricInflight = "daemon_analyses_inflight";
  static constexpr const char* kMetricWaiting = "daemon_admissions_waiting";
  static constexpr const char* kMetricAnalyzeMs = "daemon_analyze_ms";

 private:
  Config cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
  int waiting_ = 0;
  double ewma_ms_;
  obs::RotatingQuantile* latency_window_ = nullptr;

  obs::Counter& admitted_;
  obs::Counter& shed_;
  obs::Gauge& inflight_g_;
  obs::Gauge& waiting_g_;
  obs::Histogram& analyze_ms_;
};

}  // namespace nw::net
