#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace nw::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long (" +
                                std::to_string(path.size()) + " bytes, max " +
                                std::to_string(sizeof(addr.sun_path) - 1) + "): " +
                                path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("tcp host must be an IPv4 address or 'localhost': " +
                                host);
  }
  return addr;
}

}  // namespace

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    if (ep.path.empty()) {
      throw std::invalid_argument("endpoint 'unix:' needs a socket path");
    }
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("endpoint 'tcp:' needs <host>:<port>: " + spec);
    }
    ep.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
      throw std::invalid_argument("bad tcp port '" + port_str + "' in " + spec);
    }
    ep.port = static_cast<int>(port);
    return ep;
  }
  throw std::invalid_argument(
      "endpoint must be unix:<path> or tcp:<host>:<port>, got '" + spec + "'");
}

// ---- Listener --------------------------------------------------------------

Listener::~Listener() { close(); }

void Listener::open(const Endpoint& endpoint, int backlog) {
  close();
  bound_ = endpoint;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(endpoint.path.c_str());  // stale socket from a crashed daemon
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("bind(" + endpoint.path + ")");
    }
    unlink_on_close_ = true;
  } else {
    const sockaddr_in addr = make_tcp_addr(endpoint.host, endpoint.port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_errno("bind(" + endpoint.to_string() + ")");
    }
  }
  if (::listen(fd_, backlog) != 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("listen(" + endpoint.to_string() + ")");
  }
  if (bound_.kind == Endpoint::Kind::kTcp && bound_.port == 0) {
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      bound_.port = ntohs(actual.sin_port);
    }
  }
}

int Listener::accept(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) return -1;
  if (ready < 0) {
    if (errno == EINTR) return -1;
    throw_errno("poll(listener)");
  }
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    // Transient per-connection failures (peer gone between poll and
    // accept, fd pressure) are a skipped accept, not a dead daemon.
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EMFILE || errno == ENFILE) {
      return -1;
    }
    throw_errno("accept");
  }
  return conn;
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    ::unlink(bound_.path.c_str());
    unlink_on_close_ = false;
  }
}

int connect_endpoint(const Endpoint& endpoint) {
  int fd = -1;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = make_unix_addr(endpoint.path);
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect(" + endpoint.to_string() + ")");
    }
  } else {
    const sockaddr_in addr = make_tcp_addr(endpoint.host, endpoint.port);
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("connect(" + endpoint.to_string() + ")");
    }
  }
  return fd;
}

// ---- FdStreambuf -----------------------------------------------------------

FdStreambuf::FdStreambuf(int fd, int recv_timeout_ms)
    : fd_(fd),
      recv_timeout_ms_(recv_timeout_ms),
      in_(std::make_unique<char[]>(kBufSize)),
      out_(std::make_unique<char[]>(kBufSize)) {
  setg(in_.get(), in_.get(), in_.get());
  setp(out_.get(), out_.get() + kBufSize);
}

FdStreambuf::~FdStreambuf() {
  (void)flush_out();
  if (fd_ >= 0) ::close(fd_);
}

void FdStreambuf::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

FdStreambuf::int_type FdStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (fd_ < 0) return traits_type::eof();
  if (recv_timeout_ms_ > 0) {
    pollfd pfd{fd_, POLLIN, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, recv_timeout_ms_);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      timed_out_ = true;
      return traits_type::eof();
    }
    if (ready < 0) return traits_type::eof();
  }
  ssize_t n;
  do {
    n = ::recv(fd_, in_.get(), kBufSize, 0);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return traits_type::eof();
  setg(in_.get(), in_.get(), in_.get() + n);
  return traits_type::to_int_type(*gptr());
}

bool FdStreambuf::send_all(const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t sent;
    do {
      sent = ::send(fd_, data, n, MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent <= 0) return false;
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool FdStreambuf::flush_out() {
  const std::size_t n = static_cast<std::size_t>(pptr() - pbase());
  if (n == 0) return true;
  const bool ok = fd_ >= 0 && send_all(pbase(), n);
  setp(out_.get(), out_.get() + kBufSize);
  return ok;
}

FdStreambuf::int_type FdStreambuf::overflow(int_type ch) {
  if (!flush_out()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreambuf::sync() { return flush_out() ? 0 : -1; }

std::streamsize FdStreambuf::xsputn(const char* s, std::streamsize n) {
  std::streamsize written = 0;
  while (written < n) {
    const std::streamsize room = epptr() - pptr();
    if (room == 0) {
      if (!flush_out()) return written;
      continue;
    }
    const std::streamsize chunk = std::min(room, n - written);
    std::memcpy(pptr(), s + written, static_cast<std::size_t>(chunk));
    pbump(static_cast<int>(chunk));
    written += chunk;
  }
  return written;
}

}  // namespace nw::net
