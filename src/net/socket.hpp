// POSIX socket transport for the session daemon: endpoints, listener,
// and an iostream adapter over a connected socket.
//
// Two endpoint flavors, parsed from one textual spec:
//   unix:<path>            unix-domain stream socket at <path>
//   tcp:<host>:<port>      IPv4 TCP (host = dotted quad or "localhost";
//                          port 0 binds an ephemeral port, resolved after
//                          listen() — read it back from bound_endpoint())
//
// SocketStream wraps a connected fd in a std::iostream with an optional
// receive timeout (the daemon's idle-connection reaper) and a thread-safe
// shutdown() that unblocks a reader mid-getline — the mechanism the daemon
// uses to drain connections on SIGTERM. Writes use MSG_NOSIGNAL, so a
// vanished peer surfaces as badbit, never SIGPIPE.
#pragma once

#include <cstdint>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>

namespace nw::net {

/// A parsed listen/connect address.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;             ///< unix: filesystem path of the socket
  std::string host;             ///< tcp: dotted quad or "localhost"
  int port = 0;                 ///< tcp: port (0 = ephemeral when listening)

  /// Round-trips through parse_endpoint: "unix:<path>" / "tcp:<host>:<port>".
  [[nodiscard]] std::string to_string() const;
};

/// Parse "unix:<path>" or "tcp:<host>:<port>"; throws std::invalid_argument
/// naming the defect (unknown scheme, empty path, bad port, ...).
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Listening socket bound to an Endpoint. Unix sockets unlink a stale file
/// of the same name before binding and remove theirs on close.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen; throws std::runtime_error on any socket failure. For
  /// tcp port 0 the kernel-assigned port is resolved into bound_endpoint().
  void open(const Endpoint& endpoint, int backlog = 64);

  /// Wait up to timeout_ms for one connection; returns the connected fd or
  /// -1 on timeout (the caller's chance to poll its stop flag). Throws on
  /// hard accept errors other than the benign transient ones.
  [[nodiscard]] int accept(int timeout_ms);

  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const Endpoint& bound_endpoint() const noexcept { return bound_; }

  void close();

 private:
  int fd_ = -1;
  Endpoint bound_;
  bool unlink_on_close_ = false;
};

/// Connect to an endpoint; returns the connected fd. Throws
/// std::runtime_error (with errno text) when the peer is not there.
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint);

/// std::streambuf over a connected socket fd: buffered both ways, receive
/// timeout via poll, writes complete or set badbit. Reading after the
/// timeout expires looks like EOF; timed_out() disambiguates.
class FdStreambuf final : public std::streambuf {
 public:
  /// Takes ownership of fd. recv_timeout_ms <= 0 blocks forever.
  explicit FdStreambuf(int fd, int recv_timeout_ms = 0);
  ~FdStreambuf() override;
  FdStreambuf(const FdStreambuf&) = delete;
  FdStreambuf& operator=(const FdStreambuf&) = delete;

  [[nodiscard]] bool timed_out() const noexcept { return timed_out_; }

  /// Half/full shutdown of the underlying socket; safe from another thread
  /// while a reader blocks in underflow (it observes EOF).
  void shutdown_both() noexcept;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;
  std::streamsize xsputn(const char* s, std::streamsize n) override;

 private:
  [[nodiscard]] bool flush_out();
  [[nodiscard]] bool send_all(const char* data, std::size_t n);

  static constexpr std::size_t kBufSize = 1 << 16;

  int fd_ = -1;
  int recv_timeout_ms_ = 0;
  bool timed_out_ = false;
  std::unique_ptr<char[]> in_;
  std::unique_ptr<char[]> out_;
};

/// iostream over a connected socket. One SocketStream per connection; the
/// daemon serializes concurrent writers (worker responses vs reader-side
/// rejects) with its own per-connection mutex.
class SocketStream final : public std::iostream {
 public:
  explicit SocketStream(int fd, int recv_timeout_ms = 0)
      : std::iostream(nullptr), buf_(fd, recv_timeout_ms) {
    rdbuf(&buf_);
  }

  [[nodiscard]] bool timed_out() const noexcept { return buf_.timed_out(); }
  void shutdown_both() noexcept { buf_.shutdown_both(); }

 private:
  FdStreambuf buf_;
};

}  // namespace nw::net
