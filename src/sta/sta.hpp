// Static timing analysis: arrival windows, slews, switching windows.
//
// Noise-window analysis consumes three STA products:
//   1. per-net switching windows — the time interval within which the net
//      can transition (aggressor temporal filtering),
//   2. per-net slew ranges — the fastest aggressor edge bounds injected
//      noise,
//   3. clock arrivals at sequential elements — the latch sensitivity
//      windows that propagated noise is checked against.
//
// The engine is a levelized block-based STA: arrival intervals [earliest,
// latest] for rise and fall are propagated from primary inputs and
// sequential outputs through NLDM cell arcs and Elmore wire delays.
// Sequential launch (CK -> Q) depends on the clock tree, which is itself
// combinational logic, so propagation iterates to a fixpoint (two passes
// for ordinary clock trees; bounded at `kMaxPasses`).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"
#include "util/interval.hpp"

namespace nw::sta {

/// Arrival/slew state of one pin. Empty intervals mean "unreached".
struct PinTiming {
  Interval rise;             ///< [earliest, latest] rising arrival [s]
  Interval fall;             ///< [earliest, latest] falling arrival [s]
  double slew_min = 0.0;     ///< fastest edge seen [s]
  double slew_max = 0.0;     ///< slowest edge seen [s]

  [[nodiscard]] Interval window() const noexcept { return rise.hull(fall); }
  [[nodiscard]] bool reached() const noexcept {
    return !rise.is_empty() || !fall.is_empty();
  }
};

/// Per-net summary (timing of the driving pin).
struct NetTiming {
  Interval window;           ///< switching window (rise u fall hull)
  double slew_min = 0.0;
  double slew_max = 0.0;
  [[nodiscard]] bool switches() const noexcept { return !window.is_empty(); }
};

/// A timing endpoint and its setup slack.
struct Endpoint {
  PinId pin;
  double required = 0.0;     ///< latest tolerable arrival [s]
  double arrival = 0.0;      ///< latest actual arrival [s]
  [[nodiscard]] double slack() const noexcept { return required - arrival; }
};

struct Options {
  double clock_period = 1e-9;
  std::string clock_port;                      ///< name of the clock input port
  std::map<std::string, Interval> input_arrivals;  ///< per-port overrides
  Interval default_input_arrival{0.0, 0.0};
  double miller_factor = 1.0;                  ///< coupling-cap lumping for delay
  /// Effective capacitance: account for resistive shielding of far wire
  /// cap when looking up gate delays. The pi model's far cap is scaled by
  /// k = Rd / (Rd + Rpi) — a strong driver behind a resistive wire sees
  /// less of the downstream cap. Off by default (total-cap is the
  /// conservative signoff convention).
  bool use_ceff = false;
};

struct Result {
  std::vector<PinTiming> pins;       ///< indexed by PinId
  std::vector<NetTiming> nets;       ///< indexed by NetId
  std::vector<Endpoint> endpoints;   ///< DFF D pins and output ports
  /// Clock arrival window at each sequential instance's CK/EN pin,
  /// indexed by position in design.sequentials().
  std::vector<Interval> clock_arrivals;
  int passes = 0;                    ///< fixpoint iterations used

  [[nodiscard]] const NetTiming& net(NetId id) const { return nets.at(id.index()); }
  [[nodiscard]] const PinTiming& pin(PinId id) const { return pins.at(id.index()); }
  [[nodiscard]] double worst_slack() const noexcept;
};

/// Capacity-based heap bytes a Result owns. Feeds the "sta" memory account
/// (size-accounting hook) and the session cache's per-slot byte gauge.
[[nodiscard]] inline std::size_t memory_bytes(const Result& r) noexcept {
  return r.pins.capacity() * sizeof(PinTiming) +
         r.nets.capacity() * sizeof(NetTiming) +
         r.endpoints.capacity() * sizeof(Endpoint) +
         r.clock_arrivals.capacity() * sizeof(Interval);
}

/// Run STA. Throws std::runtime_error on combinational loops and
/// std::invalid_argument on inconsistent inputs.
[[nodiscard]] Result run(const net::Design& design, const para::Parasitics& para,
                         const Options& options = {});

}  // namespace nw::sta
