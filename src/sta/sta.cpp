#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parasitics/reduce.hpp"

namespace nw::sta {

namespace {

/// Cached per-net interconnect view: Elmore delay per node and the lumped
/// load presented to the driving cell.
struct NetWireInfo {
  std::vector<double> elmore;  ///< per RC node, from the root
  double load_cap = 0.0;       ///< ground + pin + miller * coupling [F]
};

NetWireInfo wire_info(const net::Design& d, const para::Parasitics& para, NetId id,
                      const Options& opt) {
  const double miller = opt.miller_factor;
  NetWireInfo w;
  const para::RcNet& rc = para.net(id);
  // Per-node extra caps: attached pin loads plus Miller-lumped couplings.
  std::vector<double> extra(rc.node_count(), 0.0);
  for (const PinId load : d.net(id).loads) {
    const auto node = rc.node_of_pin(load);
    const double cap = d.pin_cap(load);
    if (node < rc.node_count()) {
      extra[node] += cap;
    } else {
      extra[0] += cap;  // unattached load: lump at the driver
    }
  }
  for (const auto ci : para.couplings_of(id)) {
    const auto& cc = para.coupling(ci);
    extra[cc.node_on(id)] += miller * cc.c;
  }
  if (rc.res_count() == 0) {
    w.elmore.assign(rc.node_count(), 0.0);
  } else {
    w.elmore = para::elmore_delays(rc, extra);
  }
  w.load_cap = rc.total_ground_cap();
  for (const double e : extra) w.load_cap += e;

  if (opt.use_ceff && rc.res_count() > 0 && d.net(id).driver.valid()) {
    const para::PiModel pi = para::pi_model(rc, extra);
    if (pi.r > 0.0) {
      const double rd = d.driver_resistance(id, /*holding=*/false);
      const double k = rd / (rd + pi.r);
      w.load_cap = pi.c_near + k * pi.c_far;
    }
  }
  return w;
}

/// Merge `t` into `acc`: union of arrival intervals, envelope of slews.
bool merge(PinTiming& acc, const PinTiming& t) {
  const PinTiming before = acc;
  acc.rise = acc.rise.hull(t.rise);
  acc.fall = acc.fall.hull(t.fall);
  if (!t.reached()) return false;
  if (!before.reached()) {
    acc.slew_min = t.slew_min;
    acc.slew_max = t.slew_max;
  } else {
    acc.slew_min = std::min(acc.slew_min, t.slew_min);
    acc.slew_max = std::max(acc.slew_max, t.slew_max);
  }
  const bool changed = !(before.rise == acc.rise) || !(before.fall == acc.fall) ||
                       before.slew_min != acc.slew_min || before.slew_max != acc.slew_max;
  return changed;
}

/// Delay/slew of one arc evaluated over an input interval; conservative:
/// earliest uses min slew, latest uses max slew.
struct EdgeOut {
  Interval arrival;
  double slew_min = 0.0;
  double slew_max = 0.0;
};

EdgeOut eval_edge(const lib::Table2D& delay_tbl, const lib::Table2D& slew_tbl,
                  const Interval& in_arrival, double in_slew_min, double in_slew_max,
                  double load) {
  EdgeOut out;
  if (in_arrival.is_empty()) return out;
  const double d_min = delay_tbl.lookup(in_slew_min, load);
  const double d_max = delay_tbl.lookup(in_slew_max, load);
  out.arrival = {in_arrival.lo + std::min(d_min, d_max),
                 in_arrival.hi + std::max(d_min, d_max)};
  const double s0 = slew_tbl.lookup(in_slew_min, load);
  const double s1 = slew_tbl.lookup(in_slew_max, load);
  out.slew_min = std::min(s0, s1);
  out.slew_max = std::max(s0, s1);
  return out;
}

}  // namespace

double Result::worst_slack() const noexcept {
  double w = 1e30;
  for (const auto& e : endpoints) w = std::min(w, e.slack());
  return endpoints.empty() ? 0.0 : w;
}

Result run(const net::Design& design, const para::Parasitics& para, const Options& opt) {
  if (para.net_count() != design.net_count()) {
    throw std::invalid_argument("sta::run: parasitics/net count mismatch");
  }

  Result res;
  res.pins.assign(design.pin_count(), PinTiming{});
  res.nets.assign(design.net_count(), NetTiming{});

  // Cache wire info per net.
  std::vector<NetWireInfo> wires;
  wires.reserve(design.net_count());
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    wires.push_back(wire_info(design, para, NetId{i}, opt));
  }

  // Seed primary inputs.
  for (const PinId p : design.input_ports()) {
    PinTiming t;
    Interval arr = opt.default_input_arrival;
    const auto it = opt.input_arrivals.find(design.pin(p).port_name);
    if (it != opt.input_arrivals.end()) arr = it->second;
    t.rise = arr;
    t.fall = arr;
    t.slew_min = t.slew_max = design.port_drive(p).slew;
    res.pins[p.index()] = t;
  }

  const std::vector<InstId> order = design.topological_order();

  // Timing at a load pin: driving net's pin timing shifted by wire delay.
  auto load_pin_timing = [&](PinId load) -> PinTiming {
    const net::Pin& lp = design.pin(load);
    if (!lp.net.valid()) return {};
    const net::Net& n = design.net(lp.net);
    if (!n.driver.valid()) return {};
    PinTiming t = res.pins[n.driver.index()];
    const para::RcNet& rc = para.net(lp.net);
    const auto node = rc.node_of_pin(load);
    const double wd = (node < rc.node_count() && node < wires[lp.net.index()].elmore.size())
                          ? wires[lp.net.index()].elmore[node]
                          : 0.0;
    t.rise = t.rise.shifted(wd);
    t.fall = t.fall.shifted(wd);
    return t;
  };

  constexpr int kMaxPasses = 6;
  bool changed = true;
  int pass = 0;
  while (changed && pass < kMaxPasses) {
    changed = false;
    ++pass;
    for (const InstId inst_id : order) {
      const net::Instance& inst = design.instance(inst_id);
      const lib::Cell& cell = design.cell_of(inst_id);

      for (const auto& arc : cell.arcs) {
        const PinId in_pin = inst.pins[arc.from_pin];
        const PinId out_pin = inst.pins[arc.to_pin];
        const net::Pin& op = design.pin(out_pin);
        if (!op.net.valid()) continue;
        const double load = wires[op.net.index()].load_cap;
        const PinTiming in_t = load_pin_timing(in_pin);
        if (!in_t.reached()) continue;

        PinTiming out_t;
        auto add_edge = [&](bool out_rise, const Interval& in_arr) {
          const auto& dt = out_rise ? arc.delay_rise : arc.delay_fall;
          const auto& st = out_rise ? arc.slew_rise : arc.slew_fall;
          const EdgeOut e = eval_edge(dt, st, in_arr, in_t.slew_min, in_t.slew_max, load);
          if (e.arrival.is_empty()) return;
          PinTiming tmp;
          (out_rise ? tmp.rise : tmp.fall) = e.arrival;
          tmp.slew_min = e.slew_min;
          tmp.slew_max = e.slew_max;
          merge(out_t, tmp);
        };

        switch (arc.sense) {
          case lib::ArcSense::kPositiveUnate:
            add_edge(true, in_t.rise);
            add_edge(false, in_t.fall);
            break;
          case lib::ArcSense::kNegativeUnate:
            add_edge(true, in_t.fall);
            add_edge(false, in_t.rise);
            break;
          case lib::ArcSense::kNonUnate:
            add_edge(true, in_t.window());
            add_edge(false, in_t.window());
            break;
        }
        if (out_t.reached()) changed |= merge(res.pins[out_pin.index()], out_t);
      }
    }
  }
  res.passes = pass;

  // Net summaries.
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const net::Net& n = design.net(NetId{i});
    if (!n.driver.valid()) continue;
    const PinTiming& t = res.pins[n.driver.index()];
    res.nets[i].window = t.window();
    res.nets[i].slew_min = t.slew_min;
    res.nets[i].slew_max = t.slew_max;
  }

  // Clock arrivals at sequential clock pins.
  res.clock_arrivals.reserve(design.sequentials().size());
  for (const InstId s : design.sequentials()) {
    const net::Instance& inst = design.instance(s);
    const lib::Cell& cell = design.cell_of(s);
    Interval clk = Interval::empty();
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].role == lib::PinRole::kClock ||
          cell.pins[pi].role == lib::PinRole::kEnable) {
        const PinTiming t = load_pin_timing(inst.pins[pi]);
        clk = clk.hull(t.window());
      }
    }
    res.clock_arrivals.push_back(clk);
  }

  // Endpoints: DFF/latch data pins (setup against the next clock edge) and
  // primary output ports (against the period).
  for (std::size_t si = 0; si < design.sequentials().size(); ++si) {
    const InstId s = design.sequentials()[si];
    const net::Instance& inst = design.instance(s);
    const lib::Cell& cell = design.cell_of(s);
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].role != lib::PinRole::kData) continue;
      const PinTiming t = load_pin_timing(inst.pins[pi]);
      if (!t.reached()) continue;
      Endpoint e;
      e.pin = inst.pins[pi];
      const double clk_late = res.clock_arrivals[si].is_empty()
                                  ? 0.0
                                  : res.clock_arrivals[si].hi;
      e.required = clk_late + opt.clock_period - cell.setup;
      e.arrival = t.window().hi;
      res.endpoints.push_back(e);
    }
  }
  for (const PinId p : design.output_ports()) {
    const PinTiming t = load_pin_timing(p);
    if (!t.reached()) continue;
    Endpoint e;
    e.pin = p;
    e.required = opt.clock_period;
    e.arrival = t.window().hi;
    res.endpoints.push_back(e);
  }

  return res;
}

}  // namespace nw::sta
