// Closed time intervals and disjoint interval sets ("windows").
//
// Windows are the central data structure of noise-window analysis:
//  - a switching window is the interval [earliest, latest] arrival of a net,
//  - a noise window is the set of times at which a glitch can exist,
//  - a latch sensitivity window is [clock - setup, clock + hold].
//
// IntervalSet keeps a sorted vector of disjoint, non-adjacent closed
// intervals and supports the boolean algebra (union, intersection,
// complement within a span), Minkowski-style shift/dilate used by noise
// propagation, and coverage queries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace nw {

/// A closed interval [lo, hi] on the real (time) axis. Empty iff lo > hi.
struct Interval {
  double lo = 0.0;
  double hi = -1.0;  // default-constructed interval is empty

  constexpr Interval() = default;
  constexpr Interval(double l, double h) noexcept : lo(l), hi(h) {}

  /// The canonical empty interval.
  [[nodiscard]] static constexpr Interval empty() noexcept { return {}; }
  /// The whole real line (practically: +-1e30 s, far outside any chip time).
  [[nodiscard]] static constexpr Interval everything() noexcept {
    return {-1e30, 1e30};
  }

  [[nodiscard]] constexpr bool is_empty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr double length() const noexcept {
    return is_empty() ? 0.0 : hi - lo;
  }
  [[nodiscard]] constexpr double mid() const noexcept { return 0.5 * (lo + hi); }
  [[nodiscard]] constexpr bool contains(double t) const noexcept {
    return lo <= t && t <= hi;
  }
  [[nodiscard]] constexpr bool contains(const Interval& o) const noexcept {
    return o.is_empty() || (lo <= o.lo && o.hi <= hi);
  }
  [[nodiscard]] constexpr bool overlaps(const Interval& o) const noexcept {
    return !is_empty() && !o.is_empty() && lo <= o.hi && o.lo <= hi;
  }

  /// Set intersection; empty if disjoint.
  [[nodiscard]] constexpr Interval intersect(const Interval& o) const noexcept {
    if (is_empty() || o.is_empty()) return empty();
    const Interval r{std::max(lo, o.lo), std::min(hi, o.hi)};
    return r.is_empty() ? empty() : r;
  }

  /// Smallest interval containing both (the convex hull).
  [[nodiscard]] constexpr Interval hull(const Interval& o) const noexcept {
    if (is_empty()) return o;
    if (o.is_empty()) return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  /// Translate by dt (noise propagated through a gate shifts by its delay).
  [[nodiscard]] constexpr Interval shifted(double dt) const noexcept {
    return is_empty() ? empty() : Interval{lo + dt, hi + dt};
  }

  /// Grow by `before` on the left and `after` on the right (glitch width
  /// dilation: a glitch triggered at t occupies [t, t + width]).
  [[nodiscard]] constexpr Interval dilated(double before, double after) const noexcept {
    if (is_empty()) return empty();
    const Interval r{lo - before, hi + after};
    return r.is_empty() ? empty() : r;
  }

  /// Minkowski sum with another interval: {a+b : a in this, b in o}.
  /// Used when a delay itself is an interval [dmin, dmax].
  [[nodiscard]] constexpr Interval plus(const Interval& o) const noexcept {
    if (is_empty() || o.is_empty()) return empty();
    return {lo + o.lo, hi + o.hi};
  }

  friend constexpr bool operator==(const Interval& a, const Interval& b) noexcept {
    if (a.is_empty() && b.is_empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }

  [[nodiscard]] std::string str() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A set of disjoint, sorted, non-adjacent closed intervals.
///
/// Invariant (checked by `valid_invariant()`):
///   for consecutive intervals a, b:  a.hi < b.lo  (strictly), and no
///   member interval is empty.
class IntervalSet {
 public:
  IntervalSet() = default;
  /*implicit*/ IntervalSet(const Interval& iv) { add(iv); }  // NOLINT
  IntervalSet(std::initializer_list<Interval> ivs) {
    for (const auto& iv : ivs) add(iv);
  }

  [[nodiscard]] static IntervalSet empty_set() { return {}; }
  [[nodiscard]] static IntervalSet everything() {
    return IntervalSet{Interval::everything()};
  }

  [[nodiscard]] bool is_empty() const noexcept { return ivs_.empty(); }
  [[nodiscard]] std::size_t count() const noexcept { return ivs_.size(); }
  [[nodiscard]] std::span<const Interval> intervals() const noexcept { return ivs_; }
  [[nodiscard]] const Interval& operator[](std::size_t i) const { return ivs_[i]; }

  /// Sum of member lengths.
  [[nodiscard]] double measure() const noexcept;
  /// Convex hull of the whole set (empty interval if set is empty).
  [[nodiscard]] Interval hull() const noexcept;
  [[nodiscard]] bool contains(double t) const noexcept;
  [[nodiscard]] bool overlaps(const Interval& iv) const noexcept;
  [[nodiscard]] bool overlaps(const IntervalSet& o) const noexcept;

  /// Insert an interval, merging as needed. No-op for empty input.
  void add(const Interval& iv);
  void add(const IntervalSet& o);

  [[nodiscard]] IntervalSet unite(const IntervalSet& o) const;
  [[nodiscard]] IntervalSet intersect(const Interval& iv) const;
  [[nodiscard]] IntervalSet intersect(const IntervalSet& o) const;
  /// Set difference: this \ o.
  [[nodiscard]] IntervalSet subtract(const IntervalSet& o) const;
  /// Complement within `span`.
  [[nodiscard]] IntervalSet complement(const Interval& span) const;

  [[nodiscard]] IntervalSet shifted(double dt) const;
  [[nodiscard]] IntervalSet dilated(double before, double after) const;
  /// Minkowski sum with an interval (delay ranges).
  [[nodiscard]] IntervalSet plus(const Interval& iv) const;

  /// First time point >= t contained in the set, if any.
  [[nodiscard]] std::optional<double> first_at_or_after(double t) const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.ivs_ == b.ivs_;
  }

  /// Check the class invariant (used by tests).
  [[nodiscard]] bool valid_invariant() const noexcept;

  [[nodiscard]] std::string str() const;

 private:
  std::vector<Interval> ivs_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace nw
