// Physical unit conventions used throughout noisewin.
//
// All quantities are plain doubles in SI units:
//   time      seconds   (typical on-chip values: 1e-12 .. 1e-8)
//   voltage   volts
//   capacitance farads  (typical: 1e-16 .. 1e-12)
//   resistance ohms
//
// The constants below make literals readable: `10 * PS`, `1.2 * VOLT`.
#pragma once

namespace nw {

inline constexpr double SEC = 1.0;
inline constexpr double MS = 1e-3;
inline constexpr double US = 1e-6;
inline constexpr double NS = 1e-9;
inline constexpr double PS = 1e-12;
inline constexpr double FS = 1e-15;

inline constexpr double VOLT = 1.0;
inline constexpr double MV = 1e-3;

inline constexpr double OHM = 1.0;
inline constexpr double KOHM = 1e3;

inline constexpr double FARAD = 1.0;
inline constexpr double PF = 1e-12;
inline constexpr double FF = 1e-15;

inline constexpr double AMP = 1.0;
inline constexpr double MA = 1e-3;
inline constexpr double UA = 1e-6;

}  // namespace nw
