#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace nw {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0.0) {
    const double f = (x - lo_) / span;
    const auto nb = static_cast<double>(counts_.size());
    bin = static_cast<std::size_t>(std::clamp(f * nb, 0.0, nb - 1.0));
  }
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os.setf(std::ios::scientific);
    os.precision(2);
    os << bin_lo(b) << " .. " << bin_hi(b) << " : ";
    os.unsetf(std::ios::scientific);
    os << counts_[b] << "\t";
    const std::size_t bar = counts_[b] * width / peak;
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << "\n";
  }
  return os.str();
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(v.size() - 1);
  const auto i = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(i);
  if (i + 1 >= v.size()) return v.back();
  return v[i] * (1.0 - frac) + v[i + 1] * frac;
}

}  // namespace nw
