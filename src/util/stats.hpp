// Small statistics helpers for accuracy tables and histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace nw {

/// Streaming summary statistics (Welford's online algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi]; out-of-range samples clamp to the
/// first/last bin so no sample is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

  /// Render as text rows "lo..hi : count  ####".
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Percentile of a sample vector (copies and sorts; p in [0,100]).
[[nodiscard]] double percentile(std::span<const double> xs, double p);

}  // namespace nw
