#include "util/interval.hpp"

#include <cassert>
#include <ostream>
#include <sstream>

namespace nw {

std::string Interval::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  if (iv.is_empty()) return os << "[empty]";
  return os << "[" << iv.lo << ", " << iv.hi << "]";
}

double IntervalSet::measure() const noexcept {
  double m = 0.0;
  for (const auto& iv : ivs_) m += iv.length();
  return m;
}

Interval IntervalSet::hull() const noexcept {
  if (ivs_.empty()) return Interval::empty();
  return {ivs_.front().lo, ivs_.back().hi};
}

bool IntervalSet::contains(double t) const noexcept {
  // Binary search over sorted disjoint intervals.
  auto it = std::upper_bound(ivs_.begin(), ivs_.end(), t,
                             [](double v, const Interval& iv) { return v < iv.lo; });
  if (it == ivs_.begin()) return false;
  return std::prev(it)->contains(t);
}

bool IntervalSet::overlaps(const Interval& iv) const noexcept {
  if (iv.is_empty()) return false;
  auto it = std::lower_bound(ivs_.begin(), ivs_.end(), iv.lo,
                             [](const Interval& a, double v) { return a.hi < v; });
  return it != ivs_.end() && it->overlaps(iv);
}

bool IntervalSet::overlaps(const IntervalSet& o) const noexcept {
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < o.ivs_.size()) {
    if (ivs_[i].overlaps(o.ivs_[j])) return true;
    if (ivs_[i].hi < o.ivs_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

void IntervalSet::add(const Interval& iv) {
  if (iv.is_empty()) return;
  // Find the range of existing intervals that touch or overlap iv.
  auto first = std::lower_bound(ivs_.begin(), ivs_.end(), iv.lo,
                                [](const Interval& a, double v) { return a.hi < v; });
  auto last = std::upper_bound(first, ivs_.end(), iv.hi,
                               [](double v, const Interval& a) { return v < a.lo; });
  Interval merged = iv;
  for (auto it = first; it != last; ++it) merged = merged.hull(*it);
  const auto pos = ivs_.erase(first, last);
  ivs_.insert(pos, merged);
}

void IntervalSet::add(const IntervalSet& o) {
  for (const auto& iv : o.ivs_) add(iv);
}

IntervalSet IntervalSet::unite(const IntervalSet& o) const {
  IntervalSet r = *this;
  r.add(o);
  return r;
}

IntervalSet IntervalSet::intersect(const Interval& iv) const {
  IntervalSet r;
  if (iv.is_empty()) return r;
  for (const auto& a : ivs_) {
    const Interval x = a.intersect(iv);
    if (!x.is_empty()) r.ivs_.push_back(x);
  }
  return r;
}

IntervalSet IntervalSet::intersect(const IntervalSet& o) const {
  IntervalSet r;
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < o.ivs_.size()) {
    const Interval x = ivs_[i].intersect(o.ivs_[j]);
    if (!x.is_empty()) r.ivs_.push_back(x);
    if (ivs_[i].hi < o.ivs_[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return r;
}

IntervalSet IntervalSet::subtract(const IntervalSet& o) const {
  if (o.is_empty() || is_empty()) return *this;
  const Interval span = hull().hull(o.hull()).dilated(1.0, 1.0);
  return intersect(o.complement(span));
}

IntervalSet IntervalSet::complement(const Interval& span) const {
  IntervalSet r;
  if (span.is_empty()) return r;
  double cursor = span.lo;
  for (const auto& iv : ivs_) {
    if (iv.hi < span.lo) continue;
    if (iv.lo > span.hi) break;
    if (iv.lo > cursor) r.ivs_.push_back({cursor, iv.lo});
    cursor = std::max(cursor, iv.hi);
  }
  if (cursor < span.hi) r.ivs_.push_back({cursor, span.hi});
  return r;
}

IntervalSet IntervalSet::shifted(double dt) const {
  IntervalSet r;
  r.ivs_.reserve(ivs_.size());
  for (const auto& iv : ivs_) r.ivs_.push_back(iv.shifted(dt));
  return r;
}

IntervalSet IntervalSet::dilated(double before, double after) const {
  // Dilation can merge neighbours; rebuild through add().
  IntervalSet r;
  for (const auto& iv : ivs_) r.add(iv.dilated(before, after));
  return r;
}

IntervalSet IntervalSet::plus(const Interval& iv) const {
  IntervalSet r;
  if (iv.is_empty()) return r;
  for (const auto& a : ivs_) r.add(a.plus(iv));
  return r;
}

std::optional<double> IntervalSet::first_at_or_after(double t) const {
  for (const auto& iv : ivs_) {
    if (iv.hi < t) continue;
    return std::max(t, iv.lo);
  }
  return std::nullopt;
}

bool IntervalSet::valid_invariant() const noexcept {
  for (std::size_t i = 0; i < ivs_.size(); ++i) {
    if (ivs_[i].is_empty()) return false;
    if (i > 0 && !(ivs_[i - 1].hi < ivs_[i].lo)) return false;
  }
  return true;
}

std::string IntervalSet::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  os << "{";
  for (std::size_t i = 0; i < s.count(); ++i) {
    if (i > 0) os << " u ";
    os << s[i];
  }
  return os << "}";
}

}  // namespace nw
