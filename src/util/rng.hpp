// Deterministic PRNG for testcase generation and property tests.
//
// xoshiro256** — fast, high quality, and (unlike std::mt19937 +
// distributions) bit-identical across standard library implementations, so
// generated designs and experiment tables are reproducible everywhere.
#pragma once

#include <cstdint>

namespace nw {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    // splitmix64 seeding
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      word = x ^ (x >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 terms):
  /// adequate for jittering geometric parameters.
  double normal(double mean, double stddev) noexcept {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += uniform();
    return mean + stddev * (s - 6.0);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace nw
