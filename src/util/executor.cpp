#include "util/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/tracer.hpp"

namespace nw::util {

namespace {

/// The executor whose parallel_for the current thread is executing a chunk
/// of (worker or caller). Used to detect nested use of the same pool.
thread_local const Executor* tl_running = nullptr;

struct RunningGuard {
  const Executor* prev;
  explicit RunningGuard(const Executor* e) : prev(tl_running) { tl_running = e; }
  ~RunningGuard() { tl_running = prev; }
};

}  // namespace

thread_local Executor::WorkerSlot* Executor::tl_slot_ = nullptr;

struct Executor::Pool {
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;

  // Current job. Generation increments per parallel_for; workers idle on
  // the condition variable between jobs (no busy spin).
  std::uint64_t generation = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  const char* label = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  int running = 0;  ///< workers still inside the current job
  bool stop = false;

  std::exception_ptr first_error;

  void work(Executor* owner, int slot) {
    RunningGuard guard(owner);
    WorkerSlot* const prev_slot = Executor::tl_slot_;
    Executor::tl_slot_ =
        owner->util_enabled_ ? &owner->slots_[static_cast<std::size_t>(slot)]
                             : nullptr;
    const auto& body = *fn;
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        owner->run_chunk(label, begin, end, body);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
    Executor::tl_slot_ = prev_slot;
  }

  void worker_loop(Executor* owner, int index) {
    obs::Tracer::set_thread_name("worker " + std::to_string(index));
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
      }
      work(owner, index);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--running == 0) work_done.notify_all();
      }
    }
  }
};

Executor::Executor(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  thread_count_ = threads;
  if (thread_count_ == 1) return;  // serial fallback: no pool at all
  pool_ = new Pool;
  pool_->workers.reserve(static_cast<std::size_t>(thread_count_) - 1);
  for (int i = 0; i < thread_count_ - 1; ++i) {
    pool_->workers.emplace_back([this, i] { pool_->worker_loop(this, i + 1); });
  }
}

Executor::~Executor() {
  if (!pool_) return;
  {
    std::lock_guard<std::mutex> lock(pool_->mutex);
    pool_->stop = true;
  }
  pool_->work_ready.notify_all();
  for (auto& w : pool_->workers) w.join();
  delete pool_;
}

void Executor::run_chunk(const char* label, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  // Fast path: no tracing/profiling, no observer, no utilization — just
  // the body.
  const bool traced = label != nullptr && obs::spans_active();
  WorkerSlot* const slot = tl_slot_;
  if (!traced && !observer_ && slot == nullptr) {
    fn(begin, end);
    return;
  }
  std::optional<obs::Span> span;
  if (traced) span.emplace(label, obs::SpanKind::kTask);
  if (!observer_ && slot == nullptr) {
    fn(begin, end);
    return;
  }
  // One clock pair feeds both the task observer and utilization accounting.
  const auto t0 = std::chrono::steady_clock::now();
  fn(begin, end);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (observer_) observer_(seconds);
  if (slot != nullptr) {
    if (slot->first_s < 0.0) {
      slot->first_s = std::chrono::duration<double>(t0 - region_t0_).count();
    }
    slot->busy_s += seconds;
    ++slot->chunks;
  }
}

void Executor::run_serial(const char* label, std::size_t n, std::size_t chunk,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  RunningGuard guard(this);
  WorkerSlot* const prev_slot = tl_slot_;
  tl_slot_ = util_enabled_ ? &slots_[0] : nullptr;
  try {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      run_chunk(label, begin, std::min(n, begin + chunk), fn);
    }
  } catch (...) {
    tl_slot_ = prev_slot;
    throw;
  }
  tl_slot_ = prev_slot;
}

void Executor::begin_region() {
  for (WorkerSlot& s : slots_) s = WorkerSlot{};
  region_t0_ = std::chrono::steady_clock::now();
}

void Executor::end_region(const char* label, std::size_t n) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - region_t0_)
          .count();
  const char* const key = label != nullptr ? label : "(unlabeled)";
  RegionStats* region = nullptr;
  for (RegionStats& r : regions_) {
    if (r.label == key) {
      region = &r;
      break;
    }
  }
  if (region == nullptr) {
    regions_.emplace_back();
    region = &regions_.back();
    region->label = key;
  }
  double busy_sum = 0.0;
  double busy_max = 0.0;
  double wait_sum = 0.0;
  std::uint64_t chunk_sum = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const WorkerSlot& s = slots_[i];
    busy_sum += s.busy_s;
    busy_max = std::max(busy_max, s.busy_s);
    chunk_sum += s.chunks;
    if (s.first_s >= 0.0) wait_sum += s.first_s;
    worker_totals_[i].busy_s += s.busy_s;
    worker_totals_[i].chunks += s.chunks;
  }
  ++region->invocations;
  region->items += n;
  region->wall_s += wall;
  region->busy_s += busy_sum;
  region->max_busy_s += busy_max;
  region->wait_s += wait_sum;
  region->chunks += chunk_sum;
  util_wall_s_ += wall;
}

void Executor::enable_utilization(bool on) {
  util_enabled_ = on;
  if (on && slots_.empty()) {
    slots_.resize(static_cast<std::size_t>(thread_count_));
    worker_totals_.resize(static_cast<std::size_t>(thread_count_));
    for (int i = 0; i < thread_count_; ++i) worker_totals_[static_cast<std::size_t>(i)].worker = i;
  }
}

UtilizationSnapshot Executor::utilization() const {
  UtilizationSnapshot snap;
  snap.enabled = util_enabled_;
  snap.threads = thread_count_;
  snap.wall_s = util_wall_s_;
  snap.workers = worker_totals_;
  for (WorkerStats& w : snap.workers) {
    w.idle_s = std::max(0.0, util_wall_s_ - w.busy_s);
  }
  snap.regions = regions_;
  return snap;
}

void Executor::dispatch(const char* label, std::size_t n, std::size_t chunk,
                        const std::function<void(std::size_t, std::size_t)>& fn) {
  // One chunk (or no pool): nothing to distribute.
  if (!pool_ || n <= chunk) {
    run_serial(label, n, chunk, fn);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(pool_->mutex);
    pool_->fn = &fn;
    pool_->label = label;
    pool_->n = n;
    pool_->chunk = chunk;
    pool_->cursor.store(0, std::memory_order_relaxed);
    pool_->running = static_cast<int>(pool_->workers.size());
    pool_->first_error = nullptr;
    ++pool_->generation;
  }
  pool_->work_ready.notify_all();

  pool_->work(this, 0);  // the caller is thread 0

  std::unique_lock<std::mutex> lock(pool_->mutex);
  pool_->work_done.wait(lock, [&] { return pool_->running == 0; });
  pool_->fn = nullptr;
  if (pool_->first_error) {
    std::exception_ptr err = pool_->first_error;
    pool_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Executor::parallel_for(const char* label, std::size_t n, std::size_t chunk,
                            const std::function<void(std::size_t, std::size_t)>& fn) {
  if (tl_running == this) {
    throw std::logic_error(
        "Executor::parallel_for: nested use of the same executor");
  }
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  if (!util_enabled_) {
    dispatch(label, n, chunk, fn);
    return;
  }
  begin_region();
  try {
    dispatch(label, n, chunk, fn);
  } catch (...) {
    end_region(label, n);  // keep accumulators consistent across rethrow
    throw;
  }
  end_region(label, n);
}

}  // namespace nw::util
