// A small fixed-size thread pool for data-parallel loops.
//
// The analyzer's hot phases (per-victim glitch estimation, per-level gate
// propagation, endpoint checks) are shared-nothing over an index range, so
// the only primitive needed is a blocking `parallel_for(n, chunk, fn)`:
// workers claim half-open chunks of [0, n) from an atomic cursor and the
// calling thread participates, so an Executor with `thread_count() == t`
// uses exactly t threads (t-1 pooled workers + the caller).
//
// Determinism contract: parallel_for itself guarantees nothing about
// execution order — callers make parallel results reproducible by writing
// into pre-sized, index-addressed slots and folding them in index order
// afterwards (`map_reduce_ordered` packages that pattern). Every stage of
// noise::analyze follows it, which is what makes analysis output
// bit-identical across thread counts.
//
// Error contract: the first exception thrown by any chunk is captured and
// rethrown on the calling thread after all workers have quiesced; the
// remaining chunks still run (no cancellation — chunks are short).
//
// Nested use of the *same* executor from inside a chunk would deadlock a
// fixed pool, so it throws std::logic_error instead (the nested-use guard).
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace nw::util {

class Executor {
 public:
  /// `threads` <= 0 resolves to std::thread::hardware_concurrency();
  /// 1 is the serial fallback (no pool threads are created at all).
  explicit Executor(int threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Resolved parallelism (pooled workers + the calling thread).
  [[nodiscard]] int thread_count() const noexcept { return thread_count_; }

  /// Invoke `fn(begin, end)` over disjoint chunks of at most `chunk`
  /// indices covering [0, n). Blocks until every chunk has run; rethrows
  /// the first chunk exception. `chunk == 0` is treated as 1.
  /// Single-submitter: at most one thread may be inside parallel_for of a
  /// given Executor at a time (distinct executors may nest).
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Ordered reduction: `map(i)` runs in parallel into index-addressed
  /// slots, then `fold(i, slot)` runs serially in index order on the
  /// calling thread — deterministic regardless of thread count.
  template <typename T, typename MapFn, typename FoldFn>
  void map_reduce_ordered(std::size_t n, std::size_t chunk, MapFn&& map,
                          FoldFn&& fold) {
    std::vector<T> slots(n);
    parallel_for(n, chunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) slots[i] = map(i);
    });
    for (std::size_t i = 0; i < n; ++i) fold(i, std::move(slots[i]));
  }

 private:
  struct Pool;  // hides <thread>/<condition_variable> from this header

  void run_serial(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  int thread_count_ = 1;
  Pool* pool_ = nullptr;  // null when thread_count_ == 1
};

}  // namespace nw::util
