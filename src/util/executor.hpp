// A small fixed-size thread pool for data-parallel loops.
//
// The analyzer's hot phases (per-victim glitch estimation, per-level gate
// propagation, endpoint checks) are shared-nothing over an index range, so
// the only primitive needed is a blocking `parallel_for(n, chunk, fn)`:
// workers claim half-open chunks of [0, n) from an atomic cursor and the
// calling thread participates, so an Executor with `thread_count() == t`
// uses exactly t threads (t-1 pooled workers + the caller).
//
// Determinism contract: parallel_for itself guarantees nothing about
// execution order — callers make parallel results reproducible by writing
// into pre-sized, index-addressed slots and folding them in index order
// afterwards (`map_reduce_ordered` packages that pattern). Every stage of
// noise::analyze follows it, which is what makes analysis output
// bit-identical across thread counts.
//
// Observability: the labeled overloads emit one obs::Span per executed
// chunk (category "task") when tracing is enabled, so load imbalance
// inside a region shows up as per-thread tracks in the trace; pool workers
// name their tracks "worker <i>". An optional task observer receives every
// chunk's wall time (for the per-task wall-time histogram). Both are
// guarded by compile-time-cheap enabled checks; the unlabeled overloads
// with no observer installed add nothing to the chunk path.
//
// Error contract: the first exception thrown by any chunk is captured and
// rethrown on the calling thread after all workers have quiesced; the
// remaining chunks still run (no cancellation — chunks are short).
//
// Nested use of the *same* executor from inside a chunk would deadlock a
// fixed pool, so it throws std::logic_error instead (the nested-use guard).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace nw::util {

/// Per-worker totals across every instrumented region (worker 0 = the
/// calling thread). `idle_s` is derived at snapshot time: the time spent
/// inside regions while other workers still had chunks.
struct WorkerStats {
  int worker = 0;
  double busy_s = 0.0;
  double idle_s = 0.0;
  std::uint64_t chunks = 0;
};

/// Accumulated stats for one labeled parallel_for region (summed over
/// every invocation with that label).
struct RegionStats {
  std::string label;
  std::uint64_t invocations = 0;
  std::uint64_t chunks = 0;  ///< executed chunks (== the executor_tasks share)
  std::uint64_t items = 0;   ///< sum of n over invocations
  double wall_s = 0.0;       ///< coordinator-measured region wall time
  double busy_s = 0.0;       ///< sum of every worker's chunk time
  double max_busy_s = 0.0;   ///< sum over invocations of the busiest worker
  double wait_s = 0.0;       ///< sum of first-chunk start latencies (wakeup cost)

  /// Imbalance gauge: the busiest worker's share relative to a perfectly
  /// balanced split (1.0 = balanced, `threads` = one worker did it all).
  [[nodiscard]] double imbalance(int threads) const noexcept {
    if (busy_s <= 0.0 || threads <= 0) return 1.0;
    return max_busy_s * static_cast<double>(threads) / busy_s;
  }
};

/// Everything the executor measured about itself: the "executor" section
/// of stats-JSON schema v3. All timing — nondeterministic by nature; the
/// deterministic chunk *counts* are also in the executor_tasks counter.
struct UtilizationSnapshot {
  bool enabled = false;
  int threads = 1;
  double wall_s = 0.0;  ///< total wall time inside instrumented regions
  std::vector<WorkerStats> workers;
  std::vector<RegionStats> regions;  ///< first-use order
};

class Executor {
 public:
  /// Called once per executed chunk with its wall time [s].
  /// Must be thread-safe: chunks run concurrently.
  using TaskObserver = std::function<void(double seconds)>;

  /// `threads` <= 0 resolves to std::thread::hardware_concurrency();
  /// 1 is the serial fallback (no pool threads are created at all).
  explicit Executor(int threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Resolved parallelism (pooled workers + the calling thread).
  [[nodiscard]] int thread_count() const noexcept { return thread_count_; }

  /// Install (or clear, with nullptr) the per-chunk wall-time observer.
  /// Not thread-safe against a running parallel_for — set it between
  /// regions.
  void set_task_observer(TaskObserver observer) { observer_ = std::move(observer); }

  /// Turn on utilization accounting: per-worker busy time and chunk
  /// counts, per-region wall/busy/max-busy/first-chunk-wait aggregates.
  /// Costs two steady_clock reads per chunk (the same pair the task
  /// observer uses — they share one measurement). Set between regions.
  void enable_utilization(bool on);

  /// Copy of everything measured so far. Call between regions (the same
  /// single-submitter contract as parallel_for). Worker idle time is
  /// derived here as (region wall total − busy).
  [[nodiscard]] UtilizationSnapshot utilization() const;

  /// Invoke `fn(begin, end)` over disjoint chunks of at most `chunk`
  /// indices covering [0, n). Blocks until every chunk has run; rethrows
  /// the first chunk exception. `chunk == 0` is treated as 1.
  /// Single-submitter: at most one thread may be inside parallel_for of a
  /// given Executor at a time (distinct executors may nest).
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn) {
    parallel_for(nullptr, n, chunk, fn);
  }

  /// Same, with a trace label: each chunk records an obs::Span named
  /// `label` when tracing is enabled. `label` must outlive the call.
  void parallel_for(const char* label, std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Ordered reduction: `map(i)` runs in parallel into index-addressed
  /// slots, then `fold(i, slot)` runs serially in index order on the
  /// calling thread — deterministic regardless of thread count.
  template <typename T, typename MapFn, typename FoldFn>
  void map_reduce_ordered(std::size_t n, std::size_t chunk, MapFn&& map,
                          FoldFn&& fold) {
    map_reduce_ordered<T>(nullptr, n, chunk, std::forward<MapFn>(map),
                          std::forward<FoldFn>(fold));
  }

  template <typename T, typename MapFn, typename FoldFn>
  void map_reduce_ordered(const char* label, std::size_t n, std::size_t chunk,
                          MapFn&& map, FoldFn&& fold) {
    std::vector<T> slots(n);
    parallel_for(label, n, chunk, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) slots[i] = map(i);
    });
    for (std::size_t i = 0; i < n; ++i) fold(i, std::move(slots[i]));
  }

 private:
  struct Pool;  // hides <thread>/<condition_variable> from this header
  friend struct Pool;

  /// Per-region, per-worker scratch (reset by begin_region, folded into
  /// the accumulators by end_region). `first_s` is the delay from region
  /// start to the worker's first chunk (-1 = never got one).
  struct WorkerSlot {
    double busy_s = 0.0;
    std::uint64_t chunks = 0;
    double first_s = -1.0;
  };

  void run_serial(const char* label, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn);
  /// One chunk, wrapped in span/observer/utilization instrumentation.
  void run_chunk(const char* label, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t, std::size_t)>& fn);
  void dispatch(const char* label, std::size_t n, std::size_t chunk,
                const std::function<void(std::size_t, std::size_t)>& fn);
  void begin_region();
  void end_region(const char* label, std::size_t n);

  int thread_count_ = 1;
  Pool* pool_ = nullptr;  // null when thread_count_ == 1
  TaskObserver observer_;

  // Utilization accounting (coordinator-owned; worker slots are written by
  // their owning thread during a region and read after the join barrier).
  // tl_slot_ points at the current thread's slot of the executor whose
  // region it is running (saved/restored across nested executors).
  static thread_local WorkerSlot* tl_slot_;
  bool util_enabled_ = false;
  std::vector<WorkerSlot> slots_;        // size thread_count_, index 0 = caller
  std::vector<WorkerStats> worker_totals_;
  std::vector<RegionStats> regions_;
  double util_wall_s_ = 0.0;
  std::chrono::steady_clock::time_point region_t0_;
};

}  // namespace nw::util
