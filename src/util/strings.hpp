// Minimal string utilities for the SPEF-like and liberty-lite parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nw {

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on any of the given delimiter characters, dropping empty tokens.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  std::string_view delims = " \t");

/// True if `s` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// Parse a double; throws std::invalid_argument with context on failure.
[[nodiscard]] double parse_double(std::string_view s);

/// Parse a non-negative integer; throws std::invalid_argument on failure.
[[nodiscard]] unsigned long parse_uint(std::string_view s);

}  // namespace nw
