// Strong integer identifiers.
//
// Netlists index everything (nets, instances, pins, nodes). Raw size_t
// indices are easy to cross-wire; Id<Tag> makes NetId/InstId/PinId distinct
// types at zero runtime cost (Core Guidelines I.4: strongly typed interfaces).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace nw {

/// A strongly typed index. `Tag` is an empty struct distinguishing id spaces.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = std::numeric_limits<value_type>::max();

  constexpr Id() noexcept : v_(kInvalid) {}
  constexpr explicit Id(std::size_t v) noexcept : v_(static_cast<value_type>(v)) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return v_; }
  [[nodiscard]] constexpr std::size_t index() const noexcept { return v_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return v_ != kInvalid; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.v_ != b.v_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.v_ < b.v_; }

 private:
  value_type v_;
};

struct NetTag {};
struct InstTag {};
struct PinTag {};
struct CellTag {};
struct NodeTag {};

using NetId = Id<NetTag>;
using InstId = Id<InstTag>;
using PinId = Id<PinTag>;
using CellId = Id<CellTag>;
using NodeId = Id<NodeTag>;

}  // namespace nw

namespace std {
template <typename Tag>
struct hash<nw::Id<Tag>> {
  size_t operator()(nw::Id<Tag> id) const noexcept {
    return std::hash<typename nw::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
