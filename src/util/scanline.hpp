// Weighted interval scan line.
//
// Worst-case noise combination asks: given k contributions, each with a
// positive weight (glitch peak) and an availability window (an IntervalSet),
// find the time t maximizing the sum of weights of contributions whose
// window contains t. This is the classic stabbing-max problem, solved by
// sorting the 2m interval endpoints and sweeping — O(m log m) versus the
// O(2^k) brute-force subset enumeration it replaces.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/interval.hpp"

namespace nw {

/// One contribution to a scan: a weight available over a window.
struct WeightedWindow {
  double weight = 0.0;
  IntervalSet window;
};

/// One endpoint event of a scan: an interval of contribution `item` starts
/// (open) or ends (close) at time t. The flat kernel-buffer combine path
/// (noise/kernels.hpp) builds these directly from clipped spans, while
/// scan_max_overlap builds them from IntervalSets — both then run the same
/// scan_events_* cores below, so the two paths are bit-identical by
/// construction (same event sequence in, same sweep, same result out).
struct ScanEvent {
  double t;
  bool open;         // true: interval starts, false: interval ends
  std::size_t item;  // contribution index, < weights.size()
};

/// Result of a scan-line maximization.
struct ScanResult {
  double best_sum = 0.0;          ///< maximum simultaneous weight sum
  Interval best_interval;          ///< maximal interval achieving best_sum
  std::vector<std::size_t> active; ///< indices of contributions active there
};

/// Maximize the simultaneous weight sum over all time points.
///
/// Contributions with empty windows never participate. If every window is
/// empty the result has best_sum == 0 and an empty interval.
[[nodiscard]] ScanResult scan_max_overlap(std::span<const WeightedWindow> items);

/// Core of scan_max_overlap over caller-built events: sorts `events` in
/// place (by time, opens before closes) and sweeps. `weights[i]` is the
/// weight of contribution i; events must only reference items <
/// weights.size(). Contributions without events never participate.
[[nodiscard]] ScanResult scan_events_max_overlap(std::vector<ScanEvent>& events,
                                                 std::span<const double> weights);

/// Core of scan_max_overlap_grouped over caller-built events. `groups`
/// parallels `weights`; negative ids mean unconstrained (singleton group).
[[nodiscard]] ScanResult scan_events_max_overlap_grouped(
    std::vector<ScanEvent>& events, std::span<const double> weights,
    std::span<const int> groups);

/// Evaluate the sum of weights active at a specific time t.
[[nodiscard]] double overlap_sum_at(std::span<const WeightedWindow> items, double t);

/// Sample the step function sum(t) at `n` points across `span` (for plots).
struct ScanSample {
  double t = 0.0;
  double sum = 0.0;
};
[[nodiscard]] std::vector<ScanSample> scan_profile(
    std::span<const WeightedWindow> items, const Interval& span, std::size_t n);

/// Brute-force reference: enumerate subsets, keep the best whose windows
/// share a common point. Exponential — used only by tests and the
/// algorithmic-ablation bench.
[[nodiscard]] ScanResult brute_force_max_overlap(std::span<const WeightedWindow> items);

/// Constrained scan: contributions carrying the same non-negative group id
/// are mutually exclusive (at most one switches per cycle — complementary
/// phases, one-hot selects), so at any time point only the heaviest active
/// member of each group counts. group < 0 means unconstrained (its own
/// group). Objective: max over t of sum over groups of max{w_i : t in W_i}.
///
/// O(m log m) events with an ordered multiset per group.
[[nodiscard]] ScanResult scan_max_overlap_grouped(std::span<const WeightedWindow> items,
                                                  std::span<const int> groups);

/// Brute-force reference for the grouped scan (test/ablation use only).
[[nodiscard]] ScanResult brute_force_max_overlap_grouped(
    std::span<const WeightedWindow> items, std::span<const int> groups);

}  // namespace nw
