#include "util/strings.hpp"

#include <charconv>
#include <stdexcept>

namespace nw {

std::string_view trim(std::string_view s) noexcept {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::vector<std::string_view> split(std::string_view s, std::string_view delims) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto start = s.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    auto end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) end = s.size();
    out.push_back(s.substr(start, end - start));
    pos = end;
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

double parse_double(std::string_view s) {
  double v = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("parse_double: bad number '" + std::string(s) + "'");
  }
  return v;
}

unsigned long parse_uint(std::string_view s) {
  unsigned long v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("parse_uint: bad integer '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace nw
