#include "util/scanline.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace nw {

ScanResult scan_events_max_overlap(std::vector<ScanEvent>& events,
                                   std::span<const double> weights) {
  ScanResult best;
  if (events.empty()) return best;

  // Closed intervals: at a shared endpoint, opens must be processed before
  // closes so that a point where one window ends exactly as another begins
  // counts both.
  std::sort(events.begin(), events.end(), [](const ScanEvent& a, const ScanEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.open > b.open;
  });

  double sum = 0.0;
  std::vector<int> active_count(weights.size(), 0);
  std::size_t i = 0;
  while (i < events.size()) {
    const double t = events[i].t;
    // Apply all opens at t, then evaluate, then apply closes at t.
    std::size_t j = i;
    while (j < events.size() && events[j].t == t && events[j].open) {
      if (active_count[events[j].item]++ == 0) sum += weights[events[j].item];
      ++j;
    }
    if (sum > best.best_sum) {
      best.best_sum = sum;
      best.best_interval = {t, t};
      best.active.clear();
      for (std::size_t k = 0; k < weights.size(); ++k) {
        if (active_count[k] > 0) best.active.push_back(k);
      }
    }
    while (j < events.size() && events[j].t == t && !events[j].open) {
      if (--active_count[events[j].item] == 0) sum -= weights[events[j].item];
      ++j;
    }
    i = j;
  }

  // Second pass: report the first maximal run — the contiguous interval
  // over which the maximum sum is continuously held. (Only the first run is
  // reported so that every point of best_interval achieves best_sum.)
  if (best.best_sum > 0.0) {
    const double tol = 1e-12 * best.best_sum;
    double sum2 = 0.0;
    std::vector<int> cnt(weights.size(), 0);
    double start = 0.0;
    bool in_max = false;
    std::size_t a = 0;
    while (a < events.size()) {
      const double t = events[a].t;
      std::size_t b = a;
      while (b < events.size() && events[b].t == t && events[b].open) {
        if (cnt[events[b].item]++ == 0) sum2 += weights[events[b].item];
        ++b;
      }
      if (!in_max && sum2 >= best.best_sum - tol) {
        start = t;
        in_max = true;
      }
      while (b < events.size() && events[b].t == t && !events[b].open) {
        if (--cnt[events[b].item] == 0) sum2 -= weights[events[b].item];
        ++b;
      }
      if (in_max && sum2 < best.best_sum - tol) {
        best.best_interval = {start, t};
        break;
      }
      a = b;
    }
  }
  return best;
}

ScanResult scan_max_overlap(std::span<const WeightedWindow> items) {
  std::vector<ScanEvent> events;
  std::vector<double> weights(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    weights[i] = items[i].weight;
    for (const auto& iv : items[i].window.intervals()) {
      events.push_back({iv.lo, true, i});
      events.push_back({iv.hi, false, i});
    }
  }
  return scan_events_max_overlap(events, weights);
}

double overlap_sum_at(std::span<const WeightedWindow> items, double t) {
  double sum = 0.0;
  for (const auto& it : items) {
    if (it.window.contains(t)) sum += it.weight;
  }
  return sum;
}

std::vector<ScanSample> scan_profile(std::span<const WeightedWindow> items,
                                     const Interval& span, std::size_t n) {
  std::vector<ScanSample> out;
  if (span.is_empty() || n == 0) return out;
  out.reserve(n);
  const double step = n > 1 ? span.length() / static_cast<double>(n - 1) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = span.lo + step * static_cast<double>(i);
    out.push_back({t, overlap_sum_at(items, t)});
  }
  return out;
}

ScanResult scan_events_max_overlap_grouped(std::vector<ScanEvent>& events,
                                           std::span<const double> weights,
                                           std::span<const int> groups) {
  if (groups.size() != weights.size()) {
    throw std::invalid_argument("scan_max_overlap_grouped: group count mismatch");
  }
  const std::size_t n = weights.size();
  // Normalize: negative group ids become singleton groups.
  int next_group = 0;
  for (const int g : groups) next_group = std::max(next_group, g + 1);
  std::vector<int> gid(n);
  for (std::size_t i = 0; i < n; ++i) {
    gid[i] = groups[i] >= 0 ? groups[i] : next_group++;
  }

  ScanResult best;
  if (events.empty()) return best;
  std::sort(events.begin(), events.end(), [](const ScanEvent& a, const ScanEvent& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.open > b.open;
  });

  // Per-group ordered multiset of active weights; objective maintains
  // sum over groups of the group's max.
  std::vector<std::multiset<double>> active(static_cast<std::size_t>(next_group));
  std::vector<int> active_count(n, 0);
  double objective = 0.0;

  auto group_max = [&](int g) {
    const auto& s = active[static_cast<std::size_t>(g)];
    return s.empty() ? 0.0 : *s.rbegin();
  };
  auto insert_item = [&](std::size_t i) {
    if (active_count[i]++ > 0) return;
    const int g = gid[i];
    const double before = group_max(g);
    active[static_cast<std::size_t>(g)].insert(weights[i]);
    objective += group_max(g) - before;
  };
  auto erase_item = [&](std::size_t i) {
    if (--active_count[i] > 0) return;
    const int g = gid[i];
    const double before = group_max(g);
    auto& s = active[static_cast<std::size_t>(g)];
    s.erase(s.find(weights[i]));
    objective += group_max(g) - before;
  };

  std::size_t i = 0;
  while (i < events.size()) {
    const double t = events[i].t;
    std::size_t j = i;
    while (j < events.size() && events[j].t == t && events[j].open) {
      insert_item(events[j].item);
      ++j;
    }
    if (objective > best.best_sum) {
      best.best_sum = objective;
      best.best_interval = {t, t};
      best.active.clear();
      // Report the heaviest active member per group.
      std::vector<std::size_t> per_group(static_cast<std::size_t>(next_group), n);
      for (std::size_t k = 0; k < n; ++k) {
        if (active_count[k] == 0) continue;
        auto& slot = per_group[static_cast<std::size_t>(gid[k])];
        if (slot == n || weights[k] > weights[slot]) slot = k;
      }
      for (const auto slot : per_group) {
        if (slot != n) best.active.push_back(slot);
      }
      std::sort(best.active.begin(), best.active.end());
    }
    while (j < events.size() && events[j].t == t && !events[j].open) {
      erase_item(events[j].item);
      ++j;
    }
    i = j;
  }
  return best;
}

ScanResult scan_max_overlap_grouped(std::span<const WeightedWindow> items,
                                    std::span<const int> groups) {
  if (groups.size() != items.size()) {
    throw std::invalid_argument("scan_max_overlap_grouped: group count mismatch");
  }
  std::vector<ScanEvent> events;
  std::vector<double> weights(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    weights[i] = items[i].weight;
    for (const auto& iv : items[i].window.intervals()) {
      events.push_back({iv.lo, true, i});
      events.push_back({iv.hi, false, i});
    }
  }
  return scan_events_max_overlap_grouped(events, weights, groups);
}

ScanResult brute_force_max_overlap_grouped(std::span<const WeightedWindow> items,
                                           std::span<const int> groups) {
  if (groups.size() != items.size()) {
    throw std::invalid_argument("brute_force_max_overlap_grouped: group count mismatch");
  }
  const std::size_t k = items.size();
  assert(k <= 26 && "brute force is exponential; test/ablation use only");
  ScanResult best;
  const std::size_t subsets = std::size_t{1} << k;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    // Group exclusivity: at most one member per non-negative group.
    bool legal = true;
    for (std::size_t i = 0; i < k && legal; ++i) {
      if (!(mask & (std::size_t{1} << i)) || groups[i] < 0) continue;
      for (std::size_t j = i + 1; j < k && legal; ++j) {
        if ((mask & (std::size_t{1} << j)) && groups[j] == groups[i]) legal = false;
      }
    }
    if (!legal) continue;
    double sum = 0.0;
    IntervalSet common = IntervalSet::everything();
    bool feasible = true;
    for (std::size_t i = 0; i < k && feasible; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      common = common.intersect(items[i].window);
      if (common.is_empty()) feasible = false;
      sum += items[i].weight;
    }
    if (feasible && sum > best.best_sum) {
      best.best_sum = sum;
      best.best_interval = common.hull();
      best.active.clear();
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (std::size_t{1} << i)) best.active.push_back(i);
      }
    }
  }
  return best;
}

ScanResult brute_force_max_overlap(std::span<const WeightedWindow> items) {
  const std::size_t k = items.size();
  assert(k <= 26 && "brute force is exponential; test/ablation use only");
  ScanResult best;
  const std::size_t subsets = std::size_t{1} << k;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    double sum = 0.0;
    IntervalSet common = IntervalSet::everything();
    bool feasible = true;
    for (std::size_t i = 0; i < k && feasible; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      common = common.intersect(items[i].window);
      if (common.is_empty()) feasible = false;
      sum += items[i].weight;
    }
    if (feasible && sum > best.best_sum) {
      best.best_sum = sum;
      best.best_interval = common.hull();
      best.active.clear();
      for (std::size_t i = 0; i < k; ++i) {
        if (mask & (std::size_t{1} << i)) best.active.push_back(i);
      }
    }
  }
  return best;
}

}  // namespace nw
