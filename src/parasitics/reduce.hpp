// Interconnect reduction: Elmore delays, admittance moments, pi model.
//
// STA uses Elmore per-tap wire delays; noise estimation uses the pi model
// (O'Brien–Savarino) of the victim seen from its driver, and downstream
// caps for loading. All routines require the net to be a tree rooted at
// node 0 and accept per-node extra capacitance (pin caps, Miller-lumped
// coupling) supplied by the caller.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "parasitics/rcnet.hpp"

namespace nw::para {

/// Result of a root-outward tree traversal.
struct TreeAnalysis {
  std::vector<std::uint32_t> parent;     ///< parent[node]; parent[0] == 0
  std::vector<double> res_to_parent;     ///< r of edge to parent; [0] == 0
  std::vector<double> res_from_root;     ///< sum of r along root->node path
  std::vector<double> cap_at;            ///< cground + extra per node
  std::vector<double> downstream_cap;    ///< cap in the subtree rooted at node
  std::vector<std::uint32_t> order;      ///< preorder from the root
};

/// Traverse the tree; throws std::invalid_argument if the net is not a
/// tree or `extra_cap` has the wrong size (pass {} for no extras).
[[nodiscard]] TreeAnalysis analyze_tree(const RcNet& net,
                                        std::span<const double> extra_cap = {});

/// Elmore delay from the root to every node: sum over root-path edges of
/// r_e * downstream_cap(e).
[[nodiscard]] std::vector<double> elmore_delays(const RcNet& net,
                                                std::span<const double> extra_cap = {});

/// First three input-admittance moments at the root:
///   y(s) = m1 s + m2 s^2 + m3 s^3 + ...
/// with m1 > 0, m2 < 0, m3 > 0 for RC trees.
struct AdmittanceMoments {
  double m1 = 0.0;
  double m2 = 0.0;
  double m3 = 0.0;
};
[[nodiscard]] AdmittanceMoments admittance_moments(const RcNet& net,
                                                   std::span<const double> extra_cap = {});

/// O'Brien–Savarino pi model matching the first three moments:
/// near cap c1 (at driver), resistance r, far cap c2.
struct PiModel {
  double c_near = 0.0;
  double r = 0.0;
  double c_far = 0.0;
  [[nodiscard]] double total_cap() const noexcept { return c_near + c_far; }
};
[[nodiscard]] PiModel pi_model(const RcNet& net, std::span<const double> extra_cap = {});

}  // namespace nw::para
