#include "parasitics/reduce.hpp"

#include <algorithm>
#include <stdexcept>

namespace nw::para {

TreeAnalysis analyze_tree(const RcNet& net, std::span<const double> extra_cap) {
  const std::size_t n = net.node_count();
  if (!extra_cap.empty() && extra_cap.size() != n) {
    throw std::invalid_argument("analyze_tree: extra_cap size mismatch");
  }
  if (!net.is_tree()) throw std::invalid_argument("analyze_tree: net is not a tree");

  std::vector<std::vector<std::pair<std::uint32_t, double>>> adj(n);
  for (const auto& e : net.resistors()) {
    adj[e.a].emplace_back(e.b, e.r);
    adj[e.b].emplace_back(e.a, e.r);
  }

  TreeAnalysis t;
  t.parent.assign(n, 0);
  t.res_to_parent.assign(n, 0.0);
  t.res_from_root.assign(n, 0.0);
  t.cap_at.assign(n, 0.0);
  t.downstream_cap.assign(n, 0.0);
  t.order.reserve(n);

  for (std::uint32_t i = 0; i < n; ++i) {
    t.cap_at[i] = net.node(i).cground + (extra_cap.empty() ? 0.0 : extra_cap[i]);
  }

  // Preorder DFS from the root.
  std::vector<bool> seen(n, false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    t.order.push_back(u);
    for (const auto& [v, r] : adj[u]) {
      if (seen[v]) continue;
      seen[v] = true;
      t.parent[v] = u;
      t.res_to_parent[v] = r;
      t.res_from_root[v] = t.res_from_root[u] + r;
      stack.push_back(v);
    }
  }

  // Downstream caps: accumulate children into parents in reverse preorder.
  t.downstream_cap = t.cap_at;
  for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
    const auto u = *it;
    if (u != 0) t.downstream_cap[t.parent[u]] += t.downstream_cap[u];
  }
  return t;
}

std::vector<double> elmore_delays(const RcNet& net, std::span<const double> extra_cap) {
  const TreeAnalysis t = analyze_tree(net, extra_cap);
  std::vector<double> delay(net.node_count(), 0.0);
  // delay[v] = delay[parent] + r_edge * downstream_cap[v], in preorder.
  for (const auto u : t.order) {
    if (u == 0) continue;
    delay[u] = delay[t.parent[u]] + t.res_to_parent[u] * t.downstream_cap[u];
  }
  return delay;
}

AdmittanceMoments admittance_moments(const RcNet& net, std::span<const double> extra_cap) {
  const TreeAnalysis t = analyze_tree(net, extra_cap);
  const std::size_t n = net.node_count();

  AdmittanceMoments m;
  // With a unit voltage source at the root, node voltages expand as
  //   v_i(s) = 1 - s E1_i + s^2 E2_i - ...
  // where E1_i is the Elmore delay and E2_i the second voltage moment.
  // The input current is I(s) = sum_i s C_i v_i(s), giving
  //   m1 = sum C_i,   m2 = -sum C_i E1_i,   m3 = sum C_i E2_i.

  // E1: Elmore delays (cap weights C_j).
  std::vector<double> e1(n, 0.0);
  for (const auto u : t.order) {
    if (u == 0) continue;
    e1[u] = e1[t.parent[u]] + t.res_to_parent[u] * t.downstream_cap[u];
  }
  // E2: "Elmore of Elmore" — same traversal with weights C_j * E1_j.
  std::vector<double> down_ce(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) down_ce[i] = t.cap_at[i] * e1[i];
  for (auto it = t.order.rbegin(); it != t.order.rend(); ++it) {
    const auto u = *it;
    if (u != 0) down_ce[t.parent[u]] += down_ce[u];
  }
  std::vector<double> e2(n, 0.0);
  for (const auto u : t.order) {
    if (u == 0) continue;
    e2[u] = e2[t.parent[u]] + t.res_to_parent[u] * down_ce[u];
  }

  for (std::size_t i = 0; i < n; ++i) {
    m.m1 += t.cap_at[i];
    m.m2 -= t.cap_at[i] * e1[i];
    m.m3 += t.cap_at[i] * e2[i];
  }
  return m;
}

PiModel pi_model(const RcNet& net, std::span<const double> extra_cap) {
  const AdmittanceMoments m = admittance_moments(net, extra_cap);
  PiModel pi;
  if (m.m2 == 0.0 || m.m3 <= 0.0) {
    // Purely capacitive (single node / zero resistance): all cap near.
    pi.c_near = m.m1;
    pi.r = 0.0;
    pi.c_far = 0.0;
    return pi;
  }
  // O'Brien–Savarino: c_far = m2^2/m3, r = -m3^2/m2^3, c_near = m1 - c_far.
  pi.c_far = (m.m2 * m.m2) / m.m3;
  pi.r = -(m.m3 * m.m3) / (m.m2 * m.m2 * m.m2);
  pi.c_near = std::max(m.m1 - pi.c_far, 0.0);
  return pi;
}

}  // namespace nw::para
