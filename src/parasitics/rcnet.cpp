#include "parasitics/rcnet.hpp"

#include <vector>

namespace nw::para {

std::uint32_t RcNet::add_node(double cground, PinId pin) {
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  RcNode n;
  n.cground = cground;
  n.pin = pin;
  nodes_.push_back(n);
  return idx;
}

void RcNet::add_cap(std::uint32_t node, double c) { nodes_.at(node).cground += c; }

void RcNet::attach_pin(std::uint32_t node, PinId pin) {
  RcNode& n = nodes_.at(node);
  if (n.pin.valid()) throw std::invalid_argument("RcNet::attach_pin: node has a pin");
  n.pin = pin;
}

void RcNet::add_res(std::uint32_t a, std::uint32_t b, double r) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("RcNet::add_res: node index");
  }
  if (a == b) throw std::invalid_argument("RcNet::add_res: self-loop");
  if (r <= 0.0) throw std::invalid_argument("RcNet::add_res: non-positive resistance");
  ress_.push_back({a, b, r});
}

std::uint32_t RcNet::node_of_pin(PinId pin) const noexcept {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].pin == pin) return i;
  }
  return static_cast<std::uint32_t>(nodes_.size());
}

double RcNet::total_ground_cap() const noexcept {
  double c = 0.0;
  for (const auto& n : nodes_) c += n.cground;
  return c;
}

double RcNet::total_res() const noexcept {
  double r = 0.0;
  for (const auto& e : ress_) r += e.r;
  return r;
}

bool RcNet::is_tree() const {
  if (ress_.size() + 1 != nodes_.size()) return false;
  // Connectivity check from node 0.
  std::vector<std::vector<std::uint32_t>> adj(nodes_.size());
  for (const auto& e : ress_) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const auto u = stack.back();
    stack.pop_back();
    for (const auto v : adj[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        stack.push_back(v);
      }
    }
  }
  return visited == nodes_.size();
}

void RcNet::scale(double cap_factor, double res_factor) {
  if (cap_factor <= 0.0 || res_factor <= 0.0) {
    throw std::invalid_argument("RcNet::scale: non-positive factor");
  }
  for (auto& n : nodes_) n.cground *= cap_factor;
  for (auto& e : ress_) e.r *= res_factor;
}

RcNet RcNet::lumped(double cap) {
  RcNet n;
  n.add_cap(0, cap);
  return n;
}

std::size_t Parasitics::add_coupling(NetId a, std::uint32_t node_a, NetId b,
                                     std::uint32_t node_b, double c) {
  if (a == b) throw std::invalid_argument("Parasitics::add_coupling: same net");
  if (node_a >= net(a).node_count() || node_b >= net(b).node_count()) {
    throw std::out_of_range("Parasitics::add_coupling: node index");
  }
  if (c <= 0.0) throw std::invalid_argument("Parasitics::add_coupling: non-positive cap");
  const std::size_t idx = caps_.size();
  caps_.push_back({a, node_a, b, node_b, c});
  incident_.at(a.index()).push_back(idx);
  incident_.at(b.index()).push_back(idx);
  return idx;
}

void Parasitics::pop_coupling() {
  if (caps_.empty()) throw std::logic_error("Parasitics::pop_coupling: no couplings");
  const std::size_t idx = caps_.size() - 1;
  const CouplingCap& cc = caps_.back();
  // add_coupling appends the new index to both incidence lists, so the
  // latest coupling is necessarily at their backs.
  auto& ia = incident_.at(cc.net_a.index());
  auto& ib = incident_.at(cc.net_b.index());
  if (ia.empty() || ia.back() != idx || ib.empty() || ib.back() != idx) {
    throw std::logic_error("Parasitics::pop_coupling: incidence out of sync");
  }
  ia.pop_back();
  ib.pop_back();
  caps_.pop_back();
}

double Parasitics::set_coupling_value(std::size_t index, double c) {
  if (index >= caps_.size()) {
    throw std::out_of_range("Parasitics::set_coupling_value: bad index");
  }
  if (c <= 0.0) {
    throw std::invalid_argument("Parasitics::set_coupling_value: non-positive cap");
  }
  const double old = caps_[index].c;
  caps_[index].c = c;
  return old;
}

double Parasitics::coupling_cap_of(NetId id) const {
  double c = 0.0;
  for (const auto i : couplings_of(id)) c += caps_[i].c;
  return c;
}

double Parasitics::total_cap(NetId id, double miller) const {
  return net(id).total_ground_cap() + miller * coupling_cap_of(id);
}

std::size_t Parasitics::memory_bytes() const noexcept {
  std::size_t bytes = nets_.capacity() * sizeof(RcNet) +
                      caps_.capacity() * sizeof(CouplingCap) +
                      incident_.capacity() * sizeof(std::vector<std::size_t>);
  for (const RcNet& n : nets_) bytes += n.memory_bytes();
  for (const auto& inc : incident_) bytes += inc.capacity() * sizeof(std::size_t);
  return bytes;
}

}  // namespace nw::para
