#include "parasitics/spef.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nw::para {

namespace {

/// Resolve "inst/PIN" or a port name to a PinId.
PinId resolve_pin(const net::Design& d, std::string_view name) {
  const auto slash = name.find('/');
  if (slash != std::string_view::npos) {
    const auto inst = d.find_instance(std::string(name.substr(0, slash)));
    if (!inst) throw std::runtime_error("nwspef: unknown instance in '" + std::string(name) + "'");
    const auto& cell = d.cell_of(*inst);
    const auto pin_idx = cell.find_pin(std::string(name.substr(slash + 1)));
    if (!pin_idx) throw std::runtime_error("nwspef: unknown pin in '" + std::string(name) + "'");
    return d.instance(*inst).pins.at(*pin_idx);
  }
  for (const auto p : d.input_ports()) {
    if (d.pin(p).port_name == name) return p;
  }
  for (const auto p : d.output_ports()) {
    if (d.pin(p).port_name == name) return p;
  }
  throw std::runtime_error("nwspef: unknown port '" + std::string(name) + "'");
}

}  // namespace

void write_spef(std::ostream& os, const net::Design& design, const Parasitics& para) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "*NWSPEF 1\n*DESIGN " << design.name() << "\n";
  for (std::size_t i = 0; i < para.net_count(); ++i) {
    const NetId id{i};
    const RcNet& rc = para.net(id);
    os << "*NET " << design.net(id).name << ' ' << rc.node_count() << "\n";
    for (std::uint32_t n = 0; n < rc.node_count(); ++n) {
      const RcNode& node = rc.node(n);
      if (node.cground != 0.0) os << "*C " << n << ' ' << node.cground << "\n";
      if (node.pin.valid()) os << "*P " << n << ' ' << design.pin_name(node.pin) << "\n";
    }
    for (const auto& r : rc.resistors()) {
      os << "*R " << r.a << ' ' << r.b << ' ' << r.r << "\n";
    }
    os << "*ENDNET\n";
  }
  for (const auto& cc : para.couplings()) {
    os << "*CC " << design.net(cc.net_a).name << ' ' << cc.node_a << ' '
       << design.net(cc.net_b).name << ' ' << cc.node_b << ' ' << cc.c << "\n";
  }
  os << "*END\n";
}

std::string write_spef_string(const net::Design& design, const Parasitics& para) {
  std::ostringstream os;
  write_spef(os, design, para);
  return os.str();
}

Parasitics read_spef(std::istream& is, const net::Design& design) {
  Parasitics para(design.net_count());
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) -> void {
    throw std::runtime_error("nwspef line " + std::to_string(lineno) + ": " + msg);
  };

  NetId cur_net;
  bool in_net = false;
  bool saw_header = false;
  while (std::getline(is, line)) {
    ++lineno;
    const auto t = nw::trim(line);
    if (t.empty() || nw::starts_with(t, "//")) continue;
    const auto toks = nw::split(t);
    const auto key = toks[0];
    if (key == "*NWSPEF") {
      saw_header = true;
    } else if (key == "*DESIGN") {
      // informational
    } else if (key == "*NET") {
      if (!saw_header) fail("missing *NWSPEF header");
      if (in_net) fail("nested *NET");
      if (toks.size() < 3) fail("short *NET line");
      const auto id = design.find_net(std::string(toks[1]));
      if (!id) fail("unknown net '" + std::string(toks[1]) + "'");
      cur_net = *id;
      in_net = true;
      const auto n_nodes = nw::parse_uint(toks[2]);
      RcNet& rc = para.net(cur_net);
      while (rc.node_count() < n_nodes) rc.add_node();
    } else if (key == "*C") {
      if (!in_net || toks.size() < 3) fail("bad *C line");
      para.net(cur_net).add_cap(static_cast<std::uint32_t>(nw::parse_uint(toks[1])),
                                nw::parse_double(toks[2]));
    } else if (key == "*P") {
      if (!in_net || toks.size() < 3) fail("bad *P line");
      para.net(cur_net).attach_pin(static_cast<std::uint32_t>(nw::parse_uint(toks[1])),
                                   resolve_pin(design, toks[2]));
    } else if (key == "*R") {
      if (!in_net || toks.size() < 4) fail("bad *R line");
      para.net(cur_net).add_res(static_cast<std::uint32_t>(nw::parse_uint(toks[1])),
                                static_cast<std::uint32_t>(nw::parse_uint(toks[2])),
                                nw::parse_double(toks[3]));
    } else if (key == "*ENDNET") {
      if (!in_net) fail("*ENDNET outside net");
      in_net = false;
    } else if (key == "*CC") {
      if (in_net) fail("*CC inside net section");
      if (toks.size() < 6) fail("short *CC line");
      const auto a = design.find_net(std::string(toks[1]));
      const auto b = design.find_net(std::string(toks[3]));
      if (!a || !b) fail("unknown net in *CC");
      para.add_coupling(*a, static_cast<std::uint32_t>(nw::parse_uint(toks[2])), *b,
                        static_cast<std::uint32_t>(nw::parse_uint(toks[4])),
                        nw::parse_double(toks[5]));
    } else if (key == "*END") {
      return para;
    } else {
      fail("unknown keyword '" + std::string(key) + "'");
    }
  }
  fail("missing *END");
  return para;  // unreachable
}

Parasitics read_spef_string(const std::string& text, const net::Design& design) {
  std::istringstream is(text);
  return read_spef(is, design);
}

}  // namespace nw::para
