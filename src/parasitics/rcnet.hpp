// Extracted parasitics: one RC tree per net plus inter-net coupling caps.
//
// Node 0 of every RC net is the driver (root). Load pins attach to nodes.
// Coupling capacitors are stored centrally (they belong to a *pair* of
// nets) with a per-net incidence index for fast aggressor lookup — the
// first step of noise analysis is "who couples to this victim?".
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/ids.hpp"

namespace nw::para {

struct RcNode {
  double cground = 0.0;  ///< grounded capacitance at this node [F]
  PinId pin;             ///< attached design pin, if any (loads/driver)
};

struct RcRes {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  double r = 0.0;        ///< [ohm]
};

/// The RC network of a single net. Usually a tree rooted at node 0 (the
/// driver); the container does not enforce treeness — `is_tree()` reports
/// it and the reduction routines require it.
class RcNet {
 public:
  RcNet() { nodes_.push_back(RcNode{}); }  // node 0 = driver root

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t res_count() const noexcept { return ress_.size(); }
  [[nodiscard]] const RcNode& node(std::uint32_t i) const { return nodes_.at(i); }
  [[nodiscard]] const std::vector<RcRes>& resistors() const noexcept { return ress_; }

  /// Add a node with grounded cap and (optionally) an attached pin.
  std::uint32_t add_node(double cground = 0.0, PinId pin = {});
  /// Add grounded cap to an existing node.
  void add_cap(std::uint32_t node, double c);
  /// Attach a pin to a node (throws if the node already has one).
  void attach_pin(std::uint32_t node, PinId pin);
  /// Add a resistor between two existing nodes.
  void add_res(std::uint32_t a, std::uint32_t b, double r);

  /// Node a pin is attached to, or node_count() if absent.
  [[nodiscard]] std::uint32_t node_of_pin(PinId pin) const noexcept;

  /// ECO: scale every grounded cap by `cap_factor` and every resistance by
  /// `res_factor` (wire respacing / re-layering what-ifs). Factors must be
  /// positive (throws std::invalid_argument). Coupling caps live in
  /// Parasitics and are not touched.
  void scale(double cap_factor, double res_factor);

  [[nodiscard]] double total_ground_cap() const noexcept;
  /// Sum of resistances (diagnostic).
  [[nodiscard]] double total_res() const noexcept;

  /// True iff the resistor graph is a connected tree spanning all nodes.
  [[nodiscard]] bool is_tree() const;

  /// Make a single-node net (driver == load node) with a lumped cap.
  [[nodiscard]] static RcNet lumped(double cap);

  /// Capacity-based heap bytes of this RC network.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return nodes_.capacity() * sizeof(RcNode) + ress_.capacity() * sizeof(RcRes);
  }

 private:
  std::vector<RcNode> nodes_;
  std::vector<RcRes> ress_;
};

/// A coupling capacitor between a node of net `a` and a node of net `b`.
struct CouplingCap {
  NetId net_a;
  std::uint32_t node_a = 0;
  NetId net_b;
  std::uint32_t node_b = 0;
  double c = 0.0;  ///< [F]

  [[nodiscard]] NetId other_net(NetId n) const noexcept {
    return n == net_a ? net_b : net_a;
  }
  [[nodiscard]] std::uint32_t node_on(NetId n) const noexcept {
    return n == net_a ? node_a : node_b;
  }
};

/// Parasitics for a whole design: RC net per NetId + the coupling list.
class Parasitics {
 public:
  explicit Parasitics(std::size_t net_count)
      : nets_(net_count), incident_(net_count) {}

  [[nodiscard]] std::size_t net_count() const noexcept { return nets_.size(); }

  [[nodiscard]] RcNet& net(NetId id) { return nets_.at(id.index()); }
  [[nodiscard]] const RcNet& net(NetId id) const { return nets_.at(id.index()); }

  /// Register a coupling cap; returns its index.
  std::size_t add_coupling(NetId a, std::uint32_t node_a, NetId b,
                           std::uint32_t node_b, double c);

  /// ECO: change an existing coupling cap's value in place (the incidence
  /// structure is untouched). Returns the previous value (the inverse
  /// edit). Throws std::out_of_range on a bad index and
  /// std::invalid_argument on a non-positive value.
  double set_coupling_value(std::size_t index, double c);

  /// ECO: replace a net's RC network wholesale (bit-exact undo of scaling
  /// edits). The replacement must keep every attached pin so design
  /// lookups stay valid; callers swap in a previously captured copy.
  void replace_net(NetId id, RcNet rc) { nets_.at(id.index()) = std::move(rc); }

  /// ECO undo: remove the most recently added coupling cap (LIFO only, so
  /// incidence indices stay dense). Throws std::logic_error when empty.
  void pop_coupling();

  [[nodiscard]] const std::vector<CouplingCap>& couplings() const noexcept {
    return caps_;
  }
  [[nodiscard]] const CouplingCap& coupling(std::size_t i) const { return caps_.at(i); }

  /// Indices of coupling caps incident to a net.
  [[nodiscard]] std::span<const std::size_t> couplings_of(NetId id) const {
    return incident_.at(id.index());
  }

  /// Sum of coupling capacitance incident to a net [F].
  [[nodiscard]] double coupling_cap_of(NetId id) const;

  /// Grounded + `miller` x coupling cap of a net [F]. miller = 1 treats the
  /// far side as quiet AC ground (the standard noise/delay lumping).
  [[nodiscard]] double total_cap(NetId id, double miller = 1.0) const;

  /// Capacity-based estimate of the heap bytes the parasitics own (RC
  /// trees, coupling list, incidence index). Feeds the "parasitics" memory
  /// account via a size-accounting hook.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::vector<RcNet> nets_;
  std::vector<CouplingCap> caps_;
  std::vector<std::vector<std::size_t>> incident_;
};

}  // namespace nw::para
