// SPEF-like parasitic exchange format (".nwspef").
//
// A simplified single-pass analogue of IEEE 1481 SPEF: per-net RC sections
// followed by a coupling section. Pin attachments are written as design
// pin names ("inst/PIN" or port names) and re-resolved against the Design
// on read, so a written file round-trips onto the same netlist.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"

namespace nw::para {

void write_spef(std::ostream& os, const net::Design& design, const Parasitics& para);
[[nodiscard]] std::string write_spef_string(const net::Design& design,
                                            const Parasitics& para);

/// Parse; throws std::runtime_error (with line number) on malformed input
/// or names that don't resolve against `design`.
[[nodiscard]] Parasitics read_spef(std::istream& is, const net::Design& design);
[[nodiscard]] Parasitics read_spef_string(const std::string& text,
                                          const net::Design& design);

}  // namespace nw::para
