#include "la/dense.hpp"

#include <algorithm>
#include <cmath>

namespace nw::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Matrix+=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_) throw std::invalid_argument("Matrix-=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Vector Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("Matrix::multiply: size");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& o) const {
  if (cols_ != o.rows_) throw std::invalid_argument("Matrix::multiply: shape");
  Matrix y(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < o.cols_; ++c) y(r, c) += a * o(k, c);
    }
  }
  return y;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (const auto v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuFactor::LuFactor(Matrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LuFactor: square required");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |value| in column k at/below the diagonal.
    std::size_t p = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double v = std::abs(lu_(r, k));
      if (v > best) {
        best = v;
        p = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("LuFactor: singular matrix");
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(p, c));
      std::swap(perm_[k], perm_[p]);
      sign_ = -sign_;
    }
    const double pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double f = lu_(r, k) / pivot;
      lu_(r, k) = f;
      if (f == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= f * lu_(k, c);
    }
  }
}

Vector LuFactor::solve(std::span<const double> b) const {
  const std::size_t n = dim();
  if (b.size() != n) throw std::invalid_argument("LuFactor::solve: size");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

Matrix LuFactor::solve(const Matrix& b) const {
  if (b.rows() != dim()) throw std::invalid_argument("LuFactor::solve: shape");
  Matrix x(b.rows(), b.cols());
  Vector col(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuFactor::determinant() const noexcept {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < dim(); ++i) d *= lu_(i, i);
  return d;
}

CholeskyFactor::CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("Cholesky: square required");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (sum <= 0.0) throw std::runtime_error("Cholesky: matrix not SPD");
        l_(i, i) = std::sqrt(sum);
      } else {
        l_(i, j) = sum / l_(j, j);
      }
    }
  }
}

Vector CholeskyFactor::solve(std::span<const double> b) const {
  const std::size_t n = dim();
  if (b.size() != n) throw std::invalid_argument("Cholesky::solve: size");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l_(i, j) * y[j];
    y[i] = acc / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l_(j, ii) * x[j];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  const LuFactor lu(a);
  return lu.solve(Matrix::identity(a.rows()));
}

bool is_spd(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  const double scale = std::max(a.max_abs(), 1.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol * scale) return false;
    }
  }
  try {
    const CholeskyFactor chol(a);
    (void)chol;
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

bool is_strictly_diagonally_dominant(const Matrix& a) {
  if (a.rows() != a.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j != i) off += std::abs(a(i, j));
    }
    if (!(std::abs(a(i, i)) > off)) return false;
  }
  return true;
}

}  // namespace nw::la
