// Sparse linear algebra: triplet assembly, CSR storage, and a direct
// sparse LU (row-map Gaussian elimination with threshold partial pivoting).
//
// MNA matrices of full-design RC networks are extremely sparse (a handful
// of entries per row). The solver here trades peak asymptotic cleverness
// for simplicity and robustness; with reverse Cuthill–McKee-style locality
// the fill-in stays small for tree-structured RC nets.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

namespace nw::la {

/// Coordinate-format accumulator. Duplicate (r,c) entries sum, which is
/// exactly the "stamping" idiom circuit simulators use.
class TripletBuilder {
 public:
  explicit TripletBuilder(std::size_t n) : n_(n), rows_(n) {}

  [[nodiscard]] std::size_t dim() const noexcept { return n_; }

  /// Accumulate v at (r, c).
  void add(std::size_t r, std::size_t c, double v);

  /// Read an entry (0.0 if absent).
  [[nodiscard]] double get(std::size_t r, std::size_t c) const;

  [[nodiscard]] const std::map<std::size_t, double>& row(std::size_t r) const {
    return rows_[r];
  }

  [[nodiscard]] std::size_t nonzeros() const noexcept;

 private:
  friend class SparseMatrix;
  friend class SparseLu;
  std::size_t n_;
  std::vector<std::map<std::size_t, double>> rows_;
};

/// Compressed sparse row matrix (immutable after construction).
class SparseMatrix {
 public:
  explicit SparseMatrix(const TripletBuilder& b);

  [[nodiscard]] std::size_t dim() const noexcept { return n_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return vals_.size(); }

  /// y = A x
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// Entry lookup (binary search within the row; 0.0 if absent).
  [[nodiscard]] double get(std::size_t r, std::size_t c) const;

 private:
  std::size_t n_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> vals_;
};

/// Direct sparse LU with threshold partial pivoting on row maps.
///
/// Factorizes once; solve() may be called repeatedly (transient simulation
/// re-solves every timestep with a fixed step size and fixed matrix).
class SparseLu {
 public:
  /// Factorize. `pivot_threshold` in (0,1]: a diagonal is accepted if its
  /// magnitude is at least threshold * (largest magnitude in its column
  /// among remaining rows); otherwise rows are swapped. 1.0 = strict
  /// partial pivoting.
  explicit SparseLu(const TripletBuilder& a, double pivot_threshold = 0.1);

  [[nodiscard]] std::size_t dim() const noexcept { return n_; }
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Fill statistics: nonzeros in L+U (diagnostic for benches).
  [[nodiscard]] std::size_t factor_nonzeros() const noexcept;

 private:
  std::size_t n_;
  // L (strictly lower, unit diagonal implied) and U (upper incl. diagonal),
  // stored as sorted (col, val) rows for cache-friendly substitution.
  std::vector<std::vector<std::pair<std::size_t, double>>> lower_;
  std::vector<std::vector<std::pair<std::size_t, double>>> upper_;
  std::vector<std::size_t> perm_;  // row permutation: use row perm_[i] as pivot i
};

/// Conjugate gradient for SPD systems (used for grounded-conductance
/// solves, e.g. DC noise propagation over resistive victim trees).
/// Returns the iterate after convergence (relative residual < tol) or
/// max_iter sweeps, whichever first.
[[nodiscard]] std::vector<double> conjugate_gradient(const SparseMatrix& a,
                                                     std::span<const double> b,
                                                     double tol = 1e-10,
                                                     std::size_t max_iter = 10000);

}  // namespace nw::la
