#include "la/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nw::la {

void TripletBuilder::add(std::size_t r, std::size_t c, double v) {
  if (r >= n_ || c >= n_) throw std::out_of_range("TripletBuilder::add");
  rows_[r][c] += v;
}

double TripletBuilder::get(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) throw std::out_of_range("TripletBuilder::get");
  const auto it = rows_[r].find(c);
  return it == rows_[r].end() ? 0.0 : it->second;
}

std::size_t TripletBuilder::nonzeros() const noexcept {
  std::size_t nnz = 0;
  for (const auto& r : rows_) nnz += r.size();
  return nnz;
}

SparseMatrix::SparseMatrix(const TripletBuilder& b) : n_(b.dim()) {
  row_ptr_.reserve(n_ + 1);
  row_ptr_.push_back(0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (const auto& [c, v] : b.row(r)) {
      col_.push_back(c);
      vals_.push_back(v);
    }
    row_ptr_.push_back(col_.size());
  }
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != n_) throw std::invalid_argument("SparseMatrix::multiply: size");
  std::vector<double> y(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += vals_[k] * x[col_[k]];
    }
    y[r] = acc;
  }
  return y;
}

double SparseMatrix::get(std::size_t r, std::size_t c) const {
  if (r >= n_ || c >= n_) throw std::out_of_range("SparseMatrix::get");
  const auto first = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto last = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(first, last, c);
  if (it == last || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(it - col_.begin())];
}

SparseLu::SparseLu(const TripletBuilder& a, double pivot_threshold) : n_(a.dim()) {
  if (pivot_threshold <= 0.0 || pivot_threshold > 1.0) {
    throw std::invalid_argument("SparseLu: pivot_threshold must be in (0,1]");
  }
  // Working rows as sorted maps; rows are eliminated in place. Elimination
  // multipliers are attached to the *physical* row (indexed by original row
  // id) so that later pivot swaps reorder them correctly; they are gathered
  // into position order at the end.
  std::vector<std::map<std::size_t, double>> work = a.rows_;
  std::vector<std::size_t> rowidx(n_);  // rowidx[i] = original row used at step i
  for (std::size_t i = 0; i < n_; ++i) rowidx[i] = i;
  std::vector<std::vector<std::pair<std::size_t, double>>> mult(n_);

  lower_.assign(n_, {});
  upper_.assign(n_, {});

  for (std::size_t k = 0; k < n_; ++k) {
    // Pick pivot row among remaining rows having column k.
    double colmax = 0.0;
    for (std::size_t i = k; i < n_; ++i) {
      const auto& row = work[rowidx[i]];
      const auto it = row.find(k);
      if (it != row.end()) colmax = std::max(colmax, std::abs(it->second));
    }
    if (colmax < 1e-300) throw std::runtime_error("SparseLu: singular matrix");

    std::size_t chosen = n_;
    std::size_t chosen_len = static_cast<std::size_t>(-1);
    for (std::size_t i = k; i < n_; ++i) {
      const auto& row = work[rowidx[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      if (std::abs(it->second) >= pivot_threshold * colmax) {
        // Among acceptable pivots prefer the sparsest row (Markowitz-lite).
        if (row.size() < chosen_len) {
          chosen_len = row.size();
          chosen = i;
        }
      }
    }
    if (chosen == n_) throw std::runtime_error("SparseLu: pivot selection failed");
    std::swap(rowidx[k], rowidx[chosen]);

    auto& prow = work[rowidx[k]];
    const double pivot = prow.at(k);

    // Record U row k (entries with col >= k).
    for (const auto& [c, v] : prow) {
      if (c >= k) upper_[k].emplace_back(c, v);
    }

    // Eliminate column k from all remaining rows.
    for (std::size_t i = k + 1; i < n_; ++i) {
      auto& row = work[rowidx[i]];
      const auto it = row.find(k);
      if (it == row.end()) continue;
      const double f = it->second / pivot;
      row.erase(it);
      mult[rowidx[i]].emplace_back(k, f);
      for (const auto& [c, v] : prow) {
        if (c <= k) continue;
        auto& target = row[c];
        target -= f * v;
        if (std::abs(target) < 1e-300) row.erase(c);
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) lower_[i] = std::move(mult[rowidx[i]]);
  perm_ = rowidx;
}

std::vector<double> SparseLu::solve(std::span<const double> b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu::solve: size");
  std::vector<double> y(n_);
  // Forward: L y = P b  (lower_[i] holds multipliers indexed by pivot step).
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[perm_[i]];
    for (const auto& [k, f] : lower_[i]) acc -= f * y[k];
    y[i] = acc;
  }
  // Back: U x = y.
  std::vector<double> x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = y[ii];
    double diag = 0.0;
    for (const auto& [c, v] : upper_[ii]) {
      if (c == ii) {
        diag = v;
      } else {
        acc -= v * x[c];
      }
    }
    x[ii] = acc / diag;
  }
  return x;
}

std::size_t SparseLu::factor_nonzeros() const noexcept {
  std::size_t nnz = 0;
  for (const auto& r : lower_) nnz += r.size();
  for (const auto& r : upper_) nnz += r.size();
  return nnz;
}

std::vector<double> conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                                       double tol, std::size_t max_iter) {
  const std::size_t n = a.dim();
  if (b.size() != n) throw std::invalid_argument("conjugate_gradient: size");
  std::vector<double> x(n, 0.0);
  std::vector<double> r(b.begin(), b.end());
  std::vector<double> p = r;
  double rr = 0.0;
  for (const auto v : r) rr += v * v;
  const double b_norm = std::sqrt(rr);
  if (b_norm == 0.0) return x;

  for (std::size_t it = 0; it < max_iter; ++it) {
    const std::vector<double> ap = a.multiply(p);
    double pap = 0.0;
    for (std::size_t i = 0; i < n; ++i) pap += p[i] * ap[i];
    if (pap <= 0.0) break;  // not SPD (or converged to machine precision)
    const double alpha = rr / pap;
    double rr_new = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
      rr_new += r[i] * r[i];
    }
    if (std::sqrt(rr_new) < tol * b_norm) break;
    const double beta = rr_new / rr;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rr = rr_new;
  }
  return x;
}

}  // namespace nw::la
