// Dense linear algebra: row-major matrix, LU with partial pivoting,
// Cholesky for SPD systems, solves and inversion.
//
// Sized for noise analysis: MNA systems of victim clusters (tens to a few
// hundred unknowns) where a dense factorization beats sparse bookkeeping.
// Larger systems go through la/sparse.hpp.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace nw::la {

using Vector = std::vector<double>;

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Vector multiply(std::span<const double> x) const;
  [[nodiscard]] Matrix multiply(const Matrix& o) const;

  /// Max-abs entry (useful for tolerance checks in tests).
  [[nodiscard]] double max_abs() const noexcept;

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial (row) pivoting: PA = LU.
///
/// Throws std::runtime_error on (numerically) singular input.
class LuFactor {
 public:
  explicit LuFactor(Matrix a);

  /// Solve A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;
  /// Solve for multiple right-hand sides (columns of B).
  [[nodiscard]] Matrix solve(const Matrix& b) const;
  /// Determinant of A.
  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t dim() const noexcept { return lu_.rows(); }

 private:
  Matrix lu_;                 // packed L (unit diagonal) and U
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Cholesky factorization A = L L^T for symmetric positive definite A.
///
/// Throws std::runtime_error if A is not (numerically) SPD — which is also
/// how passivity of a conductance matrix is checked in tests.
class CholeskyFactor {
 public:
  explicit CholeskyFactor(const Matrix& a);

  [[nodiscard]] Vector solve(std::span<const double> b) const;
  [[nodiscard]] std::size_t dim() const noexcept { return l_.rows(); }

 private:
  Matrix l_;
};

/// Invert via LU. Throws on singular input.
[[nodiscard]] Matrix inverse(const Matrix& a);

/// true iff a is symmetric within tol and Cholesky succeeds.
[[nodiscard]] bool is_spd(const Matrix& a, double tol = 1e-9);

/// Strict diagonal dominance check: |a_ii| > sum_{j!=i} |a_ij| for all i.
[[nodiscard]] bool is_strictly_diagonally_dominant(const Matrix& a);

}  // namespace nw::la
