#include "session/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "noise/progress.hpp"
#include "noise/trace.hpp"
#include "obs/profile.hpp"
#include "obs/tracer.hpp"

namespace nw::session {

namespace {

/// Internal control-flow error carrying a protocol error code. Caught at
/// the handle_line boundary and rendered as a structured response. Detail
/// keys (if any) are merged into the error object — `overloaded` carries
/// "retry_after_ms" this way.
struct ProtoError {
  std::string code;
  std::string message;
  Json detail{};
};

/// RAII admission ticket: charges the gate only when the request would run
/// an analysis, and releases the slot (with the held wall time) however
/// dispatch exits. Denial throws `overloaded` before any work.
class GateGuard {
 public:
  GateGuard(AnalysisGate* gate, Session& session, const std::string& cmd) {
    if (gate == nullptr || !session.needs_analysis()) return;
    AnalysisGate::Ticket t = gate->admit(cmd);
    if (!t.admitted) {
      Json detail = Json::object();
      detail.set("retry_after_ms", t.retry_after_ms);
      throw ProtoError{"overloaded", std::move(t.reason), std::move(detail)};
    }
    gate_ = gate;
    t0_ = std::chrono::steady_clock::now();
  }
  ~GateGuard() {
    if (gate_ != nullptr) {
      gate_->release(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0_)
                         .count());
    }
  }
  GateGuard(const GateGuard&) = delete;
  GateGuard& operator=(const GateGuard&) = delete;

 private:
  AnalysisGate* gate_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

[[noreturn]] void bad_args(std::string message) {
  throw ProtoError{"bad_args", std::move(message)};
}

const Json& require_object(const Json& args) {
  if (!args.is_object()) throw ProtoError{"bad_args", "args must be an object"};
  return args;
}

std::string arg_string(const Json& args, const char* key) {
  const Json* v = require_object(args).find(key);
  if (v == nullptr || !v->is_string()) {
    bad_args(std::string("missing string argument '") + key + "'");
  }
  return v->as_string();
}

double arg_number(const Json& args, const char* key) {
  const Json* v = require_object(args).find(key);
  if (v == nullptr || !v->is_number() || !std::isfinite(v->as_number())) {
    bad_args(std::string("missing numeric argument '") + key + "'");
  }
  return v->as_number();
}

std::size_t arg_limit(const Json& args, std::size_t fallback) {
  if (!args.is_object()) return fallback;
  const Json* v = args.find("limit");
  if (v == nullptr) return fallback;
  if (!v->is_number() || v->as_number() < 0 ||
      v->as_number() != std::floor(v->as_number())) {
    bad_args("'limit' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v->as_number());
}

Json interval_json(const Interval& iv) {
  Json a = Json::array();
  if (!iv.is_empty()) {
    a.push_back(iv.lo);
    a.push_back(iv.hi);
  }
  return a;
}

Json window_json(const IntervalSet& set) {
  Json a = Json::array();
  for (const Interval& iv : set.intervals()) a.push_back(interval_json(iv));
  return a;
}

Json violation_json(const net::Design& design, const noise::Violation& v) {
  Json o = Json::object();
  o.set("endpoint", design.pin_name(v.endpoint));
  o.set("net", design.net(v.net).name);
  o.set("peak", v.peak);
  o.set("width", v.width);
  o.set("threshold", v.threshold);
  o.set("slack", v.slack());
  o.set("temporal", v.temporal);
  return o;
}

Json share_json(const net::Design& design, const noise::AggressorShare& s) {
  Json o = Json::object();
  if (s.is_propagated()) {
    o.set("source", "propagated");
  } else {
    o.set("source", design.net(s.aggressor).name);
    o.set("coupling_cap", s.coupling_cap);
  }
  if (s.from_net.valid()) o.set("from_net", design.net(s.from_net).name);
  o.set("peak", s.peak);
  o.set("overlap", interval_json(s.overlap));
  o.set("verdict", noise::to_string(s.verdict));
  return o;
}

Json provenance_json(const net::Design& design, const noise::Violation& v,
                     const noise::Provenance& p) {
  Json o = violation_json(design, v);
  o.set("sensitivity", interval_json(v.sensitivity));
  o.set("alignment", interval_json(p.alignment));
  Json stages = Json::object();
  stages.set("unfiltered", p.peak_unfiltered);
  stages.set("switching_windows", p.peak_switching);
  stages.set("noise_windows", p.peak_noise_window);
  stages.set("in_sensitivity", p.peak_in_sensitivity);
  o.set("stages", std::move(stages));
  o.set("culled_by", noise::to_string(p.culled_by));
  Json shares = Json::array();
  for (const noise::AggressorShare& s : p.shares) {
    shares.push_back(share_json(design, s));
  }
  o.set("aggressors", std::move(shares));
  Json path = Json::array();
  for (const noise::ProvenanceStep& step : p.path) {
    Json sj = Json::object();
    sj.set("net", design.net(step.net).name);
    sj.set("peak", step.peak);
    sj.set("width", step.width);
    path.push_back(std::move(sj));
  }
  o.set("path", std::move(path));
  return o;
}

Json metrics_json(const obs::MetricsSnapshot& snap) {
  Json counters = Json::object();
  Json gauges = Json::object();
  for (const obs::MetricSample& s : snap.samples) {
    if (s.kind == obs::MetricSample::Kind::kCounter) {
      counters.set(s.name, static_cast<double>(s.count));
    } else if (s.kind == obs::MetricSample::Kind::kGauge) {
      gauges.set(s.name, s.value);
    }
  }
  Json o = Json::object();
  o.set("counters", std::move(counters));
  o.set("gauges", std::move(gauges));
  return o;
}

}  // namespace

Protocol::Protocol(Session& session, RequestContext* reqobs)
    : session_(session),
      reqobs_(reqobs),
      requests_(session.registry().counter(kMetricRequests, "protocol requests handled")),
      errors_(session.registry().counter(kMetricErrors, "protocol error responses")) {}

Json Protocol::dispatch(const std::string& cmd, const Json& args) {
  // ---- introspection (never triggers analysis) ----------------------------
  if (cmd == "hello") {
    Json o = Json::object();
    o.set("protocol", kProtocolVersion);
    o.set("design", session_.design().name());
    o.set("nets", session_.design().net_count());
    o.set("instances", session_.design().instance_count());
    o.set("epoch", static_cast<double>(session_.epoch()));
    o.set("version", obs::build_version());
    o.set("build", obs::build_type());
    o.set("stats_schema", obs::kStatsSchemaVersion);
    o.set("transport", caps_.transport);
    o.set("daemon", caps_.daemon);
    if (caps_.daemon) {
      o.set("connection", static_cast<double>(caps_.connection_id));
    }
    // Optional-command discovery: clients check membership instead of
    // probing with unknown_cmd round trips.
    Json features = Json::array();
    features.push_back("stats");
    features.push_back("slowlog");
    features.push_back("profile");
    if (watch_) features.push_back("watch");
    if (shutdown_) features.push_back("shutdown");
    o.set("features", std::move(features));
    Json limits = Json::object();
    limits.set("max_line_bytes", kMaxLineBytes);
    limits.set("max_queued", caps_.max_queued);
    limits.set("max_connections", caps_.max_connections);
    limits.set("analysis_slots", caps_.analysis_slots);
    limits.set("idle_timeout_s", caps_.idle_timeout_s);
    o.set("limits", std::move(limits));
    return o;
  }
  if (cmd == "stats") {
    Json o = metrics_json(session_.metrics_snapshot());
    o.set("epoch", static_cast<double>(session_.epoch()));
    o.set("undo_depth", session_.undo_depth());
    if (stats_extra_) {
      const Json extra = stats_extra_(args);
      if (extra.is_object()) {
        for (const auto& [k, v] : extra.members()) o.set(k, v);
      }
    }
    return o;
  }
  if (cmd == "slowlog") {
    if (reqobs_ == nullptr) {
      Json o = Json::object();
      o.set("enabled", false);
      o.set("entries", Json::array());
      return o;
    }
    Json o = reqobs_->slowlog_json();
    o.set("enabled", true);
    return o;
  }
  if (cmd == "profile") {
    // Controls the process-wide sampling profiler: requests between a
    // `start` and a `stop` get span-stack samples (and slow ones a folded
    // capture in the slow log); `dump` returns the aggregate so far.
    const std::string action = arg_string(args, "action");
    Json o = Json::object();
    if (action == "start") {
      int hz = 97;
      if (const Json* v = require_object(args).find("hz")) {
        const double n = arg_number(args, "hz");
        if (n < 1.0 || n > obs::Profiler::kMaxHz || n != std::floor(n)) {
          bad_args("'hz' must be an integer in [1, " +
                   std::to_string(obs::Profiler::kMaxHz) + "]");
        }
        hz = static_cast<int>(n);
      }
      if (obs::Profiler::running()) {
        bad_args("profiler already running (stop it first)");
      }
      obs::Profiler::clear();
      if (!obs::Profiler::start(hz)) {
        throw ProtoError{"internal", "profiler failed to start"};
      }
    } else if (action == "stop") {
      obs::Profiler::stop();
    } else if (action == "dump") {
      const std::size_t limit = arg_limit(args, 200);
      const std::vector<obs::FoldedEntry> snap = obs::Profiler::snapshot();
      Json list = Json::array();
      for (std::size_t i = 0; i < snap.size() && i < limit; ++i) {
        Json e = Json::object();
        e.set("stack", snap[i].stack);
        e.set("count", static_cast<double>(snap[i].count));
        list.push_back(std::move(e));
      }
      o.set("stacks", snap.size());
      o.set("entries", std::move(list));
    } else if (action != "status") {
      bad_args("'action' must be start|stop|dump|status");
    }
    o.set("running", obs::Profiler::running());
    o.set("hz", obs::Profiler::hz());
    o.set("samples", static_cast<double>(obs::Profiler::total_samples()));
    o.set("torn", static_cast<double>(obs::Profiler::torn_samples()));
    return o;
  }

  // ---- queries ------------------------------------------------------------
  // Each query below may trigger an analysis; the guard charges the
  // admission gate exactly when it will (cache hits pass free).
  if (cmd == "violations") {
    const std::size_t limit = arg_limit(args, 100);
    const GateGuard gate(gate_, session_, cmd);
    const noise::Result& r = session_.result();
    Json list = Json::array();
    for (std::size_t i = 0; i < r.violations.size() && i < limit; ++i) {
      list.push_back(violation_json(session_.design(), r.violations[i]));
    }
    Json o = Json::object();
    o.set("count", r.violations.size());
    o.set("endpoints_checked", r.endpoints_checked);
    o.set("noisy_nets", r.noisy_nets);
    o.set("epoch", static_cast<double>(r.epoch));
    o.set("violations", std::move(list));
    return o;
  }
  if (cmd == "net_noise") {
    const NetId id = session_.require_net(arg_string(args, "net"));
    const GateGuard gate(gate_, session_, cmd);
    const noise::NetNoise& nn = session_.result().net(id);
    Json o = Json::object();
    o.set("net", session_.design().net(id).name);
    o.set("injected_peak", nn.injected_peak);
    o.set("propagated_peak", nn.propagated_peak);
    o.set("total_peak", nn.total_peak);
    o.set("width", nn.width);
    o.set("aggressors", nn.aggressor_count);
    o.set("window", window_json(nn.window));
    return o;
  }
  if (cmd == "trace_origin") {
    const NetId id = session_.require_net(arg_string(args, "net"));
    const GateGuard gate(gate_, session_, cmd);
    const noise::NoiseTrace tr = session_.trace(id);
    Json path = Json::array();
    for (const noise::TraceStep& step : tr.path) {
      Json s = Json::object();
      s.set("net", session_.design().net(step.net).name);
      s.set("peak", step.peak);
      s.set("width", step.width);
      path.push_back(std::move(s));
    }
    Json aggs = Json::array();
    for (const NetId a : tr.aggressors) {
      aggs.push_back(session_.design().net(a).name);
    }
    Json o = Json::object();
    o.set("path", std::move(path));
    o.set("aggressors", std::move(aggs));
    return o;
  }
  if (cmd == "explain") {
    const NetId id = session_.require_net(arg_string(args, "net"));
    const GateGuard gate(gate_, session_, cmd);
    const noise::Result& r = session_.result();
    Json list = Json::array();
    for (std::size_t i = 0; i < r.violations.size(); ++i) {
      if (r.violations[i].net != id) continue;
      list.push_back(
          provenance_json(session_.design(), r.violations[i], r.provenance[i]));
    }
    Json o = Json::object();
    o.set("net", session_.design().net(id).name);
    o.set("count", list.items().size());
    o.set("epoch", static_cast<double>(r.epoch));
    o.set("violations", std::move(list));
    return o;
  }
  if (cmd == "slack") {
    const std::size_t limit = arg_limit(args, 20);
    const GateGuard gate(gate_, session_, cmd);
    const std::vector<EndpointSlack> slacks = session_.endpoint_slacks();
    Json list = Json::array();
    for (std::size_t i = 0; i < slacks.size() && i < limit; ++i) {
      Json s = Json::object();
      s.set("endpoint", slacks[i].endpoint);
      s.set("net", slacks[i].net);
      s.set("slack", slacks[i].slack);
      list.push_back(std::move(s));
    }
    Json o = Json::object();
    o.set("count", slacks.size());
    o.set("endpoints", std::move(list));
    return o;
  }

  // ---- ECO edits ----------------------------------------------------------
  const auto edited = [this] {
    Json o = Json::object();
    o.set("epoch", static_cast<double>(session_.epoch()));
    o.set("undo_depth", session_.undo_depth());
    return o;
  };
  if (cmd == "set_driver_cell") {
    session_.set_driver_cell(arg_string(args, "inst"), arg_string(args, "cell"));
    return edited();
  }
  if (cmd == "scale_net_parasitics") {
    session_.scale_net_parasitics(arg_string(args, "net"),
                                  arg_number(args, "cap_factor"),
                                  arg_number(args, "res_factor"));
    return edited();
  }
  if (cmd == "set_coupling_cap") {
    session_.set_coupling_cap(arg_string(args, "net_a"), arg_string(args, "net_b"),
                              arg_number(args, "cap"));
    return edited();
  }
  if (cmd == "set_arrival_window") {
    session_.set_arrival_window(arg_string(args, "port"),
                                Interval{arg_number(args, "lo"), arg_number(args, "hi")});
    return edited();
  }
  if (cmd == "set_constraint_group") {
    const Json* nets = require_object(args).find("nets");
    if (nets == nullptr || !nets->is_array() || nets->items().empty()) {
      bad_args("'nets' must be a non-empty array of net names");
    }
    std::vector<std::string> names;
    names.reserve(nets->items().size());
    for (const Json& n : nets->items()) {
      if (!n.is_string()) bad_args("'nets' entries must be strings");
      names.push_back(n.as_string());
    }
    const int gid = session_.set_constraint_group(names);
    Json o = edited();
    o.set("group", gid);
    return o;
  }
  if (cmd == "set_option") {
    session_.set_option(arg_string(args, "name"), arg_string(args, "value"));
    return edited();
  }
  if (cmd == "undo") {
    const bool undone = session_.undo();
    Json o = edited();
    o.set("undone", undone);
    return o;
  }

  // A `cancel` that reaches dispatch found no analysis in flight (the
  // server intercepts mid-analyze cancels out-of-band from the progress
  // sink and answers them there, with "cancelled": true).
  if (cmd == "cancel") {
    Json o = Json::object();
    o.set("cancelled", false);
    return o;
  }

  // Daemon-only: subscribe/unsubscribe this connection to periodic
  // {"event":"stats",...} lines (the handler owns the streamer thread).
  if (cmd == "watch" && watch_) return watch_(args);

  // Daemon-only: begin a graceful drain. The handler (installed by the
  // daemon) flips the drain flag; this response still goes out, then the
  // connection winds down like any other.
  if (cmd == "shutdown" && shutdown_) return shutdown_();

  throw ProtoError{"unknown_cmd", "unknown command '" + cmd + "'"};
}

std::string Protocol::handle_line(std::string_view line) {
  requests_.add();
  const std::uint64_t req_id = reqobs_ != nullptr ? reqobs_->next_id() : 0;
  const auto t0 = std::chrono::steady_clock::now();
  // Folded-profile baseline for the one-shot slow-request capture: only
  // taken while the sampling profiler runs (a bounded map copy).
  std::vector<obs::FoldedEntry> prof_before;
  const bool prof_capture = reqobs_ != nullptr && obs::Profiler::running();
  if (prof_capture) prof_before = obs::Profiler::snapshot();
  // Analysis-count delta tells whether this request triggered an analysis;
  // if so its phase breakdown is attached to any slow-log entry.
  const std::uint64_t analyses_before = session_.analyses();
  // Latency attribution: starts invalid, becomes the command name once the
  // envelope resolves one. unknown_cmd reverts to invalid below, so metric
  // cardinality stays bounded by the real command set.
  std::string cmd_name = RequestContext::kInvalidCommand;
  Json id;  // null until the request supplies one
  std::string code;
  std::string message;
  Json detail;  // extra error keys (overloaded's retry_after_ms)
  std::string response;
  try {
    if (line.size() > kMaxLineBytes) {
      throw ProtoError{"bad_request",
                       "request line exceeds " + std::to_string(kMaxLineBytes) +
                           " bytes"};
    }
    std::string parse_err;
    const std::optional<Json> req = json_parse(line, &parse_err);
    if (!req) throw ProtoError{"parse_error", parse_err};
    if (!req->is_object()) {
      throw ProtoError{"bad_request", "request must be a JSON object"};
    }
    if (const Json* rid = req->find("id")) {
      if (!rid->is_number() && !rid->is_string() && !rid->is_null()) {
        throw ProtoError{"bad_request", "'id' must be a number or string"};
      }
      id = *rid;
    }
    const Json* cmd = req->find("cmd");
    if (cmd == nullptr || !cmd->is_string()) {
      throw ProtoError{"bad_request", "missing string field 'cmd'"};
    }
    cmd_name = cmd->as_string();
    // The request span encloses dispatch — and with it any analysis the
    // command triggers on this thread, so phase spans nest inside it (and
    // the profiler's samples attribute to this request's stack).
    // Daemon spans carry "<connection>.<request>" so one trace of many
    // concurrent clients still attributes each request end to end (the
    // same "conn.req" key the slowlog and NW_LOG warnings use).
    std::optional<obs::Span> span;
    if (reqobs_ != nullptr && obs::spans_active()) {
      const std::string req_key =
          caps_.connection_id != 0
              ? std::to_string(caps_.connection_id) + "." + std::to_string(req_id)
              : std::to_string(req_id);
      span.emplace("request " + req_key + ": " + cmd_name,
                   obs::SpanKind::kRequest);
    }
    const Json* args = req->find("args");
    Json data = dispatch(cmd_name, args != nullptr ? *args : Json{});
    Json resp = Json::object();
    resp.set("id", std::move(id));
    resp.set("ok", true);
    resp.set("data", std::move(data));
    response = resp.dump();
  } catch (const ProtoError& e) {
    code = e.code;
    message = e.message;
    detail = e.detail;
  } catch (const NotFound& e) {
    code = "not_found";
    message = e.what();
  } catch (const noise::Cancelled& e) {
    code = "cancelled";
    message = e.what();
  } catch (const std::invalid_argument& e) {
    code = "bad_args";
    message = e.what();
  } catch (const std::exception& e) {
    code = "internal";
    message = e.what();
  }
  if (response.empty()) {
    errors_.add();
    if (code == "unknown_cmd") cmd_name = RequestContext::kInvalidCommand;
    Json err = Json::object();
    err.set("code", code);
    err.set("message", message);
    if (detail.is_object()) {
      for (const auto& [k, v] : detail.members()) err.set(k, v);
    }
    Json resp = Json::object();
    resp.set("id", std::move(id));
    resp.set("ok", false);
    resp.set("error", std::move(err));
    response = resp.dump();
  }
  if (reqobs_ != nullptr) {
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    RequestPhases phases;
    const bool ran_analysis = session_.analyses() != analyses_before;
    if (ran_analysis) {
      const Session::AnalysisPhases& p = session_.last_phases();
      phases.context_ms = p.context_s * 1e3;
      phases.estimate_ms = p.estimate_s * 1e3;
      phases.propagate_ms = p.propagate_s * 1e3;
      phases.endpoints_ms = p.endpoints_s * 1e3;
    }
    std::vector<std::string> prof_lines;
    if (prof_capture && ms >= reqobs_->slow_ms()) {
      for (const obs::FoldedEntry& e :
           obs::folded_delta(prof_before, obs::Profiler::snapshot(),
                             RequestContext::kMaxProfileLines)) {
        prof_lines.push_back(e.stack + " " + std::to_string(e.count));
      }
    }
    reqobs_->observe(req_id, cmd_name, ms, code.empty(),
                     ran_analysis ? &phases : nullptr, std::move(prof_lines));
  }
  return response;
}

}  // namespace nw::session
