// Long-lived analysis session: persistent design state + incremental ECO loop.
//
// The CLI is one-shot: read, analyze, print, exit. A Session instead owns
// the Design + Parasitics + STA results + the last noise Result and
// answers many queries against them — the paper's actual workflow (run an
// analyzer once, then inspect violations, patch the design, re-check)
// served from memory.
//
// Edits accumulate a dirty net set; the next query that needs noise
// results re-runs STA, diffs per-net timing against the last analyzed
// state, and feeds the union to analyze_incremental — a full analyze()
// happens only for the first result or when analysis *options* change
// (mode/model/constraints/...). Results are bit-identical to a fresh full
// run of the edited design (tested property).
//
// State identity: every state-changing edit bumps a monotonically
// allocated epoch; undo restores the pre-edit epoch along with the exact
// pre-edit bytes (the journal stores captured state, not recomputed
// inverses). A bounded LRU cache keyed by options-digest + epoch makes
// repeated identical queries — including query→edit→undo→query — O(1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "noise/trace.hpp"
#include "obs/metrics.hpp"
#include "parasitics/rcnet.hpp"
#include "sta/sta.hpp"
#include "util/interval.hpp"

namespace nw::session {

/// Lookup failure on a user-supplied name (net/instance/port). The
/// protocol layer maps this to a structured "not_found" error; it is an
/// std::invalid_argument so non-protocol callers need no special casing.
class NotFound : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

struct SessionConfig {
  noise::Options noise;          ///< analysis options (mutable via set_option)
  sta::Options sta;              ///< base STA options (arrivals mutable via edits)
  std::size_t undo_capacity = 64;   ///< journal depth (oldest edits fall off)
  std::size_t cache_capacity = 16;  ///< cached (digest, epoch) results
};

/// A completed base analysis exported from one session and adopted by
/// another that shares the same design state — the daemon prewarms one full
/// analysis and every new connection starts from it, so connect→query never
/// pays a full analyze. Shared immutably; adopt never copies.
struct AnalysisSeed {
  std::shared_ptr<const noise::Result> result;
  std::shared_ptr<const sta::Result> sta;
  std::string digest;  ///< canonical options digest the result was computed under
};

/// Per-endpoint noise slack with its identity (the Result only stores the
/// slack values; the session re-derives the deterministic endpoint order).
struct EndpointSlack {
  std::string endpoint;  ///< "inst/PIN" or port name
  std::string net;
  double slack = 0.0;
};

class Session {
 public:
  /// Takes ownership of the design state. The library must outlive the
  /// session (same contract as Design itself).
  Session(net::Design design, para::Parasitics para, SessionConfig config = {});

  /// Shares an immutable design state with other sessions (the daemon's
  /// per-connection mode): reads go to the shared base, and the first
  /// mutating ECO edit copies the touched half (design or parasitics) into
  /// a private overlay — copy-on-write at object granularity. Sessions
  /// that never edit never copy.
  Session(std::shared_ptr<const net::Design> design,
          std::shared_ptr<const para::Parasitics> para, SessionConfig config = {});

  /// Releases this session's share of the "session_cache"/"undo_journal"
  /// memory accounts (each session delta-charges only its own footprint, so
  /// concurrent daemon sessions never fight over the global accounts).
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- queries (analysis runs lazily on first need) -----------------------

  /// Current noise result; triggers STA + (usually incremental) noise
  /// analysis if edits or option changes are pending.
  [[nodiscard]] const noise::Result& result();

  /// The most recent analysis result *without* triggering one — nullptr
  /// until the session has analyzed at least once. The pointed-to Result
  /// may be stale with respect to pending edits; exporters (the server's
  /// exit stats) use it to report the last run's executor utilization.
  [[nodiscard]] const noise::Result* last_result() const noexcept {
    return base_result_.get();
  }

  /// Trace the worst glitch on a net back to its origin.
  [[nodiscard]] noise::NoiseTrace trace(NetId net);

  /// All endpoint noise slacks, ascending (worst first).
  [[nodiscard]] std::vector<EndpointSlack> endpoint_slacks();

  [[nodiscard]] const net::Design& design() const noexcept {
    return own_design_ ? *own_design_ : *base_design_;
  }
  [[nodiscard]] const para::Parasitics& parasitics() const noexcept {
    return own_para_ ? *own_para_ : *base_para_;
  }
  /// True while the session still reads the shared base design AND the
  /// shared base parasitics (no COW copy materialized yet).
  [[nodiscard]] bool shares_base() const noexcept {
    return base_design_ != nullptr && !own_design_ && !own_para_;
  }

  /// Would the next result() call run an analysis? False when the current
  /// (digest, epoch) key is the base result or sits in the cache. Pure
  /// query: no LRU reordering, no analysis. The daemon's admission gate
  /// uses this to charge only requests that will actually occupy a slot.
  [[nodiscard]] bool needs_analysis() const;

  /// Export the current base analysis for seeding sibling sessions;
  /// triggers an analysis if none ran yet.
  [[nodiscard]] AnalysisSeed export_seed();

  /// Adopt a seed as this session's base analysis. Only a pristine session
  /// accepts (no edits, no prior analysis) and only when the seed's options
  /// digest matches this session's — otherwise returns false and the
  /// session is unchanged.
  bool adopt_seed(const AnalysisSeed& seed);
  [[nodiscard]] const noise::Options& noise_options() const noexcept {
    return cfg_.noise;
  }
  /// Current STA options (arrival-window edits land here). The clock
  /// period is synced from the noise options at analysis time.
  [[nodiscard]] const sta::Options& sta_options() const noexcept { return cfg_.sta; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t undo_depth() const noexcept { return journal_.size(); }

  /// Resolve names; throw NotFound with the offending name otherwise.
  [[nodiscard]] NetId require_net(const std::string& name) const;
  [[nodiscard]] InstId require_instance(const std::string& name) const;

  // ---- ECO edits ----------------------------------------------------------
  // Each edit validates its inputs (throwing std::invalid_argument /
  // NotFound before any mutation), applies, records a bit-exact restore in
  // the undo journal, and marks the affected nets dirty. No analysis runs
  // until the next query.

  /// Swap a driver (or any instance) onto a footprint-compatible cell.
  void set_driver_cell(const std::string& inst, const std::string& cell);

  /// Scale a net's grounded caps and wire resistances (respacing what-if).
  void scale_net_parasitics(const std::string& net, double cap_factor,
                            double res_factor);

  /// Set the total coupling capacitance between two nets [F]. Existing
  /// caps between the pair are scaled to the new total; if none exist a
  /// single cap is added between the driver roots.
  void set_coupling_cap(const std::string& net_a, const std::string& net_b, double cap);

  /// Override an input port's arrival window (re-timed input).
  void set_arrival_window(const std::string& port, Interval window);

  /// Declare a mutual-exclusion constraint group (an *options* edit: the
  /// next query re-analyzes fully under the new digest). Returns group id.
  int set_constraint_group(std::span<const std::string> nets);

  /// Change an analysis option: "mode", "model", "threads", "refine",
  /// "period". Options other than "threads" change the options digest, so
  /// the next query runs fully (or hits the cache if seen before).
  void set_option(const std::string& name, const std::string& value);

  /// Revert the most recent edit (bit-exact). False when the journal is
  /// empty. Restores the pre-edit epoch, so a post-undo query served from
  /// the cache returns the *same* Result object as before the edit.
  bool undo();

  // ---- observability ------------------------------------------------------

  /// Install (or clear, with nullptr) a ProgressSink passed to every
  /// analyze/analyze_incremental this session runs. The sink may cancel:
  /// noise::Cancelled then propagates out of the querying call and the
  /// session keeps its pre-analyze state bit-exactly — ensure_current()
  /// only commits results after analyze returns (epoch, journal, cache
  /// and base result are untouched by a cancelled run).
  void set_progress_sink(noise::ProgressSink* sink) noexcept { progress_ = sink; }

  /// Wall-time phase breakdown of the most recent analysis this session
  /// ran (from its Telemetry). All zeros until the first analysis.
  struct AnalysisPhases {
    double context_s = 0.0;
    double estimate_s = 0.0;
    double propagate_s = 0.0;
    double endpoints_s = 0.0;
  };
  [[nodiscard]] const AnalysisPhases& last_phases() const noexcept {
    return last_phases_;
  }
  /// Total analyses run (full + incremental); lets a caller detect whether
  /// a given request triggered an analysis (the slowlog phase breakdown).
  [[nodiscard]] std::uint64_t analyses() const noexcept {
    return full_analyses() + incremental_analyses();
  }

  /// The session's metrics registry: analysis/cache/edit counters live
  /// here, and the transport layer registers its request counters into the
  /// same registry so one snapshot covers the whole server.
  [[nodiscard]] obs::Registry& registry() noexcept { return reg_; }
  /// Snapshot with the resource gauges (RSS, cache/journal/trace-buffer
  /// bytes) refreshed first — they are sampled, not event-driven.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot();
  /// Identity block for the session stats JSON export.
  [[nodiscard]] obs::RunMeta meta() const;

  [[nodiscard]] std::uint64_t full_analyses() const noexcept;
  [[nodiscard]] std::uint64_t incremental_analyses() const noexcept;
  [[nodiscard]] std::uint64_t cache_hits() const noexcept;
  [[nodiscard]] std::uint64_t cache_misses() const noexcept;

  // Metric names (shared with tests and tools/validate_obs.py consumers).
  static constexpr const char* kMetricEdits = "session_edits";
  static constexpr const char* kMetricUndos = "session_undos";
  static constexpr const char* kMetricFullAnalyses = "session_full_analyses";
  static constexpr const char* kMetricIncrementalAnalyses =
      "session_incremental_analyses";
  static constexpr const char* kMetricCacheHits = "session_cache_hits";
  static constexpr const char* kMetricCacheMisses = "session_cache_misses";
  static constexpr const char* kMetricCowCopies = "session_cow_copies";
  static constexpr const char* kMetricDirtyNets = "session_dirty_nets";
  static constexpr const char* kMetricEpoch = "session_epoch";
  static constexpr const char* kMetricCachedResults = "session_cached_results";
  // Resource gauges ("resources" section of the stats JSON), refreshed by
  // metrics_snapshot().
  static constexpr const char* kMetricRssBytes = "rss_bytes";
  static constexpr const char* kMetricPeakRssBytes = "peak_rss_bytes";
  static constexpr const char* kMetricCacheBytes = "session_cache_bytes";
  static constexpr const char* kMetricJournalBytes = "session_journal_bytes";
  static constexpr const char* kMetricTraceBufferBytes = "trace_buffer_bytes";

 private:
  struct UndoEntry {
    std::string what;                     ///< human-readable edit label
    std::function<void()> restore;        ///< bit-exact state restore
    std::vector<NetId> dirty;             ///< nets the edit (and its undo) touch
    std::uint64_t epoch_before = 0;
  };

  struct CacheEntry {
    std::string key;
    std::shared_ptr<const noise::Result> result;
    std::shared_ptr<const sta::Result> sta;
  };

  /// Delegation target of both public ctors: exactly one of (base, own)
  /// pairs is populated per half.
  Session(std::shared_ptr<const net::Design> base_design,
          std::shared_ptr<const para::Parasitics> base_para,
          std::unique_ptr<net::Design> own_design,
          std::unique_ptr<para::Parasitics> own_para, SessionConfig config);

  /// Mutable design/parasitics for ECO edits: materializes the private
  /// copy-on-write overlay on first use when sharing a base.
  [[nodiscard]] net::Design& mut_design();
  [[nodiscard]] para::Parasitics& mut_para();

  /// Cache identity of the current (options, epoch) state.
  struct StateKey {
    std::string digest;  ///< canonical options digest (threads excluded)
    std::string key;     ///< digest + "#" + epoch
  };
  [[nodiscard]] StateKey current_key() const;

  /// Allocate a fresh epoch, record the journal entry, count the edit.
  void commit_edit(UndoEntry entry, bool bump_epoch);

  /// Nets whose STA timing differs between two runs (exact compare).
  [[nodiscard]] std::vector<NetId> sta_diff(const sta::Result& a,
                                            const sta::Result& b) const;

  /// Re-analyze if the (digest, epoch) key moved; cache-aware.
  void ensure_current();

  [[nodiscard]] const CacheEntry* cache_find(const std::string& key) const;
  void cache_insert(CacheEntry entry);

  /// Re-sample the resource gauges (process RSS + estimated live bytes of
  /// the result cache, undo journal, and trace buffers).
  void refresh_resource_gauges();

  /// Estimated retained bytes of the result cache / undo journal (the
  /// gauge values and the memory-account charges share these).
  [[nodiscard]] std::size_t cache_bytes() const noexcept;
  [[nodiscard]] std::size_t journal_bytes() const noexcept;

  /// Delta-charge the global session_cache/undo_journal memory accounts to
  /// this session's current footprint. Called after every mutation of the
  /// cache or journal; the destructor releases the remainder.
  void update_memory_accounts() noexcept;

  // Design state: either owned outright (value ctor / after a COW copy) or
  // read from an immutable base shared across sessions. own_* wins when set.
  std::shared_ptr<const net::Design> base_design_;
  std::shared_ptr<const para::Parasitics> base_para_;
  std::unique_ptr<net::Design> own_design_;
  std::unique_ptr<para::Parasitics> own_para_;
  SessionConfig cfg_;

  std::uint64_t epoch_ = 0;       ///< identifies the current design state
  std::uint64_t next_epoch_ = 1;  ///< never reused (undo restores old values)
  std::vector<NetId> pending_dirty_;  ///< edits since the base result
  noise::ProgressSink* progress_ = nullptr;  ///< not owned; may be nullptr
  AnalysisPhases last_phases_;  ///< phase wall times of the latest analysis

  // The last analyzed state: result + the STA it was computed from.
  std::shared_ptr<const noise::Result> base_result_;
  std::shared_ptr<const sta::Result> base_sta_;
  std::string base_key_;     ///< digest#epoch of base_result_
  std::string base_digest_;

  std::deque<UndoEntry> journal_;
  std::vector<CacheEntry> cache_;  ///< LRU: back = most recent
  std::size_t mem_cache_charged_ = 0;    ///< bytes this session holds in the account
  std::size_t mem_journal_charged_ = 0;  ///< bytes this session holds in the account

  obs::Registry reg_;
  obs::Counter& edits_;
  obs::Counter& undos_;
  obs::Counter& full_analyses_;
  obs::Counter& incremental_analyses_;
  obs::Counter& cache_hits_;
  obs::Counter& cache_misses_;
  obs::Counter& cow_copies_;
  obs::Histogram& dirty_hist_;
};

}  // namespace nw::session
