#include "session/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

namespace nw::session {

void Json::push_back(Json v) {
  kind_ = Kind::kArray;
  arr_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void render_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the honest spelling
    out += "null";
    return;
  }
  // Integral values within the exactly-representable range print as
  // integers — ids and counters round-trip without a ".0" or exponent.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*g", std::numeric_limits<double>::max_digits10, v);
  out += buf;
}

void render(std::string& out, const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kNull: out += "null"; return;
    case Json::Kind::kBool: out += j.as_bool() ? "true" : "false"; return;
    case Json::Kind::kNumber: render_number(out, j.as_number()); return;
    case Json::Kind::kString: out += json_quote(j.as_string()); return;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const auto& item : j.items()) {
        if (!std::exchange(first, false)) out.push_back(',');
        render(out, item);
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.members()) {
        if (!std::exchange(first, false)) out.push_back(',');
        out += json_quote(k);
        out.push_back(':');
        render(out, v);
      }
      out.push_back('}');
      return;
    }
  }
}

/// Recursive-descent parser over a bounded string_view. Errors set `err`
/// and unwind via the ok flag (no exceptions for malformed input).
class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : s_(text), max_depth_(max_depth) {}

  std::optional<Json> run(std::string* error) {
    Json v;
    if (parse_value(v, 0) && (skip_ws(), pos_ == s_.size())) return v;
    if (ok_) err_ = "trailing characters after JSON value";
    if (error) *error = err_ + " at offset " + std::to_string(pos_);
    return std::nullopt;
  }

 private:
  bool fail(const char* msg) {
    if (ok_) err_ = msg;  // keep the innermost error
    ok_ = false;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(Json& out, std::size_t depth) {
    if (depth > max_depth_) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case 'n': return literal("null") && (out = Json{}, true);
      case 't': return literal("true") && (out = Json{true}, true);
      case 'f': return literal("false") && (out = Json{false}, true);
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out = Json{std::move(str)};
        return true;
      }
      case '[': return parse_array(out, depth);
      case '{': return parse_object(out, depth);
      default: return parse_number(out);
    }
  }

  bool parse_array(Json& out, std::size_t depth) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Json item;
      if (!parse_value(item, depth + 1)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_object(Json& out, std::size_t depth) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      Json value;
      if (!parse_value(value, depth + 1)) return false;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          if (!parse_hex4(code)) return false;
          append_utf8(out, code);
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    out = v;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    if (consume('.')) {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (ec != std::errc{} || ptr != s_.data() + pos_ || start == pos_) {
      return fail("invalid number");
    }
    out = Json{v};
    return true;
  }

  std::string_view s_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  render(out, *this);
  return out;
}

std::optional<Json> json_parse(std::string_view text, std::string* error,
                               std::size_t max_depth) {
  return Parser(text, max_depth).run(error);
}

}  // namespace nw::session
