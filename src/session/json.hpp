// Minimal JSON value + strict parser/serializer for the session protocol.
//
// The JSONL request/response protocol (session/protocol.hpp) needs to
// *read* arbitrary client JSON, which the write-only exporters in obs/
// cannot do. This is a deliberately small, strict RFC 8259 subset
// implementation: UTF-8 pass-through strings (\uXXXX escapes decoded),
// doubles for every number, input depth and size limits so hostile lines
// cannot blow the stack or the heap. Serialization round-trips doubles
// (max_digits10) — the protocol's bit-identity guarantees survive a trip
// through a client.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nw::session {

/// A parsed JSON value. Objects keep insertion order (serialization is
/// deterministic and mirrors the producing code, like obs' writers).
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;                                   // null
  /*implicit*/ Json(bool b) : kind_(Kind::kBool), bool_(b) {}          // NOLINT
  /*implicit*/ Json(double v) : kind_(Kind::kNumber), num_(v) {}       // NOLINT
  /*implicit*/ Json(int v) : Json(static_cast<double>(v)) {}           // NOLINT
  /*implicit*/ Json(std::size_t v) : Json(static_cast<double>(v)) {}   // NOLINT
  /*implicit*/ Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  /*implicit*/ Json(const char* s) : Json(std::string(s)) {}           // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const std::vector<Json>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Array append / object set (creates or overwrites the key).
  void push_back(Json v);
  void set(std::string key, Json v);

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Compact single-line rendering (strings escaped, doubles round-trip,
  /// integral doubles rendered without an exponent or trailing ".0").
  [[nodiscard]] std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Strict parse of exactly one JSON document (trailing non-whitespace is an
/// error). Enforces a nesting-depth cap so deeply nested hostile input
/// cannot overflow the stack. Returns std::nullopt and fills `error` (when
/// given) on any failure — never throws on malformed input.
[[nodiscard]] std::optional<Json> json_parse(std::string_view text,
                                             std::string* error = nullptr,
                                             std::size_t max_depth = 64);

/// Escape + quote one string as a JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace nw::session
