#include "session/reqobs.hpp"

#include "obs/log.hpp"

namespace nw::session {

void SlowLog::record(SlowRequest r) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (capacity_ == 0) return;
  if (entries_.size() == capacity_) entries_.pop_front();
  entries_.push_back(std::move(r));
}

std::vector<SlowRequest> SlowLog::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

std::uint64_t SlowLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

namespace {

/// Fixed latency buckets [ms]: sub-ms cache hits through multi-second full
/// analyses. The histogram's exact min/max carry the tails beyond them.
const std::vector<double> kLatencyBoundsMs = {0.05, 0.1, 0.25, 0.5,  1.0,   2.5,  5.0,
                                              10.0, 25.0, 50.0, 100.0, 250.0, 1000.0};

}  // namespace

RequestContext::RequestContext(obs::Registry& registry, double slow_ms,
                               std::size_t slowlog_capacity)
    : registry_(registry), slow_ms_(slow_ms), slow_log_(slowlog_capacity) {}

std::uint64_t RequestContext::next_id() noexcept {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void RequestContext::observe(std::uint64_t id, const std::string& cmd, double ms,
                             bool ok, const RequestPhases* phases,
                             std::vector<std::string> profile) {
  registry_
      .histogram(std::string(kLatencyPrefix) + cmd, "request latency",
                 kLatencyBoundsMs, "ms", /*deterministic=*/false)
      .observe(ms);
  if (aggregate_ != nullptr) {
    aggregate_
        ->histogram(std::string(kLatencyPrefix) + cmd,
                    "request latency (all connections)", kLatencyBoundsMs, "ms",
                    /*deterministic=*/false)
        .observe(ms);
  }
  if (ms < slow_ms_) return;
  SlowRequest slow;
  slow.id = id;
  slow.connection = connection_;
  slow.cmd = cmd;
  slow.ms = ms;
  slow.ok = ok;
  if (phases != nullptr) {
    slow.has_phases = true;
    slow.phases = *phases;
  }
  if (profile.size() > kMaxProfileLines) profile.resize(kMaxProfileLines);
  slow.profile = std::move(profile);
  slow_log_.record(std::move(slow));
  if (connection_ != 0) {
    NW_LOG(kWarn) << "slow request " << connection_ << "." << id << " (" << cmd
                  << "): " << ms << " ms >= " << slow_ms_ << " ms threshold";
  } else {
    NW_LOG(kWarn) << "slow request " << id << " (" << cmd << "): " << ms
                  << " ms >= " << slow_ms_ << " ms threshold";
  }
}

Json RequestContext::slowlog_json() const {
  Json list = Json::array();
  for (const SlowRequest& r : slow_log_.entries()) {
    Json e = Json::object();
    e.set("id", static_cast<double>(r.id));
    if (r.connection != 0) e.set("conn", static_cast<double>(r.connection));
    e.set("cmd", r.cmd);
    e.set("ms", r.ms);
    e.set("ok", r.ok);
    if (r.has_phases) {
      Json ph = Json::object();
      ph.set("context_ms", r.phases.context_ms);
      ph.set("estimate_ms", r.phases.estimate_ms);
      ph.set("propagate_ms", r.phases.propagate_ms);
      ph.set("endpoints_ms", r.phases.endpoints_ms);
      e.set("phases", std::move(ph));
    }
    if (!r.profile.empty()) {
      Json pr = Json::array();
      for (const std::string& line : r.profile) pr.push_back(line);
      e.set("profile", std::move(pr));
    }
    list.push_back(std::move(e));
  }
  Json o = Json::object();
  o.set("threshold_ms", slow_ms_);
  o.set("capacity", slow_log_.capacity());
  o.set("recorded", static_cast<double>(slow_log_.total_recorded()));
  o.set("entries", std::move(list));
  return o;
}

}  // namespace nw::session
