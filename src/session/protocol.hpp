// Versioned JSONL request/response protocol over a Session.
//
// One request per line, one response per line, always — the transport
// invariant clients rely on. Requests are JSON objects:
//
//   {"id": 1, "cmd": "violations", "args": {"limit": 10}}
//
// Responses echo the id and carry either a result or a structured error:
//
//   {"id": 1, "ok": true, "data": {...}}
//   {"id": 1, "ok": false, "error": {"code": "not_found", "message": "..."}}
//
// Malformed input of any shape — truncated JSON, wrong types, oversized
// lines, unknown commands — produces an error response, never an exception
// out of handle_line and never a crash. Error codes are a closed set:
//   parse_error   the line is not valid JSON
//   bad_request   valid JSON but not a well-formed request envelope
//   unknown_cmd   no such command
//   bad_args      command rejected its arguments (validation failed)
//   not_found     a named net/instance/port does not exist
//   cancelled     an in-flight analysis was cooperatively cancelled; the
//                 session keeps its pre-analyze state (epoch unchanged)
//   overloaded    the server shed the request under load (daemon admission
//                 control); the error object carries "retry_after_ms"
//   internal      unexpected failure (the message says what)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "session/json.hpp"
#include "session/reqobs.hpp"
#include "session/session.hpp"

namespace nw::session {

/// Protocol schema version, reported by `hello` and bumped on any
/// incompatible change to commands or response layouts.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one request line; longer lines are rejected with
/// bad_request before parsing (a hostile client cannot balloon the heap).
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

/// Transport/limit facts the server advertises in `hello` so clients can
/// feature-detect (daemon vs stdio, quotas) without out-of-band config.
struct ServerCaps {
  std::string transport = "stdio";  ///< "stdio" | "unix" | "tcp"
  bool daemon = false;              ///< true when served by `noisewin daemon`
  std::uint64_t connection_id = 0;  ///< daemon connection ordinal (0 on stdio)
  std::size_t max_queued = 0;       ///< per-connection request-queue bound (0 = unbounded)
  int max_connections = 0;          ///< daemon connection cap (0 = n/a)
  int analysis_slots = 0;           ///< concurrent analyses admitted (0 = unlimited)
  int idle_timeout_s = 0;           ///< idle disconnect, seconds (0 = never)
};

/// Admission control hook for analysis-triggering commands. The protocol
/// consults it only when the session would actually run an analysis (cache
/// hits are never charged); a denied ticket becomes a structured
/// `overloaded` error carrying the retry-after hint.
class AnalysisGate {
 public:
  struct Ticket {
    bool admitted = true;
    int retry_after_ms = 0;   ///< when denied: suggested client backoff
    std::string reason;       ///< when denied: human-readable cause
  };

  virtual ~AnalysisGate() = default;

  /// Reserve an analysis slot (may block briefly behind in-flight
  /// analyses). Called from the connection's worker thread.
  [[nodiscard]] virtual Ticket admit(const std::string& cmd) = 0;

  /// Release the slot reserved by an admitted ticket; `analyze_ms` is the
  /// wall time the slot was held (feeds the shedding policy's latency EWMA).
  virtual void release(double analyze_ms) = 0;
};

class Protocol {
 public:
  /// Registers its request counters into the session's registry, so one
  /// stats snapshot covers engine and transport. With a RequestContext the
  /// protocol additionally assigns request ids, opens request trace spans,
  /// feeds per-command latency histograms, and maintains the slow log
  /// (nullptr keeps the bare transport — embedded/test use).
  explicit Protocol(Session& session, RequestContext* reqobs = nullptr);

  /// Handle one request line; returns exactly one response line (without
  /// the trailing newline). Never throws on client input.
  [[nodiscard]] std::string handle_line(std::string_view line);

  /// Transport facts advertised by `hello` (defaults to stdio, no limits).
  void set_caps(ServerCaps caps) { caps_ = std::move(caps); }
  [[nodiscard]] const ServerCaps& caps() const noexcept { return caps_; }

  /// Install admission control for analysis-triggering commands (nullptr =
  /// always admit — the stdio server's mode). Not owned.
  void set_gate(AnalysisGate* gate) noexcept { gate_ = gate; }

  /// Enable the `shutdown` command: the handler runs on the dispatching
  /// thread and its return value becomes the response data. Without one,
  /// `shutdown` is unknown_cmd (a stdio client just closes its pipe).
  void set_shutdown_handler(std::function<Json()> handler) {
    shutdown_ = std::move(handler);
  }

  /// Merge extra members into the `stats` response (the daemon installs one
  /// returning its "daemon"/"timeseries"/"latency" sections; `args` is the
  /// request's args object, so clients can ask for the last-N samples via
  /// {"samples": N}). The returned object's members are merged over the
  /// base response.
  void set_stats_augmenter(std::function<Json(const Json& args)> augmenter) {
    stats_extra_ = std::move(augmenter);
  }

  /// Enable the `watch` command (streaming stats events over the event-line
  /// channel). The handler runs on the dispatching thread; its return value
  /// becomes the response data. Without one, `watch` is unknown_cmd (the
  /// stdio server has no event streamer).
  void set_watch_handler(std::function<Json(const Json& args)> handler) {
    watch_ = std::move(handler);
  }

  // Metric names (registered in the session's registry).
  static constexpr const char* kMetricRequests = "protocol_requests";
  static constexpr const char* kMetricErrors = "protocol_errors";

 private:
  [[nodiscard]] Json dispatch(const std::string& cmd, const Json& args);

  Session& session_;
  RequestContext* reqobs_;  ///< not owned; may be nullptr
  ServerCaps caps_;
  AnalysisGate* gate_ = nullptr;      ///< not owned; may be nullptr
  std::function<Json()> shutdown_;    ///< empty unless the daemon installs one
  std::function<Json(const Json&)> stats_extra_;  ///< daemon stats sections
  std::function<Json(const Json&)> watch_;        ///< daemon stats streaming
  obs::Counter& requests_;
  obs::Counter& errors_;
};

}  // namespace nw::session
