// Versioned JSONL request/response protocol over a Session.
//
// One request per line, one response per line, always — the transport
// invariant clients rely on. Requests are JSON objects:
//
//   {"id": 1, "cmd": "violations", "args": {"limit": 10}}
//
// Responses echo the id and carry either a result or a structured error:
//
//   {"id": 1, "ok": true, "data": {...}}
//   {"id": 1, "ok": false, "error": {"code": "not_found", "message": "..."}}
//
// Malformed input of any shape — truncated JSON, wrong types, oversized
// lines, unknown commands — produces an error response, never an exception
// out of handle_line and never a crash. Error codes are a closed set:
//   parse_error   the line is not valid JSON
//   bad_request   valid JSON but not a well-formed request envelope
//   unknown_cmd   no such command
//   bad_args      command rejected its arguments (validation failed)
//   not_found     a named net/instance/port does not exist
//   cancelled     an in-flight analysis was cooperatively cancelled; the
//                 session keeps its pre-analyze state (epoch unchanged)
//   internal      unexpected failure (the message says what)
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "session/json.hpp"
#include "session/reqobs.hpp"
#include "session/session.hpp"

namespace nw::session {

/// Protocol schema version, reported by `hello` and bumped on any
/// incompatible change to commands or response layouts.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one request line; longer lines are rejected with
/// bad_request before parsing (a hostile client cannot balloon the heap).
inline constexpr std::size_t kMaxLineBytes = 1u << 20;

class Protocol {
 public:
  /// Registers its request counters into the session's registry, so one
  /// stats snapshot covers engine and transport. With a RequestContext the
  /// protocol additionally assigns request ids, opens request trace spans,
  /// feeds per-command latency histograms, and maintains the slow log
  /// (nullptr keeps the bare transport — embedded/test use).
  explicit Protocol(Session& session, RequestContext* reqobs = nullptr);

  /// Handle one request line; returns exactly one response line (without
  /// the trailing newline). Never throws on client input.
  [[nodiscard]] std::string handle_line(std::string_view line);

  // Metric names (registered in the session's registry).
  static constexpr const char* kMetricRequests = "protocol_requests";
  static constexpr const char* kMetricErrors = "protocol_errors";

 private:
  [[nodiscard]] Json dispatch(const std::string& cmd, const Json& args);

  Session& session_;
  RequestContext* reqobs_;  ///< not owned; may be nullptr
  obs::Counter& requests_;
  obs::Counter& errors_;
};

}  // namespace nw::session
