#include "session/session.hpp"

#include <algorithm>
#include <charconv>
#include <optional>
#include <utility>

#include "obs/memtrack.hpp"
#include "obs/resource.hpp"
#include "obs/tracer.hpp"

namespace nw::session {

namespace {

constexpr const char* kUnit = "";

std::optional<std::uint64_t> parse_uint(const std::string& s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& s) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<noise::AnalysisMode> parse_mode(const std::string& s) {
  if (s == "no-filtering") return noise::AnalysisMode::kNoFiltering;
  if (s == "switching-windows") return noise::AnalysisMode::kSwitchingWindows;
  if (s == "noise-windows") return noise::AnalysisMode::kNoiseWindows;
  return std::nullopt;
}

std::optional<noise::GlitchModel> parse_model(const std::string& s) {
  if (s == "charge-sharing") return noise::GlitchModel::kChargeSharing;
  if (s == "devgan") return noise::GlitchModel::kDevgan;
  if (s == "two-pi") return noise::GlitchModel::kTwoPi;
  if (s == "reduced-mna") return noise::GlitchModel::kReducedMna;
  if (s == "mna-exact") return noise::GlitchModel::kMnaExact;
  return std::nullopt;
}

std::optional<noise::SimdMode> parse_simd(const std::string& s) {
  if (s == "auto") return noise::SimdMode::kAuto;
  if (s == "scalar") return noise::SimdMode::kScalar;
  if (s == "vector") return noise::SimdMode::kVector;
  return std::nullopt;
}

}  // namespace

Session::Session(net::Design design, para::Parasitics para, SessionConfig config)
    : Session(nullptr, nullptr, std::make_unique<net::Design>(std::move(design)),
              std::make_unique<para::Parasitics>(std::move(para)),
              std::move(config)) {}

Session::Session(std::shared_ptr<const net::Design> design,
                 std::shared_ptr<const para::Parasitics> para, SessionConfig config)
    : Session(std::move(design), std::move(para), nullptr, nullptr,
              std::move(config)) {}

Session::Session(std::shared_ptr<const net::Design> base_design,
                 std::shared_ptr<const para::Parasitics> base_para,
                 std::unique_ptr<net::Design> own_design,
                 std::unique_ptr<para::Parasitics> own_para, SessionConfig config)
    : base_design_(std::move(base_design)),
      base_para_(std::move(base_para)),
      own_design_(std::move(own_design)),
      own_para_(std::move(own_para)),
      cfg_(std::move(config)),
      edits_(reg_.counter(kMetricEdits, "ECO edits applied")),
      undos_(reg_.counter(kMetricUndos, "edits reverted")),
      full_analyses_(reg_.counter(kMetricFullAnalyses, "full analyze() runs")),
      incremental_analyses_(
          reg_.counter(kMetricIncrementalAnalyses, "incremental re-analyses")),
      cache_hits_(reg_.counter(kMetricCacheHits, "queries served from the result cache")),
      cache_misses_(reg_.counter(kMetricCacheMisses, "queries that ran analysis")),
      cow_copies_(reg_.counter(kMetricCowCopies,
                               "shared-base halves copied privately on first edit")),
      dirty_hist_(reg_.histogram(kMetricDirtyNets,
                                 "dirty-set size per incremental re-analysis",
                                 {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512})) {
  if ((own_design_ == nullptr && base_design_ == nullptr) ||
      (own_para_ == nullptr && base_para_ == nullptr)) {
    throw std::invalid_argument("Session: shared base design/parasitics are null");
  }
  if (parasitics().net_count() != design().net_count()) {
    throw std::invalid_argument("Session: parasitics cover " +
                                std::to_string(parasitics().net_count()) +
                                " nets but the design has " +
                                std::to_string(design().net_count()));
  }
  if (cfg_.undo_capacity == 0) cfg_.undo_capacity = 1;
  if (cfg_.cache_capacity == 0) cfg_.cache_capacity = 1;
  reg_.gauge(kMetricEpoch, "current design-state epoch", kUnit);
  reg_.gauge(kMetricCachedResults, "results held in the cache", kUnit);
  // Registered up front so the "resources" section has a fixed shape even
  // before the first snapshot refresh.
  reg_.gauge(kMetricRssBytes, "current resident set size", "B",
             /*deterministic=*/false, /*resource=*/true);
  reg_.gauge(kMetricPeakRssBytes, "peak resident set size", "B",
             /*deterministic=*/false, /*resource=*/true);
  reg_.gauge(kMetricCacheBytes, "estimated result-cache footprint", "B",
             /*deterministic=*/false, /*resource=*/true);
  reg_.gauge(kMetricJournalBytes, "estimated undo-journal footprint", "B",
             /*deterministic=*/false, /*resource=*/true);
  reg_.gauge(kMetricTraceBufferBytes, "trace event buffers across threads", "B",
             /*deterministic=*/false, /*resource=*/true);
}

Session::~Session() {
  cache_.clear();
  journal_.clear();
  update_memory_accounts();
}

// ---- name resolution ------------------------------------------------------

NetId Session::require_net(const std::string& name) const {
  if (const auto id = design().find_net(name)) return *id;
  throw NotFound("unknown net '" + name + "'");
}

InstId Session::require_instance(const std::string& name) const {
  if (const auto id = design().find_instance(name)) return *id;
  throw NotFound("unknown instance '" + name + "'");
}

// ---- copy-on-write overlay ------------------------------------------------

net::Design& Session::mut_design() {
  if (own_design_ == nullptr) {
    own_design_ = std::make_unique<net::Design>(*base_design_);
    cow_copies_.add();
  }
  return *own_design_;
}

para::Parasitics& Session::mut_para() {
  if (own_para_ == nullptr) {
    own_para_ = std::make_unique<para::Parasitics>(*base_para_);
    cow_copies_.add();
  }
  return *own_para_;
}

// ---- queries --------------------------------------------------------------

const noise::Result& Session::result() {
  ensure_current();
  return *base_result_;
}

noise::NoiseTrace Session::trace(NetId net) {
  if (net.index() >= design().net_count()) {
    throw NotFound("net id " + std::to_string(net.value()) + " outside the design");
  }
  return noise::trace_origin(result(), net);
}

std::vector<EndpointSlack> Session::endpoint_slacks() {
  const noise::Result& r = result();
  const net::Design& d = design();
  // Endpoint order mirrors the analyzer's: every sequential's data pins
  // (design.sequentials() order), then primary outputs.
  std::vector<EndpointSlack> out;
  out.reserve(r.endpoint_slacks.size());
  std::size_t k = 0;
  for (const InstId s : d.sequentials()) {
    const net::Instance& inst = d.instance(s);
    const lib::Cell& cell = d.cell_of(s);
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].role != lib::PinRole::kData) continue;
      const PinId pid = inst.pins[pi];
      const net::Pin& p = d.pin(pid);
      if (!p.net.valid()) continue;
      if (k >= r.endpoint_slacks.size()) break;
      out.push_back({d.pin_name(pid), d.net(p.net).name, r.endpoint_slacks[k++]});
    }
  }
  for (const PinId pid : d.output_ports()) {
    const net::Pin& p = d.pin(pid);
    if (!p.net.valid()) continue;
    if (k >= r.endpoint_slacks.size()) break;
    out.push_back({p.port_name, d.net(p.net).name, r.endpoint_slacks[k++]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const EndpointSlack& a, const EndpointSlack& b) {
                     return a.slack < b.slack;
                   });
  return out;
}

// ---- ECO edits ------------------------------------------------------------

void Session::commit_edit(UndoEntry entry, bool bump_epoch) {
  entry.epoch_before = epoch_;
  if (bump_epoch) epoch_ = next_epoch_++;
  pending_dirty_.insert(pending_dirty_.end(), entry.dirty.begin(), entry.dirty.end());
  journal_.push_back(std::move(entry));
  while (journal_.size() > cfg_.undo_capacity) journal_.pop_front();
  edits_.add();
  update_memory_accounts();
  reg_.gauge(kMetricEpoch, "current design-state epoch", kUnit)
      .set(static_cast<double>(epoch_));
}

void Session::set_driver_cell(const std::string& inst, const std::string& cell) {
  const InstId id = require_instance(inst);
  std::vector<NetId> touched;
  for (const PinId pid : design().instance(id).pins) {
    const net::Pin& p = design().pin(pid);
    if (p.net.valid()) touched.push_back(p.net);
  }
  const std::string old_cell = mut_design().set_instance_cell(id, cell);  // validates
  UndoEntry e;
  e.what = "set_driver_cell " + inst + " " + cell;
  e.restore = [this, id, old_cell] { mut_design().set_instance_cell(id, old_cell); };
  e.dirty = std::move(touched);
  commit_edit(std::move(e), /*bump_epoch=*/true);
}

void Session::scale_net_parasitics(const std::string& net, double cap_factor,
                                   double res_factor) {
  const NetId id = require_net(net);
  if (cap_factor <= 0.0 || res_factor <= 0.0) {
    throw std::invalid_argument("scale_net_parasitics: factors must be positive");
  }
  para::RcNet saved = parasitics().net(id);  // capture before mutating (bit-exact undo)
  mut_para().net(id).scale(cap_factor, res_factor);
  UndoEntry e;
  e.what = "scale_net_parasitics " + net;
  e.restore = [this, id, saved] { mut_para().replace_net(id, saved); };
  e.dirty = {id};
  commit_edit(std::move(e), /*bump_epoch=*/true);
}

void Session::set_coupling_cap(const std::string& net_a, const std::string& net_b,
                               double cap) {
  const NetId a = require_net(net_a);
  const NetId b = require_net(net_b);
  if (a == b) {
    throw std::invalid_argument("set_coupling_cap: '" + net_a +
                                "' cannot couple to itself");
  }
  if (cap <= 0.0) {
    throw std::invalid_argument("set_coupling_cap: capacitance must be positive");
  }
  std::vector<std::pair<std::size_t, double>> existing;  // (index, old value)
  for (const std::size_t ci : parasitics().couplings_of(a)) {
    if (parasitics().coupling(ci).other_net(a) == b) {
      existing.emplace_back(ci, parasitics().coupling(ci).c);
    }
  }
  UndoEntry e;
  e.what = "set_coupling_cap " + net_a + " " + net_b;
  if (existing.empty()) {
    mut_para().add_coupling(a, 0, b, 0, cap);  // between driver roots
    e.restore = [this] { mut_para().pop_coupling(); };  // LIFO undo: still the last cap
  } else {
    double sum = 0.0;
    for (const auto& [ci, v] : existing) sum += v;
    const double factor = cap / sum;
    for (const auto& [ci, v] : existing) mut_para().set_coupling_value(ci, v * factor);
    e.restore = [this, existing] {
      for (const auto& [ci, v] : existing) mut_para().set_coupling_value(ci, v);
    };
  }
  e.dirty = {a, b};
  commit_edit(std::move(e), /*bump_epoch=*/true);
}

void Session::set_arrival_window(const std::string& port, Interval window) {
  bool found = false;
  for (const PinId pid : design().input_ports()) {
    if (design().pin(pid).port_name == port) {
      found = true;
      break;
    }
  }
  if (!found) throw NotFound("unknown input port '" + port + "'");
  if (window.is_empty()) {
    throw std::invalid_argument("set_arrival_window: empty window for '" + port + "'");
  }
  auto& arrivals = cfg_.sta.input_arrivals;
  std::optional<Interval> old;
  if (const auto it = arrivals.find(port); it != arrivals.end()) old = it->second;
  arrivals[port] = window;
  UndoEntry e;
  e.what = "set_arrival_window " + port;
  e.restore = [this, port, old] {
    if (old) {
      cfg_.sta.input_arrivals[port] = *old;
    } else {
      cfg_.sta.input_arrivals.erase(port);
    }
  };
  // No nets are marked dirty directly: the next query's STA diff finds
  // every net whose timing the re-timed input actually moved.
  commit_edit(std::move(e), /*bump_epoch=*/true);
}

int Session::set_constraint_group(std::span<const std::string> nets) {
  if (nets.empty()) {
    throw std::invalid_argument("set_constraint_group: empty net list");
  }
  std::vector<NetId> ids;
  ids.reserve(nets.size());
  for (const std::string& n : nets) ids.push_back(require_net(n));
  // Apply on a copy: add_mutex_group throws mid-insert when a net is
  // already grouped, and the session must not keep a half-applied edit.
  noise::Constraints next = cfg_.noise.constraints;
  const int gid = next.add_mutex_group(ids);
  noise::Constraints old = std::exchange(cfg_.noise.constraints, std::move(next));
  UndoEntry e;
  e.what = "set_constraint_group";
  e.restore = [this, old] { cfg_.noise.constraints = old; };
  // An options edit: digest changes, state epoch does not.
  commit_edit(std::move(e), /*bump_epoch=*/false);
  return gid;
}

void Session::set_option(const std::string& name, const std::string& value) {
  noise::Options old = cfg_.noise;
  if (name == "mode") {
    const auto m = parse_mode(value);
    if (!m) {
      throw std::invalid_argument(
          "set_option mode: '" + value +
          "' (expected no-filtering | switching-windows | noise-windows)");
    }
    cfg_.noise.mode = *m;
  } else if (name == "model") {
    const auto m = parse_model(value);
    if (!m) {
      throw std::invalid_argument(
          "set_option model: '" + value +
          "' (expected charge-sharing | devgan | two-pi | reduced-mna | mna-exact)");
    }
    cfg_.noise.model = *m;
  } else if (name == "threads") {
    const auto v = parse_uint(value);
    if (!v || *v > 1024) {
      throw std::invalid_argument("set_option threads: '" + value +
                                  "' (expected an integer in [0, 1024])");
    }
    cfg_.noise.threads = static_cast<int>(*v);
  } else if (name == "simd") {
    // Like threads, a pure execution knob: results are bit-identical on
    // either kernel path and simd is excluded from the options digest, so
    // switching it never invalidates the result cache.
    const auto m = parse_simd(value);
    if (!m) {
      throw std::invalid_argument("set_option simd: '" + value +
                                  "' (expected auto | scalar | vector)");
    }
    cfg_.noise.simd = *m;
  } else if (name == "refine") {
    const auto v = parse_uint(value);
    if (!v || *v > 64) {
      throw std::invalid_argument("set_option refine: '" + value +
                                  "' (expected an integer in [0, 64])");
    }
    cfg_.noise.refine_iterations = static_cast<int>(*v);
  } else if (name == "period") {
    const auto v = parse_double(value);
    if (!v || *v <= 0.0) {
      throw std::invalid_argument("set_option period: '" + value +
                                  "' (expected a positive number of seconds)");
    }
    cfg_.noise.clock_period = *v;
  } else {
    throw std::invalid_argument(
        "set_option: unknown option '" + name +
        "' (expected mode | model | threads | simd | refine | period)");
  }
  UndoEntry e;
  e.what = "set_option " + name + " " + value;
  e.restore = [this, old] { cfg_.noise = old; };
  commit_edit(std::move(e), /*bump_epoch=*/false);
}

bool Session::undo() {
  if (journal_.empty()) return false;
  UndoEntry e = std::move(journal_.back());
  journal_.pop_back();
  e.restore();
  epoch_ = e.epoch_before;
  pending_dirty_.insert(pending_dirty_.end(), e.dirty.begin(), e.dirty.end());
  undos_.add();
  update_memory_accounts();
  reg_.gauge(kMetricEpoch, "current design-state epoch", kUnit)
      .set(static_cast<double>(epoch_));
  return true;
}

// ---- analysis -------------------------------------------------------------

std::vector<NetId> Session::sta_diff(const sta::Result& a, const sta::Result& b) const {
  std::vector<NetId> changed;
  const std::size_t n = std::min(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < n; ++i) {
    const sta::NetTiming& ta = a.nets[i];
    const sta::NetTiming& tb = b.nets[i];
    if (ta.window.lo != tb.window.lo || ta.window.hi != tb.window.hi ||
        ta.slew_min != tb.slew_min || ta.slew_max != tb.slew_max) {
      changed.push_back(NetId{i});
    }
  }
  return changed;
}

const Session::CacheEntry* Session::cache_find(const std::string& key) const {
  for (const CacheEntry& e : cache_) {
    if (e.key == key) return &e;
  }
  return nullptr;
}

void Session::cache_insert(CacheEntry entry) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->key == entry.key) {
      cache_.erase(it);
      break;
    }
  }
  cache_.push_back(std::move(entry));
  while (cache_.size() > cfg_.cache_capacity) cache_.erase(cache_.begin());
  update_memory_accounts();
  reg_.gauge(kMetricCachedResults, "results held in the cache", kUnit)
      .set(static_cast<double>(cache_.size()));
}

Session::StateKey Session::current_key() const {
  // `threads` never changes results (bit-identity guarantee), so it is
  // excluded from the cache identity: a result computed at 4 threads
  // serves a 1-thread query.
  noise::Options canonical = cfg_.noise;
  canonical.threads = 0;
  StateKey k;
  k.digest = noise::options_digest(canonical);
  k.key = k.digest + "#" + std::to_string(epoch_);
  return k;
}

bool Session::needs_analysis() const {
  const StateKey k = current_key();
  if (base_result_ && base_key_ == k.key) return false;
  return cache_find(k.key) == nullptr;
}

AnalysisSeed Session::export_seed() {
  ensure_current();
  return AnalysisSeed{base_result_, base_sta_, base_digest_};
}

bool Session::adopt_seed(const AnalysisSeed& seed) {
  if (!seed.result || !seed.sta) return false;
  // Only a pristine session adopts: no edits ever applied, nothing
  // analyzed, nothing pending — the seed then IS this session's state.
  if (epoch_ != 0 || base_result_ != nullptr || !journal_.empty() ||
      !pending_dirty_.empty() || edits_.value() != 0) {
    return false;
  }
  const StateKey k = current_key();
  if (seed.digest != k.digest || seed.result->epoch != 0) return false;
  base_result_ = seed.result;
  base_sta_ = seed.sta;
  base_key_ = k.key;
  base_digest_ = k.digest;
  cache_insert(CacheEntry{k.key, base_result_, base_sta_});
  return true;
}

void Session::ensure_current() {
  const StateKey sk = current_key();
  const std::string& digest = sk.digest;
  const std::string& key = sk.key;
  if (base_result_ && base_key_ == key) return;

  if (const CacheEntry* hit = cache_find(key)) {
    cache_hits_.add();
    base_result_ = hit->result;
    base_sta_ = hit->sta;
    base_key_ = key;
    base_digest_ = digest;
    pending_dirty_.clear();
    // Refresh LRU order.
    cache_insert(CacheEntry{key, base_result_, base_sta_});
    return;
  }
  cache_misses_.add();

  cfg_.sta.clock_period = cfg_.noise.clock_period;
  auto sta_now =
      std::make_shared<const sta::Result>(sta::run(design(), parasitics(), cfg_.sta));

  noise::Result r;
  const bool can_incremental = base_result_ != nullptr && base_digest_ == digest &&
                               cfg_.noise.refine_iterations == 0;
  if (can_incremental) {
    std::vector<NetId> changed = pending_dirty_;
    const std::vector<NetId> timing_changed = sta_diff(*base_sta_, *sta_now);
    changed.insert(changed.end(), timing_changed.begin(), timing_changed.end());
    std::sort(changed.begin(), changed.end(),
              [](NetId a, NetId b) { return a.value() < b.value(); });
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    // A cancelled analysis throws noise::Cancelled here; everything below
    // — counters, base state, cache, dirty set — is only reached when the
    // analysis ran to completion, so cancellation leaves the session
    // bit-identical to its pre-analyze state.
    r = noise::analyze_incremental(design(), parasitics(), *sta_now, cfg_.noise,
                                   *base_result_, changed, progress_);
    incremental_analyses_.add();
    dirty_hist_.observe(static_cast<double>(changed.size()));
  } else {
    r = noise::analyze(design(), parasitics(), *sta_now, cfg_.noise, progress_);
    full_analyses_.add();
  }
  r.epoch = epoch_;
  last_phases_ = AnalysisPhases{r.telemetry.context_seconds, r.telemetry.estimate_seconds,
                                r.telemetry.propagate_seconds,
                                r.telemetry.endpoints_seconds};

  base_result_ = std::make_shared<const noise::Result>(std::move(r));
  base_sta_ = std::move(sta_now);
  base_key_ = key;
  base_digest_ = digest;
  pending_dirty_.clear();
  cache_insert(CacheEntry{key, base_result_, base_sta_});
}

// ---- observability --------------------------------------------------------

std::size_t Session::cache_bytes() const noexcept {
  // Cache footprint: per-slot retained bytes. Results shared between slots
  // (or with base_result_) are counted once per holder — an upper-bound
  // estimate, cheap and stable.
  std::size_t cache = cache_.capacity() * sizeof(CacheEntry);
  for (const CacheEntry& e : cache_) {
    cache += e.key.capacity();
    if (e.result) cache += noise::memory_bytes(*e.result);
    if (e.sta) cache += sizeof(sta::Result) + sta::memory_bytes(*e.sta);
  }
  return cache;
}

std::size_t Session::journal_bytes() const noexcept {
  // Journal footprint: entry storage + captured labels and dirty lists.
  // std::function capture state is opaque; sizeof(UndoEntry) covers its
  // inline buffer, so small captures are exact and large ones undercounted.
  std::size_t journal = journal_.size() * sizeof(UndoEntry);
  for (const UndoEntry& e : journal_) {
    journal += e.what.capacity() + e.dirty.capacity() * sizeof(NetId);
  }
  return journal;
}

void Session::update_memory_accounts() noexcept {
  // Delta-charge so concurrent sessions each own exactly their footprint
  // of the global accounts; currents sum across sessions and return to
  // zero as each destructs.
  const std::size_t cache = cache_bytes();
  obs::MemAccount& cache_acct = obs::MemTracker::account(obs::MemAccountId::kSessionCache);
  if (cache > mem_cache_charged_) {
    cache_acct.charge(cache - mem_cache_charged_);
  } else if (cache < mem_cache_charged_) {
    cache_acct.release(mem_cache_charged_ - cache);
  }
  mem_cache_charged_ = cache;

  const std::size_t journal = journal_bytes();
  obs::MemAccount& journal_acct =
      obs::MemTracker::account(obs::MemAccountId::kUndoJournal);
  if (journal > mem_journal_charged_) {
    journal_acct.charge(journal - mem_journal_charged_);
  } else if (journal < mem_journal_charged_) {
    journal_acct.release(mem_journal_charged_ - journal);
  }
  mem_journal_charged_ = journal;
}

void Session::refresh_resource_gauges() {
  const obs::ResourceSample rs = obs::sample_resources();
  reg_.gauge(kMetricRssBytes, "", "B", false, true)
      .set(static_cast<double>(rs.rss_bytes));
  reg_.gauge(kMetricPeakRssBytes, "", "B", false, true)
      .set(static_cast<double>(rs.peak_rss_bytes));
  update_memory_accounts();
  reg_.gauge(kMetricCacheBytes, "", "B", false, true)
      .set(static_cast<double>(mem_cache_charged_));
  reg_.gauge(kMetricJournalBytes, "", "B", false, true)
      .set(static_cast<double>(mem_journal_charged_));
  reg_.gauge(kMetricTraceBufferBytes, "", "B", false, true)
      .set(static_cast<double>(obs::Tracer::buffered_bytes()));
}

obs::MetricsSnapshot Session::metrics_snapshot() {
  refresh_resource_gauges();
  return reg_.snapshot();
}

obs::RunMeta Session::meta() const {
  obs::RunMeta m;
  m.design = design().name();
  m.mode = noise::to_string(cfg_.noise.mode);
  m.model = noise::to_string(cfg_.noise.model);
  m.options_digest = noise::options_digest(cfg_.noise);
  m.build = obs::build_version();
  if (base_result_) {
    m.threads = base_result_->run_meta.threads;
    m.iterations = base_result_->run_meta.iterations;
  } else {
    m.threads = cfg_.noise.threads;
    m.iterations = 0;
  }
  return m;
}

std::uint64_t Session::full_analyses() const noexcept { return full_analyses_.value(); }
std::uint64_t Session::incremental_analyses() const noexcept {
  return incremental_analyses_.value();
}
std::uint64_t Session::cache_hits() const noexcept { return cache_hits_.value(); }
std::uint64_t Session::cache_misses() const noexcept { return cache_misses_.value(); }

}  // namespace nw::session
