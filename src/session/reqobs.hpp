// Request-scoped observability for the session server.
//
// A RequestContext rides along one server conversation (serve/shell own
// one per session) and gives every protocol command:
//   - a monotonically increasing request id, stamped into trace spans on
//     the server thread's track so `--trace-out` shows
//     request → analyze → phase nesting end-to-end,
//   - a per-command latency histogram (request_ms_<cmd>) in the session
//     registry — nondeterministic, so it lands in the "timing" section of
//     the stats JSON with min/max/p50/p95/p99,
//   - a bounded slow-request log: commands slower than the threshold are
//     remembered (oldest evicted first) and exported by the `slowlog`
//     protocol command and the --stats-json "slowlog" section; each slow
//     request also emits a rate-limited NW_LOG warning naming the request
//     id, so a hung client is diagnosable from stderr alone.
//
// Metric cardinality is bounded: requests that fail before command
// resolution (parse_error / bad_request / unknown_cmd) are attributed to
// the reserved "_invalid" command, so a hostile client cannot balloon the
// registry with one histogram per garbage line.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "session/json.hpp"

namespace nw::session {

/// Phase wall-time breakdown of a request that triggered an analysis —
/// *where* a slow request was slow, not just how long it took.
struct RequestPhases {
  double context_ms = 0.0;
  double estimate_ms = 0.0;
  double propagate_ms = 0.0;
  double endpoints_ms = 0.0;
};

/// One remembered over-threshold request.
struct SlowRequest {
  std::uint64_t id = 0;   ///< request id (monotonic per context)
  std::uint64_t connection = 0;  ///< daemon connection id (0 = stdio serve)
  std::string cmd;        ///< resolved command ("_invalid" pre-resolution)
  double ms = 0.0;        ///< wall time of handle_line
  bool ok = true;         ///< false when the response was an error
  bool has_phases = false;  ///< the request ran an analysis
  RequestPhases phases;     ///< meaningful only when has_phases
  /// One-shot folded-profile capture ("stack count" lines, heaviest first):
  /// where this request spent its sampled time. Only populated while the
  /// sampling profiler runs, and bounded (kMaxProfileLines) so the slow
  /// log stays small.
  std::vector<std::string> profile;
};

/// Bounded FIFO of slow requests: capacity-oldest are evicted, total
/// recorded count is kept so consumers can see how many fell off.
class SlowLog {
 public:
  explicit SlowLog(std::size_t capacity) : capacity_(capacity) {}

  void record(SlowRequest r);
  [[nodiscard]] std::vector<SlowRequest> entries() const;  ///< oldest first
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t total_recorded() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<SlowRequest> entries_;
  std::uint64_t total_ = 0;
};

/// Per-conversation request observability state. The protocol layer calls
/// next_id() / observe() around each command; everything else is export.
class RequestContext {
 public:
  /// Latency histograms are registered into `registry` (the session's, so
  /// one stats snapshot covers engine, transport, and request latency).
  explicit RequestContext(obs::Registry& registry, double slow_ms = 100.0,
                          std::size_t slowlog_capacity = 32);

  [[nodiscard]] std::uint64_t next_id() noexcept;
  [[nodiscard]] double slow_ms() const noexcept { return slow_ms_; }

  /// Attribute this context to a daemon connection: slow-log entries gain
  /// a "conn" field and the slow-request warning names the connection.
  /// 0 (the default) marks a stdio conversation and renders nothing.
  void set_connection(std::uint64_t id) noexcept { connection_ = id; }
  [[nodiscard]] std::uint64_t connection() const noexcept { return connection_; }

  /// Also mirror latency observations into a second registry (the
  /// daemon's), aggregating request_ms_* across every connection so the
  /// `stats` command and nwtop see fleet-wide latency, not one client's.
  /// nullptr (the default) disables mirroring.
  void set_aggregate(obs::Registry* reg) noexcept { aggregate_ = reg; }

  /// Record one handled request: feeds the command's latency histogram and,
  /// when over threshold, the slow log + a rate-limited warning. `cmd` must
  /// already be cardinality-bounded (see header comment). `phases` is
  /// non-null when the request triggered an analysis; slow entries then
  /// remember the per-phase wall-time breakdown. `profile` carries the
  /// request's folded-profile delta (already bounded by the caller); it is
  /// only attached to slow entries.
  void observe(std::uint64_t id, const std::string& cmd, double ms, bool ok,
               const RequestPhases* phases = nullptr,
               std::vector<std::string> profile = {});

  [[nodiscard]] const SlowLog& slow_log() const noexcept { return slow_log_; }

  /// The `slowlog` response / "slowlog" stats section:
  ///   {"threshold_ms":..,"capacity":..,"recorded":..,"entries":[...]}
  [[nodiscard]] Json slowlog_json() const;

  /// Reserved command name for requests that fail before resolution.
  static constexpr const char* kInvalidCommand = "_invalid";
  /// Latency-histogram name prefix ("request_ms_" + command).
  static constexpr const char* kLatencyPrefix = "request_ms_";
  /// Cap on the folded-profile lines attached to one slow entry.
  static constexpr std::size_t kMaxProfileLines = 8;

 private:
  obs::Registry& registry_;
  obs::Registry* aggregate_ = nullptr;
  double slow_ms_;
  std::uint64_t connection_ = 0;
  std::atomic<std::uint64_t> next_id_{1};
  SlowLog slow_log_;
};

}  // namespace nw::session
