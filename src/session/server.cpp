#include "session/server.hpp"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <istream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "noise/progress.hpp"
#include "noise/report_writer.hpp"
#include "noise/trace.hpp"
#include "session/protocol.hpp"

namespace nw::session {

namespace {

/// Request-line queue between the reader thread and the serving thread
/// (progress mode only). The progress sink scans it for `cancel` requests
/// from checkpoint callbacks while an analysis holds the serving thread.
class LineQueue {
 public:
  void push(std::string line) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(std::move(line));
    }
    cv_.notify_one();
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_one();
  }

  /// Blocking pop; false once closed and drained (EOF).
  bool pop(std::string& line) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !lines_.empty() || closed_; });
    if (lines_.empty()) return false;
    line = std::move(lines_.front());
    lines_.pop_front();
    return true;
  }

  /// Remove and return the earliest queued `cancel` request, if any.
  std::optional<std::string> take_cancel() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = lines_.begin(); it != lines_.end(); ++it) {
      if (!is_cancel(*it)) continue;
      std::string line = std::move(*it);
      lines_.erase(it);
      return line;
    }
    return std::nullopt;
  }

 private:
  static bool is_cancel(const std::string& line) {
    if (line.find("cancel") == std::string::npos) return false;  // cheap reject
    const std::optional<Json> req = json_parse(line);
    if (!req || !req->is_object()) return false;
    const Json* cmd = req->find("cmd");
    return cmd != nullptr && cmd->is_string() && cmd->as_string() == "cancel";
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  bool closed_ = false;
};

/// Progress sink for serve(): emits event lines and intercepts queued
/// `cancel` requests. All writes happen on the serving thread (checkpoints
/// are called from inside the analysis it runs), so event, out-of-band
/// cancel response, and regular response lines never interleave mid-line.
class ServerProgress final : public noise::ProgressSink {
 public:
  ServerProgress(LineQueue& queue, std::ostream& out) : queue_(queue), out_(out) {}

  void on_progress(const noise::Progress& p) override {
    Json o = Json::object();
    o.set("event", "progress");
    o.set("phase", p.phase);
    o.set("iteration", p.iteration);
    o.set("completed", p.completed);
    o.set("total", p.total);
    o.set("level", p.level);
    o.set("elapsed_ms", p.phase_elapsed_s * 1e3);
    o.set("eta_ms", p.eta_s * 1e3);
    out_ << o.dump() << '\n';
    out_.flush();
  }

  bool cancel_requested() override {
    if (cancelled_) return true;
    const std::optional<std::string> line = queue_.take_cancel();
    if (!line) return false;
    // Answer the cancel out-of-band, echoing its id; the analyzing request
    // in flight gets its own "cancelled" error response from the protocol.
    Json id;
    if (const std::optional<Json> req = json_parse(*line)) {
      if (const Json* rid = req->find("id")) id = *rid;
    }
    Json data = Json::object();
    data.set("cancelled", true);
    Json resp = Json::object();
    resp.set("id", std::move(id));
    resp.set("ok", true);
    resp.set("data", std::move(data));
    out_ << resp.dump() << '\n';
    out_.flush();
    cancelled_ = true;
    return true;
  }

  /// Re-arm before each request: a consumed cancel only aborts the
  /// analysis in flight when it was consumed, not every later one.
  void begin_request() { cancelled_ = false; }

 private:
  LineQueue& queue_;
  std::ostream& out_;
  bool cancelled_ = false;
};

}  // namespace

std::size_t serve(Session& session, std::istream& in, std::ostream& out,
                  RequestContext* reqobs, ServeOptions options) {
  Protocol proto(session, reqobs);
  std::size_t handled = 0;
  if (!options.progress) {
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF clients
      if (line.empty()) continue;  // blank keep-alives get no response
      out << proto.handle_line(line) << '\n';
      out.flush();
      ++handled;
    }
    return handled;
  }

  LineQueue queue;
  std::thread reader([&in, &queue] {
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      queue.push(std::move(line));
    }
    queue.close();
  });
  ServerProgress progress(queue, out);
  session.set_progress_sink(&progress);
  std::string line;
  while (queue.pop(line)) {
    progress.begin_request();
    out << proto.handle_line(line) << '\n';
    out.flush();
    ++handled;
  }
  session.set_progress_sink(nullptr);
  reader.join();
  return handled;
}

namespace {

constexpr const char* kShellHelp =
    "commands:\n"
    "  violations [n]              worst n violations (default 10)\n"
    "  slack [n]                   worst n endpoint noise slacks (default 10)\n"
    "  noise <net>                 noise summary of a net\n"
    "  trace <net>                 trace a net's worst glitch to its origin\n"
    "  explain <net>               provenance of the net's violations\n"
    "  cell <inst> <cell>          swap an instance onto another cell\n"
    "  scale <net> <capf> <resf>   scale a net's ground caps / resistances\n"
    "  couple <a> <b> <cap>        set total coupling cap between two nets [F]\n"
    "  arrival <port> <lo> <hi>    override an input arrival window [s]\n"
    "  group <net> [net...]        declare a mutual-exclusion group\n"
    "  set <option> <value>        mode|model|threads|refine|period\n"
    "  undo                        revert the most recent edit\n"
    "  stats                       session counters\n"
    "  help                        this text\n"
    "  quit                        leave\n";

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::istringstream is(line);
  std::string t;
  while (is >> t) toks.push_back(t);
  return toks;
}

double num_arg(const std::vector<std::string>& toks, std::size_t i) {
  if (i >= toks.size()) throw std::invalid_argument("missing numeric argument");
  std::size_t used = 0;
  const double v = std::stod(toks[i], &used);
  if (used != toks[i].size()) {
    throw std::invalid_argument("bad number '" + toks[i] + "'");
  }
  return v;
}

std::size_t count_arg(const std::vector<std::string>& toks, std::size_t i,
                      std::size_t fallback) {
  if (i >= toks.size()) return fallback;
  const double v = num_arg(toks, i);
  if (v < 0) throw std::invalid_argument("count must be non-negative");
  return static_cast<std::size_t>(v);
}

const std::string& str_arg(const std::vector<std::string>& toks, std::size_t i,
                           const char* what) {
  if (i >= toks.size()) {
    throw std::invalid_argument(std::string("missing argument: ") + what);
  }
  return toks[i];
}

std::string mv(double volts) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f mV", volts * 1e3);
  return buf;
}

std::string ps(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f ps", seconds * 1e12);
  return buf;
}

void run_command(Session& s, const std::vector<std::string>& toks, std::ostream& out) {
  const std::string& cmd = toks[0];
  if (cmd == "help") {
    out << kShellHelp;
  } else if (cmd == "violations") {
    const std::size_t limit = count_arg(toks, 1, 10);
    const noise::Result& r = s.result();
    out << r.violations.size() << " violation(s), " << r.endpoints_checked
        << " endpoints checked [epoch " << r.epoch << "]\n";
    for (std::size_t i = 0; i < r.violations.size() && i < limit; ++i) {
      const noise::Violation& v = r.violations[i];
      out << "  " << s.design().pin_name(v.endpoint) << " (net "
          << s.design().net(v.net).name << "): peak " << mv(v.peak) << " > "
          << mv(v.threshold) << ", width " << ps(v.width) << "\n";
    }
  } else if (cmd == "slack") {
    const std::size_t limit = count_arg(toks, 1, 10);
    const auto slacks = s.endpoint_slacks();
    for (std::size_t i = 0; i < slacks.size() && i < limit; ++i) {
      out << "  " << slacks[i].endpoint << " (net " << slacks[i].net << "): "
          << mv(slacks[i].slack) << "\n";
    }
  } else if (cmd == "noise") {
    const NetId id = s.require_net(str_arg(toks, 1, "net name"));
    const noise::NetNoise& nn = s.result().net(id);
    out << "net " << s.design().net(id).name << ": total " << mv(nn.total_peak)
        << " (injected " << mv(nn.injected_peak) << ", propagated "
        << mv(nn.propagated_peak) << "), width " << ps(nn.width) << ", "
        << nn.aggressor_count << " aggressor(s)\n";
  } else if (cmd == "trace") {
    const NetId id = s.require_net(str_arg(toks, 1, "net name"));
    out << noise::trace_string(s.design(), s.trace(id)) << "\n";
  } else if (cmd == "explain") {
    const NetId id = s.require_net(str_arg(toks, 1, "net name"));
    out << noise::explain_string(s.design(), s.noise_options(), s.result(), id);
  } else if (cmd == "cell") {
    s.set_driver_cell(str_arg(toks, 1, "instance"), str_arg(toks, 2, "cell"));
    out << "ok [epoch " << s.epoch() << "]\n";
  } else if (cmd == "scale") {
    s.scale_net_parasitics(str_arg(toks, 1, "net"), num_arg(toks, 2), num_arg(toks, 3));
    out << "ok [epoch " << s.epoch() << "]\n";
  } else if (cmd == "couple") {
    s.set_coupling_cap(str_arg(toks, 1, "net"), str_arg(toks, 2, "net"),
                       num_arg(toks, 3));
    out << "ok [epoch " << s.epoch() << "]\n";
  } else if (cmd == "arrival") {
    s.set_arrival_window(str_arg(toks, 1, "port"),
                         Interval{num_arg(toks, 2), num_arg(toks, 3)});
    out << "ok [epoch " << s.epoch() << "]\n";
  } else if (cmd == "group") {
    const std::vector<std::string> nets(toks.begin() + 1, toks.end());
    const int gid = s.set_constraint_group(nets);
    out << "group " << gid << "\n";
  } else if (cmd == "set") {
    s.set_option(str_arg(toks, 1, "option"), str_arg(toks, 2, "value"));
    out << "ok\n";
  } else if (cmd == "undo") {
    out << (s.undo() ? "undone" : "nothing to undo") << " [epoch " << s.epoch()
        << "]\n";
  } else if (cmd == "stats") {
    out << "epoch " << s.epoch() << ", undo depth " << s.undo_depth() << ", full "
        << s.full_analyses() << ", incremental " << s.incremental_analyses()
        << ", cache " << s.cache_hits() << " hit / " << s.cache_misses()
        << " miss\n";
  } else {
    out << "unknown command '" << cmd << "' (try: help)\n";
  }
}

}  // namespace

std::size_t shell(Session& session, std::istream& in, std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  out << "noisewin session on '" << session.design().name() << "' ("
      << session.design().net_count() << " nets). Type 'help'.\n";
  for (out << "noisewin> " << std::flush; std::getline(in, line);
       out << "noisewin> " << std::flush) {
    const std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks[0] == "quit" || toks[0] == "exit") break;
    ++handled;
    try {
      run_command(session, toks, out);
    } catch (const std::exception& e) {
      out << "error: " << e.what() << "\n";
    }
  }
  out << "\n";
  return handled;
}

}  // namespace nw::session
