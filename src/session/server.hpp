// Session transports: the JSONL server loop and the human shell REPL.
//
// Both run a Session to exhaustion of an input stream — `serve` speaks the
// machine protocol (session/protocol.hpp) for clients like
// tools/nwclient.py; `shell` is a line-oriented REPL for a person poking
// at a design. Neither owns the session: the caller builds it (and can
// export its metrics afterwards — per-session counters accumulate across
// the whole conversation).
#pragma once

#include <iosfwd>

#include "session/reqobs.hpp"
#include "session/session.hpp"

namespace nw::session {

struct ServeOptions {
  /// Stream {"event":"progress",...} notification lines interleaved with
  /// responses while an analysis runs, and accept a mid-analyze `cancel`
  /// request (answered out-of-band with {"cancelled":true}; the in-flight
  /// analyzing request then fails with error code "cancelled" and the
  /// session keeps its pre-analyze state). Off by default: responses stay
  /// strictly one-per-request-line and input is read synchronously.
  bool progress = false;
};

/// Read JSONL requests from `in` until EOF, writing exactly one JSON
/// response line per input line to `out` (flushed per line, so a pipe
/// client can converse synchronously). Returns the number of requests.
/// With a RequestContext every command gets a request id, a trace span, a
/// latency-histogram sample, and slow-log coverage (see session/reqobs.hpp).
/// With options.progress, a reader thread decouples input from request
/// handling so `cancel` can be seen while an analysis is in flight;
/// clients must then skip "event" lines when matching responses.
std::size_t serve(Session& session, std::istream& in, std::ostream& out,
                  RequestContext* reqobs = nullptr, ServeOptions options = {});

/// Interactive REPL: whitespace-tokenized commands, human-readable
/// answers, `help` for the command list, `quit` (or EOF) to leave.
/// Returns the number of commands executed.
std::size_t shell(Session& session, std::istream& in, std::ostream& out);

}  // namespace nw::session
