// Human-readable noise report (the tool's primary output artifact).
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "noise/delay_impact.hpp"

namespace nw::noise {

struct ReportOptions {
  std::size_t max_violations = 50;   ///< cap on detailed violation rows
  std::size_t max_noisy_nets = 20;   ///< cap on the worst-net table
  bool include_windows = true;       ///< print noise/sensitivity windows
  /// Append the run's telemetry table (the same rendering as --stats, via
  /// write_stats) so a report file is a self-contained run record.
  bool telemetry_footer = false;
};

/// Write the full report: summary, violation table, worst nets by peak.
void write_report(std::ostream& os, const net::Design& design, const Options& options,
                  const Result& result, const ReportOptions& ropt = {});

/// Append a delay-impact section to a report stream.
void write_delay_impact(std::ostream& os, const net::Design& design,
                        const DelayImpactSummary& impact, std::size_t max_rows = 20);

[[nodiscard]] std::string report_string(const net::Design& design, const Options& options,
                                        const Result& result,
                                        const ReportOptions& ropt = {});

/// Explain every violation on `net` from its Provenance record: ranked
/// aggressor shares (peak, coupling, window overlap, filter verdict), the
/// filtering-stage peaks with the culling stage, and the propagation path.
/// Deterministic — the rendering is bit-identical across thread counts.
/// Prints a "no violations" note (and returns false) when the net is clean.
bool write_explain(std::ostream& os, const net::Design& design, const Options& options,
                   const Result& result, NetId net);

[[nodiscard]] std::string explain_string(const net::Design& design,
                                         const Options& options, const Result& result,
                                         NetId net);

}  // namespace nw::noise
