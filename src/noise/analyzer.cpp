#include "noise/analyzer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iomanip>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "noise/context.hpp"
#include "noise/kernels.hpp"
#include "obs/log.hpp"
#include "obs/memtrack.hpp"
#include "obs/resource.hpp"
#include "obs/tracer.hpp"
#include "util/executor.hpp"
#include "util/scanline.hpp"

namespace nw::noise {

const char* to_string(AnalysisMode m) noexcept {
  switch (m) {
    case AnalysisMode::kNoFiltering: return "no-filtering";
    case AnalysisMode::kSwitchingWindows: return "switching-windows";
    case AnalysisMode::kNoiseWindows: return "noise-windows";
  }
  return "?";
}

const char* to_string(SimdMode m) noexcept {
  switch (m) {
    case SimdMode::kAuto: return "auto";
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kVector: return "vector";
  }
  return "?";
}

SimdMode resolve_simd(SimdMode m) noexcept {
  return m == SimdMode::kAuto ? SimdMode::kVector : m;
}

const char* to_string(FilterStage s) noexcept {
  switch (s) {
    case FilterStage::kNone: return "none";
    case FilterStage::kSwitchingWindow: return "switching-window";
    case FilterStage::kNoiseWindow: return "noise-window";
    case FilterStage::kSensitivityWindow: return "sensitivity-window";
  }
  return "?";
}

const char* to_string(WindowVerdict v) noexcept {
  switch (v) {
    case WindowVerdict::kInWorst: return "in-worst";
    case WindowVerdict::kWindowDisjoint: return "window-disjoint";
    case WindowVerdict::kConstraintExcluded: return "constraint-excluded";
  }
  return "?";
}

namespace {

// Work-distribution granularity. Any value is determinism-safe (results
// are slot-addressed); these balance scheduling overhead against skew for
// cheap analytic models vs. per-pair MNA solves.
constexpr std::size_t kEstimateChunk = 8;
constexpr std::size_t kPropagateChunk = 16;
constexpr std::size_t kEndpointChunk = 32;

// Progress-checkpoint batch sizes. With a ProgressSink installed the
// estimate/endpoint loops run as a sequence of parallel_for batches with a
// checkpoint between each; batch sizes are exact multiples of the stage
// chunk sizes so the total chunk count — and with it the deterministic
// executor_tasks counter — is identical with and without a sink.
static_assert(512 % kEstimateChunk == 0);
static_assert(1024 % kEndpointChunk == 0);
constexpr std::size_t kEstimateBatch = 512;
constexpr std::size_t kEndpointBatch = 1024;

// Fixed histogram bounds. Stable across runs/designs so exported
// distributions are directly comparable (tools/validate_obs.py checks the
// bucket layout, not just totals).
const std::vector<double> kGlitchPeakBounds = {0.05, 0.1, 0.15, 0.2, 0.3,
                                               0.4,  0.5, 0.7,  1.0};
const std::vector<double> kAggressorsPerVictimBounds = {0, 1, 2, 4, 8, 16, 32, 64};
const std::vector<double> kLevelWidthBounds = {1, 2, 4, 8, 16, 32, 64, 128, 256};
const std::vector<double> kTaskSecondsBounds = {1e-6, 1e-5, 1e-4, 1e-3,
                                                1e-2, 1e-1, 1.0};

/// Accumulates wall time into a phase accumulator for the enclosing scope.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& acc)
      : acc_(acc), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    acc_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& acc_;
  std::chrono::steady_clock::time_point start_;
};

// The scalar reference combination (Combined itself lives in
// noise/kernels.hpp, shared with the flat path).
Combined combine(const std::vector<Contribution>& contributions, AnalysisMode mode,
                 const Interval& restrict_to, const Constraints& constraints) {
  Combined out;
  if (mode == AnalysisMode::kNoFiltering && constraints.empty()) {
    // Everything coincides, always.
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      out.peak += contributions[i].peak;
      out.width = std::max(out.width, contributions[i].width);
      out.active.push_back(i);
    }
    out.alignment = Interval::everything();
    return out;
  }
  std::vector<WeightedWindow> items;
  items.reserve(contributions.size());
  for (const auto& c : contributions) {
    WeightedWindow ww;
    ww.weight = c.peak;
    // No-filtering mode ignores windows but still honours logic
    // constraints (functional filtering is orthogonal to temporal).
    const IntervalSet& win = (mode == AnalysisMode::kNoFiltering)
                                 ? IntervalSet::everything()
                                 : c.window;
    ww.window = restrict_to == Interval::everything() ? win
                                                      : win.intersect(restrict_to);
    items.push_back(std::move(ww));
  }
  ScanResult scan;
  if (constraints.empty()) {
    scan = scan_max_overlap(items);
  } else {
    std::vector<int> groups(contributions.size(), -1);
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      if (contributions[i].aggressor.valid()) {
        groups[i] = constraints.group_of(contributions[i].aggressor);
      }
    }
    scan = scan_max_overlap_grouped(items, groups);
  }
  out.peak = scan.best_sum;
  out.alignment = scan.best_interval;
  out.active = scan.active;
  for (const auto i : scan.active) {
    out.width = std::max(out.width, contributions[i].width);
  }
  return out;
}

/// What one endpoint check produced (slot-addressed so the parallel check
/// stage folds back into Result in deterministic endpoint order).
struct EndpointOutcome {
  double slack = 0.0;
  std::optional<Violation> violation;
  std::optional<Provenance> provenance;  ///< engaged iff `violation` is
};

/// The staged pipeline: one analysis over a fixed design/parasitics/timing.
/// Full and incremental runs share every stage — estimate_injected,
/// propagate, check_endpoints — and differ only in which victims the
/// estimation stage recomputes. All stages run on the shared executor and
/// write to pre-sized per-index slots, so output is bit-identical across
/// thread counts.
class Pipeline {
 public:
  Pipeline(const net::Design& design, const para::Parasitics& para,
           const sta::Result& sta_result, const Options& opt, ProgressSink* progress)
      : design_(design),
        para_(para),
        sta_(sta_result),
        opt_(opt),
        progress_(progress),
        vector_(resolve_simd(opt.simd) == SimdMode::kVector),
        exec_(opt.threads),
        start_(std::chrono::steady_clock::now()),
        phase_start_(start_),
        executor_tasks_(reg_.counter(kMetricExecutorTasks, "executor chunks run")),
        task_seconds_(reg_.histogram(kMetricTaskSeconds, "per-chunk wall time",
                                     kTaskSecondsBounds, "s",
                                     /*deterministic=*/false)) {
    register_metrics();
    {
      obs::Span span("build-context", obs::SpanKind::kPhase);
      PhaseTimer timer(times_.context);
      ctx_ = AnalysisContext::build(design, para, sta_result, opt);
      switch_win_ = ctx_.switch_window;
      if (vector_) {
        // Structural slabs only (CSR adjacency, level/instance/endpoint
        // slabs): O(nets + pairs + instances) copies, no FP transforms.
        // Per-pair scenario operands pack lazily in estimate_injected.
        kb_ = KernelBuffers::build(design, ctx_);
      }
      // The arena self-charges the adjacency rows and the kernel slabs
      // charge through their allocator; the hook covers the rest of the
      // context plus this pipeline's window copy.
      ctx_charge_ = obs::ScopedMemCharge(
          obs::MemAccountId::kAnalysisContext,
          ctx_.hook_bytes() + switch_win_.capacity() * sizeof(Interval));
    }
    reg_.counter(kMetricPairsFilteredCap, "").add(ctx_.pairs_filtered_cap);
    auto& level_width = reg_.histogram(kMetricLevelWidth, "", {});
    for (const auto& level : ctx_.levels) {
      level_width.observe(static_cast<double>(level.size()));
    }
    // Per-chunk instrumentation: both sinks are thread-safe; the chunk
    // count per region is ceil(n/chunk) regardless of thread count, so
    // executor_tasks stays deterministic while task wall times are timing.
    exec_.set_task_observer([tasks = &executor_tasks_,
                             seconds = &task_seconds_](double s) {
      tasks->add();
      seconds->observe(s);
    });
    // Utilization accounting shares the observer's clock pair, so it adds
    // no chunk-path cost; never touches scheduling, so results stay
    // bit-identical (tested across profile rates in test_profile.cpp).
    exec_.enable_utilization(true);
    level_walls_.assign(ctx_.levels.size(), 0.0);
    checkpoint("build-context", 1, 1);
  }

  [[nodiscard]] Result run_full() {
    Result res;
    const int total_iters = 1 + std::max(opt_.refine_iterations, 0);
    for (int iter = 0; iter < total_iters; ++iter) {
      std::optional<obs::Span> span;
      if (obs::spans_active()) {
        span.emplace("iteration " + std::to_string(iter + 1),
                     obs::SpanKind::kIteration);
      }
      iteration_ = iter + 1;
      reset(res);
      estimate_injected(res, /*dirty=*/nullptr, /*previous=*/nullptr);
      propagate(res);
      check_endpoints(res);
      res.iteration_violations.push_back(res.violations.size());
      res.iterations = iter + 1;
      NW_LOG(kDebug) << "pass " << (iter + 1) << "/" << total_iters << ": "
                     << res.violations.size() << " violations, " << res.noisy_nets
                     << " noisy nets";
      if (iter + 1 < total_iters && !inflate_windows(res)) {
        NW_LOG(kInfo) << "refinement converged after " << (iter + 1) << " passes";
        break;
      }
    }
    finish(res);
    return res;
  }

  [[nodiscard]] Result run_incremental(const Result& previous,
                                       std::span<const NetId> changed_nets) {
    if (previous.nets.size() != design_.net_count()) {
      throw std::invalid_argument(
          "analyze_incremental: previous result covers " +
          std::to_string(previous.nets.size()) + " nets but the design has " +
          std::to_string(design_.net_count()));
    }
    // Victims to re-estimate: the changed nets and everything coupled to
    // them (their injected noise depends on the changed net's parasitics,
    // timing, or drive). dirty_closure validates every changed id.
    std::vector<char> dirty(design_.net_count(), 0);
    try {
      for (const NetId n : ctx_.dirty_closure(para_, changed_nets)) {
        dirty[n.index()] = 1;
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("analyze_incremental: ") + e.what());
    }

    Result res;
    std::optional<obs::Span> span;
    if (obs::spans_active()) span.emplace("iteration 1", obs::SpanKind::kIteration);
    reset(res);
    estimate_injected(res, &dirty, &previous);
    propagate(res);
    check_endpoints(res);
    res.iteration_violations.push_back(res.violations.size());
    res.iterations = 1;
    span.reset();
    finish(res);
    return res;
  }

 private:
  /// Opens a progress phase: restarts the phase clock and emits the
  /// zero-completed checkpoint (which also polls for cancellation before
  /// any of the phase's work runs).
  void begin_phase(const char* phase, std::size_t total) {
    phase_start_ = std::chrono::steady_clock::now();
    checkpoint(phase, 0, total);
  }

  /// One checkpoint: polls cancellation (throws Cancelled) then reports.
  /// Called only from the coordinating thread, never inside a parallel
  /// region — the ProgressSink contract (noise/progress.hpp).
  void checkpoint(const char* phase, std::size_t completed, std::size_t total,
                  std::size_t level = 0) {
    if (progress_ == nullptr) return;
    if (progress_->cancel_requested()) throw Cancelled();
    Progress p;
    p.phase = phase;
    p.iteration = iteration_;
    p.completed = completed;
    p.total = total;
    p.level = level;
    p.phase_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start_)
            .count();
    if (completed > 0 && completed < total) {
      p.eta_s = p.phase_elapsed_s * static_cast<double>(total - completed) /
                static_cast<double>(completed);
    }
    progress_->on_progress(p);
  }

  /// Registers every metric up front so the snapshot (and the JSON export)
  /// has one fixed order and zero-valued metrics still appear. Later use
  /// sites re-look names up and get these same objects back.
  void register_metrics() {
    reg_.counter(kMetricVictimsEstimated, "nets whose glitches were computed");
    reg_.counter(kMetricVictimsReused, "incremental: estimates carried over");
    reg_.counter(kMetricAggressorPairs, "victim/aggressor pairs evaluated");
    reg_.counter(kMetricPairsFilteredCap, "pairs dropped below min_coupling_cap");
    reg_.gauge(kMetricLevels, "propagation levels (last pass)");
    reg_.gauge(kMetricEndpoints, "endpoints checked (last pass)");
    reg_.gauge(kMetricViolations, "failing endpoints (last pass)");
    reg_.gauge(kMetricNoisyNets, "nets exceeding receiver immunity (last pass)");
    reg_.gauge(kMetricAggressorsConsidered, "aggressors above cap (last pass)");
    reg_.gauge(kMetricAggressorsFilteredTemporal,
               "aggressors dropped with empty windows (last pass)");
    reg_.histogram(kMetricGlitchPeak, "combined glitch peak per noisy net",
                   kGlitchPeakBounds, "V");
    reg_.histogram(kMetricAggressorsPerVictim, "aggressors above cap per victim",
                   kAggressorsPerVictimBounds);
    reg_.histogram(kMetricLevelWidth, "instances per propagation level",
                   kLevelWidthBounds);
    reg_.gauge(kMetricContextSeconds, "AnalysisContext build wall time", "s",
               /*deterministic=*/false);
    reg_.gauge(kMetricEstimateSeconds, "estimation wall time (all passes)", "s",
               /*deterministic=*/false);
    reg_.gauge(kMetricPropagateSeconds, "propagation wall time (all passes)", "s",
               /*deterministic=*/false);
    reg_.gauge(kMetricEndpointsSeconds, "endpoint-check wall time (all passes)", "s",
               /*deterministic=*/false);
    reg_.gauge(kMetricTotalSeconds, "whole analyze() wall time", "s",
               /*deterministic=*/false);
    reg_.gauge(kMetricRssBytes, "resident set size at finish", "B",
               /*deterministic=*/false, /*resource=*/true);
    reg_.gauge(kMetricPeakRssBytes, "peak resident set size", "B",
               /*deterministic=*/false, /*resource=*/true);
    reg_.gauge(kMetricResultBytes, "estimated Result heap footprint", "B",
               /*deterministic=*/false, /*resource=*/true);
  }

  /// Publishes the timing gauges and last-pass work gauges, observes the
  /// final glitch-peak distribution (index order), stamps the run identity,
  /// and snapshots the registry into the Result. Must run before returning.
  void finish(Result& res) {
    reg_.gauge(kMetricContextSeconds, "", "s", false).set(times_.context);
    reg_.gauge(kMetricEstimateSeconds, "", "s", false).set(times_.estimate);
    reg_.gauge(kMetricPropagateSeconds, "", "s", false).set(times_.propagate);
    reg_.gauge(kMetricEndpointsSeconds, "", "s", false).set(times_.endpoints);
    reg_.gauge(kMetricTotalSeconds, "", "s", false)
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                 .count());
    reg_.gauge(kMetricLevels, "").set(static_cast<double>(ctx_.levels.size()));
    reg_.gauge(kMetricEndpoints, "").set(static_cast<double>(res.endpoints_checked));
    reg_.gauge(kMetricViolations, "").set(static_cast<double>(res.violations.size()));
    reg_.gauge(kMetricNoisyNets, "").set(static_cast<double>(res.noisy_nets));
    reg_.gauge(kMetricAggressorsConsidered, "")
        .set(static_cast<double>(res.aggressors_considered));
    reg_.gauge(kMetricAggressorsFilteredTemporal, "")
        .set(static_cast<double>(res.aggressors_filtered_temporal));
    auto& glitch_peak = reg_.histogram(kMetricGlitchPeak, "", {});
    for (const NetNoise& nn : res.nets) {
      if (nn.total_peak > 0.0) glitch_peak.observe(nn.total_peak);
    }
    const obs::ResourceSample rs = obs::sample_resources();
    reg_.gauge(kMetricRssBytes, "", "B", false, true)
        .set(static_cast<double>(rs.rss_bytes));
    reg_.gauge(kMetricPeakRssBytes, "", "B", false, true)
        .set(static_cast<double>(rs.peak_rss_bytes));
    reg_.gauge(kMetricResultBytes, "", "B", false, true)
        .set(static_cast<double>(memory_bytes(res)));
    res.run_meta.design = design_.name();
    res.run_meta.mode = to_string(opt_.mode);
    res.run_meta.model = to_string(opt_.model);
    res.run_meta.options_digest = options_digest(opt_);
    res.run_meta.build = obs::build_version();
    res.run_meta.threads = exec_.thread_count();
    res.run_meta.simd = to_string(resolve_simd(opt_.simd));
    res.run_meta.iterations = res.iterations;
    res.executor = exec_.utilization();
    res.attribution = build_attribution(res);
    res.metrics = reg_.snapshot();
    res.telemetry = telemetry_from_metrics(res.run_meta, res.metrics);
  }

  /// Top-K heaviest propagation levels (by measured wall time — timing
  /// data) and busiest victims (by evaluated aggressor count —
  /// deterministic). K is small and fixed: this is a "where did the cost
  /// go" digest, not a full dump.
  [[nodiscard]] WorkAttribution build_attribution(const Result& res) const {
    constexpr std::size_t kTopK = 5;
    WorkAttribution attr;
    std::vector<std::size_t> order(level_walls_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return level_walls_[a] != level_walls_[b] ? level_walls_[a] > level_walls_[b]
                                                : a < b;
    });
    for (std::size_t i = 0; i < order.size() && i < kTopK; ++i) {
      const std::size_t li = order[i];
      if (level_walls_[li] <= 0.0) break;
      attr.top_levels.push_back(
          {li, ctx_.levels[li].size(), level_walls_[li] * 1e3});
    }
    std::vector<std::size_t> nets(res.nets.size());
    for (std::size_t i = 0; i < nets.size(); ++i) nets[i] = i;
    std::sort(nets.begin(), nets.end(), [&](std::size_t a, std::size_t b) {
      const std::size_t ca = res.nets[a].aggressor_count;
      const std::size_t cb = res.nets[b].aggressor_count;
      return ca != cb ? ca > cb : a < b;
    });
    for (std::size_t i = 0; i < nets.size() && i < kTopK; ++i) {
      const NetNoise& nn = res.nets[nets[i]];
      if (nn.aggressor_count == 0) break;
      attr.top_nets.push_back({design_.net(NetId{nets[i]}).name,
                               nn.aggressor_count, nn.total_peak});
    }
    return attr;
  }

  void reset(Result& res) const {
    res.nets.assign(design_.net_count(), NetNoise{});
    res.violations.clear();
    res.provenance.clear();
    res.endpoint_slacks.clear();
    res.endpoints_checked = 0;
    res.noisy_nets = 0;
    res.aggressors_considered = 0;
    res.aggressors_filtered_temporal = 0;
  }

  // ---- stage 1: injected glitch estimation, parallel over victims ----------
  // Shared-nothing: victim vi touches only res.nets[vi] and its slot in the
  // per-victim counter array; counters fold serially afterwards.
  void estimate_injected(Result& res, const std::vector<char>* dirty,
                         const Result* previous) {
    obs::Span span("estimate-injected", obs::SpanKind::kPhase);
    PhaseTimer timer(times_.estimate);
    const std::size_t n = design_.net_count();
    std::size_t estimated = 0;
    std::size_t reused = 0;
    // With a ProgressSink the range runs as checkpointed batches; batch
    // sizes are chunk multiples, so the chunk decomposition (and the
    // executor_tasks counter) is identical to the single-call layout.
    const std::size_t batch =
        progress_ != nullptr ? kEstimateBatch : std::max<std::size_t>(n, 1);
    begin_phase("estimate-injected", n);
    if (vector_) {
      // Refresh the flat switching windows for this pass, and pack the
      // per-pair estimation operands once per Pipeline (dirty rows only on
      // incremental runs — clean victims reuse previous contributions and
      // never read their slots). Refinement passes 2+ hit the packed_
      // guard and reuse the slabs: the operands depend only on immutable
      // design/parasitics/STA state, never on the inflated windows.
      kb_.set_switch_windows(switch_win_);
      if (!kb_.scenarios_packed()) {
        kb_.pack_scenarios(design_, para_, sta_, opt_, dirty, exec_);
      }
    }
    for (std::size_t base = 0; base < n; base += batch) {
      const std::size_t limit = std::min(n, base + batch);
      exec_.parallel_for("estimate-injected", limit - base, kEstimateChunk,
                         [&](std::size_t begin, std::size_t end) {
        for (std::size_t vi = base + begin; vi < base + end; ++vi) {
          if (dirty == nullptr || (*dirty)[vi]) {
            if (vector_) {
              estimate_for_victim_vector(res.nets[vi], vi);
            } else {
              estimate_for_victim(res.nets[vi], NetId{vi});
            }
          } else {
            // Reuse the previous injected contributions (propagated ones are
            // rebuilt below); aggressor bookkeeping is restored with them.
            for (const auto& c : previous->nets[vi].contributions) {
              if (c.is_propagated()) continue;
              Contribution copy = c;
              copy.in_worst = false;
              res.nets[vi].contributions.push_back(std::move(copy));
            }
            res.nets[vi].aggressor_count = previous->nets[vi].aggressor_count;
            res.nets[vi].filtered_temporal = previous->nets[vi].filtered_temporal;
          }
        }
      });
      checkpoint("estimate-injected", limit, n);
    }
    // Deterministic fold of the per-victim counters (index order, serial —
    // this is what keeps the metrics bit-identical across thread counts).
    auto& aggressor_pairs = reg_.counter(kMetricAggressorPairs, "");
    auto& per_victim = reg_.histogram(kMetricAggressorsPerVictim, "", {});
    for (std::size_t vi = 0; vi < n; ++vi) {
      res.aggressors_considered += res.nets[vi].aggressor_count;
      res.aggressors_filtered_temporal += res.nets[vi].filtered_temporal;
      per_victim.observe(static_cast<double>(res.nets[vi].aggressor_count));
      const bool recomputed = dirty == nullptr || (*dirty)[vi];
      if (recomputed) aggressor_pairs.add(res.nets[vi].aggressor_count);
      (recomputed ? estimated : reused) += 1;
    }
    reg_.counter(kMetricVictimsEstimated, "").add(estimated);
    reg_.counter(kMetricVictimsReused, "").add(reused);
  }

  void estimate_for_victim(NetNoise& nn, NetId victim) const {
    for (const AggressorEdge& edge : ctx_.aggressors[victim.index()]) {
      const NetId agg = edge.net;
      ++nn.aggressor_count;

      const sta::NetTiming& at = sta_.nets[agg.index()];
      double slew = at.slew_min > 0.0 ? at.slew_min : opt_.default_slew;
      slew = std::max(slew, 1e-12);

      GlitchEstimate g;
      if (opt_.model == GlitchModel::kMnaExact) {
        g = estimate_mna(design_, para_, victim, agg, slew, ctx_.vdd, opt_.mna_tran);
      } else if (opt_.model == GlitchModel::kReducedMna) {
        g = estimate_reduced(design_, para_, victim, agg, slew, ctx_.vdd);
      } else {
        g = estimate(opt_.model, scenario_for(design_, para_, victim, agg, slew, ctx_.vdd));
      }
      if (g.peak < opt_.min_peak) continue;

      Contribution c;
      c.aggressor = agg;
      c.peak = g.peak;
      c.width = g.width;
      if (opt_.mode == AnalysisMode::kNoFiltering) {
        c.window = IntervalSet::everything();
      } else {
        const Interval sw = switch_win_[agg.index()];
        if (sw.is_empty()) {
          // The aggressor never switches: temporally filtered out.
          ++nn.filtered_temporal;
          continue;
        }
        // The glitch can exist from the earliest aggressor transition to
        // the latest one plus injection ramp plus glitch width.
        c.window = IntervalSet(sw.dilated(0.0, g.peak_delay + g.width));
      }
      nn.contributions.push_back(std::move(c));
    }
  }

  /// Per-thread flat scratch for the vector estimation path.
  struct EstimateScratch {
    std::vector<double> peak, width, delay;
    std::vector<double> win_lo, win_hi, ext_hi;
  };
  static EstimateScratch& estimate_scratch() {
    thread_local EstimateScratch s;
    return s;
  }
  static CombineScratch& combine_scratch() {
    thread_local CombineScratch s;
    return s;
  }
  static std::vector<Interval>& interval_scratch() {
    thread_local std::vector<Interval> s;
    return s;
  }

  /// Flat-span estimation over one CSR row: the same per-pair model calls
  /// and filter sequence as estimate_for_victim, with the analytic models
  /// batched over the packed scenario slabs and the window construction
  /// (gather + right-edge extension) vectorized. Emptiness is judged on
  /// the RAW switching window, before extension, exactly like the scalar
  /// path — extension cannot revive a never-switching aggressor.
  void estimate_for_victim_vector(NetNoise& nn, std::size_t vi) const {
    const std::uint32_t row = kb_.agg_offsets[vi];
    const std::size_t m = kb_.agg_offsets[vi + 1] - row;
    nn.aggressor_count += m;
    if (m == 0) return;
    EstimateScratch& es = estimate_scratch();
    es.peak.resize(m);
    es.width.resize(m);
    es.delay.resize(m);
    const auto sub = [&](const KbVec<double>& v) {
      return std::span<const double>(v).subspan(row, m);
    };
    switch (opt_.model) {
      case GlitchModel::kChargeSharing:
        peaks_charge_sharing(sub(kb_.sc_r_hold), sub(kb_.sc_c_ground),
                             sub(kb_.sc_c_couple), sub(kb_.sc_slew), ctx_.vdd,
                             es.peak, es.width, es.delay);
        break;
      case GlitchModel::kDevgan:
        peaks_devgan(sub(kb_.sc_r_hold), sub(kb_.sc_c_ground), sub(kb_.sc_c_couple),
                     sub(kb_.sc_slew), ctx_.vdd, es.peak, es.width, es.delay);
        break;
      case GlitchModel::kTwoPi:
        peaks_two_pi(sub(kb_.sc_r_hold), sub(kb_.sc_c_ground), sub(kb_.sc_c_couple),
                     sub(kb_.sc_slew), ctx_.vdd, es.peak, es.width, es.delay);
        break;
      default:
        // The MNA models build per-pair circuits from the design; only the
        // packed slew is flat.
        for (std::size_t k = 0; k < m; ++k) {
          const GlitchEstimate g =
              opt_.model == GlitchModel::kMnaExact
                  ? estimate_mna(design_, para_, NetId{vi}, kb_.agg_net[row + k],
                                 kb_.pair_slew[row + k], ctx_.vdd, opt_.mna_tran)
                  : estimate_reduced(design_, para_, NetId{vi}, kb_.agg_net[row + k],
                                     kb_.pair_slew[row + k], ctx_.vdd);
          es.peak[k] = g.peak;
          es.width[k] = g.width;
          es.delay[k] = g.peak_delay;
        }
        break;
    }
    if (opt_.mode == AnalysisMode::kNoFiltering) {
      for (std::size_t k = 0; k < m; ++k) {
        if (es.peak[k] < opt_.min_peak) continue;
        Contribution c;
        c.aggressor = kb_.agg_net[row + k];
        c.peak = es.peak[k];
        c.width = es.width[k];
        c.window = IntervalSet::everything();
        nn.contributions.push_back(std::move(c));
      }
      return;
    }
    es.win_lo.resize(m);
    es.win_hi.resize(m);
    es.ext_hi.resize(m);
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t ai = kb_.agg_net[row + k].index();
      es.win_lo[k] = kb_.switch_lo[ai];
      es.win_hi[k] = kb_.switch_hi[ai];
    }
    kernels::extend_right(es.win_hi, es.delay, es.width, es.ext_hi);
    for (std::size_t k = 0; k < m; ++k) {
      if (es.peak[k] < opt_.min_peak) continue;
      if (es.win_lo[k] > es.win_hi[k]) {
        // The aggressor never switches: temporally filtered out.
        ++nn.filtered_temporal;
        continue;
      }
      Contribution c;
      c.aggressor = kb_.agg_net[row + k];
      c.peak = es.peak[k];
      c.width = es.width[k];
      c.window = IntervalSet(Interval{es.win_lo[k], es.ext_hi[k]});
      nn.contributions.push_back(std::move(c));
    }
  }

  // ---- stage 2: combination + gate propagation, levelized ------------------
  // Within a level no instance reads another's outputs and every net has a
  // single driver, so instances of a level run in parallel.

  /// Route a combination through the flat kernels or the scalar reference.
  /// The scalar branch materializes the view by copying, exactly as the
  /// original per-net code did; the flat branch gathers it in place.
  [[nodiscard]] Combined combine_dispatch(const std::vector<Contribution>& cs,
                                          AnalysisMode mode,
                                          const Interval& restrict_to,
                                          CombineView view) const {
    if (vector_) {
      return combine_flat(cs, mode, restrict_to, opt_.constraints, view,
                          combine_scratch());
    }
    if (view == CombineView::kInjectedOnly) {
      std::vector<Contribution> injected_only;
      for (const auto& c : cs) {
        if (!c.is_propagated()) injected_only.push_back(c);
      }
      return combine(injected_only, mode, restrict_to, opt_.constraints);
    }
    if (view == CombineView::kPropagatedOpen) {
      std::vector<Contribution> open = cs;
      for (auto& c : open) {
        if (c.is_propagated()) c.window = IntervalSet::everything();
      }
      return combine(open, mode, restrict_to, opt_.constraints);
    }
    return combine(cs, mode, restrict_to, opt_.constraints);
  }

  void finalize_net(Result& res, NetId id) const {
    NetNoise& nn = res.nets[id.index()];
    // Injected-only combination (diagnostic; excludes fanin-propagated).
    nn.injected_peak = combine_dispatch(nn.contributions, opt_.mode,
                                        Interval::everything(),
                                        CombineView::kInjectedOnly)
                           .peak;
    const Combined total = combine_dispatch(nn.contributions, opt_.mode,
                                            Interval::everything(), CombineView::kAll);
    nn.total_peak = total.peak;
    nn.width = total.width;
    nn.worst_alignment = total.alignment;
    for (const auto i : total.active) nn.contributions[i].in_worst = true;
    for (const auto& c : nn.contributions) {
      if (c.is_propagated()) nn.propagated_peak = std::max(nn.propagated_peak, c.peak);
    }
    if (opt_.mode == AnalysisMode::kNoFiltering) {
      nn.window = IntervalSet::everything();
    } else if (vector_) {
      // Batch union: one flat sort + sweep over every member instead of k
      // incremental add() rebalances — union_flat yields the same
      // canonical interval list add() converges to.
      auto& members = interval_scratch();
      members.clear();
      for (const auto& c : nn.contributions) {
        for (const Interval& iv : c.window.intervals()) members.push_back(iv);
      }
      nn.window = kernels::union_flat(members);
    } else {
      for (const auto& c : nn.contributions) nn.window.add(c.window);
    }
  }

  void propagate_instance(Result& res, InstId inst_id) const {
    const net::Instance& inst = design_.instance(inst_id);
    const lib::Cell& cell = design_.cell_of(inst_id);
    if (cell.is_sequential()) {
      // Sequential cells do not propagate glitches from D to Q (a latched
      // upset is a functional failure, handled at the endpoint check).
      for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
        if (cell.pins[pi].dir == lib::PinDir::kOutput) {
          const net::Pin& op = design_.pin(inst.pins[pi]);
          if (op.net.valid()) finalize_net(res, op.net);
        }
      }
      return;
    }
    // Worst input glitch over the cell's input pins.
    double in_peak = 0.0;
    double in_width = 0.0;
    IntervalSet in_window;
    NetId in_net;
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kInput) continue;
      const net::Pin& ip = design_.pin(inst.pins[pi]);
      if (!ip.net.valid()) continue;
      const NetNoise& fan = res.nets[ip.net.index()];
      if (fan.total_peak > in_peak) {
        in_peak = fan.total_peak;
        in_width = fan.width;
        in_window = fan.window;
        in_net = ip.net;
      }
    }
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kOutput) continue;
      const net::Pin& op = design_.pin(inst.pins[pi]);
      if (!op.net.valid()) continue;
      if (in_peak >= opt_.min_peak && !cell.arcs.empty()) {
        const double out_peak = cell.propagation.out_peak.lookup(in_peak, in_width);
        if (out_peak >= opt_.min_peak) {
          const double out_width =
              cell.propagation.out_width.lookup(in_peak, in_width);
          const double load = ctx_.load_cap[op.net.index()];
          // Representative gate delay for the window shift: the first
          // arc's rise delay at (input width as slew proxy, load).
          const double gate_delay =
              cell.arcs.front().delay_rise.lookup(in_width, load);
          Contribution c;
          c.from_net = in_net;
          c.peak = out_peak;
          c.width = out_width;
          // Only full noise-window mode tracks *when* propagated noise
          // can exist; the weaker modes assume it coincides with anything.
          c.window = (opt_.mode == AnalysisMode::kNoiseWindows)
                         ? in_window.shifted(gate_delay)
                               .dilated(0.0, std::max(out_width - in_width, 0.0))
                         : IntervalSet::everything();
          res.nets[op.net.index()].contributions.push_back(std::move(c));
        }
      }
      finalize_net(res, op.net);
    }
  }

  /// Flat-slab variant of propagate_instance: identical table lookups and
  /// selection logic, reading the level-major CSR slabs instead of walking
  /// design pins, with the window transform batched (uniform shift + right
  /// extension over the fanin members, then an already-sorted sweep merge).
  void propagate_instance_vector(Result& res, std::size_t pos) const {
    const std::uint32_t out_b = kb_.out_offsets[pos];
    const std::uint32_t out_e = kb_.out_offsets[pos + 1];
    if (kb_.slab_seq[pos]) {
      for (std::uint32_t k = out_b; k < out_e; ++k) finalize_net(res, kb_.out_net[k]);
      return;
    }
    const lib::Cell& cell = *kb_.slab_cell[pos];
    // Worst input glitch over the cell's input pins (slab pin order —
    // strict > keeps the first maximum, as the scalar loop does).
    double in_peak = 0.0;
    double in_width = 0.0;
    const IntervalSet* in_window = nullptr;
    NetId in_net;
    for (std::uint32_t k = kb_.in_offsets[pos]; k < kb_.in_offsets[pos + 1]; ++k) {
      const NetNoise& fan = res.nets[kb_.in_net[k].index()];
      if (fan.total_peak > in_peak) {
        in_peak = fan.total_peak;
        in_width = fan.width;
        in_window = &fan.window;
        in_net = kb_.in_net[k];
      }
    }
    for (std::uint32_t k = out_b; k < out_e; ++k) {
      const NetId out = kb_.out_net[k];
      if (in_peak >= opt_.min_peak && !cell.arcs.empty()) {
        const double out_peak = cell.propagation.out_peak.lookup(in_peak, in_width);
        if (out_peak >= opt_.min_peak) {
          const double out_width =
              cell.propagation.out_width.lookup(in_peak, in_width);
          const double load = kb_.load_cap[out.index()];
          const double gate_delay =
              cell.arcs.front().delay_rise.lookup(in_width, load);
          Contribution c;
          c.from_net = in_net;
          c.peak = out_peak;
          c.width = out_width;
          if (opt_.mode == AnalysisMode::kNoiseWindows) {
            // Flat shifted().dilated(0, after): a uniform shift keeps the
            // members sorted, so union_flat's sort is an identity
            // permutation and only the dilation-induced merges run.
            const double after = std::max(out_width - in_width, 0.0);
            auto& members = interval_scratch();
            members.clear();
            if (in_window != nullptr) {
              for (const Interval& iv : in_window->intervals()) {
                const double sl = iv.lo + gate_delay;
                const double sh = iv.hi + gate_delay;
                members.push_back({sl, sh + after});
              }
            }
            c.window = kernels::union_flat(members);
          } else {
            c.window = IntervalSet::everything();
          }
          res.nets[out.index()].contributions.push_back(std::move(c));
        }
      }
      finalize_net(res, out);
    }
  }

  void propagate(Result& res) {
    obs::Span span("propagate", obs::SpanKind::kPhase);
    PhaseTimer timer(times_.propagate);
    std::size_t total = ctx_.port_nets.size();
    for (const auto& level : ctx_.levels) total += level.size();
    begin_phase("propagate", total);
    // Port-driven nets first: every gate may read them.
    exec_.parallel_for("propagate-ports", ctx_.port_nets.size(), kPropagateChunk,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           finalize_net(res, ctx_.port_nets[i]);
                         }
                       });
    std::size_t done = ctx_.port_nets.size();
    checkpoint("propagate", done, total);
    // Level 0 (sequential outputs), then each combinational level: a level
    // only reads nets finalized by earlier levels. Each level boundary is
    // a progress checkpoint — the granularity at which `cancel` lands.
    for (std::size_t li = 0; li < ctx_.levels.size(); ++li) {
      const auto& level = ctx_.levels[li];
      std::optional<obs::Span> level_span;
      if (obs::spans_active()) {
        level_span.emplace("level " + std::to_string(li), obs::SpanKind::kLevel);
      }
      // Both paths use the same (n, chunk) decomposition, so the
      // executor_tasks counter for this region is identical.
      const std::size_t level_base = vector_ ? kb_.level_offsets[li] : 0;
      const auto level_t0 = std::chrono::steady_clock::now();
      exec_.parallel_for("propagate-level", level.size(), kPropagateChunk,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             if (vector_) {
                               propagate_instance_vector(res, level_base + i);
                             } else {
                               propagate_instance(res, level[i]);
                             }
                           }
                         });
      // Per-level wall attribution (accumulated over refinement passes;
      // timing data, so it lives next to the phase gauges, not counters).
      level_walls_[li] += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - level_t0)
                              .count();
      done += level.size();
      checkpoint("propagate", done, total, li);
    }
  }

  // ---- stage 3: endpoint checks, parallel over endpoints -------------------
  void check_endpoints(Result& res) {
    obs::Span span("check-endpoints", obs::SpanKind::kPhase);
    PhaseTimer timer(times_.endpoints);
    // Sequential data pins: immunity + (mode 3) sensitivity-window overlap.
    // Batched like the estimate stage (batch % chunk == 0) so progress
    // checkpoints never perturb the chunk decomposition; fold order is
    // batch-major index order, i.e. plain endpoint order.
    const std::size_t n_ep = ctx_.endpoints.size();
    const std::size_t ep_batch =
        progress_ != nullptr ? kEndpointBatch : std::max<std::size_t>(n_ep, 1);
    begin_phase("check-endpoints", n_ep);
    for (std::size_t base = 0; base < n_ep; base += ep_batch) {
      const std::size_t limit = std::min(n_ep, base + ep_batch);
      exec_.map_reduce_ordered<EndpointOutcome>(
          "check-endpoints", limit - base, kEndpointChunk,
          [&](std::size_t ei) { return check_sequential(res, base + ei); },
          [&](std::size_t, EndpointOutcome outcome) {
            ++res.endpoints_checked;
            res.endpoint_slacks.push_back(outcome.slack);
            if (outcome.violation) {
              res.violations.push_back(*outcome.violation);
              res.provenance.push_back(std::move(*outcome.provenance));
            }
          });
      checkpoint("check-endpoints", limit, n_ep);
    }

    // Primary outputs: always-sensitive receivers with a flat immunity.
    for (const PinId p : design_.output_ports()) {
      const net::Pin& pp = design_.pin(p);
      if (!pp.net.valid()) continue;
      const NetNoise& nn = res.nets[pp.net.index()];
      ++res.endpoints_checked;
      const double threshold = opt_.po_immunity_frac * ctx_.vdd;
      res.endpoint_slacks.push_back(threshold - nn.total_peak);
      if (nn.total_peak >= threshold) {
        Violation v;
        v.endpoint = p;
        v.net = pp.net;
        v.peak = nn.total_peak;
        v.width = nn.width;
        v.threshold = threshold;
        v.sensitivity = Interval::everything();
        v.temporal = true;
        res.violations.push_back(v);
        res.provenance.push_back(build_provenance(res, p, pp.net,
                                                  Interval::everything(),
                                                  /*cell=*/nullptr, threshold));
      }
    }
    // Noisy nets: glitch exceeds the weakest receiver immunity.
    const std::size_t n = design_.net_count();
    std::vector<char> noisy(n, 0);
    exec_.parallel_for("noisy-scan", n, kEndpointChunk,
                       [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const NetNoise& nn = res.nets[i];
        if (nn.total_peak < opt_.min_peak) continue;
        double min_threshold = 1e30;
        for (const PinId load : design_.net(NetId{i}).loads) {
          const net::Pin& lp = design_.pin(load);
          if (lp.kind != net::PinKind::kInstance) continue;
          min_threshold = std::min(
              min_threshold, design_.cell_of(lp.inst).immunity.threshold(nn.width));
        }
        if (min_threshold < 1e30 && nn.total_peak >= min_threshold) noisy[i] = 1;
      }
    });
    for (std::size_t i = 0; i < n; ++i) res.noisy_nets += noisy[i];
  }

  [[nodiscard]] EndpointOutcome check_sequential(const Result& res,
                                                 std::size_t ep_index) const {
    const EndpointRef& ep = ctx_.endpoints[ep_index];
    // The flat endpoint slabs hold the same values the context records;
    // the vector path reads them to stay on the packed arrays.
    const Interval sens =
        vector_ ? Interval{kb_.sens_lo[ep_index], kb_.sens_hi[ep_index]}
                : ep.sensitivity;
    const NetNoise& nn = res.nets[ep.net.index()];
    double peak = nn.total_peak;
    double width = nn.width;
    bool temporal = true;
    if (opt_.mode == AnalysisMode::kNoiseWindows) {
      // Worst combination *inside* the sampling window.
      const Combined in_sens =
          combine_dispatch(nn.contributions, opt_.mode, sens, CombineView::kAll);
      peak = in_sens.peak;
      width = in_sens.width;
      temporal = peak > 0.0;
    }
    const lib::Cell& cell = design_.cell_of(ep.inst);
    const double threshold = cell.immunity.threshold(width);
    EndpointOutcome outcome;
    outcome.slack = threshold - peak;
    if (peak >= threshold && temporal) {
      Violation v;
      v.endpoint = ep.pin;
      v.net = ep.net;
      v.peak = peak;
      v.width = width;
      v.threshold = threshold;
      v.sensitivity = sens;
      v.temporal = temporal;
      outcome.violation = v;
      outcome.provenance = build_provenance(res, ep.pin, ep.net, sens, &cell, 0.0);
    }
    return outcome;
  }

  /// Explains one violation from the net's final contribution set: the
  /// combined peak under each progressively stronger filtering regime, the
  /// per-aggressor verdicts/overlaps against the worst alignment, and the
  /// propagation path back to the injection net. Pure function of Result
  /// state that propagate() already finalized, so it is safe from the
  /// parallel endpoint map and deterministic for every thread count.
  [[nodiscard]] Provenance build_provenance(const Result& res, PinId endpoint,
                                            NetId net, const Interval& sensitivity,
                                            const lib::Cell* cell,
                                            double po_threshold) const {
    const NetNoise& nn = res.nets[net.index()];
    Provenance p;
    p.endpoint = endpoint;
    p.net = net;

    // Stage peaks: same contributions, stronger regimes. Windows only ever
    // shrink left to right, so the peaks are monotone non-increasing. Under
    // weaker analysis modes the distinctions collapse (e.g. kNoFiltering
    // built every window as `everything`), which is exactly the diagnostic:
    // the stages show what the stronger regime would have concluded from
    // the evidence this run collected.
    const Combined unfiltered =
        combine_dispatch(nn.contributions, AnalysisMode::kNoFiltering,
                         Interval::everything(), CombineView::kAll);
    const Combined switching =
        combine_dispatch(nn.contributions, AnalysisMode::kNoiseWindows,
                         Interval::everything(), CombineView::kPropagatedOpen);
    const Combined noise_win =
        combine_dispatch(nn.contributions, AnalysisMode::kNoiseWindows,
                         Interval::everything(), CombineView::kAll);
    const Combined in_sens = combine_dispatch(
        nn.contributions, AnalysisMode::kNoiseWindows, sensitivity, CombineView::kAll);
    p.peak_unfiltered = unfiltered.peak;
    p.peak_switching = switching.peak;
    p.peak_noise_window = noise_win.peak;
    p.peak_in_sensitivity = in_sens.peak;

    const auto threshold_for = [&](double width) {
      return cell != nullptr ? cell->immunity.threshold(width) : po_threshold;
    };
    if (switching.peak < threshold_for(switching.width)) {
      p.culled_by = FilterStage::kSwitchingWindow;
    } else if (noise_win.peak < threshold_for(noise_win.width)) {
      p.culled_by = FilterStage::kNoiseWindow;
    } else if (in_sens.peak < threshold_for(in_sens.width)) {
      p.culled_by = FilterStage::kSensitivityWindow;
    }

    // The combination that actually produced this violation: the
    // sensitivity-restricted one for sequential endpoints under full noise
    // windows, the net's mode-level combination everywhere else.
    const bool sens_check =
        cell != nullptr && opt_.mode == AnalysisMode::kNoiseWindows;
    const Combined total = combine_dispatch(nn.contributions, opt_.mode,
                                            Interval::everything(), CombineView::kAll);
    const Combined& worst = sens_check ? in_sens : total;
    p.alignment = worst.alignment;

    std::vector<char> active(nn.contributions.size(), 0);
    for (const std::size_t i : worst.active) active[i] = 1;
    p.shares.reserve(nn.contributions.size());
    for (std::size_t i = 0; i < nn.contributions.size(); ++i) {
      const Contribution& c = nn.contributions[i];
      AggressorShare s;
      s.aggressor = c.aggressor;
      s.from_net = c.from_net;
      s.peak = c.peak;
      if (c.aggressor.valid()) {
        for (const AggressorEdge& edge : ctx_.aggressors[net.index()]) {
          if (edge.net == c.aggressor) s.coupling_cap += edge.coupling;
        }
      }
      const IntervalSet& win = opt_.mode == AnalysisMode::kNoFiltering
                                   ? IntervalSet::everything()
                                   : c.window;
      // Widest piece of the window inside the worst alignment (for an
      // in-worst share this is the alignment itself). The intersection must
      // be a named local: intervals() is a span into it, and the range-for
      // would not keep a temporary set alive past the first iteration.
      const IntervalSet cut = win.intersect(p.alignment);
      for (const Interval& iv : cut.intervals()) {
        if (s.overlap.is_empty() || iv.length() > s.overlap.length()) s.overlap = iv;
      }
      if (active[i]) {
        s.verdict = WindowVerdict::kInWorst;
      } else if (!s.overlap.is_empty() && c.aggressor.valid() &&
                 opt_.constraints.group_of(c.aggressor) >= 0) {
        s.verdict = WindowVerdict::kConstraintExcluded;
      } else {
        s.verdict = WindowVerdict::kWindowDisjoint;
      }
      p.shares.push_back(std::move(s));
    }
    std::sort(p.shares.begin(), p.shares.end(),
              [](const AggressorShare& a, const AggressorShare& b) {
                const bool aw = a.verdict == WindowVerdict::kInWorst;
                const bool bw = b.verdict == WindowVerdict::kInWorst;
                if (aw != bw) return aw;
                if (a.peak != b.peak) return a.peak > b.peak;
                if (a.aggressor != b.aggressor) return a.aggressor < b.aggressor;
                return a.from_net < b.from_net;
              });

    // Propagation path: follow the strongest in-worst propagated member of
    // each net's combination — the trace_origin walk, reimplemented here
    // because noise/trace.hpp includes this header.
    std::vector<char> visited(res.nets.size(), 0);
    NetId cur = net;
    while (cur.valid() && !visited[cur.index()]) {
      visited[cur.index()] = 1;
      const NetNoise& node = res.nets[cur.index()];
      if (node.total_peak <= 0.0) break;
      p.path.push_back({cur, node.total_peak, node.width});
      NetId next;
      double best = 0.0;
      for (const auto& c : node.contributions) {
        if (!c.in_worst || !c.is_propagated()) continue;
        if (c.peak > best) {
          best = c.peak;
          next = c.from_net;
        }
      }
      if (!next.valid()) break;
      cur = next;
    }
    return p;
  }

  // ---- refinement: noise-on-delay window inflation --------------------------
  // Each pass re-derives the inflated window from the *original* STA window
  // plus the current glitch width (a glitch delays an edge by at most its
  // width — bounded, not cumulative), so the iteration has a fixpoint.
  bool inflate_windows(const Result& res) {
    bool changed = false;
    for (std::size_t i = 0; i < design_.net_count(); ++i) {
      const NetNoise& nn = res.nets[i];
      if (ctx_.switch_window[i].is_empty()) continue;
      const Interval inflated = (nn.total_peak < opt_.min_peak)
                                    ? ctx_.switch_window[i]
                                    : ctx_.switch_window[i].dilated(0.0, nn.width);
      if (!(inflated == switch_win_[i])) {
        switch_win_[i] = inflated;
        changed = true;
      }
    }
    return changed;
  }

  const net::Design& design_;
  const para::Parasitics& para_;
  const sta::Result& sta_;
  const Options& opt_;
  ProgressSink* progress_;  ///< not owned; may be nullptr
  /// Resolved kernel-path choice (Options::simd): true = flat SoA kernels.
  const bool vector_;
  util::Executor exec_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point phase_start_;
  int iteration_ = 1;  ///< current refinement pass (for Progress records)
  obs::Registry reg_;
  /// Hoisted handles for the executor's task observer (runs on workers;
  /// both sinks are thread-safe).
  obs::Counter& executor_tasks_;
  obs::Histogram& task_seconds_;
  /// Phase wall-time accumulators (summed over passes; published as timing
  /// gauges by finish()).
  struct {
    double context = 0.0;
    double estimate = 0.0;
    double propagate = 0.0;
    double endpoints = 0.0;
  } times_;
  AnalysisContext ctx_;
  /// Flat mirrors + packed per-pair operands for the vector path (empty
  /// when vector_ is false).
  KernelBuffers kb_;
  std::vector<Interval> switch_win_;  ///< per-pass inflated windows
  /// Hook charge for the context members the arena does not back.
  obs::ScopedMemCharge ctx_charge_;
  /// Per-level propagate wall time [s], summed over refinement passes —
  /// the input of the top-levels work attribution.
  std::vector<double> level_walls_;
};

}  // namespace

std::string options_digest(const Options& o) {
  // Canonical rendering: exact doubles (hexfloat), every field in a fixed
  // order, constraints enumerated deterministically. `threads` and `simd`
  // are deliberately excluded — results (and therefore digests) are
  // identical for every thread count and either kernel path, so caches
  // keyed on the digest stay valid across both knobs.
  std::ostringstream os;
  os << std::hexfloat;
  os << "mode=" << to_string(o.mode) << ";model=" << to_string(o.model)
     << ";min_coupling_cap=" << o.min_coupling_cap << ";min_peak=" << o.min_peak
     << ";clock_period=" << o.clock_period
     << ";clock_uncertainty=" << o.clock_uncertainty
     << ";latch_duty=" << o.latch_duty << ";default_slew=" << o.default_slew
     << ";po_immunity_frac=" << o.po_immunity_frac
     << ";refine_iterations=" << o.refine_iterations
     << ";mna_t_stop=" << o.mna_tran.t_stop << ";mna_dt=" << o.mna_tran.dt
     << ";mna_method=" << static_cast<int>(o.mna_tran.method) << ";constraints=";
  for (const auto& [net, group] : o.constraints.entries()) {
    os << net << ":" << group << ",";
  }
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const unsigned char c : os.str()) {
    h ^= c;
    h *= 1099511628211ull;
  }
  std::ostringstream hex;
  hex << std::hex << std::setfill('0') << std::setw(16) << h;
  return hex.str();
}

std::size_t memory_bytes(const Result& r) noexcept {
  std::size_t bytes = sizeof(Result);
  bytes += r.nets.capacity() * sizeof(NetNoise);
  for (const NetNoise& nn : r.nets) {
    bytes += nn.contributions.capacity() * sizeof(Contribution);
    bytes += nn.window.intervals().size() * sizeof(Interval);
    for (const Contribution& c : nn.contributions) {
      bytes += c.window.intervals().size() * sizeof(Interval);
    }
  }
  bytes += r.violations.capacity() * sizeof(Violation);
  bytes += r.provenance.capacity() * sizeof(Provenance);
  for (const Provenance& p : r.provenance) {
    bytes += p.shares.capacity() * sizeof(AggressorShare);
    bytes += p.path.capacity() * sizeof(ProvenanceStep);
  }
  bytes += r.endpoint_slacks.capacity() * sizeof(double);
  bytes += r.iteration_violations.capacity() * sizeof(std::size_t);
  bytes += r.metrics.samples.capacity() * sizeof(obs::MetricSample);
  return bytes;
}

Result analyze(const net::Design& design, const para::Parasitics& para,
               const sta::Result& sta_result, const Options& opt,
               ProgressSink* progress) {
  Pipeline pipeline(design, para, sta_result, opt, progress);
  return pipeline.run_full();
}

Result analyze_incremental(const net::Design& design, const para::Parasitics& para,
                           const sta::Result& sta_result, const Options& opt,
                           const Result& previous, std::span<const NetId> changed_nets,
                           ProgressSink* progress) {
  Pipeline pipeline(design, para, sta_result, opt, progress);
  return pipeline.run_incremental(previous, changed_nets);
}

}  // namespace nw::noise
