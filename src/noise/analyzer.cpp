#include "noise/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/scanline.hpp"

namespace nw::noise {

const char* to_string(AnalysisMode m) noexcept {
  switch (m) {
    case AnalysisMode::kNoFiltering: return "no-filtering";
    case AnalysisMode::kSwitchingWindows: return "switching-windows";
    case AnalysisMode::kNoiseWindows: return "noise-windows";
  }
  return "?";
}

namespace {

/// Worst simultaneous sum of contributions, optionally restricted to a
/// time window (mode 3 latch checks restrict to the sensitivity window).
struct Combined {
  double peak = 0.0;
  double width = 0.0;
  Interval alignment;
  std::vector<std::size_t> active;
};

Combined combine(const std::vector<Contribution>& contributions, AnalysisMode mode,
                 const Interval& restrict_to, const Constraints& constraints) {
  Combined out;
  if (mode == AnalysisMode::kNoFiltering && constraints.empty()) {
    // Everything coincides, always.
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      out.peak += contributions[i].peak;
      out.width = std::max(out.width, contributions[i].width);
      out.active.push_back(i);
    }
    out.alignment = Interval::everything();
    return out;
  }
  std::vector<WeightedWindow> items;
  items.reserve(contributions.size());
  for (const auto& c : contributions) {
    WeightedWindow ww;
    ww.weight = c.peak;
    // No-filtering mode ignores windows but still honours logic
    // constraints (functional filtering is orthogonal to temporal).
    const IntervalSet& win = (mode == AnalysisMode::kNoFiltering)
                                 ? IntervalSet::everything()
                                 : c.window;
    ww.window = restrict_to == Interval::everything() ? win
                                                      : win.intersect(restrict_to);
    items.push_back(std::move(ww));
  }
  ScanResult scan;
  if (constraints.empty()) {
    scan = scan_max_overlap(items);
  } else {
    std::vector<int> groups(contributions.size(), -1);
    for (std::size_t i = 0; i < contributions.size(); ++i) {
      if (contributions[i].aggressor.valid()) {
        groups[i] = constraints.group_of(contributions[i].aggressor);
      }
    }
    scan = scan_max_overlap_grouped(items, groups);
  }
  out.peak = scan.best_sum;
  out.alignment = scan.best_interval;
  out.active = scan.active;
  for (const auto i : scan.active) {
    out.width = std::max(out.width, contributions[i].width);
  }
  return out;
}

/// Total capacitive load a net presents to its driver (for gate-delay
/// lookups during noise propagation).
double net_load_cap(const net::Design& d, const para::Parasitics& para, NetId id) {
  double cap = para.total_cap(id, /*miller=*/1.0);
  for (const PinId load : d.net(id).loads) cap += d.pin_cap(load);
  return cap;
}

/// One analysis pass over a fixed design/parasitics/timing. The phases —
/// injected estimation, combination + gate propagation, endpoint checks —
/// are separate methods so the incremental mode can re-run only what a
/// change invalidates.
class Engine {
 public:
  Engine(const net::Design& design, const para::Parasitics& para,
         const sta::Result& sta_result, const Options& opt)
      : design_(design),
        para_(para),
        sta_(sta_result),
        opt_(opt),
        vdd_(design.library().vdd()),
        topo_(design.topological_order()) {
    if (sta_result.nets.size() != design.net_count()) {
      throw std::invalid_argument("noise::analyze: STA result does not match design");
    }
    orig_win_.resize(design.net_count());
    for (std::size_t i = 0; i < design.net_count(); ++i) {
      orig_win_[i] = sta_result.nets[i].window;
    }
    switch_win_ = orig_win_;
  }

  [[nodiscard]] Result run_full() {
    Result res;
    const int total_iters = 1 + std::max(opt_.refine_iterations, 0);
    for (int iter = 0; iter < total_iters; ++iter) {
      reset(res);
      for (std::size_t vi = 0; vi < design_.net_count(); ++vi) {
        injected_for_victim(res, NetId{vi});
      }
      combine_propagate(res);
      check_endpoints(res);
      res.iteration_violations.push_back(res.violations.size());
      res.iterations = iter + 1;
      if (iter + 1 < total_iters && !inflate_windows(res)) break;
    }
    return res;
  }

  [[nodiscard]] Result run_incremental(const Result& previous,
                                       std::span<const NetId> changed_nets) {
    if (previous.nets.size() != design_.net_count()) {
      throw std::invalid_argument("analyze_incremental: previous result mismatch");
    }
    // Victims to re-estimate: the changed nets and everything coupled to
    // them (their injected noise depends on the changed net's parasitics,
    // timing, or drive).
    std::unordered_set<NetId::value_type> dirty;
    for (const NetId n : changed_nets) {
      if (n.index() >= design_.net_count()) {
        throw std::invalid_argument("analyze_incremental: bad changed net id");
      }
      dirty.insert(n.value());
      for (const auto ci : para_.couplings_of(n)) {
        dirty.insert(para_.coupling(ci).other_net(n).value());
      }
    }

    Result res;
    reset(res);
    for (std::size_t vi = 0; vi < design_.net_count(); ++vi) {
      if (dirty.contains(NetId{vi}.value())) {
        injected_for_victim(res, NetId{vi});
      } else {
        // Reuse the previous injected contributions (propagated ones are
        // rebuilt below); aggressor bookkeeping is restored with them.
        for (const auto& c : previous.nets[vi].contributions) {
          if (c.is_propagated()) continue;
          Contribution copy = c;
          copy.in_worst = false;
          res.nets[vi].contributions.push_back(std::move(copy));
        }
        res.nets[vi].aggressor_count = previous.nets[vi].aggressor_count;
        res.aggressors_considered += previous.nets[vi].aggressor_count;
      }
    }
    combine_propagate(res);
    check_endpoints(res);
    res.iteration_violations.push_back(res.violations.size());
    res.iterations = 1;
    return res;
  }

 private:
  void reset(Result& res) const {
    res.nets.assign(design_.net_count(), NetNoise{});
    res.violations.clear();
    res.endpoint_slacks.clear();
    res.endpoints_checked = 0;
    res.noisy_nets = 0;
    res.aggressors_considered = 0;
    res.aggressors_filtered_temporal = 0;
  }

  // ---- phase 1+2: injected glitch estimation per victim --------------------
  void injected_for_victim(Result& res, NetId victim) {
    NetNoise& nn = res.nets[victim.index()];
    // Group coupling caps by aggressor net.
    std::unordered_map<NetId::value_type, double> agg_cap;
    for (const auto ci : para_.couplings_of(victim)) {
      const auto& cc = para_.coupling(ci);
      agg_cap[cc.other_net(victim).value()] += cc.c;
    }
    for (const auto& [agg_value, c_total] : agg_cap) {
      if (c_total < opt_.min_coupling_cap) continue;
      const NetId agg{agg_value};
      ++nn.aggressor_count;
      ++res.aggressors_considered;

      const sta::NetTiming& at = sta_.nets[agg.index()];
      double slew = at.slew_min > 0.0 ? at.slew_min : opt_.default_slew;
      slew = std::max(slew, 1e-12);

      GlitchEstimate g;
      if (opt_.model == GlitchModel::kMnaExact) {
        g = estimate_mna(design_, para_, victim, agg, slew, vdd_, opt_.mna_tran);
      } else if (opt_.model == GlitchModel::kReducedMna) {
        g = estimate_reduced(design_, para_, victim, agg, slew, vdd_);
      } else {
        g = estimate(opt_.model, scenario_for(design_, para_, victim, agg, slew, vdd_));
      }
      if (g.peak < opt_.min_peak) continue;

      Contribution c;
      c.aggressor = agg;
      c.peak = g.peak;
      c.width = g.width;
      if (opt_.mode == AnalysisMode::kNoFiltering) {
        c.window = IntervalSet::everything();
      } else {
        const Interval sw = switch_win_[agg.index()];
        if (sw.is_empty()) {
          // The aggressor never switches: temporally filtered out.
          ++res.aggressors_filtered_temporal;
          continue;
        }
        // The glitch can exist from the earliest aggressor transition to
        // the latest one plus injection ramp plus glitch width.
        c.window = IntervalSet(sw.dilated(0.0, g.peak_delay + g.width));
      }
      nn.contributions.push_back(std::move(c));
    }
  }

  // ---- phase 3+4: combination and gate propagation in topological order ----
  void finalize_net(Result& res, NetId id) const {
    NetNoise& nn = res.nets[id.index()];
    // Injected-only combination (diagnostic; excludes fanin-propagated).
    std::vector<Contribution> injected_only;
    for (const auto& c : nn.contributions) {
      if (!c.is_propagated()) injected_only.push_back(c);
    }
    nn.injected_peak =
        combine(injected_only, opt_.mode, Interval::everything(), opt_.constraints).peak;
    const Combined total =
        combine(nn.contributions, opt_.mode, Interval::everything(), opt_.constraints);
    nn.total_peak = total.peak;
    nn.width = total.width;
    nn.worst_alignment = total.alignment;
    for (const auto i : total.active) nn.contributions[i].in_worst = true;
    for (const auto& c : nn.contributions) {
      if (c.is_propagated()) nn.propagated_peak = std::max(nn.propagated_peak, c.peak);
      if (opt_.mode != AnalysisMode::kNoFiltering) nn.window.add(c.window);
    }
    if (opt_.mode == AnalysisMode::kNoFiltering) nn.window = IntervalSet::everything();
  }

  void combine_propagate(Result& res) const {
    for (std::size_t i = 0; i < design_.net_count(); ++i) {
      const net::Net& n = design_.net(NetId{i});
      if (n.driver.valid() &&
          design_.pin(n.driver).kind == net::PinKind::kInputPort) {
        finalize_net(res, NetId{i});
      }
    }
    for (const InstId inst_id : topo_) {
      const net::Instance& inst = design_.instance(inst_id);
      const lib::Cell& cell = design_.cell_of(inst_id);
      if (cell.is_sequential()) {
        // Sequential cells do not propagate glitches from D to Q (a latched
        // upset is a functional failure, handled at the endpoint check).
        for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
          if (cell.pins[pi].dir == lib::PinDir::kOutput) {
            const net::Pin& op = design_.pin(inst.pins[pi]);
            if (op.net.valid()) finalize_net(res, op.net);
          }
        }
        continue;
      }
      // Worst input glitch over the cell's input pins.
      double in_peak = 0.0;
      double in_width = 0.0;
      IntervalSet in_window;
      NetId in_net;
      for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
        if (cell.pins[pi].dir != lib::PinDir::kInput) continue;
        const net::Pin& ip = design_.pin(inst.pins[pi]);
        if (!ip.net.valid()) continue;
        const NetNoise& fan = res.nets[ip.net.index()];
        if (fan.total_peak > in_peak) {
          in_peak = fan.total_peak;
          in_width = fan.width;
          in_window = fan.window;
          in_net = ip.net;
        }
      }
      for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
        if (cell.pins[pi].dir != lib::PinDir::kOutput) continue;
        const net::Pin& op = design_.pin(inst.pins[pi]);
        if (!op.net.valid()) continue;
        if (in_peak >= opt_.min_peak && !cell.arcs.empty()) {
          const double out_peak = cell.propagation.out_peak.lookup(in_peak, in_width);
          if (out_peak >= opt_.min_peak) {
            const double out_width =
                cell.propagation.out_width.lookup(in_peak, in_width);
            const double load = net_load_cap(design_, para_, op.net);
            // Representative gate delay for the window shift: the first
            // arc's rise delay at (input width as slew proxy, load).
            const double gate_delay =
                cell.arcs.front().delay_rise.lookup(in_width, load);
            Contribution c;
            c.from_net = in_net;
            c.peak = out_peak;
            c.width = out_width;
            // Only full noise-window mode tracks *when* propagated noise
            // can exist; the weaker modes assume it coincides with anything.
            c.window = (opt_.mode == AnalysisMode::kNoiseWindows)
                           ? in_window.shifted(gate_delay)
                                 .dilated(0.0, std::max(out_width - in_width, 0.0))
                           : IntervalSet::everything();
            res.nets[op.net.index()].contributions.push_back(std::move(c));
          }
        }
        finalize_net(res, op.net);
      }
    }
  }

  // ---- phase 5: endpoint checks ---------------------------------------------
  void check_endpoints(Result& res) const {
    // Sequential data pins: immunity + (mode 3) sensitivity-window overlap.
    for (std::size_t si = 0; si < design_.sequentials().size(); ++si) {
      const InstId s = design_.sequentials()[si];
      const net::Instance& inst = design_.instance(s);
      const lib::Cell& cell = design_.cell_of(s);
      const Interval clk = si < sta_.clock_arrivals.size() && !sta_.clock_arrivals[si].is_empty()
                               ? sta_.clock_arrivals[si]
                               : Interval{0.0, 0.0};
      // Edge-triggered flops sample only around the next capture edge. A
      // level-sensitive latch is vulnerable throughout its transparent
      // phase — anything arriving while the enable is open flows through
      // and is held at the closing edge. Clock uncertainty widens both.
      Interval sens;
      if (cell.kind == lib::CellKind::kLatch) {
        sens = Interval{clk.lo - cell.setup,
                        clk.hi + opt_.latch_duty * opt_.clock_period + cell.hold};
      } else {
        sens = Interval{clk.lo + opt_.clock_period - cell.setup,
                        clk.hi + opt_.clock_period + cell.hold};
      }
      sens = sens.dilated(opt_.clock_uncertainty, opt_.clock_uncertainty);
      for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
        if (cell.pins[pi].role != lib::PinRole::kData) continue;
        const net::Pin& dp = design_.pin(inst.pins[pi]);
        if (!dp.net.valid()) continue;
        const NetNoise& nn = res.nets[dp.net.index()];
        ++res.endpoints_checked;

        double peak = nn.total_peak;
        double width = nn.width;
        bool temporal = true;
        if (opt_.mode == AnalysisMode::kNoiseWindows) {
          // Worst combination *inside* the sampling window.
          const Combined in_sens =
              combine(nn.contributions, opt_.mode, sens, opt_.constraints);
          peak = in_sens.peak;
          width = in_sens.width;
          temporal = peak > 0.0;
        }
        const double threshold = cell.immunity.threshold(width);
        res.endpoint_slacks.push_back(threshold - peak);
        if (peak >= threshold && temporal) {
          Violation v;
          v.endpoint = inst.pins[pi];
          v.net = dp.net;
          v.peak = peak;
          v.width = width;
          v.threshold = threshold;
          v.sensitivity = sens;
          v.temporal = temporal;
          res.violations.push_back(v);
        }
      }
    }

    // Primary outputs: always-sensitive receivers with a flat immunity.
    for (const PinId p : design_.output_ports()) {
      const net::Pin& pp = design_.pin(p);
      if (!pp.net.valid()) continue;
      const NetNoise& nn = res.nets[pp.net.index()];
      ++res.endpoints_checked;
      const double threshold = opt_.po_immunity_frac * vdd_;
      res.endpoint_slacks.push_back(threshold - nn.total_peak);
      if (nn.total_peak >= threshold) {
        Violation v;
        v.endpoint = p;
        v.net = pp.net;
        v.peak = nn.total_peak;
        v.width = nn.width;
        v.threshold = threshold;
        v.sensitivity = Interval::everything();
        v.temporal = true;
        res.violations.push_back(v);
      }
    }

    // Noisy nets: glitch exceeds the weakest receiver immunity.
    for (std::size_t i = 0; i < design_.net_count(); ++i) {
      const NetNoise& nn = res.nets[i];
      if (nn.total_peak < opt_.min_peak) continue;
      double min_threshold = 1e30;
      for (const PinId load : design_.net(NetId{i}).loads) {
        const net::Pin& lp = design_.pin(load);
        if (lp.kind != net::PinKind::kInstance) continue;
        min_threshold = std::min(min_threshold,
                                 design_.cell_of(lp.inst).immunity.threshold(nn.width));
      }
      if (min_threshold < 1e30 && nn.total_peak >= min_threshold) ++res.noisy_nets;
    }
  }

  // ---- refinement: noise-on-delay window inflation --------------------------
  // Each pass re-derives the inflated window from the *original* STA window
  // plus the current glitch width (a glitch delays an edge by at most its
  // width — bounded, not cumulative), so the iteration has a fixpoint.
  bool inflate_windows(const Result& res) {
    bool changed = false;
    for (std::size_t i = 0; i < design_.net_count(); ++i) {
      const NetNoise& nn = res.nets[i];
      if (orig_win_[i].is_empty()) continue;
      const Interval inflated = (nn.total_peak < opt_.min_peak)
                                    ? orig_win_[i]
                                    : orig_win_[i].dilated(0.0, nn.width);
      if (!(inflated == switch_win_[i])) {
        switch_win_[i] = inflated;
        changed = true;
      }
    }
    return changed;
  }

  const net::Design& design_;
  const para::Parasitics& para_;
  const sta::Result& sta_;
  const Options& opt_;
  double vdd_;
  std::vector<InstId> topo_;
  std::vector<Interval> orig_win_;
  std::vector<Interval> switch_win_;
};

}  // namespace

Result analyze(const net::Design& design, const para::Parasitics& para,
               const sta::Result& sta_result, const Options& opt) {
  Engine engine(design, para, sta_result, opt);
  return engine.run_full();
}

Result analyze_incremental(const net::Design& design, const para::Parasitics& para,
                           const sta::Result& sta_result, const Options& opt,
                           const Result& previous,
                           std::span<const NetId> changed_nets) {
  Engine engine(design, para, sta_result, opt);
  return engine.run_incremental(previous, changed_nets);
}

}  // namespace nw::noise
