// Logic (functional) filtering constraints.
//
// Temporal filtering (windows) is one half of pessimism reduction; the
// other is functional: some aggressor sets can never switch in the same
// cycle regardless of timing — complementary bus phases, one-hot select
// lines, clock-gated groups. noisewin models the common industrial form:
// *mutual-exclusion groups*, sets of nets of which at most one switches
// per cycle. During combination, at most the heaviest active member of
// each group contributes (util::scan_max_overlap_grouped).
#pragma once

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/ids.hpp"

namespace nw::noise {

class Constraints {
 public:
  [[nodiscard]] bool empty() const noexcept { return group_of_.empty(); }
  [[nodiscard]] int group_count() const noexcept { return next_group_; }

  /// Every (net value, group) assignment, sorted by net — a deterministic
  /// enumeration for digests and serialization.
  [[nodiscard]] std::vector<std::pair<NetId::value_type, int>> entries() const {
    std::vector<std::pair<NetId::value_type, int>> out(group_of_.begin(),
                                                       group_of_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Declare a mutual-exclusion group; returns its id. A net may belong to
  /// at most one group (throws std::invalid_argument otherwise).
  int add_mutex_group(std::span<const NetId> nets);

  /// Group of a net, or -1 if unconstrained.
  [[nodiscard]] int group_of(NetId net) const noexcept {
    const auto it = group_of_.find(net.value());
    return it == group_of_.end() ? -1 : it->second;
  }

 private:
  std::unordered_map<NetId::value_type, int> group_of_;
  int next_group_ = 0;
};

inline int Constraints::add_mutex_group(std::span<const NetId> nets) {
  const int id = next_group_++;
  for (const NetId n : nets) {
    if (!group_of_.emplace(n.value(), id).second) {
      throw std::invalid_argument("Constraints: net already in a mutex group");
    }
  }
  return id;
}

}  // namespace nw::noise
