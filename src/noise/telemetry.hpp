// Per-run analysis telemetry: phase wall times and work counters.
//
// Filled in by every noise::analyze / analyze_incremental call and embedded
// in the Result, so callers (CLI --stats, bench_runtime's thread-scaling
// column, future incremental servers) can see where the run spent its time
// without instrumenting the analyzer themselves. Wall times are the only
// nondeterministic part of a Result — everything else is bit-identical
// across thread counts.
#pragma once

#include <cstddef>
#include <iosfwd>

namespace nw::noise {

struct Telemetry {
  int threads = 1;      ///< resolved executor parallelism
  int iterations = 1;   ///< analysis passes (1 + refinement reruns)

  // Phase wall times, summed over refinement passes [s].
  double context_seconds = 0.0;    ///< AnalysisContext build (once per run)
  double estimate_seconds = 0.0;   ///< per-victim injected-glitch estimation
  double propagate_seconds = 0.0;  ///< combination + levelized gate propagation
  double endpoints_seconds = 0.0;  ///< endpoint checks + noisy-net scan
  double total_seconds = 0.0;      ///< whole analyze() call

  // Work counters (deterministic).
  std::size_t victims_estimated = 0;   ///< nets whose glitches were computed
  std::size_t victims_reused = 0;      ///< incremental: estimates carried over
  std::size_t aggressor_pairs = 0;     ///< victim/aggressor pairs evaluated
  std::size_t pairs_filtered_cap = 0;  ///< pairs dropped below min_coupling_cap
  std::size_t levels = 0;              ///< propagation levels (parallel width)
  std::size_t endpoints = 0;           ///< endpoints checked per pass
};

/// Human-readable phase/counter table (the CLI's --stats section).
void write_stats(std::ostream& os, const Telemetry& t);

}  // namespace nw::noise
