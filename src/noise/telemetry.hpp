// Per-run analysis telemetry: phase wall times and work counters.
//
// Since the observability subsystem landed, Telemetry is a *typed view*
// over the run's metrics (obs/metrics.hpp): the analyzer fills one
// obs::Registry per run, snapshots it into Result::metrics, and derives
// this struct from the snapshot via telemetry_from_metrics() — so the
// --stats table, the --stats-json export, and programmatic consumers all
// read the same numbers. Wall times are the only nondeterministic part of
// a Result — everything else is bit-identical across thread counts.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "obs/metrics.hpp"

namespace nw::noise {

struct Telemetry {
  int threads = 1;      ///< resolved executor parallelism
  int iterations = 1;   ///< analysis passes (1 + refinement reruns)

  // Phase wall times, summed over refinement passes [s].
  double context_seconds = 0.0;    ///< AnalysisContext build (once per run)
  double estimate_seconds = 0.0;   ///< per-victim injected-glitch estimation
  double propagate_seconds = 0.0;  ///< combination + levelized gate propagation
  double endpoints_seconds = 0.0;  ///< endpoint checks + noisy-net scan
  double total_seconds = 0.0;      ///< whole analyze() call

  // Work counters (deterministic).
  std::size_t victims_estimated = 0;   ///< nets whose glitches were computed
  std::size_t victims_reused = 0;      ///< incremental: estimates carried over
  std::size_t aggressor_pairs = 0;     ///< victim/aggressor pairs evaluated
  std::size_t pairs_filtered_cap = 0;  ///< pairs dropped below min_coupling_cap
  std::size_t levels = 0;              ///< propagation levels (parallel width)
  std::size_t endpoints = 0;           ///< endpoints checked per pass
};

// Canonical metric names the analyzer registers (shared by the typed view,
// tests, and tools/validate_obs.py). Counters accumulate over refinement
// passes; gauges hold last-pass values; kMetric*Seconds live in the
// nondeterministic "timing" section of the JSON export.
inline constexpr const char* kMetricVictimsEstimated = "victims_estimated";
inline constexpr const char* kMetricVictimsReused = "victims_reused";
inline constexpr const char* kMetricAggressorPairs = "aggressor_pairs";
inline constexpr const char* kMetricPairsFilteredCap = "pairs_filtered_cap";
inline constexpr const char* kMetricExecutorTasks = "executor_tasks";
inline constexpr const char* kMetricLevels = "propagation_levels";
inline constexpr const char* kMetricEndpoints = "endpoints_checked";
inline constexpr const char* kMetricViolations = "violations";
inline constexpr const char* kMetricNoisyNets = "noisy_nets";
inline constexpr const char* kMetricAggressorsConsidered = "aggressors_considered";
inline constexpr const char* kMetricAggressorsFilteredTemporal =
    "aggressors_filtered_temporal";
inline constexpr const char* kMetricGlitchPeak = "glitch_peak_v";
inline constexpr const char* kMetricAggressorsPerVictim = "aggressors_per_victim";
inline constexpr const char* kMetricLevelWidth = "level_width";
inline constexpr const char* kMetricContextSeconds = "phase_context_seconds";
inline constexpr const char* kMetricEstimateSeconds = "phase_estimate_seconds";
inline constexpr const char* kMetricPropagateSeconds = "phase_propagate_seconds";
inline constexpr const char* kMetricEndpointsSeconds = "phase_endpoints_seconds";
inline constexpr const char* kMetricTotalSeconds = "total_seconds";
inline constexpr const char* kMetricTaskSeconds = "task_seconds";
// Resource gauges (the "resources" section of the JSON export): sampled,
// machine-dependent, never deterministic.
inline constexpr const char* kMetricRssBytes = "rss_bytes";
inline constexpr const char* kMetricPeakRssBytes = "peak_rss_bytes";
inline constexpr const char* kMetricResultBytes = "result_bytes";

/// Derive the typed view from a run's exported metrics. Names missing from
/// the snapshot read as zero; threads/iterations come from the meta.
[[nodiscard]] Telemetry telemetry_from_metrics(const obs::RunMeta& meta,
                                               const obs::MetricsSnapshot& snap);

/// Human-readable phase/counter table — the single rendering used by the
/// CLI's --stats section and write_report's telemetry footer.
void write_stats(std::ostream& os, const Telemetry& t);

struct Result;

/// The "executor" section of stats-JSON schema v3, rendered from
/// Result::executor + Result::attribution: {"enabled","threads","wall_s",
/// "workers":[{worker,busy_s,idle_s,chunks}...],
/// "regions":{label:{invocations,chunks,items,wall_s,busy_s,max_busy_s,
///                   wait_s,imbalance}...},
/// "attribution":{"top_levels":[...],"top_nets":[...]}}.
/// Every stats-JSON writer (CLI, server, bench records) appends this via
/// write_stats_json's `extra` so the section is present in all exports.
[[nodiscard]] std::string executor_stats_json(const Result& result);

}  // namespace nw::noise
