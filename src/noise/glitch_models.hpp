// Per-aggressor glitch estimation on a quiet victim.
//
// The canonical scenario: the victim is held at its quiet level through the
// driver's holding resistance Rh; one aggressor ramps through the coupling
// capacitance Cc; the rest of the victim's load is the grounded Cg. Four
// models of increasing fidelity/cost estimate the resulting glitch:
//
//   kChargeSharing  instantaneous-aggressor limit: Vp = Vdd Cc/(Cc+Cg).
//                   Cheap, pessimistic for slow aggressors.
//   kDevgan         Devgan's upper bound: Vp = min(Vdd, Rh Cc Vdd / tr).
//                   Provably >= the exact linear response (tested).
//   kTwoPi          dominant-pole solution of the reduced (pi-model)
//                   network; the workhorse model with peak AND width.
//   kReducedMna     O'Brien–Savarino pi models of victim and aggressor
//                   joined by the lumped coupling, solved by the MNA
//                   transient engine on a 5-node circuit. Near-golden
//                   accuracy at a fixed small cost per pair.
//   kMnaExact       full cluster MNA transient (spice::simulate) measured
//                   with spice::measure_glitch. Slowest, used for accuracy
//                   experiments and high-effort signoff mode.
#pragma once

#include <span>

#include "netlist/design.hpp"
#include "parasitics/rcnet.hpp"
#include "spice/transient.hpp"
#include "util/ids.hpp"

namespace nw::noise {

enum class GlitchModel { kChargeSharing, kDevgan, kTwoPi, kReducedMna, kMnaExact };

[[nodiscard]] const char* to_string(GlitchModel m) noexcept;

/// Electrical abstract of one victim/aggressor pair.
struct CouplingScenario {
  double r_hold = 1e3;   ///< victim holding resistance [ohm]
  double c_ground = 0.0; ///< victim grounded cap (everything but Cc) [F]
  double c_couple = 0.0; ///< coupling cap to the switching aggressor [F]
  double slew = 30e-12;  ///< aggressor transition time [s]
  double vdd = 1.2;      ///< aggressor swing [V]
};

/// An estimated glitch.
struct GlitchEstimate {
  double peak = 0.0;        ///< [V]
  double width = 0.0;       ///< duration above half peak [s]
  double peak_delay = 0.0;  ///< peak time relative to aggressor edge start [s]
};

[[nodiscard]] GlitchEstimate estimate_charge_sharing(const CouplingScenario& s);
[[nodiscard]] GlitchEstimate estimate_devgan(const CouplingScenario& s);
[[nodiscard]] GlitchEstimate estimate_two_pi(const CouplingScenario& s);

/// Flat span variants of the three analytic models — the elementwise
/// estimation kernels the SoA path (noise/kernels.hpp) runs over CSR rows
/// of scenario operands. All spans share one length; slot i is the
/// scenario (r_hold[i], c_ground[i], c_couple[i], slew[i], vdd). These are
/// the CANONICAL implementations: the scalar estimate_* functions above
/// call them with count-1 spans, so scalar and vector paths execute the
/// same compiled floating-point expressions and stay bit-identical even
/// under FP contraction (-ffp-contract=fast). Callers guarantee slew > 0
/// for devgan/two-pi (the wrappers keep the throwing checks).
void peaks_charge_sharing(std::span<const double> r_hold,
                          std::span<const double> c_ground,
                          std::span<const double> c_couple,
                          std::span<const double> slew, double vdd,
                          std::span<double> peak, std::span<double> width,
                          std::span<double> peak_delay);
void peaks_devgan(std::span<const double> r_hold, std::span<const double> c_ground,
                  std::span<const double> c_couple, std::span<const double> slew,
                  double vdd, std::span<double> peak, std::span<double> width,
                  std::span<double> peak_delay);
void peaks_two_pi(std::span<const double> r_hold, std::span<const double> c_ground,
                  std::span<const double> c_couple, std::span<const double> slew,
                  double vdd, std::span<double> peak, std::span<double> width,
                  std::span<double> peak_delay);

/// Dispatch over the three analytic models (not kReducedMna/kMnaExact,
/// which need the design context).
[[nodiscard]] GlitchEstimate estimate(GlitchModel model, const CouplingScenario& s);

/// Exact: build the victim/aggressor cluster and simulate.
[[nodiscard]] GlitchEstimate estimate_mna(const net::Design& design,
                                          const para::Parasitics& para, NetId victim,
                                          NetId aggressor, double slew, double vdd,
                                          const spice::TranOptions& tran);

/// Reduced-order: pi models + lumped coupling on a 5-node circuit.
[[nodiscard]] GlitchEstimate estimate_reduced(const net::Design& design,
                                              const para::Parasitics& para,
                                              NetId victim, NetId aggressor,
                                              double slew, double vdd);

/// Synthesize the canonical glitch waveform an estimate describes: linear
/// rise to `peak` over `peak_delay`, then exponential decay whose time
/// constant is chosen so the half-peak width matches `width`. Used for
/// waveform-shape comparisons against golden transients and for report
/// plots. The glitch starts at `t_start` on top of `baseline`.
[[nodiscard]] spice::Waveform synthesize_glitch(const GlitchEstimate& estimate,
                                                double t_start, double baseline,
                                                double dt, double t_stop);

/// Build the CouplingScenario for a victim/aggressor pair from the design
/// (holding resistance, grounded cap, summed coupling, STA slew). The slew
/// is degraded by the aggressor's own RC and the holding resistance
/// includes half the victim wire — the *accuracy* abstraction.
[[nodiscard]] CouplingScenario scenario_for(const net::Design& design,
                                            const para::Parasitics& para, NetId victim,
                                            NetId aggressor, double aggressor_slew,
                                            double vdd);

/// The *bounding* abstraction: raw driver slew (an aggressor node can never
/// ramp faster than its source) and the full victim wire resistance (no
/// victim node is further from the holder). estimate_devgan() on this
/// scenario provably upper-bounds the exact linear response.
[[nodiscard]] CouplingScenario bound_scenario_for(const net::Design& design,
                                                  const para::Parasitics& para,
                                                  NetId victim, NetId aggressor,
                                                  double aggressor_slew, double vdd);

}  // namespace nw::noise
