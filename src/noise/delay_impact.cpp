#include "noise/delay_impact.hpp"

#include <algorithm>

#include "util/executor.hpp"
#include "util/scanline.hpp"

namespace nw::noise {

namespace {

/// Per-net impact (shared-nothing over nets; same scan-line math as the
/// serial path, so the parallel run is bit-identical). `affected` reports
/// whether the net counts toward the summary.
DelayImpact impact_for_net(const sta::NetTiming& t, const NetNoise& nn,
                           const Options& opt, double vdd, char& affected) {
  DelayImpact di;
  if (!t.switches()) return di;  // a quiet net has no edge to shift
  if (nn.contributions.empty()) return di;

  double peak = 0.0;
  if (opt.mode == AnalysisMode::kNoFiltering) {
    // Everything is assumed to align with the victim edge.
    if (opt.constraints.empty()) {
      for (const auto& c : nn.contributions) peak += c.peak;
    } else {
      // Per mutex group only the heaviest member can align.
      std::vector<WeightedWindow> items;
      std::vector<int> groups;
      for (const auto& c : nn.contributions) {
        items.push_back({c.peak, IntervalSet::everything()});
        groups.push_back(c.aggressor.valid() ? opt.constraints.group_of(c.aggressor)
                                             : -1);
      }
      peak = scan_max_overlap_grouped(items, groups).best_sum;
    }
  } else {
    // Restrict every contribution to the victim's transition window.
    const Interval edge = t.window.dilated(t.slew_max, t.slew_max);
    std::vector<WeightedWindow> items;
    std::vector<int> groups;
    items.reserve(nn.contributions.size());
    for (const auto& c : nn.contributions) {
      items.push_back({c.peak, c.window.intersect(edge)});
      groups.push_back(c.aggressor.valid() ? opt.constraints.group_of(c.aggressor)
                                           : -1);
    }
    peak = opt.constraints.empty() ? scan_max_overlap(items).best_sum
                                   : scan_max_overlap_grouped(items, groups).best_sum;
  }
  if (peak < opt.min_peak) return di;

  affected = 1;
  di.peak_during_transition = peak;
  di.delta_delay = (peak / vdd) * t.slew_max;
  return di;
}

}  // namespace

DelayImpactSummary compute_delay_impact(const net::Design& design,
                                        const sta::Result& sta_result,
                                        const Result& noise_result,
                                        const Options& opt) {
  if (noise_result.nets.size() != design.net_count() ||
      sta_result.nets.size() != design.net_count()) {
    throw std::invalid_argument("compute_delay_impact: result/design mismatch");
  }
  const double vdd = design.library().vdd();

  DelayImpactSummary out;
  out.nets.assign(design.net_count(), DelayImpact{});

  // Parallel over nets into pre-sized slots; totals fold in index order so
  // the floating-point sums match the serial run exactly.
  std::vector<char> affected(design.net_count(), 0);
  util::Executor exec(opt.threads);
  exec.parallel_for(design.net_count(), 32, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out.nets[i] = impact_for_net(sta_result.nets[i], noise_result.nets[i], opt, vdd,
                                   affected[i]);
    }
  });
  for (std::size_t i = 0; i < design.net_count(); ++i) {
    if (!affected[i]) continue;
    out.total_delta += out.nets[i].delta_delay;
    out.max_delta = std::max(out.max_delta, out.nets[i].delta_delay);
    ++out.affected_nets;
  }
  return out;
}

}  // namespace nw::noise
