#include "noise/delay_impact.hpp"

#include <algorithm>

#include "util/scanline.hpp"

namespace nw::noise {

DelayImpactSummary compute_delay_impact(const net::Design& design,
                                        const sta::Result& sta_result,
                                        const Result& noise_result,
                                        const Options& opt) {
  if (noise_result.nets.size() != design.net_count() ||
      sta_result.nets.size() != design.net_count()) {
    throw std::invalid_argument("compute_delay_impact: result/design mismatch");
  }
  const double vdd = design.library().vdd();

  DelayImpactSummary out;
  out.nets.assign(design.net_count(), DelayImpact{});

  for (std::size_t i = 0; i < design.net_count(); ++i) {
    const sta::NetTiming& t = sta_result.nets[i];
    if (!t.switches()) continue;  // a quiet net has no edge to shift
    const NetNoise& nn = noise_result.nets[i];
    if (nn.contributions.empty()) continue;

    double peak = 0.0;
    if (opt.mode == AnalysisMode::kNoFiltering) {
      // Everything is assumed to align with the victim edge.
      if (opt.constraints.empty()) {
        for (const auto& c : nn.contributions) peak += c.peak;
      } else {
        // Per mutex group only the heaviest member can align.
        std::vector<WeightedWindow> items;
        std::vector<int> groups;
        for (const auto& c : nn.contributions) {
          items.push_back({c.peak, IntervalSet::everything()});
          groups.push_back(c.aggressor.valid() ? opt.constraints.group_of(c.aggressor)
                                               : -1);
        }
        peak = scan_max_overlap_grouped(items, groups).best_sum;
      }
    } else {
      // Restrict every contribution to the victim's transition window.
      const Interval edge = t.window.dilated(t.slew_max, t.slew_max);
      std::vector<WeightedWindow> items;
      std::vector<int> groups;
      items.reserve(nn.contributions.size());
      for (const auto& c : nn.contributions) {
        items.push_back({c.peak, c.window.intersect(edge)});
        groups.push_back(c.aggressor.valid() ? opt.constraints.group_of(c.aggressor)
                                             : -1);
      }
      peak = opt.constraints.empty() ? scan_max_overlap(items).best_sum
                                     : scan_max_overlap_grouped(items, groups).best_sum;
    }
    if (peak < opt.min_peak) continue;

    DelayImpact& di = out.nets[i];
    di.peak_during_transition = peak;
    di.delta_delay = (peak / vdd) * t.slew_max;
    out.total_delta += di.delta_delay;
    out.max_delta = std::max(out.max_delta, di.delta_delay);
    ++out.affected_nets;
  }
  return out;
}

}  // namespace nw::noise
