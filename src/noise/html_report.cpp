#include "noise/html_report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/memtrack.hpp"
#include "obs/resource.hpp"
#include "report/svg.hpp"
#include "report/table.hpp"

namespace nw::noise {

namespace {

using report::html_escape;

/// everything() bounds are sentinels (±1e30), not data — skip them when
/// sizing a time axis and let the renderer clamp the span instead.
bool finite_time(double t) { return std::abs(t) < 1e29; }

void meta_row(std::ostream& os, const char* key, const std::string& value) {
  os << "  <tr><th>" << key << "</th><td>" << html_escape(value) << "</td></tr>\n";
}

void summary_tile(std::ostream& os, const std::string& value, const char* label) {
  os << "  <div class=\"tile\"><div class=\"num\">" << html_escape(value)
     << "</div><div class=\"cap\">" << label << "</div></div>\n";
}

/// Violation indices sorted worst slack first (ties: violation order).
std::vector<std::size_t> worst_first(const Result& r) {
  std::vector<std::size_t> order(r.violations.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return r.violations[a].slack() < r.violations[b].slack();
  });
  return order;
}

void write_timelines(std::ostream& os, const net::Design& design, const Result& r,
                     const Options& opt, const std::vector<std::size_t>& order,
                     std::size_t top_k) {
  std::vector<report::TimelineRow> rows;
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  const auto note = [&](double t) {
    if (!finite_time(t)) return;
    lo = any ? std::min(lo, t) : t;
    hi = any ? std::max(hi, t) : t;
    any = true;
  };
  for (std::size_t k = 0; k < order.size() && k < top_k; ++k) {
    const Violation& v = r.violations[order[k]];
    const Provenance& p = r.provenance[order[k]];
    report::TimelineRow row;
    row.label = design.pin_name(v.endpoint) + " (" + design.net(v.net).name + ")";
    for (const Interval& iv : r.net(v.net).window.intervals()) {
      row.spans.push_back({iv.lo, iv.hi, "win"});
      note(iv.lo);
      note(iv.hi);
    }
    if (!v.sensitivity.is_empty()) {
      row.spans.push_back({v.sensitivity.lo, v.sensitivity.hi, "sens"});
      note(v.sensitivity.lo);
      note(v.sensitivity.hi);
    }
    if (!p.alignment.is_empty()) {
      row.spans.push_back({p.alignment.lo, p.alignment.hi, "align"});
      note(p.alignment.lo);
      note(p.alignment.hi);
    }
    rows.push_back(std::move(row));
  }
  if (!any) {
    // All spans unbounded (kNoFiltering) or no violations: show one clock
    // period so clamped always-spans still render.
    lo = 0.0;
    hi = opt.clock_period > 0.0 ? opt.clock_period : 1e-9;
  }
  if (!(hi > lo)) hi = lo + 1e-12;
  os << "<section id=\"timelines\">\n<h2>Noise windows vs sensitivity windows"
     << " (top " << rows.size() << " violations)</h2>\n"
     << "<p class=\"legend\"><span class=\"sw win\"></span> noise window "
     << "<span class=\"sw sens\"></span> sensitivity window "
     << "<span class=\"sw align\"></span> worst alignment</p>\n";
  if (rows.empty()) {
    os << "<p>No violations.</p>\n";
  } else {
    report::ChartGeom geom;
    geom.label_width = 240.0;
    report::write_timeline(os, rows, lo, hi, geom, 1e9, "ns");
  }
  os << "</section>\n";
}

void write_pareto(std::ostream& os, const net::Design& design, const Result& r,
                  std::size_t top_k) {
  // Total in-worst injected noise per aggressor net across every violation
  // (map keyed by net id => deterministic iteration order).
  std::map<NetId::value_type, double> totals;
  for (const Provenance& p : r.provenance) {
    for (const AggressorShare& s : p.shares) {
      if (s.verdict != WindowVerdict::kInWorst || s.is_propagated()) continue;
      totals[s.aggressor.value()] += s.peak;
    }
  }
  std::vector<std::pair<NetId::value_type, double>> ranked(totals.begin(),
                                                           totals.end());
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  os << "<section id=\"pareto\">\n<h2>Aggressor Pareto (in-worst noise summed over "
     << "violations)</h2>\n";
  if (ranked.empty()) {
    os << "<p>No aggressor shares (no violations, or all noise is propagated)."
       << "</p>\n";
  } else {
    std::vector<report::Bar> bars;
    for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
      report::Bar b;
      b.label = design.net(NetId{ranked[i].first}).name;
      b.value = ranked[i].second;
      b.value_text = report::fmt_mv(ranked[i].second);
      bars.push_back(std::move(b));
    }
    report::write_bar_chart(os, bars, report::ChartGeom{}, /*cumulative_line=*/true);
    if (ranked.size() > top_k) {
      os << "<p>" << (ranked.size() - top_k) << " weaker aggressors not shown.</p>\n";
    }
  }
  os << "</section>\n";
}

void write_slack_hist(std::ostream& os, const Result& r, std::size_t bins) {
  os << "<section id=\"slack\">\n<h2>Endpoint noise-slack distribution</h2>\n";
  if (r.endpoint_slacks.empty() || bins == 0) {
    os << "<p>No endpoints checked.</p>\n</section>\n";
    return;
  }
  double lo = r.endpoint_slacks.front();
  double hi = lo;
  for (const double s : r.endpoint_slacks) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  if (!(hi > lo)) hi = lo + 1e-6;
  std::vector<report::HistogramBin> hist(bins);
  const double step = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 0; i < bins; ++i) {
    hist[i].lo = lo + step * static_cast<double>(i);
    hist[i].hi = hist[i].lo + step;
    hist[i].cls = hist[i].hi <= 0.0 ? "binbad" : "bin";
  }
  for (const double s : r.endpoint_slacks) {
    auto idx = static_cast<std::size_t>((s - lo) / step);
    if (idx >= bins) idx = bins - 1;
    ++hist[idx].count;
  }
  os << "<p class=\"legend\"><span class=\"sw binbad\"></span> violating "
     << "(slack &lt; 0) <span class=\"sw bin\"></span> passing</p>\n";
  report::write_histogram(os, hist, report::ChartGeom{}, 1e3, "mV");
  os << "</section>\n";
}

std::string fmt_ms(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << seconds * 1e3;
  return os.str();
}

void write_executor(std::ostream& os, const Result& r) {
  const util::UtilizationSnapshot& ex = r.executor;
  os << "<section id=\"executor\">\n<h2>Executor utilization</h2>\n";
  if (!ex.enabled || ex.regions.empty()) {
    os << "<p>No executor utilization recorded (serial run or no parallel "
       << "regions).</p>\n</section>\n";
    return;
  }
  os << "<p class=\"legend\">threads " << ex.threads << ", parallel wall "
     << fmt_ms(ex.wall_s) << " ms. Utilization = busy / (busy + idle) inside "
     << "parallel regions; imbalance 1.0 = perfectly balanced.</p>\n";

  os << "<table>\n<tr><th>worker</th><th>busy ms</th><th>idle ms</th>"
     << "<th>chunks</th><th>utilization</th></tr>\n";
  for (const util::WorkerStats& w : ex.workers) {
    const double denom = w.busy_s + w.idle_s;
    const double util = denom > 0.0 ? w.busy_s / denom : 0.0;
    const int pct = static_cast<int>(util * 100.0 + 0.5);
    os << "<tr><td>" << w.worker << "</td><td>" << fmt_ms(w.busy_s) << "</td><td>"
       << fmt_ms(w.idle_s) << "</td><td>" << w.chunks
       << "</td><td><div class=\"ubar\"><div class=\"ufill\" style=\"width:" << pct
       << "%\"></div></div> " << pct << "%</td></tr>\n";
  }
  os << "</table>\n";

  os << "<h2>Parallel regions</h2>\n<table>\n<tr><th>region</th><th>calls</th>"
     << "<th>chunks</th><th>items</th><th>wall ms</th><th>busy ms</th>"
     << "<th>wait ms</th><th>imbalance</th></tr>\n";
  for (const util::RegionStats& reg : ex.regions) {
    std::ostringstream imb;
    imb.setf(std::ios::fixed);
    imb.precision(2);
    imb << reg.imbalance(ex.threads);
    os << "<tr><td>" << html_escape(reg.label) << "</td><td>" << reg.invocations
       << "</td><td>" << reg.chunks << "</td><td>" << reg.items << "</td><td>"
       << fmt_ms(reg.wall_s) << "</td><td>" << fmt_ms(reg.busy_s) << "</td><td>"
       << fmt_ms(reg.wait_s) << "</td><td>" << imb.str() << "</td></tr>\n";
  }
  os << "</table>\n";

  if (!r.attribution.top_levels.empty() || !r.attribution.top_nets.empty()) {
    os << "<h2>Work attribution</h2>\n";
    if (!r.attribution.top_levels.empty()) {
      os << "<table>\n<tr><th>heaviest level</th><th>instances</th>"
         << "<th>wall ms</th></tr>\n";
      for (const WorkAttribution::LevelCost& l : r.attribution.top_levels) {
        std::ostringstream w;
        w.setf(std::ios::fixed);
        w.precision(3);
        w << l.wall_ms;
        os << "<tr><td>" << l.level << "</td><td>" << l.instances << "</td><td>"
           << w.str() << "</td></tr>\n";
      }
      os << "</table>\n";
    }
    if (!r.attribution.top_nets.empty()) {
      os << "<table>\n<tr><th>heaviest net</th><th>aggressors</th>"
         << "<th>peak</th></tr>\n";
      for (const WorkAttribution::NetCost& n : r.attribution.top_nets) {
        os << "<tr><td>" << html_escape(n.net) << "</td><td>" << n.aggressors
           << "</td><td>" << report::fmt_mv(n.peak) << "</td></tr>\n";
      }
      os << "</table>\n";
    }
  }
  os << "</section>\n";
}

/// Prefix-tree of sampled stacks; map keys give a deterministic layout.
struct FlameNode {
  std::map<std::string, FlameNode> kids;
  std::uint64_t total = 0;  ///< samples in this frame or deeper
};

void flame_insert(FlameNode& root, std::string_view stack, std::uint64_t count) {
  FlameNode* node = &root;
  node->total += count;
  while (!stack.empty()) {
    const std::size_t sep = stack.find(';');
    const std::string_view frame =
        sep == std::string_view::npos ? stack : stack.substr(0, sep);
    stack = sep == std::string_view::npos ? std::string_view{} : stack.substr(sep + 1);
    node = &node->kids[std::string(frame)];
    node->total += count;
  }
}

void flame_rects(std::ostream& os, const FlameNode& node, double x, double width,
                 int depth, std::uint64_t root_total) {
  static constexpr double kRow = 17.0;
  static constexpr const char* kFills[] = {"#d9702d", "#e08a3c", "#c85a32",
                                           "#e0a030", "#d9822d", "#c86a45"};
  double cx = x;
  for (const auto& [name, kid] : node.kids) {
    const double w =
        width * static_cast<double>(kid.total) / static_cast<double>(node.total);
    if (w >= 0.5) {
      std::size_t h = 1469598103u;
      for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
      const double pct =
          100.0 * static_cast<double>(kid.total) / static_cast<double>(root_total);
      std::ostringstream p;
      p.setf(std::ios::fixed);
      p.precision(1);
      p << pct;
      os << "<g><rect x=\"" << report::fmt_fixed(cx, 1) << "\" y=\"" << depth * kRow
         << "\" width=\"" << report::fmt_fixed(w, 1) << "\" height=\"" << kRow - 1.0
         << "\" fill=\"" << kFills[h % (sizeof kFills / sizeof kFills[0])]
         << "\"><title>" << html_escape(name) << " — " << kid.total << " samples ("
         << p.str() << "%)</title></rect>\n";
      if (w >= 40.0) {
        os << "<text class=\"flabel\" x=\"" << report::fmt_fixed(cx + 3.0, 1)
           << "\" y=\"" << depth * kRow + 12.0 << "\">" << html_escape(name)
           << "</text>\n";
      }
      os << "</g>\n";
      flame_rects(os, kid, cx, w, depth + 1, root_total);
    }
    cx += w;
  }
}

int flame_depth(const FlameNode& node) {
  int deepest = 0;
  for (const auto& [name, kid] : node.kids) {
    deepest = std::max(deepest, 1 + flame_depth(kid));
  }
  return deepest;
}

void write_flame(std::ostream& os, const std::vector<obs::FoldedEntry>& profile) {
  os << "<section id=\"flame\">\n<h2>Sampled span stacks (flamegraph)</h2>\n";
  std::uint64_t total = 0;
  FlameNode root;
  for (const obs::FoldedEntry& e : profile) {
    flame_insert(root, e.stack, e.count);
    total += e.count;
  }
  if (total == 0) {
    os << "<p>Profiling disabled — rerun with <code>--profile-out FILE "
       << "--profile-hz 97</code> to capture span-stack samples.</p>\n"
       << "</section>\n";
    return;
  }
  static constexpr double kWidth = 860.0;
  const int depth = flame_depth(root);
  const double height = depth * 17.0 + 4.0;
  os << "<p class=\"legend\">" << total << " samples; frame width is the share "
     << "of samples in that span stack (hover for counts).</p>\n";
  os << "<svg width=\"" << kWidth << "\" height=\"" << report::fmt_fixed(height, 1)
     << "\" viewBox=\"0 0 " << kWidth << " " << report::fmt_fixed(height, 1)
     << "\">\n";
  flame_rects(os, root, 0.0, kWidth, 0, total);
  os << "</svg>\n</section>\n";
}

void write_live(std::ostream& os, const obs::TimeSeriesSnapshot& ts) {
  os << "<section id=\"live\">\n<h2>Live telemetry</h2>\n";
  if (ts.samples.empty()) {
    os << "<p>Sampling disabled — rerun with <code>--sample-ms 250</code> to "
       << "record periodic telemetry samples for this panel.</p>\n"
       << "</section>\n";
    return;
  }
  os << "<p class=\"legend\">" << ts.samples.size() << " samples every "
     << ts.interval_ms << " ms (" << ts.total
     << " recorded, ring keeps " << ts.capacity
     << "); one sparkline per series over the retained window.</p>\n";
  static constexpr double kW = 320.0;
  static constexpr double kH = 26.0;
  static constexpr double kPad = 2.0;
  os << "<table>\n<tr><th>series</th><th>trend</th><th>min</th><th>last</th>"
     << "<th>max</th></tr>\n";
  const std::size_t n = ts.samples.size();
  for (std::size_t si = 0; si < ts.series.size(); ++si) {
    double lo = 0.0;
    double hi = 0.0;
    bool first = true;
    for (const obs::TimeSample& s : ts.samples) {
      if (si >= s.v.size()) continue;
      const double v = s.v[si];
      if (first) {
        lo = hi = v;
        first = false;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const double span = (hi > lo) ? (hi - lo) : 1.0;
    os << "<tr><td>" << html_escape(ts.series[si]) << "</td><td>"
       << "<svg class=\"sparkbox\" width=\"" << kW << "\" height=\"" << kH
       << "\" viewBox=\"0 0 " << kW << " " << kH << "\"><polyline class=\"spark\" "
       << "points=\"";
    for (std::size_t i = 0; i < n; ++i) {
      const double v = si < ts.samples[i].v.size() ? ts.samples[i].v[si] : 0.0;
      const double x =
          n > 1 ? kPad + (kW - 2.0 * kPad) * static_cast<double>(i) /
                             static_cast<double>(n - 1)
                : kW / 2.0;
      const double y = kH - kPad - (kH - 2.0 * kPad) * (v - lo) / span;
      if (i != 0) os << ' ';
      os << report::fmt_fixed(x, 1) << ',' << report::fmt_fixed(y, 1);
    }
    const double last =
        si < ts.samples.back().v.size() ? ts.samples.back().v[si] : 0.0;
    os << "\"/></svg></td><td>" << report::fmt_sci(lo) << "</td><td>"
       << report::fmt_sci(last) << "</td><td>" << report::fmt_sci(hi)
       << "</td></tr>\n";
  }
  os << "</table>\n</section>\n";
}

/// "12.3 MB" rendering for the memory panel; JSON consumers get raw bytes
/// from the stats document instead.
std::string fmt_bytes(double v) {
  const char* unit = "B";
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0 * 1024.0;
    unit = "GB";
  } else if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KB";
  }
  return report::fmt_fixed(v, 1) + " " + unit;
}

void write_memory(std::ostream& os) {
  os << "<section id=\"memory\">\n<h2>Memory accounting</h2>\n";
  const std::vector<obs::MemAccountSample> snap = obs::MemTracker::snapshot();
  double total_peak = 0.0;
  for (const obs::MemAccountSample& a : snap) {
    total_peak += static_cast<double>(a.peak_bytes);
  }
  if (!obs::memtrack_enabled() || total_peak <= 0.0) {
    os << "<p>Memory tracking disabled or no tracked allocations — the "
       << "per-subsystem accounts in the stats JSON carry the same data.</p>\n"
       << "</section>\n";
    return;
  }
  os << "<p class=\"legend\">Per-subsystem heap accounts at render time; the "
     << "bar is each account's share of the summed peaks.</p>\n";
  os << "<table>\n<tr><th>account</th><th>current</th><th>peak</th>"
     << "<th>allocs</th><th>frees</th><th>share of peak</th></tr>\n";
  for (const obs::MemAccountSample& a : snap) {
    if (a.peak_bytes == 0 && a.allocs == 0) continue;
    const double pct =
        100.0 * static_cast<double>(a.peak_bytes) / total_peak;
    os << "<tr><td>" << html_escape(std::string(a.name)) << "</td><td>"
       << fmt_bytes(static_cast<double>(a.current_bytes)) << "</td><td>"
       << fmt_bytes(static_cast<double>(a.peak_bytes)) << "</td><td>"
       << a.allocs << "</td><td>" << a.frees
       << "</td><td><span class=\"ubar\"><span class=\"ufill\" style=\"width:"
       << report::fmt_fixed(pct, 1) << "%\"></span></span> "
       << report::fmt_fixed(pct, 1) << "%</td></tr>\n";
  }
  const obs::ResourceSample rss = obs::sample_resources();
  os << "<tr><th>tracked total</th><td>"
     << fmt_bytes(static_cast<double>(obs::MemTracker::total_current()))
     << "</td><td>" << fmt_bytes(total_peak)
     << "</td><td>-</td><td>-</td><td>-</td></tr>\n"
     << "<tr><th>process rss</th><td>"
     << fmt_bytes(static_cast<double>(rss.rss_bytes)) << "</td><td>"
     << fmt_bytes(static_cast<double>(rss.peak_rss_bytes))
     << "</td><td>-</td><td>-</td><td>-</td></tr>\n";
  os << "</table>\n</section>\n";
}

void write_phases(std::ostream& os, const Result& r) {
  os << "<section id=\"phases\">\n<h2>Phases &amp; request latency</h2>\n";
  os << "<table>\n<tr><th>metric</th><th>kind</th><th>value</th>"
     << "<th>p50</th><th>p95</th><th>p99</th><th>max</th></tr>\n";
  for (const auto& s : r.metrics.samples) {
    os << "<tr><td>" << html_escape(s.name) << "</td>";
    switch (s.kind) {
      case obs::MetricSample::Kind::kCounter:
        os << "<td>counter</td><td>" << s.count
           << "</td><td>-</td><td>-</td><td>-</td><td>-</td>";
        break;
      case obs::MetricSample::Kind::kGauge:
        os << "<td>gauge</td><td>" << report::fmt_sci(s.value);
        if (!s.unit.empty()) os << ' ' << html_escape(s.unit);
        os << "</td><td>-</td><td>-</td><td>-</td><td>-</td>";
        break;
      case obs::MetricSample::Kind::kHistogram:
        os << "<td>histogram</td><td>n=" << s.hist.count << "</td><td>"
           << report::fmt_sci(obs::histogram_quantile(s.hist, 0.50)) << "</td><td>"
           << report::fmt_sci(obs::histogram_quantile(s.hist, 0.95)) << "</td><td>"
           << report::fmt_sci(obs::histogram_quantile(s.hist, 0.99)) << "</td><td>"
           << report::fmt_sci(s.hist.max) << "</td>";
        break;
    }
    os << "</tr>\n";
  }
  os << "</table>\n</section>\n";
}

constexpr const char* kStyle = R"css(
body { font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 900px;
       color: #222; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin: 18px 0 6px; }
section { margin-bottom: 20px; }
table { border-collapse: collapse; font-size: 12px; }
th, td { border: 1px solid #ddd; padding: 3px 8px; text-align: left; }
th { background: #f4f6f8; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; }
.tile { border: 1px solid #ddd; border-radius: 6px; padding: 8px 14px;
        min-width: 110px; }
.tile .num { font-size: 20px; font-weight: 600; }
.tile .cap { font-size: 11px; color: #666; }
.legend { font-size: 11px; color: #555; }
.sw { display: inline-block; width: 12px; height: 10px; margin: 0 4px 0 10px; }
svg { display: block; }
svg .grid { stroke: #e3e6ea; stroke-width: 1; }
svg .tick { font: 10px system-ui, sans-serif; fill: #667; }
svg .label { font: 11px system-ui, sans-serif; fill: #333; }
svg .value { font: 10px system-ui, sans-serif; fill: #555; }
.bar, svg .bar { fill: #4878a8; }
.bin, svg .bin { fill: #4878a8; }
.binbad, svg .binbad { fill: #c0504d; }
svg .cumline { stroke: #e0a030; stroke-width: 2; }
.win, svg .win { fill: #9dc3e6; fill-opacity: 0.8; }
.sens, svg .sens { fill: #70ad47; fill-opacity: 0.45; }
.align, svg .align { fill: #c0504d; fill-opacity: 0.9; }
.ubar { display: inline-block; width: 120px; height: 10px; background: #eef1f4;
        border: 1px solid #ddd; vertical-align: middle; }
.ufill { height: 100%; background: #4878a8; }
svg .flabel { font: 10px system-ui, sans-serif; fill: #fff; }
svg.sparkbox { display: inline-block; background: #f8f9fa;
               border: 1px solid #e3e6ea; vertical-align: middle; }
.spark, svg .spark { fill: none; stroke: #4878a8; stroke-width: 1.5; }
)css";

}  // namespace

void write_html_report(std::ostream& os, const net::Design& design,
                       const Options& opt, const Result& r,
                       const HtmlReportOptions& hopt) {
  os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
     << "<title>noisewin dashboard — " << html_escape(design.name())
     << "</title>\n<style>" << kStyle << "</style>\n</head>\n<body>\n"
     << "<h1>noisewin dashboard — " << html_escape(design.name()) << "</h1>\n";

  os << "<section id=\"meta\">\n<h2>Run</h2>\n<table>\n";
  meta_row(os, "design", r.run_meta.design);
  meta_row(os, "mode", r.run_meta.mode);
  meta_row(os, "model", r.run_meta.model);
  meta_row(os, "options digest", r.run_meta.options_digest);
  meta_row(os, "build", r.run_meta.build);
  meta_row(os, "threads", std::to_string(r.run_meta.threads));
  meta_row(os, "iterations", std::to_string(r.iterations));
  meta_row(os, "epoch", std::to_string(r.epoch));
  os << "</table>\n</section>\n";

  os << "<section id=\"summary\">\n<h2>Summary</h2>\n<div class=\"tiles\">\n";
  summary_tile(os, std::to_string(r.violations.size()), "violations");
  summary_tile(os, std::to_string(r.endpoints_checked), "endpoints checked");
  summary_tile(os, std::to_string(r.noisy_nets), "noisy nets");
  summary_tile(os, std::to_string(r.aggressors_considered), "aggressor pairs");
  summary_tile(os, std::to_string(r.aggressors_filtered_temporal),
               "temporally filtered");
  summary_tile(os, std::to_string(design.net_count()), "nets");
  os << "</div>\n</section>\n";

  const std::vector<std::size_t> order = worst_first(r);
  write_timelines(os, design, r, opt, order, hopt.top_violations);
  write_pareto(os, design, r, hopt.top_aggressors);
  write_slack_hist(os, r, hopt.slack_bins);
  write_executor(os, r);
  write_flame(os, hopt.profile);
  write_live(os, hopt.timeseries);
  write_memory(os);
  write_phases(os, r);

  os << "</body>\n</html>\n";
}

}  // namespace nw::noise
