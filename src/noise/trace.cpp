#include "noise/trace.hpp"

#include <sstream>
#include <unordered_set>

#include "report/table.hpp"

namespace nw::noise {

NoiseTrace trace_origin(const Result& result, NetId net) {
  NoiseTrace trace;
  if (net.index() >= result.nets.size()) {
    throw std::invalid_argument("trace_origin: bad net id");
  }

  std::unordered_set<NetId::value_type> visited;
  NetId cur = net;
  while (cur.valid() && visited.insert(cur.value()).second) {
    const NetNoise& nn = result.nets[cur.index()];
    if (nn.total_peak <= 0.0) break;
    trace.path.push_back({cur, nn.total_peak, nn.width});

    // Follow the strongest propagated member of the worst combination.
    NetId next;
    double best = 0.0;
    for (const auto& c : nn.contributions) {
      if (!c.in_worst || !c.is_propagated()) continue;
      if (c.peak > best) {
        best = c.peak;
        next = c.from_net;
      }
    }
    if (!next.valid()) break;
    cur = next;
  }
  // The injection point is wherever the walk stopped — the last path entry.
  // Collecting here (instead of inside the no-propagated-member branch)
  // guarantees aggressors are reported on every exit: the natural end of
  // the chain, a single-step query where the asked-about net IS the
  // injection net, and a walk cut short by the visited guard.
  if (!trace.path.empty()) {
    const NetNoise& origin = result.nets[trace.path.back().net.index()];
    for (const auto& c : origin.contributions) {
      if (c.in_worst && !c.is_propagated()) trace.aggressors.push_back(c.aggressor);
    }
  }
  return trace;
}

std::string trace_string(const net::Design& design, const NoiseTrace& trace) {
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.path.size(); ++i) {
    if (i > 0) os << " <- ";
    const TraceStep& s = trace.path[i];
    os << design.net(s.net).name << " (" << report::fmt_mv(s.peak) << ")";
  }
  if (!trace.aggressors.empty()) {
    os << " [aggressors:";
    for (const NetId a : trace.aggressors) os << ' ' << design.net(a).name;
    os << "]";
  }
  return os.str();
}

}  // namespace nw::noise
