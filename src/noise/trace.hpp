// Noise origin tracing: answer "where did this glitch come from?"
//
// A violation on a net may be injected locally or may have travelled in
// through its driver from a noisy fanin cone. The trace walks the chain
// of worst propagated contributions back to the net where the glitch was
// injected and lists the aggressors of the worst combination there — the
// nets a designer would respace, shield, or retime to fix the violation.
#pragma once

#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"

namespace nw::noise {

struct TraceStep {
  NetId net;
  double peak = 0.0;   ///< combined noise on this net [V]
  double width = 0.0;  ///< [s]
};

struct NoiseTrace {
  /// From the queried net (front) back to the injection net (back).
  std::vector<TraceStep> path;
  /// Aggressors in the worst combination at the injection net.
  std::vector<NetId> aggressors;
};

/// Trace the worst glitch on `net` back to its origin. Returns an empty
/// trace if the net carries no noise.
[[nodiscard]] NoiseTrace trace_origin(const Result& result, NetId net);

/// Human-readable rendering: "y2 (412.0 mV) <- via gate <- w2 (500.1 mV)
/// [aggressors: w1 w3]".
[[nodiscard]] std::string trace_string(const net::Design& design,
                                       const NoiseTrace& trace);

}  // namespace nw::noise
