#include "noise/glitch_models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parasitics/reduce.hpp"
#include "spice/cluster.hpp"

namespace nw::noise {

const char* to_string(GlitchModel m) noexcept {
  switch (m) {
    case GlitchModel::kChargeSharing: return "charge-sharing";
    case GlitchModel::kDevgan: return "devgan";
    case GlitchModel::kTwoPi: return "two-pi";
    case GlitchModel::kReducedMna: return "reduced-mna";
    case GlitchModel::kMnaExact: return "mna-exact";
  }
  return "?";
}

// The three analytic models as elementwise span kernels — the canonical
// implementations. Slot i reads only index i of every span, so the loops
// auto-vectorize (charge-sharing/devgan fully; two-pi up to the libm
// calls). The scalar estimate_* wrappers below run the same loops with
// count 1: one compiled expression per formula, so the per-net reference
// path and the SoA kernel path cannot diverge bitwise, whatever the
// compiler's FP-contraction choices. NW_KERNEL_NOINLINE keeps the wrappers
// from inlining a private copy whose late FMA formation could differ from
// the out-of-line loop.
#if defined(__GNUC__) || defined(__clang__)
#define NW_KERNEL_NOINLINE __attribute__((noinline))
#else
#define NW_KERNEL_NOINLINE
#endif

NW_KERNEL_NOINLINE
void peaks_charge_sharing(std::span<const double> r_hold,
                          std::span<const double> c_ground,
                          std::span<const double> c_couple,
                          std::span<const double> slew, double vdd,
                          std::span<double> peak, std::span<double> width,
                          std::span<double> peak_delay) {
  for (std::size_t i = 0; i < r_hold.size(); ++i) {
    const double ctot = c_couple[i] + c_ground[i];
    // The charge-shared level decays through Rh; half-peak width is the RC
    // half-life plus half the injection ramp.
    const bool live = ctot > 0.0;
    peak[i] = live ? vdd * c_couple[i] / ctot : 0.0;
    width[i] = live ? 0.693 * r_hold[i] * ctot + 0.5 * slew[i] : 0.0;
    peak_delay[i] = live ? slew[i] : 0.0;
  }
}

NW_KERNEL_NOINLINE
void peaks_devgan(std::span<const double> r_hold, std::span<const double> c_ground,
                  std::span<const double> c_couple, std::span<const double> slew,
                  double vdd, std::span<double> peak, std::span<double> width,
                  std::span<double> peak_delay) {
  for (std::size_t i = 0; i < r_hold.size(); ++i) {
    // Devgan's metric: the victim cannot exceed the IR drop of the injected
    // current Cc * dVa/dt through Rh, capped by the rail.
    peak[i] = std::min(vdd, r_hold[i] * c_couple[i] * vdd / slew[i]);
    const double tau = r_hold[i] * (c_couple[i] + c_ground[i]);
    width[i] = slew[i] + 0.693 * tau;
    peak_delay[i] = slew[i];
  }
}

NW_KERNEL_NOINLINE
void peaks_two_pi(std::span<const double> r_hold, std::span<const double> c_ground,
                  std::span<const double> c_couple, std::span<const double> slew,
                  double vdd, std::span<double> peak, std::span<double> width,
                  std::span<double> peak_delay) {
  for (std::size_t i = 0; i < r_hold.size(); ++i) {
    const double tau_x = r_hold[i] * c_couple[i];                  // injection
    const double tau_v = r_hold[i] * (c_couple[i] + c_ground[i]);  // victim pole
    if (tau_v <= 0.0) {
      peak[i] = 0.0;
      width[i] = 0.0;
      peak_delay[i] = 0.0;
      continue;
    }
    // Single-pole response to a ramp of duration tr injected through Cc:
    //   v(t) = Vdd (tau_x / tr) (1 - e^{-t/tau_v}),  t <= tr   (rising)
    //   v(t) = v(tr) e^{-(t - tr)/tau_v},            t >  tr   (decay)
    const double rise_sat = 1.0 - std::exp(-slew[i] / tau_v);
    peak[i] = std::min(vdd * (tau_x / slew[i]) * rise_sat, vdd);
    peak_delay[i] = slew[i];
    // Half-peak crossings: t1 on the rise where the saturation term reaches
    // half its final value, t2 = tr + tau_v ln 2 on the decay.
    const double half = 0.5 * rise_sat;
    const double t1 = (half < 1.0) ? -tau_v * std::log(1.0 - half) : 0.0;
    const double t2 = slew[i] + tau_v * 0.693147180559945;
    width[i] = std::max(t2 - t1, 0.0);
  }
}

namespace {

/// Runs one analytic span kernel on a single scenario.
template <typename Kernel>
GlitchEstimate estimate_one(Kernel&& kernel, const CouplingScenario& s) {
  GlitchEstimate g;
  kernel(std::span<const double>(&s.r_hold, 1), std::span<const double>(&s.c_ground, 1),
         std::span<const double>(&s.c_couple, 1), std::span<const double>(&s.slew, 1),
         s.vdd, std::span<double>(&g.peak, 1), std::span<double>(&g.width, 1),
         std::span<double>(&g.peak_delay, 1));
  return g;
}

}  // namespace

GlitchEstimate estimate_charge_sharing(const CouplingScenario& s) {
  return estimate_one(peaks_charge_sharing, s);
}

GlitchEstimate estimate_devgan(const CouplingScenario& s) {
  if (s.slew <= 0.0) throw std::invalid_argument("estimate_devgan: non-positive slew");
  return estimate_one(peaks_devgan, s);
}

GlitchEstimate estimate_two_pi(const CouplingScenario& s) {
  if (s.slew <= 0.0) throw std::invalid_argument("estimate_two_pi: non-positive slew");
  return estimate_one(peaks_two_pi, s);
}

GlitchEstimate estimate(GlitchModel model, const CouplingScenario& s) {
  switch (model) {
    case GlitchModel::kChargeSharing: return estimate_charge_sharing(s);
    case GlitchModel::kDevgan: return estimate_devgan(s);
    case GlitchModel::kTwoPi: return estimate_two_pi(s);
    case GlitchModel::kReducedMna:
    case GlitchModel::kMnaExact:
      throw std::invalid_argument("estimate: model needs the design context");
  }
  return {};
}

namespace {

/// Per-node extra capacitance of `net`: load pin caps at their attachment
/// nodes plus couplings to every net except `exclude` (quiet neighbours
/// are AC ground). Unattached loads lump at the driver.
std::vector<double> extra_caps(const net::Design& design, const para::Parasitics& para,
                               NetId net, NetId exclude) {
  const para::RcNet& rc = para.net(net);
  std::vector<double> extra(rc.node_count(), 0.0);
  for (const PinId load : design.net(net).loads) {
    auto node = rc.node_of_pin(load);
    if (node >= rc.node_count()) node = 0;
    extra[node] += design.pin_cap(load);
  }
  for (const auto ci : para.couplings_of(net)) {
    const auto& cc = para.coupling(ci);
    if (cc.other_net(net) == exclude) continue;
    extra[cc.node_on(net)] += cc.c;
  }
  return extra;
}

}  // namespace

GlitchEstimate estimate_reduced(const net::Design& design, const para::Parasitics& para,
                                NetId victim, NetId aggressor, double slew,
                                double vdd) {
  const para::PiModel pi_v =
      para::pi_model(para.net(victim), extra_caps(design, para, victim, aggressor));
  const para::PiModel pi_a =
      para::pi_model(para.net(aggressor), extra_caps(design, para, aggressor, victim));

  double cc = 0.0;
  for (const auto ci : para.couplings_of(victim)) {
    const auto& c = para.coupling(ci);
    if (c.other_net(victim) == aggressor) cc += c.c;
  }
  if (cc <= 0.0) return {};

  const double r_hold = spice::driver_resistance(design, victim, /*holding=*/true);
  const double r_drv = spice::driver_resistance(design, aggressor, /*holding=*/false);

  spice::Circuit ckt;
  const std::size_t src = ckt.add_node("src");
  const std::size_t a1 = ckt.add_node("a1");
  const std::size_t a2 = (pi_a.r > 0.0) ? ckt.add_node("a2") : a1;
  const std::size_t v1 = ckt.add_node("v1");
  const std::size_t v2 = (pi_v.r > 0.0) ? ckt.add_node("v2") : v1;

  ckt.add_vsrc(src, 0, spice::Pwl::ramp(0.0, slew, 0.0, vdd));
  ckt.add_res(src, a1, r_drv);
  if (pi_a.c_near > 0.0) ckt.add_cap(a1, 0, pi_a.c_near);
  if (a2 != a1) {
    ckt.add_res(a1, a2, pi_a.r);
    if (pi_a.c_far > 0.0) ckt.add_cap(a2, 0, pi_a.c_far);
  }
  ckt.add_res(v1, 0, r_hold);
  if (pi_v.c_near > 0.0) ckt.add_cap(v1, 0, pi_v.c_near);
  if (v2 != v1) {
    ckt.add_res(v1, v2, pi_v.r);
    if (pi_v.c_far > 0.0) ckt.add_cap(v2, 0, pi_v.c_far);
  }
  // Coupling split between the near and far ends of both pi models —
  // distributed coupling collapses onto the reduced nodes half-and-half.
  ckt.add_cap(a1, v1, 0.5 * cc);
  if (a2 != a1 || v2 != v1) {
    ckt.add_cap(a2, v2, 0.5 * cc);
  } else {
    ckt.add_cap(a1, v1, 0.5 * cc);
  }

  // Simulate long enough for injection + decay.
  const double tau = r_hold * (cc + pi_v.total_cap());
  const double t_stop = slew + 12.0 * std::max(tau, 5e-12);
  const double dt = std::max(std::min(slew, tau) / 50.0, 5e-14);
  const spice::TransientResult sim = spice::simulate(ckt, {t_stop, dt});
  const spice::GlitchMeasure m = spice::measure_glitch(sim.waveform(v2), 0.0);
  GlitchEstimate g;
  g.peak = m.peak;
  g.width = m.width;
  g.peak_delay = m.t_peak;
  return g;
}

GlitchEstimate estimate_mna(const net::Design& design, const para::Parasitics& para,
                            NetId victim, NetId aggressor, double slew, double vdd,
                            const spice::TranOptions& tran) {
  spice::ClusterSpec spec;
  spec.victim = victim;
  spec.vdd = vdd;
  spec.aggressors.push_back({aggressor, /*start=*/0.0, slew, /*rising=*/true});
  const spice::Cluster cl = spice::build_cluster(design, para, spec);
  const spice::TransientResult sim = spice::simulate(cl.circuit, tran);
  const spice::Waveform w = sim.waveform(cl.victim_probe);
  const spice::GlitchMeasure m = spice::measure_glitch(w, cl.baseline);
  GlitchEstimate g;
  g.peak = m.peak;
  g.width = m.width;
  g.peak_delay = m.t_peak;
  return g;
}

spice::Waveform synthesize_glitch(const GlitchEstimate& estimate, double t_start,
                                  double baseline, double dt, double t_stop) {
  if (dt <= 0.0 || t_stop <= 0.0) {
    throw std::invalid_argument("synthesize_glitch: bad time grid");
  }
  const auto n = static_cast<std::size_t>(std::ceil(t_stop / dt)) + 1;
  std::vector<double> samples(n, baseline);
  if (estimate.peak > 0.0) {
    const double t_rise = std::max(estimate.peak_delay, dt);
    // Half-peak width = t_rise/2 (rise side) + tau ln2 (decay side).
    const double tau =
        std::max((estimate.width - 0.5 * t_rise) / 0.693147180559945, 0.25 * dt);
    const double t_peak = t_start + t_rise;
    for (std::size_t k = 0; k < n; ++k) {
      const double t = dt * static_cast<double>(k);
      if (t <= t_start) continue;
      if (t <= t_peak) {
        samples[k] = baseline + estimate.peak * (t - t_start) / t_rise;
      } else {
        samples[k] = baseline + estimate.peak * std::exp(-(t - t_peak) / tau);
      }
    }
  }
  return spice::Waveform(0.0, dt, std::move(samples));
}

CouplingScenario scenario_for(const net::Design& design, const para::Parasitics& para,
                              NetId victim, NetId aggressor, double aggressor_slew,
                              double vdd) {
  CouplingScenario s;
  s.vdd = vdd;
  // The driver ramp degrades over the aggressor's own RC before it reaches
  // the coupling caps: fold the aggressor time constant (drive resistance x
  // half the distributed load, plus half the wire's own RC) into the edge.
  const double r_agg = spice::driver_resistance(design, aggressor, /*holding=*/false);
  double c_agg = para.total_cap(aggressor, 1.0);
  for (const PinId load : design.net(aggressor).loads) c_agg += design.pin_cap(load);
  const double tau_agg =
      r_agg * 0.5 * c_agg + 0.5 * para.net(aggressor).total_res() * 0.5 * c_agg;
  const double degraded = 2.2 * tau_agg;
  s.slew = std::sqrt(aggressor_slew * aggressor_slew + degraded * degraded);
  // The victim's holding impedance at the coupling points includes part of
  // the victim wire resistance between the holder and the coupled nodes.
  s.r_hold = spice::driver_resistance(design, victim, /*holding=*/true) +
             0.5 * para.net(victim).total_res();

  double c_to_aggressor = 0.0;
  double c_other_coupling = 0.0;
  for (const auto ci : para.couplings_of(victim)) {
    const auto& cc = para.coupling(ci);
    if (cc.other_net(victim) == aggressor) {
      c_to_aggressor += cc.c;
    } else {
      c_other_coupling += cc.c;  // quiet neighbours act as grounded cap
    }
  }
  s.c_couple = c_to_aggressor;

  double c_pins = 0.0;
  for (const PinId load : design.net(victim).loads) c_pins += design.pin_cap(load);
  s.c_ground = para.net(victim).total_ground_cap() + c_other_coupling + c_pins;
  return s;
}

CouplingScenario bound_scenario_for(const net::Design& design,
                                    const para::Parasitics& para, NetId victim,
                                    NetId aggressor, double aggressor_slew,
                                    double vdd) {
  CouplingScenario s = scenario_for(design, para, victim, aggressor, aggressor_slew, vdd);
  s.slew = aggressor_slew;
  s.r_hold = spice::driver_resistance(design, victim, /*holding=*/true) +
             para.net(victim).total_res();
  return s;
}

}  // namespace nw::noise
