// Crosstalk delay impact ("noise-on-delay").
//
// A glitch injected while the victim itself is transitioning does not
// cause a functional upset — it shifts the victim's edge. First-order
// model (the standard signoff bump model): an aligned aggressor bump of
// peak dV stretches (or shrinks) the victim transition by
//
//     delta_d = (dV / Vdd) * t_slew(victim).
//
// The windows matter here exactly as for functional noise: only noise
// whose window overlaps the victim's *own switching window* can affect
// its delay. Without windows, every aggressor is assumed to align with
// the victim edge — the pessimism this pass quantifies.
#pragma once

#include <vector>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "sta/sta.hpp"

namespace nw::noise {

struct DelayImpact {
  double peak_during_transition = 0.0;  ///< worst aligned noise [V]
  double delta_delay = 0.0;             ///< edge shift [s]
};

struct DelayImpactSummary {
  std::vector<DelayImpact> nets;  ///< indexed by NetId
  double total_delta = 0.0;       ///< sum over nets [s]
  double max_delta = 0.0;         ///< worst single net [s]
  std::size_t affected_nets = 0;  ///< nets with non-zero impact

  [[nodiscard]] const DelayImpact& net(NetId id) const { return nets.at(id.index()); }
};

/// Compute per-net delay impact from an existing noise Result. The victim
/// alignment window is its switching window dilated by its slowest slew.
/// In kNoFiltering mode every contribution aligns with the edge.
[[nodiscard]] DelayImpactSummary compute_delay_impact(const net::Design& design,
                                                      const sta::Result& sta_result,
                                                      const Result& noise_result,
                                                      const Options& options);

}  // namespace nw::noise
