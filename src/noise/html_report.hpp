// Self-contained HTML noise dashboard (the --html-report artifact).
//
// One file, no external references: a single <style> block, inline SVG
// charts (report/svg.hpp), no scripts. Sections, each with a fixed id
// that tools/validate_obs.py --html-report requires:
//   #meta       run identity (design, mode, model, options digest, build)
//   #summary    headline counts (violations, endpoints, noisy nets, ...)
//   #timelines  noise-window vs sensitivity-window spans, top-K violations
//   #pareto     aggressor Pareto over the in-worst provenance shares
//   #slack      endpoint noise-slack histogram (violations left of zero)
//   #executor   per-worker utilization, per-region imbalance, attribution
//   #flame      static SVG flamegraph of the sampled span stacks
//   #live       telemetry sparklines from the timeseries ring (--sample-ms)
//   #phases     stats-v2 phase/latency tables from the metrics snapshot
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"

namespace nw::noise {

struct HtmlReportOptions {
  std::size_t top_violations = 12;  ///< timeline rows (worst slack first)
  std::size_t top_aggressors = 12;  ///< Pareto bars
  std::size_t slack_bins = 24;      ///< slack histogram resolution
  /// Collapsed-stack samples for the #flame panel (obs::Profiler::snapshot).
  /// Empty = profiling off; the panel renders a "profiling disabled" note.
  std::vector<obs::FoldedEntry> profile;
  /// Telemetry ring snapshot for the #live panel (one sparkline per series).
  /// Empty = sampling off; the panel renders a "sampling disabled" note.
  obs::TimeSeriesSnapshot timeseries;
};

/// Render the dashboard for one analysis run. Chart content is derived
/// from the Result's deterministic fields (violations, provenance,
/// slacks); only the #phases tables carry wall-time values.
void write_html_report(std::ostream& os, const net::Design& design,
                       const Options& options, const Result& result,
                       const HtmlReportOptions& hopt = {});

}  // namespace nw::noise
