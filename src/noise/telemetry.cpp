#include "noise/telemetry.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "noise/analyzer.hpp"
#include "obs/tracer.hpp"

namespace nw::noise {

Telemetry telemetry_from_metrics(const obs::RunMeta& meta,
                                 const obs::MetricsSnapshot& snap) {
  const auto counter = [&](const char* name) -> std::size_t {
    const obs::MetricSample* s = snap.find(name);
    return s ? static_cast<std::size_t>(s->count) : 0;
  };
  const auto gauge = [&](const char* name) -> double {
    const obs::MetricSample* s = snap.find(name);
    return s ? s->value : 0.0;
  };
  Telemetry t;
  t.threads = meta.threads;
  t.iterations = meta.iterations;
  t.context_seconds = gauge(kMetricContextSeconds);
  t.estimate_seconds = gauge(kMetricEstimateSeconds);
  t.propagate_seconds = gauge(kMetricPropagateSeconds);
  t.endpoints_seconds = gauge(kMetricEndpointsSeconds);
  t.total_seconds = gauge(kMetricTotalSeconds);
  t.victims_estimated = counter(kMetricVictimsEstimated);
  t.victims_reused = counter(kMetricVictimsReused);
  t.aggressor_pairs = counter(kMetricAggressorPairs);
  t.pairs_filtered_cap = counter(kMetricPairsFilteredCap);
  t.levels = static_cast<std::size_t>(gauge(kMetricLevels));
  t.endpoints = static_cast<std::size_t>(gauge(kMetricEndpoints));
  return t;
}

void write_stats(std::ostream& os, const Telemetry& t) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << "analysis stats\n";
  os << "  threads               " << t.threads << "\n";
  os << "  iterations            " << t.iterations << "\n";
  os << std::fixed << std::setprecision(3);
  const auto phase = [&](const char* name, double seconds) {
    os << "  " << std::left << std::setw(20) << name << std::right << std::setw(10)
       << seconds * 1e3 << " ms\n";
  };
  phase("build-context", t.context_seconds);
  phase("estimate-injected", t.estimate_seconds);
  phase("propagate", t.propagate_seconds);
  phase("check-endpoints", t.endpoints_seconds);
  phase("total", t.total_seconds);
  os << "  victims estimated     " << t.victims_estimated << "\n";
  os << "  victims reused        " << t.victims_reused << "\n";
  os << "  aggressor pairs       " << t.aggressor_pairs << "\n";
  os << "  pairs below cap       " << t.pairs_filtered_cap << "\n";
  os << "  propagation levels    " << t.levels << "\n";
  os << "  endpoints checked     " << t.endpoints << "\n";
  os.flags(flags);
  os.precision(precision);
}

namespace {

/// Full-precision double rendering that stays valid JSON (no inf/nan).
std::string jnum(double v) {
  if (!(v == v) || v > 1e308 || v < -1e308) return "0";
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

std::string executor_stats_json(const Result& result) {
  const util::UtilizationSnapshot& ex = result.executor;
  std::ostringstream os;
  os << "{\"enabled\":" << (ex.enabled ? "true" : "false")
     << ",\"threads\":" << ex.threads << ",\"wall_s\":" << jnum(ex.wall_s)
     << ",\"workers\":[";
  for (std::size_t i = 0; i < ex.workers.size(); ++i) {
    const util::WorkerStats& w = ex.workers[i];
    if (i) os << ",";
    os << "{\"worker\":" << w.worker << ",\"busy_s\":" << jnum(w.busy_s)
       << ",\"idle_s\":" << jnum(w.idle_s) << ",\"chunks\":" << w.chunks << "}";
  }
  os << "],\"regions\":{";
  for (std::size_t i = 0; i < ex.regions.size(); ++i) {
    const util::RegionStats& r = ex.regions[i];
    if (i) os << ",";
    os << "\"" << obs::json_escape(r.label) << "\":{\"invocations\":" << r.invocations
       << ",\"chunks\":" << r.chunks << ",\"items\":" << r.items
       << ",\"wall_s\":" << jnum(r.wall_s) << ",\"busy_s\":" << jnum(r.busy_s)
       << ",\"max_busy_s\":" << jnum(r.max_busy_s)
       << ",\"wait_s\":" << jnum(r.wait_s)
       << ",\"imbalance\":" << jnum(r.imbalance(ex.threads)) << "}";
  }
  os << "},\"attribution\":{\"top_levels\":[";
  for (std::size_t i = 0; i < result.attribution.top_levels.size(); ++i) {
    const WorkAttribution::LevelCost& l = result.attribution.top_levels[i];
    if (i) os << ",";
    os << "{\"level\":" << l.level << ",\"instances\":" << l.instances
       << ",\"wall_ms\":" << jnum(l.wall_ms) << "}";
  }
  os << "],\"top_nets\":[";
  for (std::size_t i = 0; i < result.attribution.top_nets.size(); ++i) {
    const WorkAttribution::NetCost& n = result.attribution.top_nets[i];
    if (i) os << ",";
    os << "{\"net\":\"" << obs::json_escape(n.net)
       << "\",\"aggressors\":" << n.aggressors << ",\"peak\":" << jnum(n.peak)
       << "}";
  }
  os << "]}}";
  return os.str();
}

}  // namespace nw::noise
