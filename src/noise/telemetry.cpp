#include "noise/telemetry.hpp"

#include <iomanip>
#include <ostream>

namespace nw::noise {

Telemetry telemetry_from_metrics(const obs::RunMeta& meta,
                                 const obs::MetricsSnapshot& snap) {
  const auto counter = [&](const char* name) -> std::size_t {
    const obs::MetricSample* s = snap.find(name);
    return s ? static_cast<std::size_t>(s->count) : 0;
  };
  const auto gauge = [&](const char* name) -> double {
    const obs::MetricSample* s = snap.find(name);
    return s ? s->value : 0.0;
  };
  Telemetry t;
  t.threads = meta.threads;
  t.iterations = meta.iterations;
  t.context_seconds = gauge(kMetricContextSeconds);
  t.estimate_seconds = gauge(kMetricEstimateSeconds);
  t.propagate_seconds = gauge(kMetricPropagateSeconds);
  t.endpoints_seconds = gauge(kMetricEndpointsSeconds);
  t.total_seconds = gauge(kMetricTotalSeconds);
  t.victims_estimated = counter(kMetricVictimsEstimated);
  t.victims_reused = counter(kMetricVictimsReused);
  t.aggressor_pairs = counter(kMetricAggressorPairs);
  t.pairs_filtered_cap = counter(kMetricPairsFilteredCap);
  t.levels = static_cast<std::size_t>(gauge(kMetricLevels));
  t.endpoints = static_cast<std::size_t>(gauge(kMetricEndpoints));
  return t;
}

void write_stats(std::ostream& os, const Telemetry& t) {
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << "analysis stats\n";
  os << "  threads               " << t.threads << "\n";
  os << "  iterations            " << t.iterations << "\n";
  os << std::fixed << std::setprecision(3);
  const auto phase = [&](const char* name, double seconds) {
    os << "  " << std::left << std::setw(20) << name << std::right << std::setw(10)
       << seconds * 1e3 << " ms\n";
  };
  phase("build-context", t.context_seconds);
  phase("estimate-injected", t.estimate_seconds);
  phase("propagate", t.propagate_seconds);
  phase("check-endpoints", t.endpoints_seconds);
  phase("total", t.total_seconds);
  os << "  victims estimated     " << t.victims_estimated << "\n";
  os << "  victims reused        " << t.victims_reused << "\n";
  os << "  aggressor pairs       " << t.aggressor_pairs << "\n";
  os << "  pairs below cap       " << t.pairs_filtered_cap << "\n";
  os << "  propagation levels    " << t.levels << "\n";
  os << "  endpoints checked     " << t.endpoints << "\n";
  os.flags(flags);
  os.precision(precision);
}

}  // namespace nw::noise
