// Static noise analysis with noise windows (the paper's contribution).
//
// For every net (as victim) the analyzer:
//   1. identifies coupled aggressors above a capacitance threshold,
//   2. estimates each aggressor's injected glitch (noise/glitch_models),
//   3. combines contributions into the worst simultaneous glitch — under
//      three selectable filtering regimes (the experiment axes):
//
//      kNoFiltering       every aggressor switches at once, glitches always
//                         coincide, latches are always sampling. The
//                         pre-timing-window industry baseline.
//      kSwitchingWindows  aggressors only combine where their STA switching
//                         windows overlap (scan-line worst alignment).
//      kNoiseWindows      full noise-window propagation: every glitch
//                         carries the window of time it can exist; injected
//                         and gate-propagated noise combine only where
//                         windows overlap; sequential endpoints fail only
//                         if the noise window intersects the latch
//                         sensitivity window. The paper's contribution.
//
//   4. propagates glitches through gates (library noise-propagation
//      tables) in topological order, and
//   5. checks endpoints (sequential data pins, primary outputs) against
//      immunity curves, recording violations and noise slack.
//
// An optional refinement loop models noise-on-delay feedback: combined
// glitch widths inflate switching windows and the analysis repeats until
// the violation count stabilizes (experiment R-T5).
//
// Execution model: the analysis is a staged pipeline over an immutable
// AnalysisContext (noise/context.hpp) — estimate_injected (parallel over
// victims), propagate (levelized, parallel within a level), and
// check_endpoints (parallel over endpoints) — run on a util::Executor of
// Options::threads threads. Full and incremental analysis are the same
// stages; incremental mode only narrows the estimation stage to dirty
// victims. Output is bit-identical for every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "noise/constraints.hpp"
#include "noise/glitch_models.hpp"
#include "noise/progress.hpp"
#include "noise/telemetry.hpp"
#include "obs/metrics.hpp"
#include "parasitics/rcnet.hpp"
#include "spice/transient.hpp"
#include "sta/sta.hpp"
#include "util/executor.hpp"
#include "util/interval.hpp"

namespace nw::noise {

enum class AnalysisMode { kNoFiltering, kSwitchingWindows, kNoiseWindows };

[[nodiscard]] const char* to_string(AnalysisMode m) noexcept;

/// Kernel-path selection for the analysis hot loops. kScalar runs the
/// per-net reference code; kVector runs the flat structure-of-arrays
/// kernels over KernelBuffers (noise/kernels.hpp). Both paths share one
/// compiled implementation of every floating-point expression, so the
/// Result is bit-identical for either value — like Options::threads, the
/// choice is an execution detail and is excluded from options_digest().
enum class SimdMode { kAuto, kScalar, kVector };

[[nodiscard]] const char* to_string(SimdMode m) noexcept;

/// kAuto resolves to kVector: the flat kernels are portable C++ (the
/// compiler vectorizes them where -DNW_SIMD / -march allow) and win on
/// cache locality and allocation pressure even without SIMD units.
[[nodiscard]] SimdMode resolve_simd(SimdMode m) noexcept;

struct Options {
  AnalysisMode mode = AnalysisMode::kNoiseWindows;
  GlitchModel model = GlitchModel::kTwoPi;
  double min_coupling_cap = 0.05e-15;  ///< ignore weaker aggressor coupling [F]
  double min_peak = 1e-3;              ///< ignore contributions below [V]
  double clock_period = 1e-9;          ///< must match the STA run [s]
  double clock_uncertainty = 0.0;      ///< widens sensitivity windows by +-u [s]
  double latch_duty = 0.5;             ///< transparent fraction of the cycle (latches)
  double default_slew = 30e-12;        ///< aggressor slew when STA has none [s]
  double po_immunity_frac = 0.45;      ///< primary-output immunity (fraction of vdd)
  int refine_iterations = 0;           ///< extra noise-on-delay passes (0 = off)
  /// Analysis parallelism: 1 = serial (default), 0 = hardware_concurrency,
  /// n = a fixed pool of n threads. Results are bit-identical for every
  /// value — stages write to pre-sized per-index slots and reduce in index
  /// order (see DESIGN.md "Execution model").
  int threads = 1;
  /// Hot-loop kernel path: scalar per-net reference code or flat SoA
  /// kernels (see SimdMode). Results are bit-identical either way.
  SimdMode simd = SimdMode::kAuto;
  spice::TranOptions mna_tran{2e-9, 0.5e-12};  ///< kMnaExact settings
  /// Functional filtering: mutual-exclusion groups of aggressor nets.
  /// Applies in every mode (it is orthogonal to temporal filtering).
  Constraints constraints;
};

/// One aggressor's (or the fanin-propagated) glitch contribution to a net.
struct Contribution {
  NetId aggressor;        ///< invalid id = propagated from fanin gate
  NetId from_net;         ///< propagated only: the fanin net it came through
  double peak = 0.0;      ///< [V]
  double width = 0.0;     ///< [s]
  IntervalSet window;     ///< when the glitch can exist (empty = never)
  bool in_worst = false;  ///< participates in the worst combination

  [[nodiscard]] bool is_propagated() const noexcept { return !aggressor.valid(); }
};

/// Combined noise state of a net.
struct NetNoise {
  double injected_peak = 0.0;    ///< worst simultaneous aggressor sum [V]
  double propagated_peak = 0.0;  ///< worst glitch arriving through the driver [V]
  double total_peak = 0.0;       ///< worst combination of both [V]
  double width = 0.0;            ///< width of the worst combined glitch [s]
  IntervalSet window;            ///< noise window of the combined glitch
  Interval worst_alignment;      ///< time interval achieving total_peak
  std::vector<Contribution> contributions;
  std::size_t aggressor_count = 0;  ///< aggressors above the cap threshold
  /// Aggressors dropped because they never switch (empty window). Tracked
  /// per net so incremental runs restore it for reused victims and the
  /// aggregate counter matches a full re-run exactly.
  std::size_t filtered_temporal = 0;
};

/// The first filtering regime that would have culled a violation's noise
/// below its immunity threshold, had the analysis been run under it.
/// Diagnostic only: a violation surviving the current mode has kNone when
/// even the strongest regime (sensitivity-window intersection) keeps the
/// noise above threshold, i.e. the violation is not a filtering artifact.
enum class FilterStage {
  kNone,                ///< survives every regime
  kSwitchingWindow,     ///< culled once injected windows are honoured
  kNoiseWindow,         ///< culled once propagated windows are honoured too
  kSensitivityWindow,   ///< culled once restricted to the sampling window
};

[[nodiscard]] const char* to_string(FilterStage s) noexcept;

/// The timing-window filter's verdict on one aggressor at the endpoint.
enum class WindowVerdict {
  kInWorst,             ///< participates in the worst combination
  kWindowDisjoint,      ///< its window misses the worst alignment
  kConstraintExcluded,  ///< overlaps, but its mutex group is represented
};

[[nodiscard]] const char* to_string(WindowVerdict v) noexcept;

/// One aggressor's share of a violation, ranked (see Provenance::shares).
struct AggressorShare {
  NetId aggressor;            ///< invalid = noise propagated through the driver
  NetId from_net;             ///< propagated shares: the fanin net it arrived on
  double peak = 0.0;          ///< injected (or arriving) glitch peak [V]
  double coupling_cap = 0.0;  ///< total coupling to the victim [F] (0 = propagated)
  /// Widest overlap of the share's noise window with the worst alignment
  /// (empty when disjoint). For in-worst shares this IS the alignment.
  Interval overlap;
  WindowVerdict verdict = WindowVerdict::kWindowDisjoint;

  [[nodiscard]] bool is_propagated() const noexcept { return !aggressor.valid(); }
};

/// One hop of the propagation path from the endpoint back to injection.
struct ProvenanceStep {
  NetId net;
  double peak = 0.0;   ///< combined glitch on the net [V]
  double width = 0.0;  ///< [s]
};

/// Why one violation fired: the aggressor shares of the worst combination,
/// the combined peak under each progressively stronger filtering regime
/// (recomputed from this run's contribution set — aggressors that never
/// switch are absent, their count is in NetNoise::filtered_temporal), and
/// the propagation path to the injection net. Built per violation during
/// check_endpoints; deterministic and bit-identical across thread counts.
struct Provenance {
  PinId endpoint;
  NetId net;
  /// Combined peak when every contribution coincides (no filtering) [V].
  double peak_unfiltered = 0.0;
  /// Injected windows honoured, propagated noise unconstrained [V].
  double peak_switching = 0.0;
  /// All noise windows honoured (the paper's combination) [V].
  double peak_noise_window = 0.0;
  /// Additionally restricted to the endpoint's sensitivity window [V].
  double peak_in_sensitivity = 0.0;
  FilterStage culled_by = FilterStage::kNone;
  Interval alignment;  ///< worst-alignment interval of the endpoint check
  /// Ranked: in-worst shares first, then peak descending, then net id.
  std::vector<AggressorShare> shares;
  /// Endpoint net first, injection net last (strongest propagated member
  /// followed at each hop — the same walk as trace_origin).
  std::vector<ProvenanceStep> path;
};

/// A failing endpoint.
struct Violation {
  PinId endpoint;
  NetId net;
  double peak = 0.0;        ///< noise seen by the endpoint [V]
  double width = 0.0;       ///< [s]
  double threshold = 0.0;   ///< immunity at that width [V]
  Interval sensitivity;     ///< sampling window (sequential endpoints)
  bool temporal = true;     ///< noise window intersected the sensitivity window

  [[nodiscard]] double slack() const noexcept { return threshold - peak; }
};

/// Where analysis cost landed: the heaviest propagation levels by measured
/// wall time and the heaviest victims by evaluated aggressor count. The
/// level walls are timing data (nondeterministic, like every *_seconds
/// gauge); the net costs are deterministic work counts. Rendered into the
/// stats-JSON "executor" section and the dashboard's utilization panel.
struct WorkAttribution {
  struct LevelCost {
    std::size_t level = 0;
    std::size_t instances = 0;
    double wall_ms = 0.0;  ///< summed over refinement passes
  };
  struct NetCost {
    std::string net;
    std::size_t aggressors = 0;  ///< contributions evaluated for the victim
    double peak = 0.0;           ///< its combined glitch peak [V]
  };
  std::vector<LevelCost> top_levels;  ///< heaviest levels, wall descending
  std::vector<NetCost> top_nets;      ///< busiest victims, aggressors descending
};

struct Result {
  std::vector<NetNoise> nets;        ///< indexed by NetId
  std::vector<Violation> violations;
  /// Parallel to `violations`: provenance[i] explains violations[i].
  std::vector<Provenance> provenance;
  std::size_t endpoints_checked = 0;
  std::size_t noisy_nets = 0;        ///< nets whose glitch exceeds receiver immunity
  std::size_t aggressors_considered = 0;
  std::size_t aggressors_filtered_temporal = 0;  ///< dropped: empty/never-overlapping window
  int iterations = 1;
  std::vector<std::size_t> iteration_violations;  ///< per refinement pass
  /// Noise slack (threshold - peak) of every checked endpoint, violating or
  /// not — the input of the slack-histogram experiment.
  std::vector<double> endpoint_slacks;
  /// Phase wall times and work counters for this run — a typed view over
  /// `metrics` (see telemetry_from_metrics). Wall times are the only
  /// nondeterministic fields of a Result.
  Telemetry telemetry;
  /// Every metric the run registered (counters, gauges, histograms), for
  /// the --stats-json export and programmatic consumers. Metrics marked
  /// deterministic are bit-identical across thread counts.
  obs::MetricsSnapshot metrics;
  /// Run identity embedded in the stats JSON (design, mode, options hash,
  /// build id, resolved thread count).
  obs::RunMeta run_meta;
  /// Executor self-measurement for this run: per-worker busy/idle time and
  /// per-parallel_for-region wall/busy/imbalance aggregates. All timing
  /// (nondeterministic); the "executor" section of stats-JSON schema v3.
  util::UtilizationSnapshot executor;
  /// Top-K work attribution (see WorkAttribution).
  WorkAttribution attribution;
  /// Design-state generation this result was computed against. analyze()
  /// leaves it 0; a long-lived session (session::Session) stamps its
  /// edit epoch here so cached results can be matched to design state.
  std::uint64_t epoch = 0;

  [[nodiscard]] const NetNoise& net(NetId id) const { return nets.at(id.index()); }
};

/// Stable hex digest of every analysis option (FNV-1a over a canonical
/// rendering) — two runs with equal digests analyzed under the same
/// settings. Embedded in the stats JSON meta for trajectory comparison.
[[nodiscard]] std::string options_digest(const Options& options);

/// Estimated heap footprint of a Result in bytes (capacity-based: vector
/// storage for per-net noise, contributions, windows, violations, and
/// slacks). Feeds the session's cache byte gauge; an estimate, not an
/// allocator-exact count.
[[nodiscard]] std::size_t memory_bytes(const Result& result) noexcept;

/// Run the analysis. `sta_result` must come from the same design/parasitics.
/// An optional ProgressSink (noise/progress.hpp) receives checkpoint
/// notifications and may cancel the run (throws Cancelled); installing one
/// never changes the computed Result.
[[nodiscard]] Result analyze(const net::Design& design, const para::Parasitics& para,
                             const sta::Result& sta_result, const Options& options = {},
                             ProgressSink* progress = nullptr);

/// Incremental re-analysis (ECO mode) after a change localized to
/// `changed_nets` (coupling edits, resized drivers, re-timed inputs):
/// injected glitches are re-estimated only for victims coupled to a
/// changed net (plus the changed nets themselves); unaffected victims
/// reuse `previous`'s estimates. Propagation and endpoint checks always
/// re-run — they are cheap next to glitch estimation (dominant under
/// kReducedMna/kMnaExact). The result is identical to a full analyze()
/// provided `changed_nets` covers every net whose parasitics or timing
/// changed. `options.refine_iterations` is ignored (single pass).
/// Throws std::invalid_argument (naming the offending id and the valid
/// range) when a changed net lies outside the design, or when `previous`
/// does not cover this design's nets — never indexes out of bounds.
[[nodiscard]] Result analyze_incremental(const net::Design& design,
                                         const para::Parasitics& para,
                                         const sta::Result& sta_result,
                                         const Options& options, const Result& previous,
                                         std::span<const NetId> changed_nets,
                                         ProgressSink* progress = nullptr);

}  // namespace nw::noise
