#include "noise/kernels.hpp"

#include <algorithm>
#include <utility>

#include "util/executor.hpp"

namespace nw::noise {

Combined combine_flat(std::span<const Contribution> contributions, AnalysisMode mode,
                      const Interval& restrict_to, const Constraints& constraints,
                      CombineView view, CombineScratch& s) {
  Combined out;
  const bool injected_only = view == CombineView::kInjectedOnly;
  if (mode == AnalysisMode::kNoFiltering && constraints.empty()) {
    // Everything coincides, always. Summation in (compacted) index order —
    // the order the scalar path sums its (filtered) vector in.
    std::size_t j = 0;
    for (const auto& c : contributions) {
      if (injected_only && c.is_propagated()) continue;
      out.peak += c.peak;
      out.width = std::max(out.width, c.width);
      out.active.push_back(j++);
    }
    out.alignment = Interval::everything();
    return out;
  }

  // Gather the view's member intervals into flat spans in (item, member)
  // order — exactly the event sequence the scalar path builds — so the
  // event sort (and with it summation order at ties) cannot differ.
  s.lo.clear();
  s.hi.clear();
  s.item.clear();
  s.weight.clear();
  s.width.clear();
  s.group.clear();
  const bool grouped = !constraints.empty();
  for (const auto& c : contributions) {
    if (injected_only && c.is_propagated()) continue;
    const std::size_t j = s.weight.size();
    s.weight.push_back(c.peak);
    s.width.push_back(c.width);
    if (grouped) {
      s.group.push_back(c.aggressor.valid() ? constraints.group_of(c.aggressor) : -1);
    }
    if (mode == AnalysisMode::kNoFiltering ||
        (view == CombineView::kPropagatedOpen && c.is_propagated())) {
      // No-filtering mode ignores windows but still honours logic
      // constraints; the propagated-open view widens fanin noise only.
      const Interval ev = Interval::everything();
      s.lo.push_back(ev.lo);
      s.hi.push_back(ev.hi);
      s.item.push_back(j);
    } else {
      for (const Interval& iv : c.window.intervals()) {
        s.lo.push_back(iv.lo);
        s.hi.push_back(iv.hi);
        s.item.push_back(j);
      }
    }
  }

  // Restrict in place. When restrict_to is `everything` this is the
  // identity (members already lie inside ±1e30); otherwise it clips each
  // member exactly like IntervalSet::intersect(Interval) and the event
  // builder below drops the emptied slots the way intersect() erases them.
  kernels::clip(s.lo, s.hi, restrict_to);

  s.events.clear();
  for (std::size_t k = 0; k < s.lo.size(); ++k) {
    if (s.lo[k] > s.hi[k]) continue;
    s.events.push_back({s.lo[k], true, s.item[k]});
    s.events.push_back({s.hi[k], false, s.item[k]});
  }
  const ScanResult scan =
      grouped ? scan_events_max_overlap_grouped(s.events, s.weight, s.group)
              : scan_events_max_overlap(s.events, s.weight);
  out.peak = scan.best_sum;
  out.alignment = scan.best_interval;
  out.active = scan.active;
  for (const auto i : scan.active) out.width = std::max(out.width, s.width[i]);
  return out;
}

namespace kernels {

void clip(std::span<double> lo, std::span<double> hi, const Interval& r) {
  const double rlo = r.lo;
  const double rhi = r.hi;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    lo[i] = std::max(lo[i], rlo);
    hi[i] = std::min(hi[i], rhi);
  }
}

void extend_right(std::span<const double> hi, std::span<const double> delay,
                  std::span<const double> width, std::span<double> out) {
  for (std::size_t i = 0; i < hi.size(); ++i) {
    const double after = delay[i] + width[i];
    out[i] = hi[i] + after;
  }
}

IntervalSet union_flat(std::vector<Interval>& members) {
  IntervalSet out;
  std::erase_if(members, [](const Interval& iv) { return iv.is_empty(); });
  if (members.empty()) return out;
  std::sort(members.begin(), members.end(), [](const Interval& a, const Interval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  });
  // Sweep-merge: a member touching or overlapping the current run extends
  // it (hi = max — pure selection, as add()'s hull is); a gap starts a new
  // run. The runs are the canonical disjoint, gap-separated list add()
  // converges to regardless of insertion order.
  Interval cur = members.front();
  for (std::size_t i = 1; i < members.size(); ++i) {
    const Interval& m = members[i];
    if (m.lo <= cur.hi) {
      cur.hi = std::max(cur.hi, m.hi);
    } else {
      out.add(cur);
      cur = m;
    }
  }
  out.add(cur);
  return out;
}

}  // namespace kernels

namespace {
// Pack work granularity: scenario_for is the dominant per-pair cost, the
// same weight class as analytic estimation (kEstimateChunk = 8).
constexpr std::size_t kPackChunk = 8;
}  // namespace

KernelBuffers KernelBuffers::build(const net::Design& design,
                                   const AnalysisContext& ctx) {
  KernelBuffers kb;
  kb.vdd = ctx.vdd;
  const std::size_t n = ctx.aggressors.size();
  const std::size_t pairs = ctx.aggressor_pair_count();

  kb.agg_offsets.reserve(n + 1);
  kb.agg_net.reserve(pairs);
  kb.agg_cap.reserve(pairs);
  kb.agg_offsets.push_back(0);
  for (const auto& row : ctx.aggressors) {
    for (const AggressorEdge& e : row) {
      kb.agg_net.push_back(e.net);
      kb.agg_cap.push_back(e.coupling);
    }
    kb.agg_offsets.push_back(static_cast<std::uint32_t>(kb.agg_net.size()));
  }
  kb.pair_slew.assign(pairs, 0.0);

  kb.load_cap.assign(ctx.load_cap.begin(), ctx.load_cap.end());
  kb.switch_lo.resize(n);
  kb.switch_hi.resize(n);

  std::size_t insts = 0;
  for (const auto& level : ctx.levels) insts += level.size();
  kb.level_offsets.reserve(ctx.levels.size() + 1);
  kb.level_offsets.push_back(0);
  kb.slab_cell.reserve(insts);
  kb.slab_seq.reserve(insts);
  kb.in_offsets.reserve(insts + 1);
  kb.out_offsets.reserve(insts + 1);
  kb.in_offsets.push_back(0);
  kb.out_offsets.push_back(0);
  for (const auto& level : ctx.levels) {
    for (const InstId inst_id : level) {
      const net::Instance& inst = design.instance(inst_id);
      const lib::Cell& cell = design.cell_of(inst_id);
      kb.slab_cell.push_back(&cell);
      kb.slab_seq.push_back(cell.is_sequential() ? 1 : 0);
      // Valid nets in pin order — the order the scalar propagate loops
      // visit them in (max-selection tie-breaking depends on it).
      for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
        const net::Pin& p = design.pin(inst.pins[pi]);
        if (!p.net.valid()) continue;
        if (cell.pins[pi].dir == lib::PinDir::kInput) {
          kb.in_net.push_back(p.net);
        } else if (cell.pins[pi].dir == lib::PinDir::kOutput) {
          kb.out_net.push_back(p.net);
        }
      }
      kb.in_offsets.push_back(static_cast<std::uint32_t>(kb.in_net.size()));
      kb.out_offsets.push_back(static_cast<std::uint32_t>(kb.out_net.size()));
    }
    kb.level_offsets.push_back(static_cast<std::uint32_t>(kb.slab_cell.size()));
  }

  kb.sens_lo.reserve(ctx.endpoints.size());
  kb.sens_hi.reserve(ctx.endpoints.size());
  kb.ep_net.reserve(ctx.endpoints.size());
  for (const EndpointRef& ep : ctx.endpoints) {
    kb.sens_lo.push_back(ep.sensitivity.lo);
    kb.sens_hi.push_back(ep.sensitivity.hi);
    kb.ep_net.push_back(ep.net);
  }
  return kb;
}

void KernelBuffers::set_switch_windows(std::span<const Interval> windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    switch_lo[i] = windows[i].lo;
    switch_hi[i] = windows[i].hi;
  }
}

void KernelBuffers::pack_scenarios(const net::Design& design,
                                   const para::Parasitics& para,
                                   const sta::Result& sta, const Options& opt,
                                   const std::vector<char>* dirty,
                                   util::Executor& exec) {
  const std::size_t n = agg_offsets.empty() ? 0 : agg_offsets.size() - 1;
  const bool analytic =
      opt.model != GlitchModel::kReducedMna && opt.model != GlitchModel::kMnaExact;
  if (analytic && sc_r_hold.size() != agg_net.size()) {
    sc_r_hold.assign(agg_net.size(), 0.0);
    sc_c_ground.assign(agg_net.size(), 0.0);
    sc_c_couple.assign(agg_net.size(), 0.0);
    sc_slew.assign(agg_net.size(), 0.0);
  }
  exec.parallel_for("pack-scenarios", n, kPackChunk,
                    [&](std::size_t begin, std::size_t end) {
    for (std::size_t vi = begin; vi < end; ++vi) {
      if (dirty != nullptr && !(*dirty)[vi]) continue;
      for (std::uint32_t k = agg_offsets[vi]; k < agg_offsets[vi + 1]; ++k) {
        const NetId agg = agg_net[k];
        // The slew rule of the scalar estimation loop, verbatim
        // (comparison + select + max: no arithmetic, bit-exact).
        const sta::NetTiming& at = sta.nets[agg.index()];
        double slew = at.slew_min > 0.0 ? at.slew_min : opt.default_slew;
        slew = std::max(slew, 1e-12);
        pair_slew[k] = slew;
        if (analytic) {
          // The same scenario_for() call the scalar path makes per pair —
          // its mixed-order c_other_coupling accumulation is not
          // decomposable, so it is shared rather than re-derived.
          const CouplingScenario s =
              scenario_for(design, para, NetId{vi}, agg, slew, vdd);
          sc_r_hold[k] = s.r_hold;
          sc_c_ground[k] = s.c_ground;
          sc_c_couple[k] = s.c_couple;
          sc_slew[k] = s.slew;
        }
      }
    }
  });
  packed_ = true;
}

}  // namespace nw::noise
