// The immutable per-run inputs of the staged analysis pipeline.
//
// Everything the stages share read-only — coupling-graph adjacency,
// per-net load caps, the levelized propagation schedule, and endpoint
// sensitivity windows — is derived exactly once per analyze() call and
// then handed to every stage and every worker thread. Nothing in here
// changes during a run (the refinement loop's inflated switching windows
// are the pipeline's only mutable state and live outside the context).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "obs/memtrack.hpp"
#include "parasitics/rcnet.hpp"
#include "sta/sta.hpp"
#include "util/interval.hpp"

namespace nw::noise {

struct Options;

/// One aggressor of a victim: coupling caps between the pair, summed and
/// pre-filtered against Options::min_coupling_cap. Sorted by aggressor id
/// within each victim, so estimation order (and therefore contribution
/// order and scan-line tie-breaking) is deterministic.
struct AggressorEdge {
  NetId net;
  double coupling = 0.0;  ///< summed victim/aggressor coupling [F]
};

/// A sequential endpoint to check: one data pin of one sequential cell,
/// with its sampling-sensitivity window precomputed from the clock
/// arrival, cell setup/hold, and clock options.
struct EndpointRef {
  InstId inst;
  PinId pin;         ///< the data pin itself
  NetId net;         ///< the net it samples
  Interval sensitivity;
};

/// One victim's adjacency row. The element storage comes from the context's
/// bump arena (charged to the "analysis_context" memory account); rows are
/// built once at context-build time and freed together with the arena, the
/// exact lifetime a bump allocator wants. A default-constructed row (null
/// arena) falls back to the heap and still charges the account.
using AggRow =
    std::vector<AggressorEdge,
                obs::ArenaAllocator<AggressorEdge, obs::MemAccountId::kAnalysisContext>>;

struct AnalysisContext {
  double vdd = 0.0;

  /// Backing storage for the adjacency rows. Declared before `aggressors`
  /// so the rows (whose arena deallocate is a no-op) are destroyed before
  /// their blocks are released. shared_ptr keeps the rows' allocator
  /// pointers stable when the context itself is moved.
  std::shared_ptr<obs::Arena> arena;

  /// victim -> aggressors above the coupling threshold (sorted by net id).
  std::vector<AggRow> aggressors;
  std::size_t pairs_filtered_cap = 0;  ///< pairs dropped by the threshold

  /// Total capacitive load a net presents to its driver (ground + coupling
  /// + receiver pin caps) — the gate-delay lookup load during propagation.
  std::vector<double> load_cap;

  /// STA switching window per net (the refinement loop's baseline).
  std::vector<Interval> switch_window;

  /// Nets driven by input ports: finalized before any gate level runs.
  std::vector<NetId> port_nets;

  /// Levelized propagation schedule. Level 0 holds every sequential
  /// instance (their outputs depend on no combinational fanin — Q noise is
  /// injected-only); level L >= 1 holds combinational instances whose
  /// deepest combinational fanin sits at level L-1. Instances within a
  /// level touch disjoint nets and may run in parallel.
  std::vector<std::vector<InstId>> levels;

  /// Sequential endpoints in deterministic (instance, pin) order.
  std::vector<EndpointRef> endpoints;

  /// Total victim/aggressor pairs over every adjacency row — the flat
  /// (CSR) size of the aggressor graph. KernelBuffers (noise/kernels.hpp)
  /// sizes its packed slabs from this.
  [[nodiscard]] std::size_t aggressor_pair_count() const noexcept;

  /// Capacity-based bytes of the members the arena does NOT back (levels,
  /// windows, endpoints, the row-header vector). The Pipeline charges this
  /// to the "analysis_context" account via a size-accounting hook; adding
  /// it to the arena's self-charged blocks gives the context's footprint.
  [[nodiscard]] std::size_t hook_bytes() const noexcept;

  /// Derive the context. `sta_result` must match the design (checked).
  [[nodiscard]] static AnalysisContext build(const net::Design& design,
                                             const para::Parasitics& para,
                                             const sta::Result& sta_result,
                                             const Options& options);

  /// Incremental-invalidation closure: the victims whose injected-noise
  /// estimates a change to `changed` nets can affect — the changed nets
  /// themselves plus every net coupled to one through `para` (the raw
  /// coupling incidence, not the threshold-filtered adjacency, so a cap
  /// crossing min_coupling_cap in either direction still dirties its
  /// victim). Returns a sorted, duplicate-free net list. Throws
  /// std::invalid_argument naming the offending id when a changed net is
  /// outside this context's design.
  [[nodiscard]] std::vector<NetId> dirty_closure(const para::Parasitics& para,
                                                 std::span<const NetId> changed) const;
};

}  // namespace nw::noise
