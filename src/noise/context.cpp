#include "noise/context.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "noise/analyzer.hpp"

namespace nw::noise {

AnalysisContext AnalysisContext::build(const net::Design& design,
                                       const para::Parasitics& para,
                                       const sta::Result& sta_result,
                                       const Options& opt) {
  if (sta_result.nets.size() != design.net_count()) {
    throw std::invalid_argument("noise::analyze: STA result does not match design");
  }
  AnalysisContext ctx;
  ctx.vdd = design.library().vdd();
  const std::size_t n = design.net_count();

  // Coupling-graph adjacency: per victim, coupling caps grouped by
  // aggressor and pre-filtered against the threshold. Rows live in the
  // context arena; each row reserves its exact surviving-edge count first,
  // so the bump allocator never strands a reallocation ghost.
  ctx.arena = std::make_shared<obs::Arena>(obs::MemAccountId::kAnalysisContext);
  ctx.aggressors.reserve(n);
  for (std::size_t vi = 0; vi < n; ++vi) {
    const NetId victim{vi};
    std::unordered_map<NetId::value_type, double> agg_cap;
    for (const auto ci : para.couplings_of(victim)) {
      const auto& cc = para.coupling(ci);
      agg_cap[cc.other_net(victim).value()] += cc.c;
    }
    std::size_t kept = 0;
    for (const auto& [agg_value, c_total] : agg_cap) {
      if (c_total >= opt.min_coupling_cap) ++kept;
    }
    ctx.aggressors.emplace_back(
        obs::ArenaAllocator<AggressorEdge, obs::MemAccountId::kAnalysisContext>(
            ctx.arena.get()));
    AggRow& edges = ctx.aggressors.back();
    edges.reserve(kept);
    for (const auto& [agg_value, c_total] : agg_cap) {
      if (c_total < opt.min_coupling_cap) {
        ++ctx.pairs_filtered_cap;
        continue;
      }
      edges.push_back(AggressorEdge{NetId{agg_value}, c_total});
    }
    std::sort(edges.begin(), edges.end(),
              [](const AggressorEdge& a, const AggressorEdge& b) {
                return a.net.value() < b.net.value();
              });
  }

  // Per-net driver load (for gate-delay lookups during propagation).
  ctx.load_cap.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const NetId id{i};
    double cap = para.total_cap(id, /*miller=*/1.0);
    for (const PinId load : design.net(id).loads) cap += design.pin_cap(load);
    ctx.load_cap[i] = cap;
  }

  ctx.switch_window.resize(n);
  for (std::size_t i = 0; i < n; ++i) ctx.switch_window[i] = sta_result.nets[i].window;

  for (std::size_t i = 0; i < n; ++i) {
    const net::Net& nn = design.net(NetId{i});
    if (nn.driver.valid() && design.pin(nn.driver).kind == net::PinKind::kInputPort) {
      ctx.port_nets.push_back(NetId{i});
    }
  }

  // Levelized schedule from the topological order. net_level is 0 for
  // port-driven, sequential-driven, and undriven nets; a combinational
  // instance sits one level above its deepest input net.
  const std::vector<InstId> topo = design.topological_order();
  std::vector<std::size_t> net_level(n, 0);
  std::vector<std::size_t> inst_level(design.instance_count(), 0);
  std::size_t max_level = 0;
  for (const InstId inst_id : topo) {
    const net::Instance& inst = design.instance(inst_id);
    const lib::Cell& cell = design.cell_of(inst_id);
    if (cell.is_sequential()) continue;  // level 0
    std::size_t lvl = 0;
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kInput) continue;
      const net::Pin& ip = design.pin(inst.pins[pi]);
      if (ip.net.valid()) lvl = std::max(lvl, net_level[ip.net.index()]);
    }
    lvl += 1;
    inst_level[inst_id.index()] = lvl;
    max_level = std::max(max_level, lvl);
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].dir != lib::PinDir::kOutput) continue;
      const net::Pin& op = design.pin(inst.pins[pi]);
      if (op.net.valid()) net_level[op.net.index()] = lvl;
    }
  }
  ctx.levels.assign(max_level + 1, {});
  for (const InstId inst_id : topo) {
    ctx.levels[inst_level[inst_id.index()]].push_back(inst_id);
  }

  // Sequential endpoints with precomputed sensitivity windows.
  for (std::size_t si = 0; si < design.sequentials().size(); ++si) {
    const InstId s = design.sequentials()[si];
    const net::Instance& inst = design.instance(s);
    const lib::Cell& cell = design.cell_of(s);
    const Interval clk =
        si < sta_result.clock_arrivals.size() && !sta_result.clock_arrivals[si].is_empty()
            ? sta_result.clock_arrivals[si]
            : Interval{0.0, 0.0};
    // Edge-triggered flops sample only around the next capture edge. A
    // level-sensitive latch is vulnerable throughout its transparent
    // phase — anything arriving while the enable is open flows through
    // and is held at the closing edge. Clock uncertainty widens both.
    Interval sens;
    if (cell.kind == lib::CellKind::kLatch) {
      sens = Interval{clk.lo - cell.setup,
                      clk.hi + opt.latch_duty * opt.clock_period + cell.hold};
    } else {
      sens = Interval{clk.lo + opt.clock_period - cell.setup,
                      clk.hi + opt.clock_period + cell.hold};
    }
    sens = sens.dilated(opt.clock_uncertainty, opt.clock_uncertainty);
    for (std::size_t pi = 0; pi < cell.pins.size(); ++pi) {
      if (cell.pins[pi].role != lib::PinRole::kData) continue;
      const net::Pin& dp = design.pin(inst.pins[pi]);
      if (!dp.net.valid()) continue;
      ctx.endpoints.push_back(EndpointRef{s, inst.pins[pi], dp.net, sens});
    }
  }
  return ctx;
}

std::size_t AnalysisContext::aggressor_pair_count() const noexcept {
  std::size_t pairs = 0;
  for (const auto& row : aggressors) pairs += row.size();
  return pairs;
}

std::size_t AnalysisContext::hook_bytes() const noexcept {
  std::size_t bytes = aggressors.capacity() * sizeof(AggRow);
  bytes += load_cap.capacity() * sizeof(double);
  bytes += switch_window.capacity() * sizeof(Interval);
  bytes += port_nets.capacity() * sizeof(NetId);
  bytes += levels.capacity() * sizeof(std::vector<InstId>);
  for (const auto& level : levels) bytes += level.capacity() * sizeof(InstId);
  bytes += endpoints.capacity() * sizeof(EndpointRef);
  return bytes;
}

std::vector<NetId> AnalysisContext::dirty_closure(const para::Parasitics& para,
                                                  std::span<const NetId> changed) const {
  const std::size_t n = aggressors.size();
  std::vector<char> dirty(n, 0);
  for (const NetId net : changed) {
    if (net.index() >= n) {
      throw std::invalid_argument(
          "dirty_closure: changed net id " + std::to_string(net.value()) +
          " outside the design (" + std::to_string(n) + " nets)");
    }
    dirty[net.index()] = 1;
    for (const auto ci : para.couplings_of(net)) {
      dirty[para.coupling(ci).other_net(net).index()] = 1;
    }
  }
  std::vector<NetId> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (dirty[i]) out.push_back(NetId{i});
  }
  return out;
}

}  // namespace nw::noise
