// Streaming progress and cooperative cancellation for long analyses.
//
// The staged pipeline (analyzer.cpp) reports checkpoints through an
// optional ProgressSink: once after the analysis context is built, then
// between batches of the estimation stage, after every propagation level,
// and between batches of the endpoint checks. Checkpoints fire only on
// the coordinating thread, between (never inside) parallel regions, so a
// sink needs no synchronization against the pipeline and — because batch
// sizes are multiples of the stage chunk sizes — installing a sink
// changes neither the results nor the deterministic executor-task counts.
//
// Cancellation is polled at the same checkpoints: when
// `cancel_requested()` returns true the pipeline throws Cancelled out of
// analyze()/analyze_incremental() without producing a Result. A
// session::Session only commits analysis output after analyze returns,
// so a cancelled analysis leaves the session bit-identical to its
// pre-analyze state (epoch unchanged, journal intact) — see DESIGN.md
// §4.9.
#pragma once

#include <cstddef>
#include <stdexcept>

namespace nw::noise {

/// One pipeline checkpoint. `completed`/`total` count phase-local work
/// units (victims, instances, endpoints); `eta_s` extrapolates the
/// remaining phase time from the elapsed rate (0 until measurable).
struct Progress {
  const char* phase = "";  ///< "build-context" | "estimate-injected" |
                           ///< "propagate" | "check-endpoints"
  int iteration = 1;           ///< refinement pass (1-based)
  std::size_t completed = 0;   ///< work units finished within the phase
  std::size_t total = 0;       ///< work units in the phase
  std::size_t level = 0;       ///< propagate only: last completed level index
  double phase_elapsed_s = 0;  ///< wall time since the phase began [s]
  double eta_s = 0;            ///< projected remaining phase time [s]
};

/// Thrown out of analyze()/analyze_incremental() when the sink requests
/// cancellation; no Result is produced and no caller state is mutated.
class Cancelled : public std::runtime_error {
 public:
  Cancelled() : std::runtime_error("analysis cancelled") {}
};

/// Observer threaded through the pipeline. Both methods are invoked from
/// the coordinating thread only, between parallel regions.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;

  /// Called at every checkpoint. Must not re-enter the analyzer.
  virtual void on_progress(const Progress& progress) = 0;

  /// Polled at every checkpoint; return true to abort the analysis (the
  /// pipeline throws Cancelled at that checkpoint).
  virtual bool cancel_requested() { return false; }
};

}  // namespace nw::noise
