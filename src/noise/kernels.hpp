// Structure-of-arrays kernel buffers and the flat analysis kernels.
//
// The per-net hot path (noise/analyzer.cpp) walks pointer-rich structures:
// vector<vector<AggressorEdge>> adjacency, IntervalSet windows on every
// contribution, and per-pair CouplingScenario construction inside the
// estimation loop. KernelBuffers mirrors everything those loops read into
// flat, contiguous slabs — CSR aggressor adjacency, packed per-pair
// estimation operands, flat switching windows, per-level instance slabs,
// and flat endpoint sensitivities — so the stage kernels stream over plain
// double arrays instead of chasing heap nodes.
//
// Bit-identity contract: the vector path (Options::simd == kVector) must
// produce a byte-identical Result to the scalar reference path. Three
// mechanisms guarantee it:
//
//   1. Shared arithmetic. Every floating-point expression lives in exactly
//      one compiled function — the flat kernels (peaks_* in glitch_models,
//      the event-scan cores in util/scanline) — and the scalar path calls
//      the same functions with count-1 spans. With one definition there is
//      one FP-contraction decision, so -ffp-contract=fast cannot split the
//      paths.
//   2. Identical sequences. combine_flat() feeds the scan core the same
//      (interval, item) event sequence the scalar combine() builds, in the
//      same order, so sorting and summation order cannot differ.
//   3. Selection-only restructuring. The batch union and window transforms
//      only shift/compare/min/max endpoint values — the same operations
//      IntervalSet::add()/intersect() perform, in an order that provably
//      produces the same canonical interval list.
//
// The buffers are derived from an AnalysisContext once per Pipeline and
// packed lazily: structure (CSR, slabs) at build time, per-pair scenario
// operands on first estimation (incremental runs pack only dirty rows —
// clean rows reuse previous contributions and never read their slots).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/design.hpp"
#include "noise/analyzer.hpp"
#include "noise/context.hpp"
#include "obs/memtrack.hpp"
#include "util/interval.hpp"
#include "util/scanline.hpp"

namespace nw::util {
class Executor;
}

namespace nw::noise {

/// Worst simultaneous sum of contributions, optionally restricted to a
/// time window (mode 3 latch checks restrict to the sensitivity window).
/// Produced by both the scalar combine and combine_flat().
struct Combined {
  double peak = 0.0;
  double width = 0.0;
  Interval alignment;
  std::vector<std::size_t> active;
};

/// Which contributions a combination sees. The scalar path materializes
/// these views by copying the contribution vector; the flat path gathers
/// them directly.
enum class CombineView {
  /// Every contribution, windows as recorded. `active` holds original
  /// contribution indices.
  kAll,
  /// Injected contributions only (skips fanin-propagated ones). Indices
  /// are COMPACTED — 0..m-1 in original relative order — matching the
  /// scalar path's filtered-copy vector, so event sort tie-breaking (and
  /// with it summation order) is identical. Only `.peak` is meaningful to
  /// current callers.
  kInjectedOnly,
  /// Propagated windows widened to `everything` (provenance's
  /// "switching-windows" stage). Original indices.
  kPropagatedOpen,
};

/// Reusable gather/scan scratch for combine_flat — one per thread, so the
/// per-combination IntervalSet/WeightedWindow heap churn of the scalar
/// path disappears entirely.
struct CombineScratch {
  std::vector<double> lo, hi;       ///< member intervals, flat
  std::vector<std::size_t> item;    ///< owning item per member
  std::vector<double> weight;       ///< per-item peak
  std::vector<double> width;        ///< per-item width
  std::vector<int> group;           ///< per-item constraint group (grouped only)
  std::vector<ScanEvent> events;
};

/// Flat-span combine: gathers the view's member intervals into scratch
/// spans, clips them against `restrict_to` elementwise, and runs the shared
/// event-scan core. Bit-identical to the scalar combine() on the same view
/// (see file header). Thread-safe for distinct scratch objects.
[[nodiscard]] Combined combine_flat(std::span<const Contribution> contributions,
                                    AnalysisMode mode, const Interval& restrict_to,
                                    const Constraints& constraints, CombineView view,
                                    CombineScratch& scratch);

namespace kernels {

/// Elementwise interval clip against [r.lo, r.hi] — the flat
/// IntervalSet::intersect(Interval). Slots left with lo[i] > hi[i] are
/// empty (including every slot when `r` itself is empty). Branch-free
/// min/max over contiguous doubles; the autovectorizer's bread and butter.
void clip(std::span<double> lo, std::span<double> hi, const Interval& r);

/// out[i] = hi[i] + (delay[i] + width[i]) — the right-edge extension of
/// Interval::dilated(0.0, peak_delay + width), batched. The association
/// matches the scalar path exactly: `after` is formed first, then added.
void extend_right(std::span<const double> hi, std::span<const double> delay,
                  std::span<const double> width, std::span<double> out);

/// Canonical union of arbitrary intervals, in place: sorts `members` by
/// (lo, hi), sweep-merges touching/overlapping neighbours, and rebuilds an
/// IntervalSet. Merged endpoints are min/max selections of the inputs —
/// no arithmetic — so the result is bit-identical to feeding the members
/// through repeated IntervalSet::add() in any order. Empty members
/// (lo > hi) are skipped like add() skips them.
[[nodiscard]] IntervalSet union_flat(std::vector<Interval>& members);

}  // namespace kernels

/// Kernel-buffer slab storage: every slab allocates through the tracking
/// allocator bound to the "kernel_buffers" memory account, so the CSR +
/// scenario footprint shows up exactly (current/peak/allocs/frees) in the
/// schema-v5 stats "memory" section. Stateless allocator — the vectors
/// move/swap exactly like std::vector.
template <class T>
using KbVec = std::vector<T, obs::TrackedAlloc<T, obs::MemAccountId::kKernelBuffers>>;

/// Flat mirror of the AnalysisContext structures the stage kernels read,
/// plus packed per-pair estimation operands. Immutable structure after
/// build(); set_switch_windows() and pack_scenarios() fill the mutable
/// slabs (per refinement pass and lazily-once respectively).
struct KernelBuffers {
  double vdd = 0.0;

  // --- CSR aggressor adjacency (victim-major; row vi = net vi) ---
  KbVec<std::uint32_t> agg_offsets;  ///< net_count+1 row starts
  KbVec<NetId> agg_net;              ///< aggressor id per pair slot
  KbVec<double> agg_cap;             ///< summed coupling per pair slot

  // --- per-pair estimation operands (slot-parallel to agg_net) ---
  /// Aggressor slew after the STA/default/floor rule — the raw input the
  /// MNA models take. Packed by pack_scenarios() for every model.
  KbVec<double> pair_slew;
  /// scenario_for()'s electrical abstract, packed only for the analytic
  /// models (the MNA models rebuild circuits from the design per pair).
  KbVec<double> sc_r_hold, sc_c_ground, sc_c_couple, sc_slew;

  // --- flat per-net arrays ---
  KbVec<double> switch_lo, switch_hi;  ///< current pass's windows
  KbVec<double> load_cap;              ///< gate-delay lookup loads

  // --- per-level contiguous instance slabs (level-major "slab position") ---
  KbVec<std::uint32_t> level_offsets;  ///< levels+1 starts into slabs
  KbVec<const lib::Cell*> slab_cell;
  KbVec<std::uint8_t> slab_seq;        ///< 1 = sequential cell
  KbVec<std::uint32_t> in_offsets;     ///< slab+1: CSR of input nets
  KbVec<NetId> in_net;                 ///< valid input nets, pin order
  KbVec<std::uint32_t> out_offsets;    ///< slab+1: CSR of output nets
  KbVec<NetId> out_net;                ///< valid output nets, pin order

  // --- flat endpoints ---
  KbVec<double> sens_lo, sens_hi;
  KbVec<NetId> ep_net;

  /// Derive every structural slab from the context (O(nets + pairs +
  /// instances); no floating-point transformation, values are copied).
  [[nodiscard]] static KernelBuffers build(const net::Design& design,
                                           const AnalysisContext& ctx);

  /// Re-gather the (possibly refinement-inflated) switching windows into
  /// the flat lo/hi arrays. Called once per estimation pass. Empty windows
  /// keep their lo > hi encoding.
  void set_switch_windows(std::span<const Interval> windows);

  /// Pack per-pair estimation operands: the slew rule for every pair, plus
  /// scenario_for()'s fields for analytic models. `dirty == nullptr` packs
  /// every row; otherwise only rows with (*dirty)[vi] != 0 (clean victims
  /// reuse previous contributions and never read their slots). Rows are
  /// independent; parallelized over victims on `exec`. Idempotent per
  /// Pipeline via scenarios_packed() — operands depend only on immutable
  /// design/parasitics/STA state, never on refinement windows.
  void pack_scenarios(const net::Design& design, const para::Parasitics& para,
                      const sta::Result& sta, const Options& opt,
                      const std::vector<char>* dirty, util::Executor& exec);

  [[nodiscard]] bool scenarios_packed() const noexcept { return packed_; }

 private:
  bool packed_ = false;
};

}  // namespace nw::noise
