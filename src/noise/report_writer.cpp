#include "noise/report_writer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "noise/trace.hpp"
#include "report/table.hpp"

namespace nw::noise {

void write_report(std::ostream& os, const net::Design& design, const Options& opt,
                  const Result& result, const ReportOptions& ropt) {
  os << "=== noisewin report: design '" << design.name() << "' ===\n";
  os << "mode: " << to_string(opt.mode) << "   model: " << to_string(opt.model)
     << "   clock period: " << report::fmt_ps(opt.clock_period) << "\n";
  os << "nets: " << design.net_count() << "   endpoints checked: "
     << result.endpoints_checked << "   aggressor pairs: "
     << result.aggressors_considered << " (temporally filtered: "
     << result.aggressors_filtered_temporal << ")\n";
  os << "violations: " << result.violations.size()
     << "   noisy nets: " << result.noisy_nets << "\n\n";

  if (!result.violations.empty()) {
    // Violations worst-slack first.
    std::vector<const Violation*> sorted;
    sorted.reserve(result.violations.size());
    for (const auto& v : result.violations) sorted.push_back(&v);
    std::sort(sorted.begin(), sorted.end(), [](const Violation* a, const Violation* b) {
      return a->slack() < b->slack();
    });

    report::TextTable t(ropt.include_windows
                            ? std::vector<std::string>{"endpoint", "net", "peak", "width",
                                                       "threshold", "slack", "sensitivity"}
                            : std::vector<std::string>{"endpoint", "net", "peak", "width",
                                                       "threshold", "slack"});
    std::size_t shown = 0;
    for (const auto* v : sorted) {
      if (shown++ >= ropt.max_violations) break;
      std::vector<std::string> row{design.pin_name(v->endpoint),
                                   design.net(v->net).name,
                                   report::fmt_mv(v->peak),
                                   report::fmt_ps(v->width),
                                   report::fmt_mv(v->threshold),
                                   report::fmt_mv(v->slack())};
      if (ropt.include_windows) {
        row.push_back(v->sensitivity == Interval::everything() ? "(always)"
                                                               : v->sensitivity.str());
      }
      t.add_row(std::move(row));
    }
    os << "-- violations (worst slack first";
    if (result.violations.size() > ropt.max_violations) {
      os << ", showing " << ropt.max_violations << " of " << result.violations.size();
    }
    os << ") --\n";
    t.print(os);
    os << "\n";

    // Origin of the worst violation: the nets a fix would target.
    const NoiseTrace origin = trace_origin(result, sorted.front()->net);
    if (!origin.path.empty()) {
      os << "worst violation origin: " << trace_string(design, origin) << "\n\n";
    }
  }

  // Worst nets by total peak.
  std::vector<std::size_t> order(result.nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return result.nets[a].total_peak > result.nets[b].total_peak;
  });
  report::TextTable worst({"net", "aggressors", "injected", "propagated", "total",
                           "width", "worst alignment"});
  std::size_t rows = 0;
  for (const auto i : order) {
    const NetNoise& nn = result.nets[i];
    if (nn.total_peak <= 0.0 || rows++ >= ropt.max_noisy_nets) break;
    worst.add_row({design.net(NetId{i}).name, std::to_string(nn.aggressor_count),
                   report::fmt_mv(nn.injected_peak), report::fmt_mv(nn.propagated_peak),
                   report::fmt_mv(nn.total_peak), report::fmt_ps(nn.width),
                   nn.worst_alignment == Interval::everything()
                       ? "(always)"
                       : nn.worst_alignment.str()});
  }
  os << "-- worst nets by combined peak --\n";
  worst.print(os);

  if (ropt.telemetry_footer) {
    os << "\n";
    write_stats(os, result.telemetry);
  }
}

void write_delay_impact(std::ostream& os, const net::Design& design,
                        const DelayImpactSummary& impact, std::size_t max_rows) {
  os << "\n-- crosstalk delay impact --\n";
  os << "affected nets: " << impact.affected_nets
     << "   total delta: " << report::fmt_ps(impact.total_delta)
     << "   max delta: " << report::fmt_ps(impact.max_delta) << "\n";
  std::vector<std::size_t> order(impact.nets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return impact.nets[a].delta_delay > impact.nets[b].delta_delay;
  });
  report::TextTable t({"net", "aligned peak", "delta delay"});
  std::size_t rows = 0;
  for (const auto i : order) {
    const DelayImpact& di = impact.nets[i];
    if (di.delta_delay <= 0.0 || rows++ >= max_rows) break;
    t.add_row({design.net(NetId{i}).name, report::fmt_mv(di.peak_during_transition),
               report::fmt_ps(di.delta_delay)});
  }
  t.print(os);
}

std::string report_string(const net::Design& design, const Options& options,
                          const Result& result, const ReportOptions& ropt) {
  std::ostringstream os;
  write_report(os, design, options, result, ropt);
  return os.str();
}

namespace {

std::string interval_str(const Interval& iv) {
  if (iv == Interval::everything()) return "(always)";
  if (iv.is_empty()) return "(never)";
  return iv.str();
}

}  // namespace

bool write_explain(std::ostream& os, const net::Design& design, const Options& opt,
                   const Result& result, NetId net) {
  if (net.index() >= result.nets.size()) {
    throw std::invalid_argument("explain: bad net id");
  }
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < result.violations.size(); ++i) {
    if (result.violations[i].net == net) hits.push_back(i);
  }
  const std::string& name = design.net(net).name;
  if (hits.empty()) {
    os << "net '" << name << "': no violations (mode " << to_string(opt.mode)
       << ", combined peak " << report::fmt_mv(result.net(net).total_peak) << ")\n";
    return false;
  }
  os << "=== explain: net '" << name << "' — " << hits.size() << " violation"
     << (hits.size() == 1 ? "" : "s") << " (mode " << to_string(opt.mode) << ") ===\n";
  for (const std::size_t vi : hits) {
    const Violation& v = result.violations[vi];
    const Provenance& p = result.provenance.at(vi);
    os << "\nendpoint " << design.pin_name(v.endpoint) << ": peak "
       << report::fmt_mv(v.peak) << " / threshold " << report::fmt_mv(v.threshold)
       << " (slack " << report::fmt_mv(v.slack()) << "), width "
       << report::fmt_ps(v.width) << "\n";
    os << "  worst alignment: " << interval_str(p.alignment)
       << "   sensitivity: " << interval_str(v.sensitivity) << "\n";
    os << "  filtering stages: unfiltered " << report::fmt_mv(p.peak_unfiltered)
       << " -> switching-windows " << report::fmt_mv(p.peak_switching)
       << " -> noise-windows " << report::fmt_mv(p.peak_noise_window)
       << " -> in-sensitivity " << report::fmt_mv(p.peak_in_sensitivity)
       << "   culled by: " << to_string(p.culled_by) << "\n";
    report::TextTable shares({"rank", "source", "peak", "coupling", "overlap",
                              "verdict"});
    for (std::size_t si = 0; si < p.shares.size(); ++si) {
      const AggressorShare& s = p.shares[si];
      const std::string source = s.is_propagated()
                                     ? "via " + design.net(s.from_net).name
                                     : design.net(s.aggressor).name;
      shares.add_row({std::to_string(si + 1), source, report::fmt_mv(s.peak),
                      s.is_propagated() ? "-" : report::fmt_ff(s.coupling_cap),
                      interval_str(s.overlap), to_string(s.verdict)});
    }
    shares.print(os);
    if (p.path.size() > 1) {
      os << "  path:";
      for (std::size_t i = 0; i < p.path.size(); ++i) {
        if (i > 0) os << " <-";
        os << ' ' << design.net(p.path[i].net).name << " ("
           << report::fmt_mv(p.path[i].peak) << ")";
      }
      os << "\n";
    }
  }
  return true;
}

std::string explain_string(const net::Design& design, const Options& options,
                           const Result& result, NetId net) {
  std::ostringstream os;
  write_explain(os, design, options, result, net);
  return os.str();
}

}  // namespace nw::noise
