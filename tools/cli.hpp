// The noisewin command-line driver, factored for testability: run_cli()
// does everything main() does, against caller-supplied streams.
//
// Usage:
//   noisewin --lib <file.nlib> --netlist <file.nv> --spef <file.nwspef>
//            [--arrivals <file>] [--mode no-filtering|switching-windows|noise-windows]
//            [--model charge-sharing|devgan|two-pi|reduced-mna|mna-exact]
//            [--period <seconds>] [--threads <n>] [--simd auto|scalar|vector]
//            [--stats] [--report <file>] [--delay-impact]
//   noisewin --demo bus|logic|pipeline [--mode ...] [...]
//   noisewin serve --demo bus [...]     JSONL session server on stdin/stdout
//   noisewin shell --demo bus [...]     interactive session REPL
//
// The arrivals file has lines: `<port> <earliest> <latest>` (seconds).
// `--threads 0` uses every hardware thread; results are identical for any
// thread count, and `--simd scalar`/`--simd vector` select the per-net
// reference path or the flat SoA kernels with bit-identical results.
// `--stats` appends the per-phase telemetry table.
// Exit code: 0 = clean, 2 = violations found, 1 = usage/input error.
//
// `serve` and `shell` hold the loaded design in a session::Session: queries
// and ECO edits arrive on `in` (JSONL protocol or shell commands) and the
// session re-analyzes incrementally as needed. `--stats-json` then records
// the per-session metrics (requests, cache hits, incremental vs full runs)
// when the stream ends.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

namespace nw::cli {

/// Run with argv-style arguments (excluding the program name). `in` feeds
/// the `serve`/`shell` subcommands; one-shot analysis never reads it.
int run_cli(std::span<const std::string> args, std::istream& in, std::ostream& out,
            std::ostream& err);

/// Convenience overload with an empty input stream (one-shot analysis, or
/// a server conversation that ends immediately).
int run_cli(std::span<const std::string> args, std::ostream& out, std::ostream& err);

}  // namespace nw::cli
