#!/usr/bin/env python3
"""Validate noisewin's observability artifacts (CI gate).

Usage:
    validate_obs.py --trace trace.json --stats stats.json
    validate_obs.py --server-trace strace.json --server-stats sstats.json
    validate_obs.py --daemon-stats dstats.json --daemon-trace dtrace.json
    validate_obs.py --bench-record record.json
    validate_obs.py --html-report report.html
    validate_obs.py --profile run.folded

Checks the Chrome trace-event JSON (parses, per-thread spans well-nested,
required keys present, counter events well-formed) and the stats JSON
(schema v5 meta, required metrics, histogram bucket counts + quantile
summaries consistent, "resources", "executor" and "memory" sections
present and internally consistent, "timeseries" ring invariants when
sampling ran). The v5 "memory" section must satisfy the per-account
invariants (peak >= current >= 0) everywhere; --stats and --daemon-stats
additionally require at least 6 accounts with nonzero peaks.
--daemon-trace additionally requires the sampler's counter tracks
(queue depth, active connections, in-flight analyses, tracked bytes).
Server-mode artifacts additionally need the request track: request spans
on the "server" thread enclosing analyzer phase spans, per-command latency
histograms, and the slow log. Bench run records need the "bench" section
(git SHA, timestamp, build type, peak RSS). --profile validates a
collapsed-stack ("folded") sampling profile: well-formed `stack count`
lines, sorted, with samples in every analyzer phase. Exits non-zero with a
message on the first failure — schema violations gate CI; perf comparison
(tools/bench_history.py, tools/perf_diff.py) stays advisory.
"""

import argparse
import json
import sys

STATS_SCHEMA_VERSION = 5  # obs::kStatsSchemaVersion

REQUIRED_COUNTERS = ["victims_estimated", "aggressor_pairs", "executor_tasks"]
REQUIRED_GAUGES = ["propagation_levels", "endpoints_checked", "violations"]
REQUIRED_HISTOGRAMS = ["glitch_peak_v", "aggressors_per_victim", "level_width"]
REQUIRED_META = ["schema_version", "design", "mode", "model", "options_digest",
                 "build", "simd", "threads", "iterations"]
SIMD_VALUES = ("scalar", "vector")  # resolved kernel path, never "auto"
REQUIRED_BENCH = ["record_version", "git_sha", "git_describe", "build_type",
                  "timestamp_utc", "unix_time", "peak_rss_bytes"]
PHASES = ["estimate-injected", "propagate", "check-endpoints"]


def fail(msg):
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        return json.load(f)


def check_histogram(name, h):
    if len(h["counts"]) != len(h["bounds"]) + 1:
        fail(f"stats: histogram '{name}': counts/bounds size mismatch")
    if sum(h["counts"]) != h["count"]:
        fail(f"stats: histogram '{name}': bucket counts do not sum to count")
    if h["bounds"] != sorted(set(h["bounds"])):
        fail(f"stats: histogram '{name}': bounds not strictly ascending")
    for key in ("min", "max", "p50", "p95", "p99"):
        if key not in h:
            fail(f"stats: histogram '{name}': missing '{key}' (schema v2)")
    if h["count"] > 0:
        order = [h["min"], h["p50"], h["p95"], h["p99"], h["max"]]
        if order != sorted(order):
            fail(f"stats: histogram '{name}': min/p50/p95/p99/max not "
                 f"monotone: {order}")


def check_executor(doc, context):
    """The schema-v3 "executor" section: per-worker busy/idle, per-region
    utilization aggregates, and the work-attribution top-K lists."""
    ex = doc.get("executor")
    if not isinstance(ex, dict):
        fail(f"{context}: no executor section (schema v3)")
    for key in ("enabled", "threads", "wall_s", "workers", "regions",
                "attribution"):
        if key not in ex:
            fail(f"{context}: executor section missing '{key}'")
    if not isinstance(ex["workers"], list) or not isinstance(ex["regions"], dict):
        fail(f"{context}: executor workers/regions have the wrong shape")
    if not ex["enabled"]:
        return
    for w in ex["workers"]:
        for key in ("worker", "busy_s", "idle_s", "chunks"):
            if key not in w:
                fail(f"{context}: executor worker missing '{key}': {w}")
        if w["busy_s"] < 0 or w["idle_s"] < 0:
            fail(f"{context}: executor worker has negative time: {w}")
    for label, reg in ex["regions"].items():
        for key in ("invocations", "chunks", "items", "wall_s", "busy_s",
                    "max_busy_s", "wait_s", "imbalance"):
            if key not in reg:
                fail(f"{context}: executor region '{label}' missing '{key}'")
        if reg["invocations"] <= 0:
            fail(f"{context}: executor region '{label}' has no invocations")
        if reg["max_busy_s"] > reg["busy_s"] + 1e-12:
            fail(f"{context}: executor region '{label}': max_busy_s exceeds "
                 f"summed busy_s")
        # imbalance = max_busy * threads / busy >= 1 by construction.
        if reg["busy_s"] > 0 and reg["imbalance"] < 0.99:
            fail(f"{context}: executor region '{label}': imbalance "
                 f"{reg['imbalance']} < 1")
    attribution = ex["attribution"]
    for key in ("top_levels", "top_nets"):
        if not isinstance(attribution.get(key), list):
            fail(f"{context}: executor attribution missing '{key}' list")
    for l in attribution["top_levels"]:
        for key in ("level", "instances", "wall_ms"):
            if key not in l:
                fail(f"{context}: attribution level entry missing '{key}'")
    for n in attribution["top_nets"]:
        for key in ("net", "aggressors", "peak"):
            if key not in n:
                fail(f"{context}: attribution net entry missing '{key}'")


def check_memory(doc, context, min_nonzero=0):
    """The schema-v5 "memory" section: per-subsystem heap accounts from the
    tracking allocator. Every account must satisfy peak >= current >= 0;
    alloc/free counts are non-negative but allocs >= frees is NOT an
    invariant (sampled accounts like trace_buffers use adjust_to). When
    min_nonzero is given, at least that many accounts must have a nonzero
    peak (an analysis ran, so the big owners must all have been charged)."""
    mem = doc.get("memory")
    if not isinstance(mem, dict):
        fail(f"{context}: no memory section (schema v5)")
    for key in ("enabled", "accounts", "total_current_bytes",
                "total_peak_bytes"):
        if key not in mem:
            fail(f"{context}: memory section missing '{key}'")
    accounts = mem["accounts"]
    if not isinstance(accounts, dict) or not accounts:
        fail(f"{context}: memory accounts empty or wrong shape")
    total_current = 0
    total_peak = 0
    nonzero = 0
    for name, a in accounts.items():
        for key in ("current_bytes", "peak_bytes", "allocs", "frees"):
            if not isinstance(a.get(key), int) or a[key] < 0:
                fail(f"{context}: memory account '{name}.{key}' not a "
                     f"non-negative integer: {a.get(key)!r}")
        if a["peak_bytes"] < a["current_bytes"]:
            fail(f"{context}: memory account '{name}': peak "
                 f"{a['peak_bytes']} < current {a['current_bytes']}")
        total_current += a["current_bytes"]
        total_peak += a["peak_bytes"]
        if a["peak_bytes"] > 0:
            nonzero += 1
    if mem["total_current_bytes"] != total_current:
        fail(f"{context}: memory total_current_bytes "
             f"{mem['total_current_bytes']} != summed {total_current}")
    if mem["total_peak_bytes"] != total_peak:
        fail(f"{context}: memory total_peak_bytes "
             f"{mem['total_peak_bytes']} != summed {total_peak}")
    if mem["enabled"] and nonzero < min_nonzero:
        fail(f"{context}: only {nonzero} memory accounts have nonzero peaks "
             f"(expected >= {min_nonzero}) — are the subsystem owners "
             f"charging their accounts?")
    return mem


def iter_histograms(doc):
    """Every histogram object in any section (timing mixes kinds)."""
    for section in ("histograms", "timing", "resources"):
        for name, v in doc.get(section, {}).items():
            if isinstance(v, dict) and "bounds" in v:
                yield name, v


def check_counter_events(events, required=False):
    """Chrome counter ('C') events: the sampler's gauge tracks. Always
    well-formed when present; a daemon trace must actually have them."""
    counters = [e for e in events if e.get("ph") == "C"]
    names = set()
    for e in counters:
        for key in ("pid", "tid", "name", "ts", "args"):
            if key not in e:
                fail(f"trace: counter event missing '{key}': {e}")
        if not isinstance(e["args"], dict) or not e["args"]:
            fail(f"trace: counter event has no args values: {e}")
        if not any(isinstance(v, (int, float)) for v in e["args"].values()):
            fail(f"trace: counter event args carry no numeric value: {e}")
        names.add(e["name"])
    if required:
        if not counters:
            fail("daemon trace: no counter ('C') events — was the sampler "
                 "off (--sample-ms 0)?")
        for name in ("queue_depth", "active_connections", "analyses_inflight",
                     "tracked_bytes"):
            if name not in names:
                fail(f"daemon trace: no '{name}' counter track")
    return counters


def validate_trace(path, server=False, counters=False):
    doc = load(path)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace: no traceEvents")

    counter_events = check_counter_events(events, required=counters)
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail("trace: no complete ('X') events")
    for e in spans:
        for key in ("pid", "tid", "name", "cat", "ts", "dur"):
            if key not in e:
                fail(f"trace: span missing '{key}': {e}")
        if e["dur"] < 0:
            fail(f"trace: negative duration: {e}")

    # Spans on one thread must be well-nested: treated as a scope stack,
    # each span either contains or is disjoint from every other.
    eps = 1e-6  # µs slack for the fixed 3-decimal serialization
    by_tid = {}
    for e in spans:
        by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
    for tid, ivals in by_tid.items():
        ivals.sort(key=lambda se: (se[0], -se[1]))
        stack = []
        for start, end in ivals:
            while stack and start >= stack[-1] - eps:
                stack.pop()
            if stack and end > stack[-1] + eps:
                fail(f"trace: tid {tid}: span [{start},{end}] straddles "
                     f"enclosing span ending at {stack[-1]}")
            stack.append(end)

    names = {e["name"] for e in spans}
    missing = [p for p in PHASES if p not in names]
    if missing:
        fail(f"trace: missing analyzer phase spans: {missing}")

    meta = [e for e in events if e.get("ph") == "M"]
    if not any(e.get("name") == "thread_name" for e in meta):
        fail("trace: no thread_name metadata")

    if server:
        thread_names = {e["args"]["name"]: e["tid"] for e in meta
                        if e.get("name") == "thread_name"}
        if "server" not in thread_names:
            fail("server trace: no 'server' thread track")
        server_tid = thread_names["server"]
        requests = [e for e in spans if e.get("cat") == "request"]
        if not requests:
            fail("server trace: no request spans (cat 'request')")
        for e in requests:
            if e["tid"] != server_tid:
                fail(f"server trace: request span off the server track: {e}")
            if not e["name"].startswith("request "):
                fail(f"server trace: request span misnamed: {e['name']}")
        # At least one request must enclose a full analyzer phase sequence —
        # the end-to-end request → analyze → phase nesting the tentpole is for.
        phases = [e for e in spans if e["name"] in PHASES]
        enclosing = 0
        for r in requests:
            inside = [p["name"] for p in phases
                      if p["ts"] >= r["ts"] - eps
                      and p["ts"] + p["dur"] <= r["ts"] + r["dur"] + eps]
            if all(p in inside for p in PHASES):
                enclosing += 1
        if enclosing == 0:
            fail("server trace: no request span encloses the analyzer phases")
        print(f"validate_obs: server trace OK ({len(requests)} request spans, "
              f"{enclosing} enclosing a full analysis)")
    print(f"validate_obs: trace OK ({len(spans)} spans, {len(by_tid)} threads, "
          f"{len(counter_events)} counter events)")


def validate_stats(path, server=False):
    doc = load(path)
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("stats: no meta object")
    for key in REQUIRED_META:
        if key not in meta:
            fail(f"stats: meta missing '{key}'")
    if meta["schema_version"] != STATS_SCHEMA_VERSION:
        fail(f"stats: unexpected schema_version {meta['schema_version']} "
             f"(expected {STATS_SCHEMA_VERSION})")
    if meta["simd"] not in SIMD_VALUES:
        fail(f"stats: meta simd '{meta['simd']}' not in {SIMD_VALUES} "
             f"(must be the resolved path, not 'auto')")

    for section in ("counters", "gauges", "histograms", "resources", "timing"):
        if not isinstance(doc.get(section), dict):
            fail(f"stats: no {section} object")

    if server:
        required = (("counters", ["protocol_requests", "session_full_analyses"]),
                    ("gauges", ["session_epoch", "session_cached_results"]))
    else:
        required = (("counters", REQUIRED_COUNTERS),
                    ("gauges", REQUIRED_GAUGES),
                    ("histograms", REQUIRED_HISTOGRAMS))
    for section, names in required:
        for name in names:
            if name not in doc[section]:
                fail(f"stats: {section} missing '{name}'")

    for name, h in iter_histograms(doc):
        check_histogram(name, h)
    check_executor(doc, "server stats" if server else "stats")
    check_timeseries(doc, "server stats" if server else "stats")  # if sampled
    # A full CLI analysis charges design, parasitics, sta, analysis_context,
    # kernel_buffers and result; a server session may not have analyzed yet,
    # so only the structural invariants apply there.
    check_memory(doc, "server stats" if server else "stats",
                 min_nonzero=0 if server else 6)

    resources = doc["resources"]
    if not any(isinstance(v, (int, float)) and v > 0 for v in resources.values()):
        fail("stats: resources section has no nonzero gauge")
    if resources.get("peak_rss_bytes", 0) <= 0:
        fail("stats: peak_rss_bytes missing or zero")

    if server:
        latencies = [k for k in doc["timing"] if k.startswith("request_ms_")]
        if not latencies:
            fail("server stats: no request_ms_* latency histograms in timing")
        for k in latencies:
            if not isinstance(doc["timing"][k], dict):
                fail(f"server stats: {k} is not a histogram object")
        for gauge in ("session_cache_bytes", "session_journal_bytes"):
            if resources.get(gauge, 0) <= 0:
                fail(f"server stats: resource gauge '{gauge}' missing or zero")
        slowlog = doc.get("slowlog")
        if not isinstance(slowlog, dict):
            fail("server stats: no slowlog section")
        for key in ("threshold_ms", "capacity", "recorded", "entries"):
            if key not in slowlog:
                fail(f"server stats: slowlog missing '{key}'")
        if not isinstance(slowlog["entries"], list):
            fail("server stats: slowlog entries is not a list")
        for e in slowlog["entries"]:
            for key in ("id", "cmd", "ms", "ok"):
                if key not in e:
                    fail(f"server stats: slowlog entry missing '{key}': {e}")
        print(f"validate_obs: server stats OK ({len(latencies)} latency "
              f"histograms, {len(slowlog['entries'])} slow requests)")
    print(f"validate_obs: stats OK (design '{meta['design']}', "
          f"digest {meta['options_digest']})")


def validate_bench_record(path):
    doc = load(path)
    validate_stats_like = doc.get("meta", {})
    if validate_stats_like.get("schema_version") != STATS_SCHEMA_VERSION:
        fail(f"bench record: unexpected schema_version in {path}")
    bench = doc.get("bench")
    if not isinstance(bench, dict):
        fail("bench record: no 'bench' section")
    for key in REQUIRED_BENCH:
        if key not in bench:
            fail(f"bench record: bench section missing '{key}'")
    if bench["record_version"] != 1:
        fail(f"bench record: unexpected record_version {bench['record_version']}")
    if not isinstance(bench["git_sha"], str) or not bench["git_sha"]:
        fail("bench record: empty git_sha")
    if bench["build_type"] not in ("Release", "Debug"):
        fail(f"bench record: unexpected build_type '{bench['build_type']}'")
    if not (isinstance(bench["peak_rss_bytes"], int) and bench["peak_rss_bytes"] > 0):
        fail("bench record: peak_rss_bytes missing or zero")
    if not (isinstance(bench["unix_time"], int) and bench["unix_time"] > 0):
        fail("bench record: unix_time missing or zero")
    for name, h in iter_histograms(doc):
        check_histogram(name, h)
    check_executor(doc, "bench record")
    # Bench harnesses call the analyzer directly (no CLI owner charges), but
    # the pipeline itself always charges analysis_context + kernel_buffers.
    check_memory(doc, "bench record", min_nonzero=1)
    print(f"validate_obs: bench record OK (sha {bench['git_sha'][:12]}, "
          f"{bench['build_type']}, peak RSS {bench['peak_rss_bytes']} B)")


def validate_profile(path, require_phases=True):
    """A collapsed-stack ("folded") sampling profile: one `stack count`
    line per aggregated stack, sorted by stack, root frame = thread name,
    and — for an analysis capture — samples inside every analyzer phase."""
    with open(path) as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    if not lines:
        fail(f"profile: {path} is empty (was --profile-hz 0 used?)")
    stacks = []
    total = 0
    for ln in lines:
        stack, sep, count = ln.rpartition(" ")
        if not sep or not stack:
            fail(f"profile: malformed folded line (no count): {ln!r}")
        try:
            n = int(count)
        except ValueError:
            fail(f"profile: malformed count in line: {ln!r}")
        if n <= 0:
            fail(f"profile: non-positive count in line: {ln!r}")
        frames = stack.split(";")
        if any(not f for f in frames):
            fail(f"profile: empty frame in stack: {stack!r}")
        stacks.append(stack)
        total += n
    if stacks != sorted(stacks):
        fail("profile: stacks are not sorted (write_folded sorts by stack)")
    if len(set(stacks)) != len(stacks):
        fail("profile: duplicate stack lines (aggregation broken)")
    if require_phases:
        for phase in PHASES:
            if not any(phase in s.split(";") for s in stacks):
                fail(f"profile: no samples in analyzer phase '{phase}' "
                     f"(sample longer or raise --profile-hz)")
    print(f"validate_obs: profile OK ({len(stacks)} stacks, {total} samples)")


def check_timeseries(doc, context, required=False):
    """The schema-v4 "timeseries" section: the telemetry ring snapshot.
    Bounded length, per-sample arity matching the series list, and monotone
    nondecreasing sample times."""
    ts = doc.get("timeseries")
    if ts is None:
        if required:
            fail(f"{context}: no timeseries section (schema v4)")
        return
    if not isinstance(ts, dict):
        fail(f"{context}: timeseries is not an object")
    for key in ("interval_ms", "capacity", "total", "series", "samples"):
        if key not in ts:
            fail(f"{context}: timeseries missing '{key}'")
    if not isinstance(ts["series"], list) or not ts["series"]:
        fail(f"{context}: timeseries series list empty")
    if not isinstance(ts["samples"], list):
        fail(f"{context}: timeseries samples is not a list")
    if ts["capacity"] < 1:
        fail(f"{context}: timeseries capacity {ts['capacity']} < 1")
    if len(ts["samples"]) > ts["capacity"]:
        fail(f"{context}: timeseries holds {len(ts['samples'])} samples, "
             f"more than its capacity {ts['capacity']} (ring unbounded?)")
    if ts["total"] < len(ts["samples"]):
        fail(f"{context}: timeseries total {ts['total']} < retained "
             f"{len(ts['samples'])}")
    prev_t = -1.0
    for s in ts["samples"]:
        if "t_ms" not in s or "v" not in s:
            fail(f"{context}: timeseries sample missing t_ms/v: {s}")
        if len(s["v"]) != len(ts["series"]):
            fail(f"{context}: timeseries sample arity {len(s['v'])} != "
                 f"{len(ts['series'])} series")
        if s["t_ms"] < prev_t:
            fail(f"{context}: timeseries sample times not monotone "
                 f"({s['t_ms']} after {prev_t})")
        prev_t = s["t_ms"]
    if required and not ts["samples"]:
        fail(f"{context}: timeseries recorded no samples")
    return ts


DAEMON_SECTION_KEYS = ["accepted", "active", "rejected", "idle_closed",
                       "handled", "shed", "queue_rejected", "queue_depth",
                       "analyze_ewma_ms", "max_connections", "analysis_slots",
                       "max_queued"]


def validate_daemon_stats(path):
    """Stats written by `noisewin daemon` at drain: schema-v3 meta plus the
    "daemon" serving section (admission/shedding counters, governor EWMA).
    The counters here are the daemon's serving-layer registry — per-client
    analysis metrics live in each connection's session — so the analyzer
    metric requirements of --stats do not apply."""
    doc = load(path)
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("daemon stats: no meta object")
    for key in REQUIRED_META:
        if key not in meta:
            fail(f"daemon stats: meta missing '{key}'")
    if meta["schema_version"] != STATS_SCHEMA_VERSION:
        fail(f"daemon stats: unexpected schema_version "
             f"{meta['schema_version']} (expected {STATS_SCHEMA_VERSION})")
    for section in ("counters", "gauges", "histograms", "resources", "timing"):
        if not isinstance(doc.get(section), dict):
            fail(f"daemon stats: no {section} object")
    for name, h in iter_histograms(doc):
        check_histogram(name, h)

    d = doc.get("daemon")
    if not isinstance(d, dict):
        fail("daemon stats: no 'daemon' section")
    for key in DAEMON_SECTION_KEYS:
        if key not in d:
            fail(f"daemon stats: daemon section missing '{key}'")
        if not isinstance(d[key], (int, float)) or d[key] < 0:
            fail(f"daemon stats: daemon.{key} not a non-negative number: "
                 f"{d[key]!r}")
    if d["accepted"] < 1:
        fail("daemon stats: no connections were ever accepted")
    if d["handled"] < 1:
        fail("daemon stats: no requests were ever handled")
    if d["active"] != 0:
        fail(f"daemon stats: {d['active']} connections still active at drain")
    if d["queue_depth"] != 0:
        fail(f"daemon stats: {d['queue_depth']} requests still queued at drain")
    if d["max_connections"] < 1 or d["max_queued"] < 1:
        fail("daemon stats: admission limits not exported")
    if "daemon_prewarm_ms" not in doc["timing"]:
        fail("daemon stats: no daemon_prewarm_ms in timing (seed analysis "
             "wall time)")
    ts = check_timeseries(doc, "daemon stats", required=True)
    check_memory(doc, "daemon stats", min_nonzero=6)
    latencies = [k for k in doc["timing"] if k.startswith("request_ms_")]
    if not latencies:
        fail("daemon stats: no aggregated request_ms_* latency histograms "
             "(schema v4: connections mirror into the daemon registry)")
    print(f"validate_obs: daemon stats OK ({int(d['accepted'])} connections, "
          f"{int(d['handled'])} requests, {int(d['shed'])} shed, "
          f"{len(ts['samples'])} telemetry samples)")


HTML_SECTION_IDS = ["meta", "summary", "timelines", "pareto", "slack",
                    "executor", "flame", "live", "memory", "phases"]
HTML_BANNED = ["http://", "https://", "<script", "<link", "url(", "src="]


def validate_html_report(path):
    """The --html-report artifact must be one self-contained document."""
    with open(path) as f:
        html = f.read()
    if not html.startswith("<!DOCTYPE html"):
        fail("html report: missing <!DOCTYPE html> preamble")
    if "<svg" not in html:
        fail("html report: no inline SVG charts")
    for section in HTML_SECTION_IDS:
        if f'id="{section}"' not in html:
            fail(f"html report: missing section id \"{section}\"")
    for banned in HTML_BANNED:
        if banned in html:
            fail(f"html report: external reference '{banned}' breaks "
                 f"self-containment")
    if html.count("<style") != 1:
        fail(f"html report: expected exactly one <style> block, "
             f"found {html.count('<style')}")
    print(f"validate_obs: html report OK ({len(html)} bytes, "
          f"{len(HTML_SECTION_IDS)} sections)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace")
    ap.add_argument("--stats")
    ap.add_argument("--server-trace")
    ap.add_argument("--server-stats")
    ap.add_argument("--daemon-stats")
    ap.add_argument("--daemon-trace",
                    help="daemon-side Chrome trace: counter tracks required")
    ap.add_argument("--bench-record", action="append", default=[])
    ap.add_argument("--html-report")
    ap.add_argument("--profile", help="folded sampling profile to validate")
    ap.add_argument("--profile-no-phases", action="store_true",
                    help="skip the analyzer-phase coverage check (server "
                         "captures, partial runs)")
    args = ap.parse_args()
    if not any([args.trace, args.stats, args.server_trace, args.server_stats,
                args.daemon_stats, args.daemon_trace, args.bench_record,
                args.html_report, args.profile]):
        ap.error("give --trace, --stats, --server-trace, --server-stats, "
                 "--daemon-stats, --daemon-trace, --bench-record, "
                 "--html-report, and/or --profile")
    if args.trace:
        validate_trace(args.trace)
    if args.stats:
        validate_stats(args.stats)
    if args.server_trace:
        validate_trace(args.server_trace, server=True)
    if args.server_stats:
        validate_stats(args.server_stats, server=True)
    if args.daemon_stats:
        validate_daemon_stats(args.daemon_stats)
    if args.daemon_trace:
        validate_trace(args.daemon_trace, counters=True)
    for path in args.bench_record:
        validate_bench_record(path)
    if args.html_report:
        validate_html_report(args.html_report)
    if args.profile:
        validate_profile(args.profile, require_phases=not args.profile_no_phases)


if __name__ == "__main__":
    main()
