#!/usr/bin/env python3
"""Validate noisewin's observability artifacts (CI gate).

Usage: validate_obs.py --trace trace.json --stats stats.json

Checks the Chrome trace-event JSON (parses, per-thread spans well-nested,
required keys present) and the stats JSON (schema v1 meta, required
metrics, histogram bucket counts consistent). Exits non-zero with a
message on the first failure.
"""

import argparse
import json
import sys

REQUIRED_COUNTERS = ["victims_estimated", "aggressor_pairs", "executor_tasks"]
REQUIRED_GAUGES = ["propagation_levels", "endpoints_checked", "violations"]
REQUIRED_HISTOGRAMS = ["glitch_peak_v", "aggressors_per_victim", "level_width"]
REQUIRED_META = ["schema_version", "design", "mode", "model", "options_digest",
                 "build", "threads", "iterations"]
PHASES = ["estimate-injected", "propagate", "check-endpoints"]


def fail(msg):
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace: no traceEvents")

    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail("trace: no complete ('X') events")
    for e in spans:
        for key in ("pid", "tid", "name", "cat", "ts", "dur"):
            if key not in e:
                fail(f"trace: span missing '{key}': {e}")
        if e["dur"] < 0:
            fail(f"trace: negative duration: {e}")

    # Spans on one thread must be well-nested: treated as a scope stack,
    # each span either contains or is disjoint from every other.
    eps = 1e-6  # µs slack for the fixed 3-decimal serialization
    by_tid = {}
    for e in spans:
        by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
    for tid, ivals in by_tid.items():
        ivals.sort(key=lambda se: (se[0], -se[1]))
        stack = []
        for start, end in ivals:
            while stack and start >= stack[-1] - eps:
                stack.pop()
            if stack and end > stack[-1] + eps:
                fail(f"trace: tid {tid}: span [{start},{end}] straddles "
                     f"enclosing span ending at {stack[-1]}")
            stack.append(end)

    names = {e["name"] for e in spans}
    missing = [p for p in PHASES if p not in names]
    if missing:
        fail(f"trace: missing analyzer phase spans: {missing}")

    meta = [e for e in events if e.get("ph") == "M"]
    if not any(e.get("name") == "thread_name" for e in meta):
        fail("trace: no thread_name metadata")
    print(f"validate_obs: trace OK ({len(spans)} spans, {len(by_tid)} threads)")


def validate_stats(path):
    with open(path) as f:
        doc = json.load(f)
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        fail("stats: no meta object")
    for key in REQUIRED_META:
        if key not in meta:
            fail(f"stats: meta missing '{key}'")
    if meta["schema_version"] != 1:
        fail(f"stats: unexpected schema_version {meta['schema_version']}")

    for section, required in (("counters", REQUIRED_COUNTERS),
                              ("gauges", REQUIRED_GAUGES),
                              ("histograms", REQUIRED_HISTOGRAMS)):
        obj = doc.get(section)
        if not isinstance(obj, dict):
            fail(f"stats: no {section} object")
        for name in required:
            if name not in obj:
                fail(f"stats: {section} missing '{name}'")

    for name, h in doc["histograms"].items():
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"stats: histogram '{name}': counts/bounds size mismatch")
        if sum(h["counts"]) != h["count"]:
            fail(f"stats: histogram '{name}': bucket counts do not sum to count")
        if h["bounds"] != sorted(set(h["bounds"])):
            fail(f"stats: histogram '{name}': bounds not strictly ascending")

    if "timing" not in doc:
        fail("stats: no timing section")
    print(f"validate_obs: stats OK (design '{meta['design']}', "
          f"digest {meta['options_digest']})")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--trace")
    ap.add_argument("--stats")
    args = ap.parse_args()
    if not args.trace and not args.stats:
        ap.error("give --trace and/or --stats")
    if args.trace:
        validate_trace(args.trace)
    if args.stats:
        validate_stats(args.stats)


if __name__ == "__main__":
    main()
