#!/usr/bin/env python3
"""nwtop: live terminal monitor for a running noisewin daemon (stdlib only).

Connects to the daemon's JSONL endpoint and renders a top-style frame:
utilization bars (connections, analysis slots), queue/shed trends from the
telemetry ring, and the slowest commands from the aggregated per-command
latency histograms. No shutdown, no interference — everything comes from
the `stats` and `watch` commands a serving daemon answers live.

    python3 tools/nwtop.py --connect unix:/tmp/noisewin.sock
    python3 tools/nwtop.py --connect tcp:127.0.0.1:9191 --period-ms 500
    python3 tools/nwtop.py --connect unix:/tmp/noisewin.sock --once

--once renders a single frame from one `stats` round-trip and exits 0
(the CI smoke check); live mode subscribes with `watch` and redraws on
every {"event":"stats"} line until Ctrl-C, then unsubscribes cleanly.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time

SPARK_CHARS = " .:-=+*#%@"
BAR_WIDTH = 24
SPARK_WIDTH = 30


class Conn:
    """One line-oriented daemon connection over unix:<path> or tcp:<host>:<port>."""

    def __init__(self, spec: str, timeout_s: float = 30.0):
        if spec.startswith("unix:"):
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.connect(spec[len("unix:"):])
        elif spec.startswith("tcp:"):
            host, _, port = spec[len("tcp:"):].rpartition(":")
            self.sock = socket.create_connection((host, int(port)))
        else:
            raise ValueError(
                f"--connect wants unix:<path> or tcp:<host>:<port>, got {spec!r}")
        self.sock.settimeout(timeout_s)
        self.rfile = self.sock.makefile("r", encoding="utf-8", newline="\n")
        self.next_id = 0

    def request(self, cmd: str, args: dict | None = None) -> dict:
        """One request, one response (events skipped); raises on ok=false."""
        self.next_id += 1
        req = {"id": self.next_id, "cmd": cmd}
        if args:
            req["args"] = args
        self.sock.sendall((json.dumps(req) + "\n").encode("utf-8"))
        while True:
            line = self.rfile.readline()
            if not line:
                raise RuntimeError(f"daemon closed the connection during '{cmd}'")
            msg = json.loads(line)
            if "event" in msg:
                continue
            if not msg.get("ok"):
                err = msg.get("error", {})
                raise RuntimeError(
                    f"'{cmd}' failed: {err.get('code')}: {err.get('message')}")
            return msg["data"]

    def next_event(self, name: str) -> dict:
        """Block until the next {"event": name, ...} line."""
        while True:
            line = self.rfile.readline()
            if not line:
                raise RuntimeError("daemon closed the connection mid-watch")
            msg = json.loads(line)
            if msg.get("event") == name:
                return msg

    def close(self) -> None:
        try:
            self.rfile.close()
            self.sock.close()
        except OSError:
            pass


def bar(used: float, cap: float, width: int = BAR_WIDTH) -> str:
    """`[#####.....] 5/32` — a utilization bar with the raw numbers."""
    cap = max(cap, 0.0)
    frac = 0.0 if cap <= 0 else min(max(used / cap, 0.0), 1.0)
    filled = int(round(frac * width))
    return (f"[{'#' * filled}{'.' * (width - filled)}] "
            f"{used:.0f}/{cap:.0f}" if cap > 0 else f"{used:.0f} (uncapped)")


def sparkline(values: list[float], width: int = SPARK_WIDTH) -> str:
    """ASCII sparkline of the last `width` values, scaled to their range."""
    vals = values[-width:]
    if not vals:
        return "(no samples)"
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0:
        return SPARK_CHARS[1] * len(vals) + f"  ({hi:.3g})"
    steps = len(SPARK_CHARS) - 1
    out = "".join(
        SPARK_CHARS[1 + int((v - lo) / span * (steps - 1))] for v in vals)
    return out + f"  ({lo:.3g}..{hi:.3g})"


def deltas(values: list[float]) -> list[float]:
    """Per-sample increments of a cumulative counter series (floored at 0)."""
    return [max(b - a, 0.0) for a, b in zip(values, values[1:])]


def series_column(ts: dict, name: str) -> list[float]:
    try:
        idx = ts["series"].index(name)
    except (KeyError, ValueError):
        return []
    return [float(s["v"][idx]) for s in ts.get("samples", [])
            if idx < len(s.get("v", []))]


def fmt_bytes(v: float) -> str:
    """Human-readable bytes for the memory column group."""
    for unit in ("B", "KB", "MB", "GB"):
        if abs(v) < 1024.0 or unit == "GB":
            return f"{v:.1f} {unit}" if unit != "B" else f"{v:.0f} B"
        v /= 1024.0
    return f"{v:.1f} GB"


def top_accounts(memory: dict, n: int = 3) -> list[tuple[str, dict]]:
    """The n largest accounts by current bytes (ties broken by peak)."""
    accounts = memory.get("accounts", {})
    ranked = sorted(
        accounts.items(),
        key=lambda kv: (kv[1].get("current_bytes", 0), kv[1].get("peak_bytes", 0)),
        reverse=True)
    return ranked[:n]


def last_sample_gauges(ts: dict) -> dict:
    """The newest ring sample as {series_name: value} — fills the live
    gauges (inflight, rss, window quantiles) the cumulative daemon section
    does not carry."""
    samples = ts.get("samples", [])
    if not samples:
        return {}
    return dict(zip(ts.get("series", []), samples[-1].get("v", [])))


def render_frame(hello: dict, daemon: dict, ts: dict, latency: dict,
                 memory: dict | None = None, note: str = "") -> str:
    lines = []
    design = hello.get("design", "?")
    transport = hello.get("transport", "?")
    lines.append(f"nwtop — {design} via {transport}"
                 f"{('  ' + note) if note else ''}")
    lines.append("")
    lines.append("  utilization")
    lines.append(f"    connections   {bar(daemon.get('active', 0.0), daemon.get('max_connections', 0.0))}")
    lines.append(f"    analyses      {bar(daemon.get('inflight', 0.0), daemon.get('analysis_slots', 0.0))}"
                 f"   waiting {daemon.get('waiting', 0):.0f}")
    lines.append(f"    analyze ewma  {daemon.get('analyze_ewma_ms', 0.0):8.2f} ms"
                 f"   p50 {daemon.get('analyze_p50_ms', 0.0):.2f}"
                 f"   p95 {daemon.get('analyze_p95_ms', 0.0):.2f}")
    lines.append(f"    rss           {daemon.get('rss_mb', 0.0):8.1f} MB")
    if memory:
        lines.append("")
        lines.append("  memory")
        lines.append(f"    tracked       "
                     f"{fmt_bytes(memory.get('total_current_bytes', 0)):>10}"
                     f"   peak {fmt_bytes(memory.get('total_peak_bytes', 0))}")
        # Accounts with a matching ring series get a trend sparkline; the
        # cache/journal series predate per-account naming, hence the map.
        ring_series = {"session_cache": "session_cache_bytes",
                       "undo_journal": "journal_bytes"}
        for name, acct in top_accounts(memory):
            col = series_column(ts, ring_series.get(name, f"{name}_bytes"))
            trend = sparkline(col, width=12) if col else ""
            lines.append(f"    {name:<13} "
                         f"{fmt_bytes(acct.get('current_bytes', 0)):>10}"
                         f"   peak {fmt_bytes(acct.get('peak_bytes', 0)):<10}"
                         f" {trend}")
    lines.append("")
    lines.append("  totals")
    lines.append(f"    accepted {daemon.get('accepted', 0):.0f}"
                 f"   handled {daemon.get('handled', 0):.0f}"
                 f"   shed {daemon.get('shed', 0):.0f}"
                 f"   queue_rejected {daemon.get('queue_rejected', 0):.0f}")
    if ts.get("samples"):
        lines.append("")
        lines.append(f"  trends (ring: {len(ts['samples'])} samples"
                     f" @ {ts.get('interval_ms', 0)} ms)")
        lines.append(f"    queue depth   {sparkline(series_column(ts, 'queue_depth'))}")
        lines.append(f"    active conns  {sparkline(series_column(ts, 'active'))}")
        lines.append(f"    shed/tick     {sparkline(deltas(series_column(ts, 'shed')))}")
        lines.append(f"    handled/tick  {sparkline(deltas(series_column(ts, 'handled')))}")
        lines.append(f"    rss MB        {sparkline(series_column(ts, 'rss_mb'))}")
        tracked = series_column(ts, 'tracked_mb')
        if tracked:
            lines.append(f"    tracked MB    {sparkline(tracked)}")
    if latency:
        lines.append("")
        lines.append("  slowest commands (all connections)")
        lines.append(f"    {'command':<22} {'count':>7} {'p50 ms':>9} "
                     f"{'p95 ms':>9} {'max ms':>9}")
        ranked = sorted(latency.items(),
                        key=lambda kv: kv[1].get("p95", 0.0), reverse=True)
        for cmd, h in ranked[:8]:
            lines.append(f"    {cmd:<22} {h.get('count', 0):>7.0f} "
                         f"{h.get('p50', 0.0):>9.3f} {h.get('p95', 0.0):>9.3f} "
                         f"{h.get('max', 0.0):>9.3f}")
    return "\n".join(lines)


def run_once(conn: Conn, samples: int) -> None:
    hello = conn.request("hello")
    if "watch" not in hello.get("features", []):
        raise RuntimeError("server does not stream telemetry (no 'watch' feature)"
                           " — is this a daemon?")
    stats = conn.request("stats", {"samples": samples})
    ts = stats.get("timeseries", {})
    daemon = {**last_sample_gauges(ts), **stats.get("daemon", {})}
    frame = render_frame(
        hello, daemon, ts, stats.get("latency", {}),
        memory=stats.get("memory", {}),
        note=time.strftime("%H:%M:%S"),
    )
    print(frame)


def run_live(conn: Conn, args) -> None:
    hello = conn.request("hello")
    sub = conn.request("watch", {"action": "start", "period_ms": args.period_ms})
    period = sub.get("period_ms", args.period_ms)
    refresh_stats_every = max(1, int(args.stats_every_ms / max(period, 1)))
    stats = conn.request("stats", {"samples": args.samples})
    n = 0
    try:
        while True:
            ev = conn.next_event("stats")
            daemon = {**stats.get("daemon", {}), **ev.get("daemon", {})}
            daemon.setdefault("max_connections",
                              hello.get("limits", {}).get("max_connections", 0))
            daemon.setdefault("analysis_slots",
                              hello.get("limits", {}).get("analysis_slots", 0))
            n += 1
            if n % refresh_stats_every == 0:
                # The ring and latency tables move slower than the gauges:
                # refresh them on a longer cadence than the event stream.
                stats = conn.request("stats", {"samples": args.samples})
            frame = render_frame(
                hello, daemon, stats.get("timeseries", {}),
                stats.get("latency", {}),
                memory=stats.get("memory", {}),
                note=f"every {period} ms — seq {ev.get('seq', 0):.0f} — ^C quits",
            )
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
    except KeyboardInterrupt:
        pass
    finally:
        try:
            conn.request("watch", {"action": "stop"})
        except (RuntimeError, OSError):
            pass  # daemon went away first; nothing to unsubscribe


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--connect", required=True,
                    help="daemon endpoint (unix:<path> | tcp:<host>:<port>)")
    ap.add_argument("--once", action="store_true",
                    help="render one frame from a single stats round-trip and exit")
    ap.add_argument("--period-ms", type=int, default=500,
                    help="watch refresh period (live mode; daemon may clamp)")
    ap.add_argument("--stats-every-ms", type=int, default=2000,
                    help="ring/latency refresh cadence (live mode)")
    ap.add_argument("--samples", type=int, default=120,
                    help="telemetry samples requested per stats call")
    args = ap.parse_args()

    conn = Conn(args.connect)
    try:
        if args.once:
            run_once(conn, args.samples)
        else:
            run_live(conn, args)
    finally:
        conn.close()


if __name__ == "__main__":
    main()
