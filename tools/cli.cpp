#include "tools/cli.hpp"

#include <chrono>
#include <csignal>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/suite.hpp"

#include "gen/bus.hpp"
#include "gen/pipeline.hpp"
#include "gen/randlogic.hpp"
#include "library/liberty_io.hpp"
#include "netlist/verilog.hpp"
#include "noise/analyzer.hpp"
#include "noise/delay_impact.hpp"
#include "noise/html_report.hpp"
#include "noise/progress.hpp"
#include "noise/report_writer.hpp"
#include "noise/telemetry.hpp"
#include "obs/log.hpp"
#include "obs/memtrack.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"
#include "net/daemon.hpp"
#include "net/socket.hpp"
#include "parasitics/spef.hpp"
#include "session/server.hpp"
#include "session/session.hpp"
#include "sta/sta.hpp"
#include "util/strings.hpp"

namespace nw::cli {

namespace {

struct Args {
  std::string command = "analyze";  ///< analyze | explain | serve | shell | daemon
  std::string lib_path;
  std::string netlist_path;
  std::string spef_path;
  std::string arrivals_path;
  std::string report_path;
  std::string demo;
  std::string trace_path;       ///< --trace-out: Chrome trace-event JSON
  std::string stats_json_path;  ///< --stats-json: machine-readable run report
  std::string html_path;        ///< --html-report: self-contained dashboard
  std::string profile_path;     ///< --profile-out: collapsed-stack profile
  int profile_hz = 97;          ///< --profile-hz: sampling rate (0 = off)
  std::string explain_net;      ///< explain: the net to explain
  std::string listen = "unix:/tmp/noisewin.sock";  ///< daemon: --listen endpoint
  int max_connections = 32;     ///< daemon: --max-connections
  int max_queued = 16;          ///< daemon: --max-queued per connection
  int analysis_slots = 2;       ///< daemon: --analysis-slots (0 = shed all)
  int max_waiters = 8;          ///< daemon: --max-waiters behind busy slots
  int idle_timeout_s = 300;     ///< daemon: --idle-timeout seconds (0 = never)
  int sample_ms = -1;           ///< --sample-ms: telemetry period (-1 = default)
  int sample_cap = 512;         ///< --sample-cap: timeseries ring bound
  noise::Options noise_opt;
  double slow_ms = 100.0;  ///< --slow-ms: serve slow-request threshold
  bool delay_impact = false;
  bool have_mode = false;
  bool stats = false;
  bool mem_report = false;  ///< --mem-report: per-account memory table
  bool progress = false;  ///< --progress: stderr meter / serve event lines
  int verbose = 0;  ///< --verbose count: 1 = info, 2+ = debug
  bool help = false;
};

const char kUsage[] =
    "usage: noisewin --lib L.nlib --netlist D.nv --spef P.nwspef [options]\n"
    "       noisewin --demo bus|logic|logic1k|logic10k|pipeline [options]\n"
    "       noisewin explain <net> --demo bus [options]   violation provenance\n"
    "       noisewin serve --demo bus [options]   JSONL session server (stdin/stdout)\n"
    "       noisewin shell --demo bus [options]   interactive session REPL\n"
    "       noisewin daemon --demo bus [options]  concurrent JSONL socket server\n"
    "options:\n"
    "  --arrivals <file>   per-port arrival windows: '<port> <lo> <hi>' lines\n"
    "  --mode <m>          no-filtering | switching-windows | noise-windows\n"
    "  --model <m>         charge-sharing | devgan | two-pi | reduced-mna | mna-exact\n"
    "  --period <s>        clock period in seconds (default 1e-9)\n"
    "  --refine <n>        noise-on-delay refinement passes (default 0)\n"
    "  --threads <n>       analysis threads: 1 = serial (default), 0 = all cores\n"
    "  --simd <p>          hot-loop kernel path: auto (default) | scalar | vector;\n"
    "                      results are bit-identical either way\n"
    "  --stats             print per-phase telemetry after the report\n"
    "  --mem-report        print the per-subsystem memory accounting table\n"
    "                      (current/peak bytes and alloc/free counts per\n"
    "                      account) after the report\n"
    "  --stats-json <file> write the machine-readable run report (metrics JSON);\n"
    "                      under serve/shell: the per-session metrics at exit\n"
    "  --trace-out <file>  write a Chrome trace-event JSON (chrome://tracing,\n"
    "                      Perfetto) with per-thread span tracks; under serve\n"
    "                      each request gets its own span on the server track\n"
    "  --slow-ms <ms>      serve: requests slower than this land in the slow\n"
    "                      log (`slowlog` command, stats JSON; default 100)\n"
    "daemon options:\n"
    "  --listen <ep>       unix:<path> or tcp:<host>:<port>; tcp port 0 picks\n"
    "                      an ephemeral port (default unix:/tmp/noisewin.sock)\n"
    "  --max-connections <n> concurrent clients before accept-shed (default 32)\n"
    "  --max-queued <n>    queued request lines per connection (default 16)\n"
    "  --analysis-slots <n> concurrent analyses across clients; 0 sheds every\n"
    "                      analysis ('maintenance mode'; default 2)\n"
    "  --max-waiters <n>   admissions queued behind busy slots (default 8)\n"
    "  --idle-timeout <s>  disconnect silent clients after s seconds; 0 keeps\n"
    "                      them forever (default 300)\n"
    "  --sample-ms <ms>    live-telemetry sampling period: the daemon records\n"
    "                      queue depth/connections/latency into the bounded\n"
    "                      'timeseries' stats ring (default 250; 0 disables).\n"
    "                      Under analyze: sample RSS during the run (default\n"
    "                      off); results are bit-identical either way\n"
    "  --sample-cap <n>    telemetry samples retained (ring bound, default 512)\n"
    "  --profile-out <file> write a collapsed-stack ('folded') sampling\n"
    "                      profile of the run — one 'thread;span;span N' line\n"
    "                      per stack, ready for flamegraph tooling; results\n"
    "                      are bit-identical with profiling on or off\n"
    "  --profile-hz <n>    sampling rate for --profile-out (default 97;\n"
    "                      0 disables sampling, max 20000)\n"
    "  --verbose           more diagnostics on stderr (repeat for debug)\n"
    "  --report <file>     write the full report to a file (default: stdout)\n"
    "  --html-report <file> write the self-contained HTML noise dashboard\n"
    "  --progress          analyze: live phase meter on stderr; serve: stream\n"
    "                      {\"event\":\"progress\"} lines and accept mid-analyze\n"
    "                      `cancel` requests\n"
    "  --delay-impact      append the crosstalk delay-impact section\n";

std::optional<noise::AnalysisMode> parse_mode(std::string_view s) {
  if (s == "no-filtering") return noise::AnalysisMode::kNoFiltering;
  if (s == "switching-windows") return noise::AnalysisMode::kSwitchingWindows;
  if (s == "noise-windows") return noise::AnalysisMode::kNoiseWindows;
  return std::nullopt;
}

std::optional<noise::GlitchModel> parse_model(std::string_view s) {
  if (s == "charge-sharing") return noise::GlitchModel::kChargeSharing;
  if (s == "devgan") return noise::GlitchModel::kDevgan;
  if (s == "two-pi") return noise::GlitchModel::kTwoPi;
  if (s == "reduced-mna") return noise::GlitchModel::kReducedMna;
  if (s == "mna-exact") return noise::GlitchModel::kMnaExact;
  return std::nullopt;
}

std::optional<noise::SimdMode> parse_simd(std::string_view s) {
  if (s == "auto") return noise::SimdMode::kAuto;
  if (s == "scalar") return noise::SimdMode::kScalar;
  if (s == "vector") return noise::SimdMode::kVector;
  return std::nullopt;
}

std::optional<Args> parse_args(std::span<const std::string> argv, std::ostream& err) {
  Args a;
  std::size_t start = 0;
  if (!argv.empty() && !argv[0].empty() && argv[0][0] != '-') {
    if (argv[0] == "serve" || argv[0] == "shell" || argv[0] == "analyze" ||
        argv[0] == "explain" || argv[0] == "daemon") {
      a.command = argv[0];
      start = 1;
    } else {
      err << "noisewin: unknown command '" << argv[0] << "'\n";
      return std::nullopt;
    }
  }
  if (a.command == "explain") {
    // The net to explain is a positional argument right after the command.
    if (start >= argv.size() || argv[start].empty() || argv[start][0] == '-') {
      err << "noisewin: explain needs a net name\n";
      return std::nullopt;
    }
    a.explain_net = argv[start++];
  }
  for (std::size_t i = start; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    auto need_value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argv.size()) {
        err << "noisewin: missing value after " << arg << "\n";
        return std::nullopt;
      }
      return argv[++i];
    };
    if (arg == "--lib") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.lib_path = *v;
    } else if (arg == "--netlist") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.netlist_path = *v;
    } else if (arg == "--spef") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.spef_path = *v;
    } else if (arg == "--arrivals") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.arrivals_path = *v;
    } else if (arg == "--report") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.report_path = *v;
    } else if (arg == "--demo") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.demo = *v;
    } else if (arg == "--mode") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      const auto m = parse_mode(*v);
      if (!m) {
        err << "noisewin: unknown mode '" << *v << "'\n";
        return std::nullopt;
      }
      a.noise_opt.mode = *m;
      a.have_mode = true;
    } else if (arg == "--model") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      const auto m = parse_model(*v);
      if (!m) {
        err << "noisewin: unknown model '" << *v << "'\n";
        return std::nullopt;
      }
      a.noise_opt.model = *m;
    } else if (arg == "--period") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.noise_opt.clock_period = nw::parse_double(*v);
    } else if (arg == "--refine") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.noise_opt.refine_iterations = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--threads") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.noise_opt.threads = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--simd") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      const auto m = parse_simd(*v);
      if (!m) {
        err << "noisewin: unknown --simd value '" << *v
            << "' (expected auto | scalar | vector)\n";
        return std::nullopt;
      }
      a.noise_opt.simd = *m;
    } else if (arg == "--stats") {
      a.stats = true;
    } else if (arg == "--mem-report") {
      a.mem_report = true;
    } else if (arg == "--progress") {
      a.progress = true;
    } else if (arg == "--html-report") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.html_path = *v;
    } else if (arg == "--stats-json") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.stats_json_path = *v;
    } else if (arg == "--trace-out") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.trace_path = *v;
    } else if (arg == "--profile-out") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.profile_path = *v;
    } else if (arg == "--profile-hz") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.profile_hz = static_cast<int>(nw::parse_uint(*v));
      if (a.profile_hz > obs::Profiler::kMaxHz) {
        err << "noisewin: --profile-hz " << a.profile_hz << " too high (max "
            << obs::Profiler::kMaxHz << ")\n";
        return std::nullopt;
      }
    } else if (arg == "--slow-ms") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.slow_ms = nw::parse_double(*v);
    } else if (arg == "--listen") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.listen = *v;
    } else if (arg == "--max-connections") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.max_connections = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--max-queued") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.max_queued = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--analysis-slots") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.analysis_slots = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--max-waiters") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.max_waiters = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--idle-timeout") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.idle_timeout_s = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--sample-ms") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.sample_ms = static_cast<int>(nw::parse_uint(*v));
    } else if (arg == "--sample-cap") {
      const auto v = need_value();
      if (!v) return std::nullopt;
      a.sample_cap = static_cast<int>(nw::parse_uint(*v));
      if (a.sample_cap < 1) {
        err << "noisewin: --sample-cap must be at least 1\n";
        return std::nullopt;
      }
    } else if (arg == "--verbose" || arg == "-v") {
      ++a.verbose;
    } else if (arg == "--delay-impact") {
      a.delay_impact = true;
    } else if (arg == "--help" || arg == "-h") {
      a.help = true;
      return a;  // usage goes to stdout with exit code 0
    } else {
      err << "noisewin: unknown argument '" << arg << "'\n";
      return std::nullopt;
    }
  }
  const bool files_any =
      !a.lib_path.empty() || !a.netlist_path.empty() || !a.spef_path.empty();
  const bool files_all =
      !a.lib_path.empty() && !a.netlist_path.empty() && !a.spef_path.empty();
  // Exactly one complete input source: all three files, or a demo.
  if (a.demo.empty() ? !files_all : files_any) {
    err << "noisewin: give either --lib/--netlist/--spef or --demo\n";
    return std::nullopt;
  }
  return a;
}

/// Points the diagnostic logger at the CLI's error stream (and applies the
/// --verbose level) for the duration of the run; restores on scope exit so
/// embedding callers (tests run run_cli repeatedly) see no global drift.
class LogScope {
 public:
  LogScope(std::ostream& err, int verbose) : saved_level_(obs::log_level()) {
    obs::set_log_sink(&err);
    if (verbose >= 2) {
      obs::set_log_level(obs::LogLevel::kDebug);
    } else if (verbose == 1) {
      obs::set_log_level(obs::LogLevel::kInfo);
    }
  }
  ~LogScope() {
    obs::set_log_sink(nullptr);
    obs::set_log_level(saved_level_);
  }
  LogScope(const LogScope&) = delete;
  LogScope& operator=(const LogScope&) = delete;

 private:
  obs::LogLevel saved_level_;
};

/// Fail fast on an unwritable output destination — before analysis burns
/// minutes. Probes in append mode so an existing file is not truncated if a
/// later stage fails anyway. `flag` is the CLI flag that supplied the path
/// ("--report", "--stats-json", ...), so the error names the knob to fix.
/// The one helper covers every output flag; call sites cannot drift apart.
void require_writable(const std::string& path, const char* flag) {
  if (path.empty()) return;
  std::ofstream probe(path, std::ios::app);
  if (!probe) {
    throw std::runtime_error(std::string("cannot write ") + flag + " '" + path + "'");
  }
}

/// Open an output file validated earlier by require_writable (the state of
/// the filesystem can still have changed in between).
std::ofstream open_output(const std::string& path, const char* flag) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error(std::string("cannot write ") + flag + " '" + path + "'");
  }
  return os;
}

/// Flush and verify a finished output stream (disk-full / IO errors
/// otherwise vanish into a truncated artifact and a success exit code).
void require_written(std::ostream& os, const char* flag, const std::string& path) {
  os.flush();
  if (!os) {
    throw std::runtime_error(std::string("error writing ") + flag + " '" + path + "'");
  }
}

/// Start the sampling profiler for this run if --profile-out asked for it.
/// --profile-hz 0 keeps it off (an empty folded file is still written, so
/// scripted consumers always find their artifact).
bool start_profiler(const Args& a, const char* thread_name) {
  if (a.profile_path.empty() || a.profile_hz <= 0) return false;
  obs::profile_set_thread_name(thread_name);
  obs::Profiler::clear();
  if (!obs::Profiler::start(a.profile_hz)) {
    NW_LOG(kWarn) << "sampling profiler failed to start (already running?)";
    return false;
  }
  return true;
}

/// Stop sampling and write the collapsed-stack artifact. Safe to call when
/// the profiler never started (writes an empty, still-valid folded file).
void write_profile(const Args& a) {
  if (a.profile_path.empty()) return;
  obs::Profiler::stop();
  std::ofstream pf = open_output(a.profile_path, "--profile-out");
  // --profile-hz 0: the file stays empty even if the process aggregate
  // holds samples from an earlier in-process run (tests share a process).
  if (a.profile_hz > 0) obs::Profiler::write_folded(pf);
  require_written(pf, "--profile-out", a.profile_path);
  NW_LOG(kInfo) << "profile written to " << a.profile_path << " ("
                << obs::Profiler::total_samples() << " samples)";
}

/// A wall-time gauge appended to an exported snapshot copy (render times
/// measured outside the analyzer's own registry, e.g. html_report_ms).
obs::MetricSample timing_sample(const char* name, const char* help, double ms) {
  obs::MetricSample s;
  s.name = name;
  s.help = help;
  s.unit = "ms";
  s.kind = obs::MetricSample::Kind::kGauge;
  s.deterministic = false;
  s.value = ms;
  return s;
}

/// The --progress stderr meter: one line, rewritten in place per
/// checkpoint; finish() terminates it so later diagnostics start clean.
class StderrProgress final : public noise::ProgressSink {
 public:
  explicit StderrProgress(std::ostream& err) : err_(err) {}

  void on_progress(const noise::Progress& p) override {
    char buf[160];
    if (p.eta_s > 0.0) {
      std::snprintf(buf, sizeof buf, "\r[%s] %zu/%zu (eta %.1fs)        ",
                    p.phase, p.completed, p.total, p.eta_s);
    } else {
      std::snprintf(buf, sizeof buf, "\r[%s] %zu/%zu        ", p.phase,
                    p.completed, p.total);
    }
    err_ << buf << std::flush;
    active_ = true;
  }

  void finish() {
    if (!active_) return;
    err_ << "\n" << std::flush;
    active_ = false;
  }

 private:
  std::ostream& err_;
  bool active_ = false;
};

/// Load the design under analysis from --demo or the --lib/--netlist/--spef
/// triple. `library` is an out-parameter because the design keeps a pointer
/// into it — it must outlive (and not move under) everything downstream.
void load_inputs(const Args& a, lib::Library& library, std::optional<net::Design>& design,
                 std::optional<para::Parasitics>& parasitics, sta::Options& sta_opt) {
  sta_opt.clock_period = a.noise_opt.clock_period;
  if (!a.demo.empty()) {
    library = lib::default_library();
    gen::Generated g = [&] {
      if (a.demo == "bus") return gen::make_bus(library, {});
      if (a.demo == "logic") return gen::make_rand_logic(library, {});
      // Benchmark-suite sizes (D4/D5), so CI and clients can exercise the
      // exact designs the perf baselines are recorded on.
      if (a.demo == "logic1k") {
        return gen::make_rand_logic(library, bench::logic_config(1000));
      }
      if (a.demo == "logic10k") {
        return gen::make_rand_logic(library, bench::logic_config(10000));
      }
      if (a.demo == "pipeline") return gen::make_pipeline(library, {});
      throw std::runtime_error("unknown demo '" + a.demo +
                               "' (bus|logic|logic1k|logic10k|pipeline)");
    }();
    sta_opt = g.sta_options;
    sta_opt.clock_period = a.noise_opt.clock_period;
    design.emplace(std::move(g.design));
    parasitics.emplace(std::move(g.para));
  } else {
    std::ifstream lf(a.lib_path);
    if (!lf) throw std::runtime_error("cannot open library '" + a.lib_path + "'");
    library = lib::read_library(lf);
    std::ifstream nf(a.netlist_path);
    if (!nf) throw std::runtime_error("cannot open netlist '" + a.netlist_path + "'");
    design.emplace(net::read_netlist(nf, library));
    std::ifstream pf(a.spef_path);
    if (!pf) throw std::runtime_error("cannot open spef '" + a.spef_path + "'");
    parasitics.emplace(para::read_spef(pf, *design));
    if (!a.arrivals_path.empty()) {
      std::ifstream af(a.arrivals_path);
      if (!af) throw std::runtime_error("cannot open arrivals '" + a.arrivals_path + "'");
      std::string line;
      int lineno = 0;
      while (std::getline(af, line)) {
        ++lineno;
        const auto t = nw::trim(line);
        if (t.empty() || nw::starts_with(t, "#")) continue;
        const auto toks = nw::split(t);
        if (toks.size() < 3) {
          throw std::runtime_error("arrivals line " + std::to_string(lineno) +
                                   ": expected '<port> <lo> <hi>'");
        }
        sta_opt.input_arrivals[std::string(toks[0])] =
            Interval{nw::parse_double(toks[1]), nw::parse_double(toks[2])};
      }
    }
  }
  const auto lint = design->lint();
  for (const auto& problem : lint) NW_LOG(kWarn) << "lint: " << problem;
}

/// The `serve` and `shell` subcommands: hold the design in a session and
/// converse over the streams until EOF.
int run_session(const Args& a, std::istream& in, std::ostream& out) {
  lib::Library library;
  std::optional<net::Design> design;
  std::optional<para::Parasitics> parasitics;
  sta::Options sta_opt;
  load_inputs(a, library, design, parasitics, sta_opt);
  // Charged before the moves below: moving only transfers ownership, the
  // byte counts stay valid for the lifetime of the session.
  const obs::ScopedMemCharge design_charge(obs::MemAccountId::kDesign,
                                           design->memory_bytes());
  const obs::ScopedMemCharge para_charge(obs::MemAccountId::kParasitics,
                                         parasitics->memory_bytes());

  session::SessionConfig cfg;
  cfg.noise = a.noise_opt;
  cfg.sta = sta_opt;
  session::Session session(std::move(*design), std::move(*parasitics), cfg);

  if (!a.trace_path.empty()) {
    obs::Tracer::clear();
    obs::Tracer::set_thread_name("server");
    obs::Tracer::enable();
  }
  // Name the conversation thread up front so a profiler started later via
  // the `profile` protocol command labels its stacks "server", too.
  obs::profile_set_thread_name("server");
  start_profiler(a, "server");

  session::RequestContext reqobs(session.registry(), a.slow_ms);
  if (a.command == "serve") {
    session::ServeOptions sopt;
    sopt.progress = a.progress;
    session::serve(session, in, out, &reqobs, sopt);
  } else {
    session::shell(session, in, out);
  }

  if (!a.trace_path.empty()) {
    obs::Tracer::disable();
    std::ofstream tf = open_output(a.trace_path, "--trace-out");
    obs::Tracer::write_chrome(tf);
    require_written(tf, "--trace-out", a.trace_path);
    NW_LOG(kInfo) << "session trace written to " << a.trace_path;
  }
  write_profile(a);

  if (!a.stats_json_path.empty()) {
    std::ofstream sf = open_output(a.stats_json_path, "--stats-json");
    // The executor section reflects the session's most recent analysis;
    // before any analysis it renders as {"enabled":false,...} from a
    // default Result.
    const noise::Result* last = session.last_result();
    static const noise::Result kEmpty;
    const std::pair<std::string, std::string> extra[] = {
        {"slowlog", reqobs.slowlog_json().dump()},
        {"executor", noise::executor_stats_json(last ? *last : kEmpty)}};
    obs::write_stats_json(sf, session.meta(), session.metrics_snapshot(), extra);
    require_written(sf, "--stats-json", a.stats_json_path);
    NW_LOG(kInfo) << "session stats written to " << a.stats_json_path;
  }
  return 0;
}

// SIGTERM/SIGINT → graceful drain. request_drain() only flips an atomic, so
// the handler is async-signal-safe; plain function pointers because
// std::signal takes no context.
net::Daemon* g_signal_daemon = nullptr;

extern "C" void daemon_signal_handler(int) {
  if (g_signal_daemon != nullptr) g_signal_daemon->request_drain();
}

/// The `daemon` subcommand: serve many concurrent socket clients from one
/// shared immutable design state until SIGTERM or a `shutdown` request.
int run_daemon(const Args& a, std::ostream& out) {
  lib::Library library;
  std::optional<net::Design> design;
  std::optional<para::Parasitics> parasitics;
  sta::Options sta_opt;
  load_inputs(a, library, design, parasitics, sta_opt);
  const obs::ScopedMemCharge design_charge(obs::MemAccountId::kDesign,
                                           design->memory_bytes());
  const obs::ScopedMemCharge para_charge(obs::MemAccountId::kParasitics,
                                         parasitics->memory_bytes());

  net::DaemonConfig cfg;
  cfg.listen = net::parse_endpoint(a.listen);
  cfg.max_connections = a.max_connections;
  cfg.max_queued = static_cast<std::size_t>(a.max_queued);
  cfg.analysis_slots = a.analysis_slots;
  cfg.max_waiters = a.max_waiters;
  cfg.idle_timeout_s = a.idle_timeout_s;
  cfg.slow_ms = a.slow_ms;
  cfg.progress_events = a.progress;
  if (a.sample_ms >= 0) cfg.sample_interval_ms = a.sample_ms;
  cfg.sample_capacity = static_cast<std::size_t>(a.sample_cap);
  cfg.session.noise = a.noise_opt;
  cfg.session.sta = sta_opt;

  if (!a.trace_path.empty()) {
    obs::Tracer::clear();
    obs::Tracer::enable();
  }
  start_profiler(a, "daemon");

  net::Daemon daemon(cfg, std::make_shared<const net::Design>(std::move(*design)),
                     std::make_shared<const para::Parasitics>(std::move(*parasitics)));
  daemon.start();
  // Readiness line: scripts wait for this before connecting (the prewarm
  // analysis inside start() can take a while on big designs).
  out << "daemon listening on " << daemon.bound_endpoint().to_string() << "\n"
      << std::flush;

  g_signal_daemon = &daemon;
  const auto prev_term = std::signal(SIGTERM, daemon_signal_handler);
  const auto prev_int = std::signal(SIGINT, daemon_signal_handler);
  daemon.wait();
  std::signal(SIGTERM, prev_term);
  std::signal(SIGINT, prev_int);
  g_signal_daemon = nullptr;

  if (!a.trace_path.empty()) {
    obs::Tracer::disable();
    std::ofstream tf = open_output(a.trace_path, "--trace-out");
    obs::Tracer::write_chrome(tf);
    require_written(tf, "--trace-out", a.trace_path);
    NW_LOG(kInfo) << "daemon trace written to " << a.trace_path;
  }
  write_profile(a);

  if (!a.stats_json_path.empty()) {
    std::ofstream sf = open_output(a.stats_json_path, "--stats-json");
    const std::pair<std::string, std::string> extra[] = {
        {"daemon", daemon.stats_section_json()},
        {"timeseries", daemon.timeseries_section_json()}};
    obs::write_stats_json(sf, daemon.meta(), daemon.registry().snapshot(), extra);
    require_written(sf, "--stats-json", a.stats_json_path);
    NW_LOG(kInfo) << "daemon stats written to " << a.stats_json_path;
  }
  out << "daemon drained: " << daemon.connections_accepted() << " connections, "
      << daemon.requests_handled() << " requests ("
      << daemon.requests_shed() << " shed)\n";
  return 0;
}

}  // namespace

int run_cli(std::span<const std::string> args, std::istream& in, std::ostream& out,
            std::ostream& err) {
  std::optional<Args> parsed;
  try {
    parsed = parse_args(args, err);
  } catch (const std::exception& e) {
    // parse_double/parse_uint throw on malformed numeric values.
    err << "noisewin: " << e.what() << "\n";
  }
  if (!parsed) {
    err << kUsage;
    return 1;
  }
  const Args& a = *parsed;
  if (a.help) {
    out << kUsage;
    return 0;
  }

  const LogScope log_scope(err, a.verbose);

  if (a.command == "serve" || a.command == "shell" || a.command == "daemon") {
    try {
      require_writable(a.trace_path, "--trace-out");
      require_writable(a.stats_json_path, "--stats-json");
      require_writable(a.profile_path, "--profile-out");
      if (a.command == "daemon") return run_daemon(a, out);
      return run_session(a, in, out);
    } catch (const std::exception& e) {
      if (!a.trace_path.empty()) obs::Tracer::disable();
      obs::Profiler::stop();
      err << "noisewin: " << e.what() << "\n";
      return 1;
    }
  }

  if (!a.trace_path.empty()) {
    obs::Tracer::clear();
    obs::Tracer::set_thread_name("main");
    obs::Tracer::enable();
  }

  try {
    // Validate output destinations up front: a typo'd --report directory
    // should fail in milliseconds, not after the analysis.
    require_writable(a.trace_path, "--trace-out");
    require_writable(a.stats_json_path, "--stats-json");
    require_writable(a.report_path, "--report");
    require_writable(a.html_path, "--html-report");
    require_writable(a.profile_path, "--profile-out");

    lib::Library library;
    std::optional<net::Design> design;
    std::optional<para::Parasitics> parasitics;
    sta::Options sta_opt;
    load_inputs(a, library, design, parasitics, sta_opt);
    const obs::ScopedMemCharge design_charge(obs::MemAccountId::kDesign,
                                             design->memory_bytes());
    const obs::ScopedMemCharge para_charge(obs::MemAccountId::kParasitics,
                                           parasitics->memory_bytes());

    const sta::Result timing = sta::run(*design, *parasitics, sta_opt);
    const obs::ScopedMemCharge sta_charge(obs::MemAccountId::kSta,
                                          sta::memory_bytes(timing));
    start_profiler(a, "main");
    // --sample-ms under analyze: record the run's memory trajectory into a
    // bounded ring (read-only sampling; results are bit-identical with it
    // on or off). Feeds the stats "timeseries" section and the dashboard's
    // #live panel.
    obs::TimeSeriesRing live_ring({"rss_mb", "peak_rss_mb", "tracked_mb"},
                                  static_cast<std::size_t>(a.sample_cap));
    std::optional<obs::Sampler> live_sampler;
    if (a.sample_ms > 0) {
      live_sampler.emplace(
          live_ring,
          [] {
            const obs::ResourceSample r = obs::sample_resources();
            const double tracked =
                static_cast<double>(obs::MemTracker::total_current());
            obs::Tracer::counter("tracked_bytes", tracked);
            return std::vector<double>{
                static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0),
                static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0),
                tracked / (1024.0 * 1024.0)};
          },
          a.sample_ms);
      live_sampler->start();
    }
    std::optional<StderrProgress> meter;
    if (a.progress) meter.emplace(err);
    const noise::Result result = noise::analyze(*design, *parasitics, timing,
                                                a.noise_opt, meter ? &*meter : nullptr);
    const obs::ScopedMemCharge result_charge(obs::MemAccountId::kResult,
                                             noise::memory_bytes(result));
    if (meter) meter->finish();
    if (live_sampler) live_sampler->stop();
    // Stop sampling before report rendering so the profile covers exactly
    // the analysis; the folded artifact is written with the other outputs.
    obs::Profiler::stop();

    // The explain command renders the net's provenance instead of the full
    // report; timed so the stats snapshot can carry explain_ms.
    std::string explain_text;
    double explain_ms = 0.0;
    if (a.command == "explain") {
      const std::optional<NetId> net = design->find_net(a.explain_net);
      if (!net) throw std::runtime_error("unknown net '" + a.explain_net + "'");
      const auto t0 = std::chrono::steady_clock::now();
      explain_text = noise::explain_string(*design, a.noise_opt, result, *net);
      explain_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    }

    // The dashboard renders before the stats-json write so its wall time
    // (html_report_ms) lands in the exported snapshot.
    std::string html;
    double html_ms = 0.0;
    if (!a.html_path.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      std::ostringstream hs;
      noise::HtmlReportOptions hopt;
      if (!a.profile_path.empty()) hopt.profile = obs::Profiler::snapshot();
      if (a.sample_ms > 0) hopt.timeseries = live_ring.snapshot();
      noise::write_html_report(hs, *design, a.noise_opt, result, hopt);
      html = hs.str();
      html_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }

    if (!a.trace_path.empty()) {
      obs::Tracer::disable();
      std::ofstream tf = open_output(a.trace_path, "--trace-out");
      obs::Tracer::write_chrome(tf);
      require_written(tf, "--trace-out", a.trace_path);
      NW_LOG(kInfo) << "trace written to " << a.trace_path;
    }
    write_profile(a);
    if (!a.stats_json_path.empty()) {
      std::ofstream sf = open_output(a.stats_json_path, "--stats-json");
      obs::MetricsSnapshot snap = result.metrics;
      if (!a.html_path.empty()) {
        snap.samples.push_back(
            timing_sample("html_report_ms", "HTML dashboard render time", html_ms));
      }
      if (a.command == "explain") {
        snap.samples.push_back(
            timing_sample("explain_ms", "provenance rendering time", explain_ms));
      }
      std::vector<std::pair<std::string, std::string>> extra = {
          {"executor", noise::executor_stats_json(result)}};
      if (a.sample_ms > 0) {
        extra.emplace_back("timeseries", live_ring.snapshot().json());
      }
      obs::write_stats_json(sf, result.run_meta, snap, extra);
      require_written(sf, "--stats-json", a.stats_json_path);
      NW_LOG(kInfo) << "stats written to " << a.stats_json_path;
    }
    if (!a.html_path.empty()) {
      std::ofstream hf = open_output(a.html_path, "--html-report");
      hf << html;
      require_written(hf, "--html-report", a.html_path);
      NW_LOG(kInfo) << "html report written to " << a.html_path;
    }

    if (a.command == "explain") {
      out << explain_text;
      if (a.mem_report) obs::write_memory_table(out);
      return 0;
    }

    std::ofstream report_file;
    std::ostream* report_os = &out;
    noise::ReportOptions ropt;
    if (!a.report_path.empty()) {
      report_file = open_output(a.report_path, "--report");
      report_os = &report_file;
      // A report file is a self-contained run record: --stats goes into it
      // too (and is still printed to stdout below).
      ropt.telemetry_footer = a.stats;
    }
    noise::write_report(*report_os, *design, a.noise_opt, result, ropt);
    if (a.delay_impact) {
      const noise::DelayImpactSummary impact =
          noise::compute_delay_impact(*design, timing, result, a.noise_opt);
      noise::write_delay_impact(*report_os, *design, impact);
    }
    if (!a.report_path.empty()) {
      require_written(report_file, "--report", a.report_path);
      out << "report written to " << a.report_path << " (" << result.violations.size()
          << " violations)\n";
    }
    if (a.stats) noise::write_stats(out, result.telemetry);
    if (a.mem_report) obs::write_memory_table(out);
    return result.violations.empty() ? 0 : 2;
  } catch (const std::exception& e) {
    if (!a.trace_path.empty()) obs::Tracer::disable();
    obs::Profiler::stop();
    err << "noisewin: " << e.what() << "\n";
    return 1;
  }
}

int run_cli(std::span<const std::string> args, std::ostream& out, std::ostream& err) {
  std::istringstream empty;
  return run_cli(args, empty, out, err);
}

}  // namespace nw::cli
