#!/usr/bin/env python3
"""Minimal JSONL client for `noisewin serve` (stdlib only).

Library use:

    with NwClient(["./build/tools/noisewin", "serve", "--demo", "bus"]) as c:
        print(c.request("violations", limit=5))

Script use (the CI smoke test): drives a full conversation against a demo
session — query violations, apply an ECO edit, check the noise moved,
undo, check the restore is bit-identical — and exits non-zero on any
protocol error or broken invariant.

    python3 tools/nwclient.py --bin ./build/tools/noisewin --demo bus
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


class ProtocolError(RuntimeError):
    """Server answered ok=false; carries the structured code and message."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class NwClient:
    """Synchronous request/response client over a noisewin serve pipe."""

    def __init__(self, argv: list[str]):
        self._proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self._next_id = 0
        self.events_seen = 0  # progress notifications skipped by request_raw

    def __enter__(self) -> "NwClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def request_raw(self, cmd: str, args: dict | None = None) -> dict:
        """One request, one response line; returns the whole envelope.

        A server running with --progress interleaves {"event":"progress",...}
        notification lines with responses; those are counted (events_seen)
        and skipped — responses alone drive the request/response pairing.
        """
        self._next_id += 1
        req = {"id": self._next_id, "cmd": cmd}
        if args:
            req["args"] = args
        assert self._proc.stdin is not None and self._proc.stdout is not None
        self._proc.stdin.write(json.dumps(req) + "\n")
        self._proc.stdin.flush()
        while True:
            line = self._proc.stdout.readline()
            if not line:
                raise RuntimeError(f"server closed the pipe during '{cmd}'")
            resp = json.loads(line)
            if "event" in resp:
                self.events_seen += 1
                continue
            break
        if resp.get("id") != self._next_id:
            raise RuntimeError(f"response id {resp.get('id')} != {self._next_id}")
        return resp

    def request(self, cmd: str, **args) -> dict:
        """One command; returns the data payload or raises ProtocolError."""
        resp = self.request_raw(cmd, args or None)
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ProtocolError(err.get("code", "?"), err.get("message", "?"))
        return resp["data"]

    def close(self) -> int:
        if self._proc.stdin is not None:
            self._proc.stdin.close()
        rc = self._proc.wait(timeout=60)
        return rc


def check(cond: bool, what: str) -> None:
    if not cond:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what}")


def run_progress_cancel(args) -> None:
    """The streaming scenario: analyze with --progress, cancel mid-flight.

    Waits for at least one progress event before sending the cancel, so the
    cancel provably lands inside the running analysis (a cancel queued
    before the first checkpoint is also consumed correctly, but then no
    events are observable). Verifies the out-of-band cancel response, the
    "cancelled" error on the analyzing request, that the session kept its
    pre-analyze state (no analyses, epoch 0), and that the next query
    succeeds from scratch.
    """
    argv = [args.bin, "serve", "--demo", args.demo, "--progress"]
    proc = subprocess.Popen(
        argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    assert proc.stdin is not None and proc.stdout is not None

    def send(req: dict) -> None:
        proc.stdin.write(json.dumps(req) + "\n")
        proc.stdin.flush()

    send({"id": 1, "cmd": "violations"})
    events = 0
    cancel_sent = False
    responses: dict[int, dict] = {}
    while 1 not in responses or 2 not in responses:
        line = proc.stdout.readline()
        if not line:
            check(False, "server closed the pipe mid-scenario")
        msg = json.loads(line)
        if msg.get("event") == "progress":
            events += 1
            for key in ("phase", "completed", "total"):
                check(key in msg, f"progress event carries '{key}'")
            if not cancel_sent:
                send({"id": 2, "cmd": "cancel"})
                cancel_sent = True
        else:
            responses[msg.get("id")] = msg
    check(events >= 1, f"progress events streamed before cancel ({events} seen)")
    cancel = responses[2]
    check(
        cancel.get("ok") and cancel["data"].get("cancelled") is True,
        "cancel acknowledged out-of-band (cancelled: true)",
    )
    analyze = responses[1]
    check(
        not analyze.get("ok")
        and analyze.get("error", {}).get("code") == "cancelled",
        "analyzing request failed with the structured 'cancelled' error",
    )

    # The session must be bit-identical to its pre-analyze state.
    send({"id": 3, "cmd": "stats"})
    while True:
        msg = json.loads(proc.stdout.readline())
        if msg.get("event") != "progress":
            break
    check(msg.get("ok"), "stats answers after the cancelled analysis")
    counters = msg["data"]["counters"]
    gauges = msg["data"]["gauges"]
    check(
        counters.get("session_full_analyses", -1) == 0,
        "cancelled analysis was never committed (0 full analyses)",
    )
    check(gauges.get("session_epoch", -1) == 0, "epoch unchanged (0)")

    # The same query succeeds when allowed to run to completion.
    send({"id": 4, "cmd": "violations"})
    post_events = 0
    while True:
        msg = json.loads(proc.stdout.readline())
        if msg.get("event") == "progress":
            post_events += 1
            continue
        break
    check(
        msg.get("id") == 4 and msg.get("ok"),
        f"re-issued analyze completes ({post_events} progress events)",
    )
    proc.stdin.close()
    check(proc.wait(timeout=120) == 0, "server exited cleanly")
    print("nwclient progress/cancel: all checks passed")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", default="./build/tools/noisewin", help="noisewin binary")
    ap.add_argument("--demo", default="bus",
                    help="demo design (bus|logic|logic1k|logic10k|pipeline)")
    ap.add_argument("--stats-json", default="", help="per-session stats artifact")
    ap.add_argument("--trace-out", default="", help="server-side Chrome trace artifact")
    ap.add_argument("--slow-ms", default="", help="slow-request threshold passed to serve")
    ap.add_argument("--net", default="w1", help="net to edit in the scenario")
    ap.add_argument("--coupled", default="w2", help="net coupled to --net")
    ap.add_argument("--progress-cancel", action="store_true",
                    help="run the streaming progress + mid-analyze cancel "
                         "scenario instead of the ECO conversation")
    args = ap.parse_args()

    if args.progress_cancel:
        run_progress_cancel(args)
        return

    argv = [args.bin, "serve", "--demo", args.demo]
    if args.stats_json:
        argv += ["--stats-json", args.stats_json]
    if args.trace_out:
        argv += ["--trace-out", args.trace_out]
    if args.slow_ms:
        argv += ["--slow-ms", args.slow_ms]

    with NwClient(argv) as c:
        hello = c.request("hello")
        check(hello["protocol"] == 1, f"protocol v1, design '{hello['design']}'")
        check(
            hello.get("stats_schema") == 3,
            f"server {hello.get('version', '?')} ({hello.get('build', '?')}) "
            f"speaks stats schema v{hello.get('stats_schema')}",
        )

        # Sampling profiler round-trip: start → (work) → dump → stop. The
        # conversation below runs between start and stop, so the dump at the
        # end sees server-rooted span stacks.
        prof = c.request("profile", action="start", hz=1997)
        check(prof["running"] and prof["hz"] == 1997,
              f"profiler started ({prof['hz']} Hz)")
        try:
            c.request("profile", action="start")
            check(False, "second profile start must be rejected")
        except ProtocolError as e:
            check(e.code == "bad_args", f"double start -> {e.code}")

        baseline = c.request("violations", limit=5)
        noise_before = c.request("net_noise", net=args.net)
        check("total_peak" in noise_before, f"net_noise({args.net}) answers")

        # ECO: crank the coupling between two neighbouring nets.
        edit = c.request(
            "set_coupling_cap", net_a=args.net, net_b=args.coupled, cap=80e-15
        )
        check(edit["epoch"] > 0, f"edit accepted (epoch {edit['epoch']})")

        noise_after = c.request("net_noise", net=args.net)
        check(
            noise_after["total_peak"] > noise_before["total_peak"],
            "stronger coupling raised the victim's noise "
            f"({noise_before['total_peak']:.6g} -> {noise_after['total_peak']:.6g})",
        )

        # Undo must restore the pre-edit result bit-for-bit (the session
        # serves it from its result cache keyed by options-digest + epoch).
        undo = c.request("undo")
        check(undo["undone"] and undo["epoch"] == 0, "undo restored epoch 0")
        noise_restored = c.request("net_noise", net=args.net)
        check(
            noise_restored == noise_before,
            "post-undo noise is bit-identical to the pre-edit answer",
        )
        restored = c.request("violations", limit=5)
        check(
            restored == baseline,
            "post-undo violations are bit-identical to the baseline",
        )

        # Structured errors, not crashes.
        try:
            c.request("net_noise", net="definitely_not_a_net")
            check(False, "unknown net must be rejected")
        except ProtocolError as e:
            check(e.code == "not_found", f"unknown net -> {e.code}")

        # Request-scoped observability: every command above was timed and
        # id-stamped; with a low --slow-ms threshold they land in the slow log.
        slow = c.request("slowlog")
        check(
            slow["enabled"] and isinstance(slow["entries"], list),
            f"slowlog answers ({slow.get('recorded', 0)} recorded, "
            f"threshold {slow.get('threshold_ms', '?')} ms)",
        )
        if args.slow_ms and float(args.slow_ms) <= 0.01:
            check(slow["recorded"] > 0, "low threshold caught slow requests")

        # Leave one edit applied so the exported stats show a live undo
        # journal (session_journal_bytes > 0 in the resources section).
        parting = c.request(
            "set_coupling_cap", net_a=args.net, net_b=args.coupled, cap=60e-15
        )
        check(parting["epoch"] > 0, f"parting edit applied (epoch {parting['epoch']})")
        reanalyzed = c.request("net_noise", net=args.net)
        check("total_peak" in reanalyzed, "post-edit query re-analyzed incrementally")

        # Profiler dump after the conversation: entries are server-rooted
        # folded stacks; stop keeps the aggregate (status still serves it).
        dump = c.request("profile", action="dump", limit=50)
        check(isinstance(dump["entries"], list), f"profile dump answers "
              f"({dump['samples']:.0f} samples, {dump.get('stacks', 0)} stacks)")
        for entry in dump["entries"]:
            check("stack" in entry and entry.get("count", 0) > 0,
                  "dump entries carry stack + positive count")
            check(entry["stack"].startswith("server"),
                  f"stacks rooted at the server thread ({entry['stack']!r})")
        stopped = c.request("profile", action="stop")
        check(not stopped["running"], "profiler stopped")
        status = c.request("profile", action="status")
        check(not status["running"] and status["samples"] == stopped["samples"],
              "status keeps the aggregate after stop")

        stats = c.request("stats")
        counters = stats["counters"]
        check(
            counters["session_full_analyses"] == 1,
            f"exactly one full analysis "
            f"({counters['session_incremental_analyses']} incremental, "
            f"{counters['session_cache_hits']} cache hits)",
        )
        check(counters["session_cache_hits"] >= 1, "undo was served from the cache")

        rc = c.close()
        check(rc == 0, f"server exited cleanly (rc={rc})")

    print("nwclient smoke: all checks passed")


if __name__ == "__main__":
    main()
