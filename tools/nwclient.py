#!/usr/bin/env python3
"""Minimal JSONL client for `noisewin serve` and `noisewin daemon` (stdlib only).

Library use:

    with NwClient(["./build/tools/noisewin", "serve", "--demo", "bus"]) as c:
        print(c.request("violations", limit=5))

    with NwClient(SocketTransport("unix:/tmp/noisewin.sock")) as c:
        print(c.request("hello"))

Script use (the CI smoke tests): drives a full conversation against a demo
session — query violations, apply an ECO edit, check the noise moved,
undo, check the restore is bit-identical — and exits non-zero on any
protocol error or broken invariant.

    python3 tools/nwclient.py --bin ./build/tools/noisewin --demo bus
    python3 tools/nwclient.py --connect unix:/tmp/noisewin.sock --clients 4
    python3 tools/nwclient.py --connect tcp:127.0.0.1:9191 --progress-cancel
    python3 tools/nwclient.py --connect unix:/tmp/noisewin.sock --shutdown
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import threading
import time


class ProtocolError(RuntimeError):
    """Server answered ok=false; carries the structured code and message."""

    def __init__(self, code: str, message: str, retry_after_ms: float = 0.0):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_ms = retry_after_ms


class StdioTransport:
    """A noisewin serve child process driven over its stdin/stdout pipes."""

    def __init__(self, argv: list[str]):
        self._proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def send_line(self, line: str) -> None:
        assert self._proc.stdin is not None
        self._proc.stdin.write(line + "\n")
        self._proc.stdin.flush()

    def recv_line(self) -> str:
        assert self._proc.stdout is not None
        return self._proc.stdout.readline()

    def close(self) -> int | None:
        """EOF the server and return its exit code."""
        if self._proc.stdin is not None:
            self._proc.stdin.close()
        return self._proc.wait(timeout=120)


class SocketTransport:
    """One daemon connection over unix:<path> or tcp:<host>:<port>."""

    def __init__(self, spec: str, timeout_s: float = 300.0):
        if spec.startswith("unix:"):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.connect(spec[len("unix:"):])
        elif spec.startswith("tcp:"):
            host, _, port = spec[len("tcp:"):].rpartition(":")
            self._sock = socket.create_connection((host, int(port)))
        else:
            raise ValueError(f"--connect wants unix:<path> or tcp:<host>:<port>, got {spec!r}")
        self._sock.settimeout(timeout_s)
        self._rfile = self._sock.makefile("r", encoding="utf-8", newline="\n")

    def send_line(self, line: str) -> None:
        try:
            self._sock.sendall((line + "\n").encode("utf-8"))
        except (BrokenPipeError, ConnectionResetError):
            # The daemon may have shed this connection and closed already;
            # its parting `overloaded` line is still readable.
            pass

    def recv_line(self) -> str:
        return self._rfile.readline()

    def close(self) -> int | None:
        self._rfile.close()
        self._sock.close()
        return None


class NwClient:
    """Synchronous request/response client over a serve pipe or a daemon socket."""

    def __init__(self, transport: StdioTransport | SocketTransport | list[str]):
        if isinstance(transport, list):
            transport = StdioTransport(transport)
        self._t = transport
        self._next_id = 0
        self.events_seen = 0  # progress notifications skipped by request_raw

    def __enter__(self) -> "NwClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def request_raw(self, cmd: str, args: dict | None = None) -> dict:
        """One request, one response line; returns the whole envelope.

        A server running with --progress interleaves {"event":"progress",...}
        notification lines with responses; those are counted (events_seen)
        and skipped — responses alone drive the request/response pairing.
        """
        self._next_id += 1
        req = {"id": self._next_id, "cmd": cmd}
        if args:
            req["args"] = args
        self._t.send_line(json.dumps(req))
        while True:
            line = self._t.recv_line()
            if not line:
                raise RuntimeError(f"server closed the pipe during '{cmd}'")
            resp = json.loads(line)
            if "event" in resp:
                self.events_seen += 1
                continue
            break
        if resp.get("id") != self._next_id:
            raise RuntimeError(f"response id {resp.get('id')} != {self._next_id}")
        return resp

    def request(self, cmd: str, **args) -> dict:
        """One command; returns the data payload or raises ProtocolError."""
        resp = self.request_raw(cmd, args or None)
        if not resp.get("ok"):
            err = resp.get("error") or {}
            raise ProtocolError(
                err.get("code", "?"), err.get("message", "?"),
                err.get("retry_after_ms", 0.0),
            )
        return resp["data"]

    def request_retry(self, cmd: str, max_tries: int = 40, **args) -> dict:
        """Like request, but honors `overloaded` backpressure: sleeps the
        server's retry_after_ms hint and re-issues. A well-behaved daemon
        client always retries analysis commands this way."""
        for _ in range(max_tries):
            try:
                return self.request(cmd, **args)
            except ProtocolError as e:
                if e.code != "overloaded":
                    raise
                time.sleep(max(e.retry_after_ms, 1.0) / 1000.0)
        raise RuntimeError(f"'{cmd}' still overloaded after {max_tries} retries")

    def close(self) -> int | None:
        return self._t.close()


def check(cond: bool, what: str) -> None:
    if not cond:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what}")


def open_transport(args) -> StdioTransport | SocketTransport:
    if args.connect:
        return SocketTransport(args.connect)
    argv = [args.bin, "serve", "--demo", args.demo]
    if args.stats_json:
        argv += ["--stats-json", args.stats_json]
    if args.trace_out:
        argv += ["--trace-out", args.trace_out]
    if args.slow_ms:
        argv += ["--slow-ms", args.slow_ms]
    return StdioTransport(argv)


def check_hello(c: NwClient, daemon: bool) -> dict:
    hello = c.request("hello")
    check(hello["protocol"] == 1, f"protocol v1, design '{hello['design']}'")
    check(
        hello.get("stats_schema") == 5,
        f"server {hello.get('version', '?')} ({hello.get('build', '?')}) "
        f"speaks stats schema v{hello.get('stats_schema')}",
    )
    features = hello.get("features", [])
    check("stats" in features, f"hello advertises features {features}")
    limits = hello.get("limits", {})
    check(limits.get("max_line_bytes", 0) > 0, "hello advertises max_line_bytes")
    if daemon:
        check(hello.get("daemon") is True, "hello advertises daemon mode")
        check("watch" in features, "daemon advertises the watch feature")
        check(hello.get("transport") in ("unix", "tcp"),
              f"transport is {hello.get('transport')!r}")
        check(hello.get("connection", 0) >= 1, "hello carries the connection id")
        for key in ("max_queued", "max_connections", "analysis_slots"):
            check(key in limits, f"hello limits carry '{key}'")
    else:
        check(hello.get("transport") == "stdio", "transport is stdio")
        check(hello.get("daemon") is False, "daemon flag off under serve")
    return hello


def run_profiler_roundtrip(c: NwClient) -> None:
    """start → (caller's work happens after) → used only under stdio serve:
    the sampling profiler is process-global, so concurrent daemon sessions
    must not fight over it."""
    prof = c.request("profile", action="start", hz=1997)
    check(prof["running"] and prof["hz"] == 1997,
          f"profiler started ({prof['hz']} Hz)")
    try:
        c.request("profile", action="start")
        check(False, "second profile start must be rejected")
    except ProtocolError as e:
        check(e.code == "bad_args", f"double start -> {e.code}")


def finish_profiler_roundtrip(c: NwClient) -> None:
    dump = c.request("profile", action="dump", limit=50)
    check(isinstance(dump["entries"], list), f"profile dump answers "
          f"({dump['samples']:.0f} samples, {dump.get('stacks', 0)} stacks)")
    for entry in dump["entries"]:
        check("stack" in entry and entry.get("count", 0) > 0,
              "dump entries carry stack + positive count")
        check(entry["stack"].startswith("server"),
              f"stacks rooted at the server thread ({entry['stack']!r})")
    stopped = c.request("profile", action="stop")
    check(not stopped["running"], "profiler stopped")
    status = c.request("profile", action="status")
    check(not status["running"] and status["samples"] == stopped["samples"],
          "status keeps the aggregate after stop")


def run_scenario(c: NwClient, args, daemon: bool) -> None:
    """The ECO conversation: baseline → edit → re-check → undo → bit-identical."""
    check_hello(c, daemon)
    if not daemon:
        run_profiler_roundtrip(c)

    baseline = c.request_retry("violations", limit=5)
    noise_before = c.request_retry("net_noise", net=args.net)
    check("total_peak" in noise_before, f"net_noise({args.net}) answers")

    # ECO: crank the coupling between two neighbouring nets.
    edit = c.request(
        "set_coupling_cap", net_a=args.net, net_b=args.coupled, cap=80e-15
    )
    check(edit["epoch"] > 0, f"edit accepted (epoch {edit['epoch']})")

    noise_after = c.request_retry("net_noise", net=args.net)
    check(
        noise_after["total_peak"] > noise_before["total_peak"],
        "stronger coupling raised the victim's noise "
        f"({noise_before['total_peak']:.6g} -> {noise_after['total_peak']:.6g})",
    )

    # Undo must restore the pre-edit result bit-for-bit (the session
    # serves it from its result cache keyed by options-digest + epoch).
    undo = c.request("undo")
    check(undo["undone"] and undo["epoch"] == 0, "undo restored epoch 0")
    noise_restored = c.request_retry("net_noise", net=args.net)
    check(
        noise_restored == noise_before,
        "post-undo noise is bit-identical to the pre-edit answer",
    )
    restored = c.request_retry("violations", limit=5)
    check(
        restored == baseline,
        "post-undo violations are bit-identical to the baseline",
    )

    # Structured errors, not crashes.
    try:
        c.request("net_noise", net="definitely_not_a_net")
        check(False, "unknown net must be rejected")
    except ProtocolError as e:
        check(e.code == "not_found", f"unknown net -> {e.code}")

    # Request-scoped observability: every command above was timed and
    # id-stamped; with a low --slow-ms threshold they land in the slow log.
    slow = c.request("slowlog")
    check(
        slow["enabled"] and isinstance(slow["entries"], list),
        f"slowlog answers ({slow.get('recorded', 0)} recorded, "
        f"threshold {slow.get('threshold_ms', '?')} ms)",
    )
    if args.slow_ms and float(args.slow_ms) <= 0.01:
        check(slow["recorded"] > 0, "low threshold caught slow requests")

    # Leave one edit applied so the exported stats show a live undo
    # journal (session_journal_bytes > 0 in the resources section).
    parting = c.request(
        "set_coupling_cap", net_a=args.net, net_b=args.coupled, cap=60e-15
    )
    check(parting["epoch"] > 0, f"parting edit applied (epoch {parting['epoch']})")
    reanalyzed = c.request_retry("net_noise", net=args.net)
    check("total_peak" in reanalyzed, "post-edit query re-analyzed incrementally")

    if not daemon:
        finish_profiler_roundtrip(c)

    stats = c.request("stats")
    counters = stats["counters"]
    # A daemon session adopts the prewarmed seed: its base analysis was
    # never run locally, so full analyses stay 0; stdio serve pays one.
    expected_full = 0 if daemon else 1
    check(
        counters["session_full_analyses"] == expected_full,
        f"exactly {expected_full} full analyses "
        f"({counters['session_incremental_analyses']} incremental, "
        f"{counters['session_cache_hits']} cache hits)",
    )
    check(counters["session_cache_hits"] >= 1, "undo was served from the cache")


def run_concurrent(args) -> None:
    """N clients in parallel against one daemon, each editing its own net.

    Sessions are isolated copy-on-write overlays, so every client sees its
    private edits and nobody else's; the per-client invariants of the serial
    scenario must all hold under interleaving."""
    nets = pick_edit_nets(args)
    results: list[Exception | None] = [None] * args.clients

    def one_client(k: int) -> None:
        try:
            with NwClient(SocketTransport(args.connect)) as c:
                check_hello(c, daemon=True)
                net = nets[k % len(nets)]
                baseline = c.request_retry("violations", limit=10)
                before = c.request_retry("net_noise", net=net)
                edit = c.request("scale_net_parasitics",
                                 net=net, cap_factor=1.4, res_factor=1.1)
                if edit["epoch"] != 1:
                    raise RuntimeError(f"client {k}: epoch {edit['epoch']} != 1")
                after = c.request_retry("net_noise", net=net)
                if after == before:
                    raise RuntimeError(f"client {k}: edit had no effect on {net}")
                c.request_retry("explain", net=net)
                undo = c.request("undo")
                if not undo["undone"] or undo["epoch"] != 0:
                    raise RuntimeError(f"client {k}: undo failed")
                restored = c.request_retry("violations", limit=10)
                if restored != baseline:
                    raise RuntimeError(f"client {k}: post-undo violations differ")
                stats = c.request("stats")
                if stats["counters"]["session_full_analyses"] != 0:
                    raise RuntimeError(f"client {k}: ran a full analysis (seed unused)")
        except BaseException as e:  # incl. SystemExit from check(); re-raised below
            results[k] = e

    threads = [threading.Thread(target=one_client, args=(k,))
               for k in range(args.clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    failures = [f"client {k}: {e}" for k, e in enumerate(results) if e is not None]
    check(not failures, "all concurrent clients passed\n" + "\n".join(failures))
    print(f"nwclient concurrent: {args.clients} clients passed")


def pick_edit_nets(args) -> list[str]:
    """Distinct edit targets, one per client, taken from the live violation
    list (falling back to the worst endpoint slacks on clean designs) so the
    scenario works on any demo design (bus nets are w<k>, the random-logic
    designs use generated names)."""
    nets: list[str] = []
    with NwClient(SocketTransport(args.connect)) as c:
        data = c.request_retry("violations", limit=64)
        for v in data["violations"]:
            if v["net"] not in nets:
                nets.append(v["net"])
        if not nets:
            data = c.request_retry("slack", limit=64)
            for s in data["endpoints"]:
                if s["net"] not in nets:
                    nets.append(s["net"])
    check(len(nets) >= 1, f"daemon reports editable nets ({len(nets)})")
    return nets


def _pipelined_cancel_attempt(t, send, attempt: int):
    """One pipelined analyze+cancel round against a daemon connection.

    Moves the options digest with a fresh `refine` value (so the query in
    front of the cancel always runs a full analysis rather than replaying
    the seed), then pipelines `violations` + `cancel` back-to-back.

    Both responses must always arrive — a lost cancel may never hang the
    connection. Returns (landed, events): `landed` is True when the cancel
    was consumed mid-analysis (cancelled ack + structured 'cancelled'
    error); on a design whose analysis completes in microseconds the
    analysis can outrun the reader thread, in which case both requests
    must have completed normally.
    """
    refine = 8 + attempt
    send({"id": 100 + attempt, "cmd": "set_option",
          "args": {"name": "refine", "value": str(refine)}})
    msg = json.loads(t.recv_line())
    check(msg.get("id") == 100 + attempt and msg.get("ok"),
          f"digest moved off the seed (refine {refine}): next query analyzes")
    send({"id": 1, "cmd": "violations"})
    send({"id": 2, "cmd": "cancel"})
    events = 0
    responses: dict[int, dict] = {}
    while 1 not in responses or 2 not in responses:
        line = t.recv_line()
        if not line:
            check(False, "server closed the pipe mid-scenario")
        msg = json.loads(line)
        if msg.get("event") == "progress":
            events += 1
            for key in ("phase", "completed", "total"):
                check(key in msg, f"progress event carries '{key}'")
        else:
            responses[msg.get("id")] = msg
    cancel, analyze = responses[2], responses[1]
    check(cancel.get("ok"), "cancel always acknowledged out-of-band")
    landed = cancel["data"].get("cancelled") is True
    if landed:
        check(
            not analyze.get("ok")
            and analyze.get("error", {}).get("code") == "cancelled",
            "analyzing request failed with the structured 'cancelled' error",
        )
    else:
        check(analyze.get("ok"),
              "analysis that outran the cancel completed normally")
    return landed, events


def run_progress_cancel(args) -> None:
    """The streaming scenario: analyze with --progress, cancel mid-flight.

    Stdio: waits for at least one progress event before sending the cancel,
    so the cancel provably lands inside the running analysis. Verifies the
    out-of-band cancel response, the "cancelled" error on the analyzing
    request, that the session kept its pre-analyze state (epoch 0, nothing
    committed), and that the next query succeeds.

    Under a daemon (--connect), the session starts from the prewarmed seed,
    so each attempt first moves the options digest (`refine`) to force a
    real analysis, then pipelines the cancel right behind it. On a design
    whose analysis finishes in microseconds the analysis can legitimately
    outrun the pipelined cancel, so the attempt is retried (fresh refine
    value each time) until a cancel lands mid-analysis; every attempt still
    asserts the connection answers both requests. CI runs this against
    logic10k, where the first attempt lands.
    """
    daemon = bool(args.connect)
    if daemon:
        t = SocketTransport(args.connect)
    else:
        t = StdioTransport([args.bin, "serve", "--demo", args.demo, "--progress"])

    def send(req: dict) -> None:
        t.send_line(json.dumps(req))

    completed = 0  # daemon attempts where the analysis outran the cancel
    if daemon:
        max_attempts = 10
        landed = False
        for attempt in range(max_attempts):
            landed, _ = _pipelined_cancel_attempt(t, send, attempt)
            if landed:
                break
            completed += 1
        check(landed,
              f"cancel landed mid-analysis within {max_attempts} attempts")
    else:
        send({"id": 1, "cmd": "violations"})
        events = 0
        cancel_sent = False
        responses: dict[int, dict] = {}
        while 1 not in responses or 2 not in responses:
            line = t.recv_line()
            if not line:
                check(False, "server closed the pipe mid-scenario")
            msg = json.loads(line)
            if msg.get("event") == "progress":
                events += 1
                for key in ("phase", "completed", "total"):
                    check(key in msg, f"progress event carries '{key}'")
                if not cancel_sent:
                    send({"id": 2, "cmd": "cancel"})
                    cancel_sent = True
            else:
                responses[msg.get("id")] = msg
        check(events >= 1, f"progress events streamed before cancel ({events} seen)")
        cancel = responses[2]
        check(
            cancel.get("ok") and cancel["data"].get("cancelled") is True,
            "cancel acknowledged out-of-band (cancelled: true)",
        )
        analyze = responses[1]
        check(
            not analyze.get("ok")
            and analyze.get("error", {}).get("code") == "cancelled",
            "analyzing request failed with the structured 'cancelled' error",
        )

    # The session must be bit-identical to its pre-cancel state: the
    # cancelled analysis committed nothing (only analyses that outran the
    # cancel count), and no edit ever landed.
    send({"id": 3, "cmd": "stats"})
    while True:
        msg = json.loads(t.recv_line())
        if msg.get("event") != "progress":
            break
    check(msg.get("ok"), "stats answers after the cancelled analysis")
    counters = msg["data"]["counters"]
    gauges = msg["data"]["gauges"]
    check(
        counters.get("session_full_analyses", -1) == completed,
        f"cancelled analysis was never committed ({completed} full analyses)",
    )
    check(gauges.get("session_epoch", -1) == 0, "epoch unchanged (0)")

    if daemon:
        # Back onto the seed digest (one undo per refine bump); the
        # re-issued query is served instantly and other connections were
        # never disturbed.
        for k in range(completed + 1):
            send({"id": 200 + k, "cmd": "undo"})
            while True:
                msg = json.loads(t.recv_line())
                if msg.get("event") != "progress":
                    break
            check(msg.get("id") == 200 + k and msg.get("ok"),
                  "refine option undone")

    # The same query succeeds when allowed to run to completion.
    send({"id": 4, "cmd": "violations"})
    post_events = 0
    while True:
        msg = json.loads(t.recv_line())
        if msg.get("event") == "progress":
            post_events += 1
            continue
        break
    check(
        msg.get("id") == 4 and msg.get("ok"),
        f"re-issued analyze completes ({post_events} progress events)",
    )
    rc = t.close()
    check(rc in (0, None), f"server exited cleanly (rc={rc})")
    print("nwclient progress/cancel: all checks passed")


def run_watch(args) -> None:
    """The streaming-telemetry scenario: subscribe, collect N stats events,
    unsubscribe, and verify the stream went quiet.

    The daemon's contract makes "quiet" checkable without sleeping: the
    watch-stop response is only written after the streamer thread joined,
    so every line after it belongs to request/response traffic. We still
    idle a few periods before probing, so a leaky streamer would have had
    every chance to emit."""
    check(bool(args.connect), "--watch needs --connect")
    t = SocketTransport(args.connect)

    def send(req: dict) -> None:
        t.send_line(json.dumps(req))

    period_ms = 50
    want_events = 5
    send({"id": 1, "cmd": "watch",
          "args": {"action": "start", "period_ms": period_ms}})
    events = []
    sub = None
    while sub is None or len(events) < want_events:
        line = t.recv_line()
        if not line:
            check(False, "daemon closed mid-watch")
        msg = json.loads(line)
        if msg.get("event") == "stats":
            events.append(msg)
            continue
        if msg.get("event"):
            continue
        sub = msg
        check(sub.get("ok") and sub["data"].get("watching") is True,
              f"watch subscribed at {sub['data'].get('period_ms')} ms "
              f"(floor {sub['data'].get('min_period_ms')} ms)")
    seqs = [e.get("seq") for e in events]
    check(seqs == sorted(seqs) and len(set(seqs)) == len(seqs),
          f"event seq strictly increases ({seqs})")
    times = [e.get("t_ms", -1.0) for e in events]
    check(all(b >= a for a, b in zip(times, times[1:])),
          "event t_ms is nondecreasing")
    for e in events:
        live = e.get("daemon", {})
        for key in ("queue_depth", "active", "inflight", "rss_mb"):
            check(key in live, f"stats event carries '{key}'")

    send({"id": 2, "cmd": "watch", "args": {"action": "stop"}})
    while True:
        msg = json.loads(t.recv_line())
        if msg.get("event"):
            continue
        break
    check(msg.get("ok") and msg["data"].get("watching") is False,
          "watch unsubscribed")

    time.sleep(3 * period_ms / 1000.0)
    send({"id": 3, "cmd": "hello"})
    line = t.recv_line()
    msg = json.loads(line)
    check("event" not in msg and msg.get("id") == 3,
          "no further events after unsubscribe (next line is the response)")
    t.close()
    print(f"nwclient watch: {len(events)} events streamed, clean teardown")


def run_shutdown(args) -> None:
    """Ask the daemon to drain and verify the connection winds down."""
    check(bool(args.connect), "--shutdown needs --connect")
    t = SocketTransport(args.connect)
    t.send_line(json.dumps({"id": 1, "cmd": "shutdown"}))
    while True:
        line = t.recv_line()
        if not line:
            check(False, "daemon closed before acknowledging shutdown")
        msg = json.loads(line)
        if "event" in msg:
            continue
        break
    check(msg.get("ok") and msg["data"].get("draining") is True,
          "shutdown acknowledged (draining: true)")
    check(t.recv_line() == "", "connection closed after the drain ack")
    t.close()
    print("nwclient shutdown: daemon draining")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", default="./build/tools/noisewin", help="noisewin binary")
    ap.add_argument("--demo", default="bus",
                    help="demo design (bus|logic|logic1k|logic10k|pipeline)")
    ap.add_argument("--connect", default="",
                    help="daemon endpoint (unix:<path> | tcp:<host>:<port>) "
                         "instead of spawning a serve child")
    ap.add_argument("--clients", type=int, default=0,
                    help="run N concurrent clients against --connect")
    ap.add_argument("--stats-json", default="", help="per-session stats artifact")
    ap.add_argument("--trace-out", default="", help="server-side Chrome trace artifact")
    ap.add_argument("--slow-ms", default="", help="slow-request threshold passed to serve")
    ap.add_argument("--net", default="w1", help="net to edit in the scenario")
    ap.add_argument("--coupled", default="w2", help="net coupled to --net")
    ap.add_argument("--progress-cancel", action="store_true",
                    help="run the streaming progress + mid-analyze cancel "
                         "scenario instead of the ECO conversation")
    ap.add_argument("--watch", action="store_true",
                    help="run the streaming-telemetry scenario: subscribe, "
                         "collect stats events, unsubscribe, verify silence")
    ap.add_argument("--shutdown", action="store_true",
                    help="send the daemon a shutdown request and exit")
    args = ap.parse_args()

    if args.shutdown:
        run_shutdown(args)
        return
    if args.watch:
        run_watch(args)
        return
    if args.progress_cancel:
        run_progress_cancel(args)
        return
    if args.clients > 0:
        check(bool(args.connect), "--clients needs --connect")
        run_concurrent(args)
        return

    daemon = bool(args.connect)
    with NwClient(open_transport(args)) as c:
        run_scenario(c, args, daemon)
        if not daemon:
            rc = c.close()
            check(rc == 0, f"server exited cleanly (rc={rc})")

    print("nwclient smoke: all checks passed")


if __name__ == "__main__":
    main()
