#!/usr/bin/env python3
"""Diff two noisewin stats-JSON run records into a regression table.

Compares the comparable perf signals of two runs — phase wall times,
executor utilization (per-worker busy/idle, per-region imbalance), kernel
gauges, and latency-histogram quantiles — and renders a markdown table
with a verdict per metric, plus a "top movers" summary naming which phase
and which worker-utilization signal moved the most.

    # two run records (before / after)
    perf_diff.py before_stats.json after_stats.json

    # a run record against the committed perf baseline
    perf_diff.py --baseline BENCH_baseline.json after_stats.json

    # write the table to a file, fail the run on big regressions
    perf_diff.py a.json b.json --output diff.md --fail-threshold 0.5

Lower is better for every compared metric (seconds, ms, bytes, imbalance,
idle fraction). A metric "regresses" when after > before * (1 + threshold).
The default report threshold is 2% (smaller moves render as "~"); the exit
code only turns nonzero when --fail-threshold is given and exceeded.

The module is importable: tools/bench_history.py uses extract_metrics() /
diff_rows() / top_movers() so its baseline comparisons name the moving
phase and worker-utilization signal with the same logic.
"""

from __future__ import annotations

import argparse
import json
import sys

# Metric-name prefixes per category (used for the top-movers summary).
PHASE_KEYS = (
    "total_seconds",
    "phase_context_seconds",
    "phase_estimate_seconds",
    "phase_propagate_seconds",
    "phase_endpoints_seconds",
    "estimate_ms",
    "propagate_ms",
    "check_ms",
    "explain_ms",
    "html_report_ms",
)
KERNEL_PREFIX = "kernel_"
EXECUTOR_PREFIX = "executor/"
DAEMON_PREFIX = "daemon_"
MEMORY_PREFIX = "mem_"
QUANTILES = ("p50", "p95", "p99")


def is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def load(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def extract_metrics(record: dict) -> dict:
    """Flatten one stats-JSON record into {name: lower-is-better scalar}.

    Covers the "timing" section (phase gauges, kernel gauges, daemon
    timings like daemon_roundtrip_ms / daemon_prewarm_ms, histogram
    quantiles), "resources", the daemon serving section's shed/queue
    counters and latency EWMA, and the schema-v3 "executor" section
    (per-worker idle fraction, per-region wall/imbalance/wait).
    """
    out = {}
    timing = record.get("timing", {})
    for k, v in sorted(timing.items()):
        if is_num(v):
            if (k in PHASE_KEYS or k.startswith(KERNEL_PREFIX)
                    or k.startswith(DAEMON_PREFIX)):
                out[k] = v
        elif isinstance(v, dict) and v.get("count"):
            for q in QUANTILES:
                if is_num(v.get(q)):
                    out[f"{k}_{q}"] = v[q]
    for k, v in sorted(record.get("resources", {}).items()):
        if is_num(v) and v > 0:
            out[k] = v
    d = record.get("daemon", {})
    if isinstance(d, dict):
        for k in ("shed", "queue_rejected", "analyze_ewma_ms"):
            if is_num(d.get(k)) and d[k] > 0:
                out[f"{DAEMON_PREFIX}{k}"] = d[k]
    mem = record.get("memory", {})
    if isinstance(mem, dict):
        # Schema v5: per-account heap peaks gate CI like time regressions.
        for name, acct in sorted(mem.get("accounts", {}).items()):
            peak = acct.get("peak_bytes") if isinstance(acct, dict) else None
            if is_num(peak) and peak > 0:
                out[f"{MEMORY_PREFIX}{name}_peak_bytes"] = peak
        if is_num(mem.get("total_peak_bytes")) and mem["total_peak_bytes"] > 0:
            out[f"{MEMORY_PREFIX}total_peak_bytes"] = mem["total_peak_bytes"]
    ex = record.get("executor", {})
    if isinstance(ex, dict) and ex.get("enabled"):
        busy = sum(w.get("busy_s", 0.0) for w in ex.get("workers", []))
        idle = sum(w.get("idle_s", 0.0) for w in ex.get("workers", []))
        if busy + idle > 0:
            out[f"{EXECUTOR_PREFIX}idle_frac"] = idle / (busy + idle)
        for w in ex.get("workers", []):
            denom = w.get("busy_s", 0.0) + w.get("idle_s", 0.0)
            if denom > 0:
                out[f"{EXECUTOR_PREFIX}worker{w.get('worker', '?')}_idle_frac"] = (
                    w.get("idle_s", 0.0) / denom)
        for label, reg in sorted(ex.get("regions", {}).items()):
            if is_num(reg.get("wall_s")) and reg["wall_s"] > 0:
                out[f"{EXECUTOR_PREFIX}{label}_wall_s"] = reg["wall_s"]
            if is_num(reg.get("imbalance")) and reg["imbalance"] > 0:
                out[f"{EXECUTOR_PREFIX}{label}_imbalance"] = reg["imbalance"]
            if is_num(reg.get("wait_s")) and reg["wait_s"] > 0:
                out[f"{EXECUTOR_PREFIX}{label}_wait_s"] = reg["wait_s"]
    return out


def baseline_metrics(baseline: dict, design: str) -> dict:
    """Pull a design's metrics out of a BENCH_baseline.json ("design/name"
    qualified keys); unqualified keys are accepted for old baselines."""
    out = {}
    for k, v in baseline.get("metrics", {}).items():
        if not is_num(v):
            continue
        if k.startswith(f"{design}/"):
            out[k[len(design) + 1:]] = v
        elif "/" not in k:
            out[k] = v
    return out


def diff_rows(before: dict, after: dict, threshold: float = 0.02) -> list:
    """Rows (name, before, after, ratio, verdict) over the shared metrics.

    verdict: "regression" / "improved" beyond the threshold, "~" inside it.
    A metric present in the baseline but absent from the new record used to
    be silently dropped — a renamed or vanished metric looked like a pass.
    Those now render as "removed" rows (after/ratio None); they never trip
    --fail-threshold but are visible in the table and movers summary.
    Metrics present only in the new record still have nothing to compare.
    """
    rows = []
    for name in sorted(set(before) & set(after)):
        b, a = before[name], after[name]
        if not (is_num(b) and is_num(a)) or b <= 0:
            continue
        ratio = a / b
        if ratio > 1 + threshold:
            verdict = "regression"
        elif ratio < 1 - threshold:
            verdict = "improved"
        else:
            verdict = "~"
        rows.append((name, b, a, ratio, verdict))
    for name in sorted(set(before) - set(after)):
        b = before[name]
        if is_num(b) and b > 0:
            rows.append((name, b, None, None, "removed"))
    return rows


def top_movers(rows: list) -> dict:
    """The biggest |Δ| row per category: 'phase', 'executor', 'daemon',
    'other'.

    This is the "which phase and which worker-utilization signal moved"
    summary bench_history.py attaches to baseline comparisons; daemon
    serving signals (daemon_roundtrip_ms, shed/queue counters) get their
    own category rather than hiding in 'other'.
    """
    movers = {}
    for name, b, a, ratio, _ in rows:
        if ratio is None:  # "removed" rows have no magnitude to rank
            continue
        # Tolerate "<design>/"-qualified names (bench_history baselines).
        unqualified = name.split("/")[-1]
        if EXECUTOR_PREFIX in name:
            cat = "executor"
        elif unqualified in PHASE_KEYS:
            cat = "phase"
        elif unqualified.startswith(DAEMON_PREFIX):
            cat = "daemon"
        elif unqualified.startswith(MEMORY_PREFIX):
            cat = "memory"
        else:
            cat = "other"
        delta = abs(ratio - 1)
        if cat not in movers or delta > abs(movers[cat][3] - 1):
            movers[cat] = (name, b, a, ratio)
    return movers


def fmt(v: float) -> str:
    return f"{v:.6g}"


def render_markdown(rows: list, label_before: str, label_after: str) -> str:
    lines = [
        f"| metric | {label_before} | {label_after} | Δ | verdict |",
        "|---|---:|---:|---:|---|",
    ]
    for name, b, a, ratio, verdict in rows:
        if ratio is None:
            lines.append(f"| `{name}` | {fmt(b)} | - | - | {verdict} |")
        else:
            lines.append(f"| `{name}` | {fmt(b)} | {fmt(a)} | "
                         f"{(ratio - 1) * 100:+.1f}% | {verdict} |")
    movers = top_movers(rows)
    removed = [name for name, _, _, ratio, _ in rows if ratio is None]
    lines.append("")
    if removed:
        lines.append(f"- removed metrics (in {label_before} only): "
                     + ", ".join(f"`{n}`" for n in removed))
    for cat in ("phase", "executor", "daemon", "memory", "other"):
        if cat in movers:
            name, b, a, ratio = movers[cat]
            lines.append(f"- top {cat} mover: `{name}` "
                         f"{fmt(b)} → {fmt(a)} ({(ratio - 1) * 100:+.1f}%)")
    return "\n".join(lines) + "\n"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("records", nargs="+",
                    help="two stats-JSON records (before after), or one "
                         "record with --baseline")
    ap.add_argument("--baseline", metavar="BENCH_baseline.json",
                    help="compare the single record against this baseline's "
                         "metrics for the record's design")
    ap.add_argument("--threshold", type=float, default=0.02,
                    help="relative change below which a metric renders as "
                         "'~' (default 0.02)")
    ap.add_argument("--fail-threshold", type=float, default=None,
                    help="exit 2 when any metric regresses beyond this "
                         "relative threshold (default: report only)")
    ap.add_argument("--output", help="write the markdown table here "
                                     "(default: stdout)")
    args = ap.parse_args()

    if args.baseline:
        if len(args.records) != 1:
            ap.error("--baseline takes exactly one record")
        record = load(args.records[0])
        design = record.get("meta", {}).get("design", "?")
        before = baseline_metrics(load(args.baseline), design)
        after = extract_metrics(record)
        label_before, label_after = "baseline", args.records[0]
        if not before:
            print(f"perf_diff: baseline has no metrics for design "
                  f"'{design}'", file=sys.stderr)
            return 1
    else:
        if len(args.records) != 2:
            ap.error("give exactly two records (before after), or one "
                     "record with --baseline")
        before = extract_metrics(load(args.records[0]))
        after = extract_metrics(load(args.records[1]))
        label_before, label_after = args.records[0], args.records[1]
    if not before or not after:
        print("perf_diff: no comparable metrics found (are these stats-JSON "
              "records with timing/executor sections?)", file=sys.stderr)
        return 1

    rows = diff_rows(before, after, args.threshold)
    if not rows:
        print("perf_diff: the records share no comparable metrics",
              file=sys.stderr)
        return 1
    table = render_markdown(rows, label_before, label_after)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(table)
        print(f"perf_diff: {len(rows)} metrics compared, table written to "
              f"{args.output}")
    else:
        print(table, end="")

    if args.fail_threshold is not None:
        bad = [(n, r) for n, _, _, r, _ in rows
               if r is not None and r > 1 + args.fail_threshold]
        if bad:
            worst = max(bad, key=lambda nr: nr[1])
            print(f"perf_diff: FAIL: {len(bad)} metric(s) regressed beyond "
                  f"{args.fail_threshold * 100:.0f}% (worst: {worst[0]} "
                  f"{(worst[1] - 1) * 100:+.1f}%)", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
