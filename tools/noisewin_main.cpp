// The noisewin command-line tool. All logic lives in tools/cli.cpp so that
// tests can drive it without spawning a process.
#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return nw::cli::run_cli(args, std::cin, std::cout, std::cerr);
}
