#!/usr/bin/env python3
"""Perf-regression bookkeeping over bench run records.

Consumes the stats-JSON run records the benchmarks export via NW_STATS_JSON
(schema v2 with a "bench" section: git SHA, timestamp, build type, peak RSS),
appends one history entry per record to BENCH_history.json, and compares the
records against a committed BENCH_baseline.json with per-metric tolerance.

    # append records to the history and compare against the baseline
    bench_history.py --history BENCH_history.json --baseline BENCH_baseline.json \
        runtime_stats.json session_stats.json

    # same, but exit nonzero on any regression beyond tolerance
    bench_history.py --history ... --baseline ... --enforce records...

    # (re)write the baseline from the given records
    bench_history.py --write-baseline BENCH_baseline.json records...

Comparison is lower-is-better for every tracked metric (wall seconds and
bytes). A metric regresses when latest > baseline * (1 + tolerance); the
default tolerance is deliberately loose (50%) because CI machines are noisy —
the baseline file can tighten or loosen individual metrics via "tolerances".
Without --enforce the comparison is advisory: differences are reported and
the exit code stays 0 (the CI default, so a noisy runner cannot block a PR).
Debug-build records are refused: a Debug number must never land in a perf
baseline or history.
"""

from __future__ import annotations

import argparse
import json
import sys

import perf_diff  # sibling module: shared metric extraction + top movers

DEFAULT_TOLERANCE = 0.50
HISTORY_LIMIT = 200  # oldest entries beyond this fall off

# Timing metrics tracked when present (plus every request_ms_* p95).
# Newly added keys (explain_ms, html_report_ms) are recorded into the
# history immediately but only compared once a baseline containing them is
# written — compare() iterates baseline metrics, so a latest-only metric
# never warns against an older baseline.
TIMING_KEYS = (
    "total_seconds",
    "phase_estimate_seconds",
    "phase_propagate_seconds",
    "phase_endpoints_seconds",
    "explain_ms",
    "html_report_ms",
    "estimate_ms",
    "propagate_ms",
    "check_ms",
    "daemon_roundtrip_ms",
)
# bench_kernels exports per-kernel scalar/vector wall times with this shape.
KERNEL_KEY_PREFIX = "kernel_"
RESOURCE_KEYS = ("peak_rss_bytes", "result_bytes", "session_cache_bytes")


def fail(msg: str) -> None:
    print(f"bench_history: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path: str):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read {path}: {e}")


def is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def key_metrics(record: dict) -> dict:
    """Extract the lower-is-better scalar metrics tracked across runs."""
    out = {}
    timing = record.get("timing", {})
    for k in TIMING_KEYS:
        if is_num(timing.get(k)) and timing[k] > 0:
            out[k] = timing[k]
    for k, v in sorted(timing.items()):
        if k.startswith(KERNEL_KEY_PREFIX) and k.endswith("_ms") and is_num(v) and v > 0:
            out[k] = v
    for k, v in sorted(timing.items()):
        if k.startswith("request_ms_") and isinstance(v, dict) and v.get("count"):
            if is_num(v.get("p95")):
                out[f"{k}_p95"] = v["p95"]
    resources = record.get("resources", {})
    for k in RESOURCE_KEYS:
        if is_num(resources.get(k)) and resources[k] > 0:
            out[k] = resources[k]
    # Executor utilization signals (stats-JSON v3): per-region wall and
    # imbalance, overall idle fraction — and the v5 per-account heap peaks
    # (mem_<account>_peak_bytes) — all lower-is-better.
    for k, v in perf_diff.extract_metrics(record).items():
        if k.startswith((perf_diff.EXECUTOR_PREFIX, perf_diff.MEMORY_PREFIX)):
            out[k] = v
    bench = record.get("bench", {})
    if is_num(bench.get("peak_rss_bytes")) and bench["peak_rss_bytes"] > 0:
        out.setdefault("peak_rss_bytes", bench["peak_rss_bytes"])
    return out


def history_entry(record: dict, source: str) -> dict:
    bench = record.get("bench", {})
    meta = record.get("meta", {})
    if bench.get("build_type") == "Debug":
        fail(f"{source}: refusing a Debug-build record (perf numbers are meaningless)")
    return {
        "source": source,
        "design": meta.get("design", "?"),
        "git_sha": bench.get("git_sha", "unknown"),
        "git_describe": bench.get("git_describe", meta.get("build", "unknown")),
        "build_type": bench.get("build_type", "unknown"),
        "timestamp_utc": bench.get("timestamp_utc", "unknown"),
        "unix_time": bench.get("unix_time", 0),
        "metrics": key_metrics(record),
    }


def qualified_metrics(entry: dict) -> dict:
    """Metrics keyed ``<design>/<name>`` for cross-record merging.

    Baselines hold records for several designs (bus64, logic10k,
    kernels-synthetic) that export the same metric names; an unqualified
    merge would silently keep only the last record's numbers.
    """
    design = entry.get("design", "?")
    return {f"{design}/{k}": v for k, v in entry["metrics"].items()}


def append_history(path: str, entries: list) -> None:
    history = {"version": 1, "entries": []}
    try:
        with open(path, encoding="utf-8") as f:
            history = json.load(f)
    except FileNotFoundError:
        pass
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot read history {path}: {e}")
    if not isinstance(history, dict) or not isinstance(history.get("entries"), list):
        fail(f"history {path} is not a {{version, entries}} object")
    history["entries"].extend(entries)
    history["entries"] = history["entries"][-HISTORY_LIMIT:]
    with open(path, "w", encoding="utf-8") as f:
        json.dump(history, f, indent=1)
        f.write("\n")
    print(f"bench_history: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
          f"appended to {path} ({len(history['entries'])} total)")


def compare(entry: dict, baseline: dict, enforce: bool) -> bool:
    """Report deltas vs the baseline; True when a regression exceeds tolerance."""
    base_metrics = baseline.get("metrics", {})
    tolerances = baseline.get("tolerances", {})
    default_tol = baseline.get("default_tolerance", DEFAULT_TOLERANCE)
    regressed = False
    rows = []
    for name, base in sorted(base_metrics.items()):
        if not is_num(base) or base <= 0:
            continue
        latest = entry["metrics"].get(name)
        if latest is None:
            print(f"  {name}: missing from latest record (baseline {base:g})")
            continue
        tol = tolerances.get(name, default_tol)
        ratio = latest / base
        verdict = "ok"
        if ratio > 1 + tol:
            verdict = "REGRESSION" if enforce else "regression (advisory)"
            regressed = True
        elif ratio < 1 - tol:
            verdict = "improved"
        rows.append((name, base, latest, ratio, verdict))
        print(f"  {name}: {latest:g} vs baseline {base:g} "
              f"({(ratio - 1) * 100:+.1f}%, tolerance ±{tol * 100:.0f}%) {verdict}")
    # Name *which* signal moved the most per category — the phase and the
    # worker-utilization movers are the first things to look at on a
    # regression (tools/perf_diff.py renders the same summary standalone).
    for cat, mover in sorted(perf_diff.top_movers(rows).items()):
        name, base, latest, ratio = mover
        print(f"  top {cat} mover: {name} {base:g} -> {latest:g} "
              f"({(ratio - 1) * 100:+.1f}%)")
    # Metrics present in the latest record but absent from the baseline are
    # informational only (recorded in the history, compared once a baseline
    # containing them is written) — never a warning, never a regression.
    new_only = sorted(set(entry["metrics"]) - set(base_metrics))
    if new_only:
        print(f"  (not in baseline yet, recorded only: {', '.join(new_only)})")
    return regressed


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("records", nargs="+", help="stats-JSON run records to process")
    ap.add_argument("--history", help="BENCH_history.json to append entries to")
    ap.add_argument("--baseline", help="BENCH_baseline.json to compare against")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write a fresh baseline from the given records and exit")
    ap.add_argument("--enforce", action="store_true",
                    help="exit nonzero when a metric regresses beyond tolerance "
                         "(default: advisory)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help=f"override the default relative tolerance "
                         f"(default {DEFAULT_TOLERANCE})")
    args = ap.parse_args()

    entries = [history_entry(load_json(p), p) for p in args.records]
    for e in entries:
        if not e["metrics"]:
            fail(f"{e['source']}: no tracked metrics found "
                 f"(is this a schema v2 record with timing/resources sections?)")

    if args.write_baseline:
        merged = {}
        for e in entries:
            merged.update(qualified_metrics(e))
        baseline = {
            "version": 1,
            "git_sha": entries[0]["git_sha"],
            "timestamp_utc": entries[0]["timestamp_utc"],
            "default_tolerance": args.tolerance or DEFAULT_TOLERANCE,
            "tolerances": {},
            "metrics": merged,
        }
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=1)
            f.write("\n")
        print(f"bench_history: baseline with {len(merged)} metrics "
              f"written to {args.write_baseline}")
        return 0

    # --enforce with nothing to enforce against is a misconfigured CI job,
    # not a pass: an unseeded (empty) history or an empty baseline must
    # fail loudly, or the gate silently guards nothing until someone
    # notices. The history check runs *before* this invocation appends its
    # own entries — a trajectory must already exist (CI seeds the first
    # point explicitly).
    if args.enforce:
        if not args.baseline:
            fail("--enforce given without --baseline: nothing to enforce")
        if args.history:
            try:
                with open(args.history, encoding="utf-8") as f:
                    hist = json.load(f)
            except FileNotFoundError:
                fail(f"--enforce: history {args.history} does not exist — "
                     f"seed the first trajectory point before enforcing")
            except (OSError, json.JSONDecodeError) as e:
                fail(f"--enforce: cannot read history {args.history}: {e}")
            if not isinstance(hist, dict) or not hist.get("entries"):
                fail(f"--enforce: history {args.history} is empty — seed the "
                     f"first trajectory point before enforcing")

    if args.history:
        append_history(args.history, entries)

    regressed = False
    if args.baseline:
        baseline = load_json(args.baseline)
        if args.enforce and not baseline.get("metrics"):
            fail(f"--enforce: baseline {args.baseline} has no metrics — "
                 f"write it first (--write-baseline)")
        if args.tolerance is not None:
            baseline["default_tolerance"] = args.tolerance
        merged = {"metrics": {}}
        for e in entries:
            merged["metrics"].update(qualified_metrics(e))
        print(f"bench_history: comparing against {args.baseline} "
              f"(baseline sha {baseline.get('git_sha', '?')[:12]})")
        regressed = compare(merged, baseline, args.enforce)
        if regressed and not args.enforce:
            print("bench_history: regressions are advisory (no --enforce); exit 0")

    if regressed and args.enforce:
        print("bench_history: regression beyond tolerance (enforce mode)",
              file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
