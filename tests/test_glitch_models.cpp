// Analytic glitch models: limits, monotonicity, and conservativeness
// against the MNA golden reference.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/bus.hpp"
#include "library/library.hpp"
#include "noise/glitch_models.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace nw::noise {
namespace {

CouplingScenario base_scenario() {
  CouplingScenario s;
  s.r_hold = 1000.0;
  s.c_ground = 20 * FF;
  s.c_couple = 10 * FF;
  s.slew = 50 * PS;
  s.vdd = 1.2;
  return s;
}

TEST(ChargeSharing, CapacitiveDivider) {
  const CouplingScenario s = base_scenario();
  const GlitchEstimate g = estimate_charge_sharing(s);
  EXPECT_NEAR(g.peak, 1.2 * 10.0 / 30.0, 1e-12);
  EXPECT_GT(g.width, 0.0);
}

TEST(Devgan, CapsAtVdd) {
  CouplingScenario s = base_scenario();
  s.slew = 0.1 * PS;  // brutally fast aggressor
  const GlitchEstimate g = estimate_devgan(s);
  EXPECT_DOUBLE_EQ(g.peak, s.vdd);
}

TEST(Devgan, LinearInCouplingForSlowEdges) {
  CouplingScenario s = base_scenario();
  s.slew = 1 * NS;
  const double p1 = estimate_devgan(s).peak;
  s.c_couple *= 2.0;
  const double p2 = estimate_devgan(s).peak;
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(TwoPi, BelowDevganAndChargeSharingLimits) {
  // The dominant-pole estimate is bounded by both cruder upper bounds'
  // regimes: never above Devgan, never above vdd.
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    CouplingScenario s;
    s.r_hold = rng.uniform(200.0, 5000.0);
    s.c_ground = rng.uniform(1 * FF, 100 * FF);
    s.c_couple = rng.uniform(0.5 * FF, 50 * FF);
    s.slew = rng.uniform(5 * PS, 500 * PS);
    s.vdd = 1.2;
    const double two_pi = estimate_two_pi(s).peak;
    const double devgan = estimate_devgan(s).peak;
    EXPECT_LE(two_pi, devgan + 1e-12);
    EXPECT_LE(two_pi, s.vdd + 1e-12);
    EXPECT_GE(two_pi, 0.0);
  }
}

TEST(TwoPi, FastAggressorApproachesChargeSharing) {
  CouplingScenario s = base_scenario();
  s.slew = 0.01 * PS;
  const double two_pi = estimate_two_pi(s).peak;
  const double cs = estimate_charge_sharing(s).peak;
  EXPECT_NEAR(two_pi, cs, 0.02 * cs);
}

TEST(TwoPi, MonotoneInCouplingCap) {
  CouplingScenario s = base_scenario();
  double prev = 0.0;
  for (double cc = 1 * FF; cc < 40 * FF; cc += 2 * FF) {
    s.c_couple = cc;
    const double p = estimate_two_pi(s).peak;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(TwoPi, MonotoneDecreasingInSlew) {
  CouplingScenario s = base_scenario();
  double prev = 1e9;
  for (double tr = 10 * PS; tr <= 400 * PS; tr += 30 * PS) {
    s.slew = tr;
    const double p = estimate_two_pi(s).peak;
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(TwoPi, WidthGrowsWithVictimTau) {
  CouplingScenario s = base_scenario();
  const double w1 = estimate_two_pi(s).width;
  s.r_hold *= 4.0;
  const double w2 = estimate_two_pi(s).width;
  EXPECT_GT(w2, w1);
}

TEST(Models, InvalidSlewThrows) {
  CouplingScenario s = base_scenario();
  s.slew = 0.0;
  EXPECT_THROW((void)estimate_devgan(s), std::invalid_argument);
  EXPECT_THROW((void)estimate_two_pi(s), std::invalid_argument);
}

TEST(Models, DispatchMatchesDirectCalls) {
  const CouplingScenario s = base_scenario();
  EXPECT_DOUBLE_EQ(estimate(GlitchModel::kChargeSharing, s).peak,
                   estimate_charge_sharing(s).peak);
  EXPECT_DOUBLE_EQ(estimate(GlitchModel::kDevgan, s).peak, estimate_devgan(s).peak);
  EXPECT_DOUBLE_EQ(estimate(GlitchModel::kTwoPi, s).peak, estimate_two_pi(s).peak);
  EXPECT_THROW((void)estimate(GlitchModel::kMnaExact, s), std::invalid_argument);
}

/// Conservativeness sweep: on generated bus victims, Devgan must upper-
/// bound the MNA golden; two-pi must stay within a sane conservative band.
class Conservativeness : public ::testing::TestWithParam<int> {};

TEST_P(Conservativeness, DevganBoundsGolden) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 5;
  cfg.segments = 3;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  Rng rng(cfg.seed * 101);
  cfg.coupling_adj = rng.uniform(2 * FF, 8 * FF);
  cfg.port_res = rng.uniform(300.0, 1500.0);
  const gen::Generated g = gen::make_bus(library, cfg);

  const NetId victim = *g.design.find_net("w2");
  const NetId aggressor = *g.design.find_net("w3");
  const double slew = rng.uniform(15 * PS, 80 * PS);
  const double vdd = library.vdd();

  const GlitchEstimate golden = estimate_mna(g.design, g.para, victim, aggressor, slew,
                                             vdd, {1.5 * NS, 0.5 * PS});
  const CouplingScenario sc =
      scenario_for(g.design, g.para, victim, aggressor, slew, vdd);
  ASSERT_GT(golden.peak, 0.0);
  // Devgan on the bounding abstraction is the provable upper bound.
  const CouplingScenario bound =
      bound_scenario_for(g.design, g.para, victim, aggressor, slew, vdd);
  EXPECT_GE(estimate_devgan(bound).peak, golden.peak * 0.999);
  // two-pi on the degraded scenario is conservative but within 3x.
  const double two_pi = estimate_two_pi(sc).peak;
  EXPECT_GE(two_pi, 0.8 * golden.peak);
  EXPECT_LE(two_pi, 3.0 * golden.peak);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservativeness, ::testing::Range(0, 8));

TEST(ReducedMna, TracksGoldenWithinTightBand) {
  // The 5-node reduced model must land much closer to the full-cluster
  // golden than the analytic two-pi does.
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 5;
  cfg.segments = 4;
  cfg.coupling_adj = 5 * FF;
  const gen::Generated g = gen::make_bus(library, cfg);
  const NetId victim = *g.design.find_net("w2");
  const NetId aggressor = *g.design.find_net("w3");
  const double slew = 30 * PS;
  const double vdd = library.vdd();

  const GlitchEstimate golden = estimate_mna(g.design, g.para, victim, aggressor, slew,
                                             vdd, {2 * NS, 0.5 * PS});
  const GlitchEstimate reduced =
      estimate_reduced(g.design, g.para, victim, aggressor, slew, vdd);
  ASSERT_GT(golden.peak, 0.0);
  EXPECT_NEAR(reduced.peak, golden.peak, 0.25 * golden.peak);
  EXPECT_NEAR(reduced.width, golden.width, 0.5 * golden.width);

  const GlitchEstimate two_pi =
      estimate_two_pi(scenario_for(g.design, g.para, victim, aggressor, slew, vdd));
  EXPECT_LT(std::abs(reduced.peak - golden.peak), std::abs(two_pi.peak - golden.peak));
}

TEST(ReducedMna, NoCouplingGivesNoGlitch) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 5;
  const gen::Generated g = gen::make_bus(library, cfg);
  // w0 and w3 do not couple (only 1st/2nd neighbours do).
  const GlitchEstimate e = estimate_reduced(
      g.design, g.para, *g.design.find_net("w0"), *g.design.find_net("w3"), 30 * PS, 1.2);
  EXPECT_DOUBLE_EQ(e.peak, 0.0);
}

TEST(SynthesizeGlitch, ShapeMatchesEstimate) {
  GlitchEstimate e;
  e.peak = 0.4;
  e.width = 80 * PS;
  e.peak_delay = 30 * PS;
  const spice::Waveform w = synthesize_glitch(e, 100 * PS, 0.0, 0.5 * PS, 1 * NS);
  const spice::GlitchMeasure m = spice::measure_glitch(w, 0.0);
  EXPECT_NEAR(m.peak, e.peak, 0.01 * e.peak);
  EXPECT_NEAR(m.t_peak, 130 * PS, 2 * PS);
  EXPECT_NEAR(m.width, e.width, 0.1 * e.width);
  // Baseline before the glitch starts.
  EXPECT_DOUBLE_EQ(w.at(50 * PS), 0.0);
  // Monotone rise between start and peak.
  EXPECT_LT(w.at(110 * PS), w.at(125 * PS));
}

TEST(SynthesizeGlitch, ZeroPeakIsFlat) {
  const spice::Waveform w = synthesize_glitch({}, 0.0, 0.3, 1 * PS, 0.1 * NS);
  EXPECT_DOUBLE_EQ(w.max_value(), 0.3);
  EXPECT_DOUBLE_EQ(w.min_value(), 0.3);
}

TEST(SynthesizeGlitch, BadGridThrows) {
  GlitchEstimate e;
  e.peak = 0.1;
  EXPECT_THROW((void)synthesize_glitch(e, 0.0, 0.0, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW((void)synthesize_glitch(e, 0.0, 0.0, 1e-12, 0.0), std::invalid_argument);
}

TEST(GlitchModel, Names) {
  EXPECT_STREQ(to_string(GlitchModel::kChargeSharing), "charge-sharing");
  EXPECT_STREQ(to_string(GlitchModel::kDevgan), "devgan");
  EXPECT_STREQ(to_string(GlitchModel::kTwoPi), "two-pi");
  EXPECT_STREQ(to_string(GlitchModel::kReducedMna), "reduced-mna");
  EXPECT_STREQ(to_string(GlitchModel::kMnaExact), "mna-exact");
}

TEST(ScenarioFor, AggregatesCouplingAndGround) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 5;
  cfg.segments = 2;
  const gen::Generated g = gen::make_bus(library, cfg);
  const NetId victim = *g.design.find_net("w2");
  const NetId agg = *g.design.find_net("w1");
  const CouplingScenario s =
      scenario_for(g.design, g.para, victim, agg, 30 * PS, 1.2);
  // Coupling to the adjacent line: 2 segments x coupling_adj.
  EXPECT_NEAR(s.c_couple, 2 * cfg.coupling_adj, 1e-20);
  // Ground includes wire cap + other couplings + receiver pin cap.
  EXPECT_GT(s.c_ground, 2 * cfg.cap_per_seg);
  // Slew is degraded, never faster than the driver edge.
  EXPECT_GT(s.slew, 30 * PS);
}

}  // namespace
}  // namespace nw::noise
