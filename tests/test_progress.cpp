// Streaming progress and cooperative cancellation: checkpoints cover every
// phase, installing a sink never changes the result, cancellation throws
// without mutating caller state, and the session/server layers keep their
// pre-analyze state bit-exactly after a cancelled run.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gen/bus.hpp"
#include "noise/analyzer.hpp"
#include "noise/progress.hpp"
#include "session/json.hpp"
#include "session/protocol.hpp"
#include "session/server.hpp"
#include "session/session.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

namespace nw::noise {
namespace {

gen::Generated bus_case(const lib::Library& library) {
  gen::BusConfig cfg;
  cfg.bits = 16;
  cfg.segments = 3;
  cfg.coupling_adj = 5 * FF;
  cfg.seed = 7;
  return gen::make_bus(library, cfg);
}

/// Records every checkpoint (phase name materialized to a string).
class RecordingSink final : public ProgressSink {
 public:
  struct Event {
    std::string phase;
    std::size_t completed = 0;
    std::size_t total = 0;
  };
  void on_progress(const Progress& p) override {
    events.push_back({p.phase, p.completed, p.total});
  }
  std::vector<Event> events;
};

/// Cancels at the Nth checkpoint.
class CancelAfter final : public ProgressSink {
 public:
  explicit CancelAfter(std::size_t n) : remaining_(n) {}
  void on_progress(const Progress&) override {}
  bool cancel_requested() override {
    if (remaining_ == 0) return true;
    --remaining_;
    return false;
  }

 private:
  std::size_t remaining_;
};

TEST(Progress, CheckpointsCoverEveryPhase) {
  const lib::Library library = lib::default_library();
  const gen::Generated g = bus_case(library);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  Options o;
  o.clock_period = g.sta_options.clock_period;

  RecordingSink sink;
  const Result r = analyze(g.design, g.para, timing, o, &sink);
  ASSERT_FALSE(sink.events.empty());

  std::set<std::string> phases;
  for (const auto& e : sink.events) {
    phases.insert(e.phase);
    EXPECT_LE(e.completed, e.total) << e.phase;
  }
  for (const char* phase :
       {"build-context", "estimate-injected", "propagate", "check-endpoints"}) {
    EXPECT_EQ(phases.count(phase), 1u) << phase;
  }
  // Each phase ends with completed == total.
  const auto last_of = [&](const std::string& phase) {
    RecordingSink::Event last;
    for (const auto& e : sink.events) {
      if (e.phase == phase) last = e;
    }
    return last;
  };
  for (const char* phase : {"estimate-injected", "propagate", "check-endpoints"}) {
    const auto e = last_of(phase);
    EXPECT_EQ(e.completed, e.total) << phase;
  }
  (void)r;
}

TEST(Progress, InstallingASinkDoesNotChangeTheResult) {
  const lib::Library library = lib::default_library();
  const gen::Generated g = bus_case(library);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  Options o;
  o.clock_period = g.sta_options.clock_period;
  o.threads = 4;

  const Result bare = analyze(g.design, g.para, timing, o);
  RecordingSink sink;
  const Result observed = analyze(g.design, g.para, timing, o, &sink);

  ASSERT_EQ(bare.violations.size(), observed.violations.size());
  EXPECT_EQ(bare.endpoint_slacks, observed.endpoint_slacks);
  for (std::size_t i = 0; i < bare.nets.size(); ++i) {
    EXPECT_DOUBLE_EQ(bare.nets[i].total_peak, observed.nets[i].total_peak) << i;
  }
  // The deterministic executor-task count is part of the bit-identity
  // contract: progress batching must not change the chunk decomposition.
  const obs::MetricSample* bare_tasks = bare.metrics.find(kMetricExecutorTasks);
  const obs::MetricSample* observed_tasks =
      observed.metrics.find(kMetricExecutorTasks);
  ASSERT_NE(bare_tasks, nullptr);
  ASSERT_NE(observed_tasks, nullptr);
  EXPECT_EQ(bare_tasks->count, observed_tasks->count);
}

TEST(Progress, CancellationThrowsCancelled) {
  const lib::Library library = lib::default_library();
  const gen::Generated g = bus_case(library);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  Options o;
  o.clock_period = g.sta_options.clock_period;

  CancelAfter immediately(0);
  EXPECT_THROW((void)analyze(g.design, g.para, timing, o, &immediately), Cancelled);
  CancelAfter later(2);
  EXPECT_THROW((void)analyze(g.design, g.para, timing, o, &later), Cancelled);
}

TEST(Progress, CancelledSessionAnalysisLeavesStateUntouched) {
  const lib::Library library = lib::default_library();
  gen::Generated g = bus_case(library);
  session::SessionConfig sc;
  sc.sta = g.sta_options;
  sc.noise.clock_period = g.sta_options.clock_period;
  session::Session s(std::move(g.design), std::move(g.para), std::move(sc));

  CancelAfter immediately(0);
  s.set_progress_sink(&immediately);
  EXPECT_THROW((void)s.result(), Cancelled);
  // Nothing was committed: no analysis counted, epoch unchanged.
  EXPECT_EQ(s.full_analyses(), 0u);
  EXPECT_EQ(s.epoch(), 0u);

  // Clearing the sink lets the same query succeed.
  s.set_progress_sink(nullptr);
  const Result& r = s.result();
  EXPECT_GT(r.endpoints_checked, 0u);
  EXPECT_EQ(s.full_analyses(), 1u);
}

TEST(Progress, ProtocolCancelWhileIdleReportsNothingToCancel) {
  const lib::Library library = lib::default_library();
  gen::Generated g = bus_case(library);
  session::SessionConfig sc;
  sc.sta = g.sta_options;
  sc.noise.clock_period = g.sta_options.clock_period;
  session::Session s(std::move(g.design), std::move(g.para), std::move(sc));
  session::Protocol p(s);

  const std::string resp = p.handle_line("{\"id\":1,\"cmd\":\"cancel\"}");
  std::string err;
  const auto j = session::json_parse(resp, &err);
  ASSERT_TRUE(j.has_value()) << err;
  EXPECT_TRUE(j->find("ok")->as_bool()) << resp;
  EXPECT_FALSE(j->find("data")->find("cancelled")->as_bool()) << resp;
}

TEST(Progress, ServeWithProgressInterleavesEventsBeforeTheResponse) {
  const lib::Library library = lib::default_library();
  gen::Generated g = bus_case(library);
  session::SessionConfig sc;
  sc.sta = g.sta_options;
  sc.noise.clock_period = g.sta_options.clock_period;
  session::Session s(std::move(g.design), std::move(g.para), std::move(sc));

  std::istringstream in("{\"id\":1,\"cmd\":\"violations\"}\n");
  std::ostringstream out;
  session::ServeOptions opt;
  opt.progress = true;
  const std::size_t handled = session::serve(s, in, out, nullptr, opt);
  EXPECT_EQ(handled, 1u);

  std::vector<std::string> lines;
  std::istringstream split(out.str());
  for (std::string line; std::getline(split, line);) lines.push_back(line);
  ASSERT_GE(lines.size(), 2u) << out.str();
  std::size_t events = 0;
  for (const std::string& line : lines) {
    if (line.find("\"event\":\"progress\"") != std::string::npos) ++events;
  }
  EXPECT_GE(events, 1u) << out.str();
  // The response is the last line; every progress event precedes it.
  EXPECT_NE(lines.back().find("\"id\":1"), std::string::npos) << lines.back();
  EXPECT_NE(lines.back().find("\"ok\":true"), std::string::npos) << lines.back();
  EXPECT_EQ(lines.back().find("\"event\""), std::string::npos) << lines.back();
}

}  // namespace
}  // namespace nw::noise
