// RunningStats, Histogram, percentile.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nw {
namespace {

TEST(RunningStats, Empty) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
  Rng rng(42);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-10);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(25.0);   // clamps to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, AsciiRendersEveryBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string text = h.ascii(10);
  // Two lines, each with a bar.
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Percentile, Basics) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalRoughMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

}  // namespace
}  // namespace nw
