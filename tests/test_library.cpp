// Cell library: default library contents, model shapes, monotonicity.
#include <gtest/gtest.h>

#include "library/library.hpp"
#include "util/units.hpp"

namespace nw::lib {
namespace {

TEST(Library, DefaultLibraryContents) {
  const Library lib = default_library();
  EXPECT_EQ(lib.size(), 18u);
  for (const char* name : {"INV_X1", "INV_X2", "INV_X4", "BUF_X1", "BUF_X2", "BUF_X4",
                           "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1", "XOR2_X1",
                           "NAND3_X1", "NOR3_X1", "AOI21_X1", "OAI21_X1", "MUX2_X1",
                           "DFF_X1", "LATCH_X1"}) {
    EXPECT_TRUE(lib.find(name).has_value()) << name;
  }
  EXPECT_EQ(lib.require("NAND3_X1").input_count(), 3u);
  EXPECT_EQ(lib.require("MUX2_X1").arcs.front().sense, ArcSense::kNonUnate);
  EXPECT_FALSE(lib.find("NAND4_X1").has_value());
  EXPECT_THROW((void)lib.require("NAND4_X1"), std::out_of_range);
  EXPECT_DOUBLE_EQ(lib.vdd(), 1.2);
}

TEST(Library, DuplicateCellThrows) {
  Library lib("t", 1.0);
  Cell c;
  c.name = "X";
  lib.add_cell(c);
  EXPECT_THROW(lib.add_cell(c), std::invalid_argument);
}

TEST(Cell, PinQueries) {
  const Library lib = default_library();
  const Cell& nand = lib.require("NAND2_X1");
  EXPECT_EQ(nand.input_count(), 2u);
  EXPECT_TRUE(nand.find_pin("A").has_value());
  EXPECT_TRUE(nand.find_pin("B").has_value());
  ASSERT_TRUE(nand.output_pin().has_value());
  EXPECT_EQ(nand.pins[*nand.output_pin()].name, "Y");
  EXPECT_FALSE(nand.find_pin("Z").has_value());
  EXPECT_FALSE(nand.is_sequential());
}

TEST(Cell, SequentialRoles) {
  const Library lib = default_library();
  const Cell& dff = lib.require("DFF_X1");
  EXPECT_TRUE(dff.is_sequential());
  EXPECT_EQ(dff.kind, CellKind::kDff);
  EXPECT_GT(dff.setup, 0.0);
  EXPECT_GT(dff.hold, 0.0);
  bool has_clock = false;
  bool has_data = false;
  for (const auto& p : dff.pins) {
    has_clock |= p.role == PinRole::kClock;
    has_data |= p.role == PinRole::kData;
  }
  EXPECT_TRUE(has_clock);
  EXPECT_TRUE(has_data);

  const Cell& latch = lib.require("LATCH_X1");
  EXPECT_EQ(latch.kind, CellKind::kLatch);
}

TEST(Cell, DriveStrengthScalesResistance) {
  const Library lib = default_library();
  const double r1 = lib.require("INV_X1").drive_resistance;
  const double r2 = lib.require("INV_X2").drive_resistance;
  const double r4 = lib.require("INV_X4").drive_resistance;
  EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
  EXPECT_NEAR(r1 / r4, 4.0, 1e-9);
  // Holding resistance is a fixed factor above drive.
  EXPECT_GT(lib.require("INV_X1").holding_resistance, r1);
}

TEST(Cell, DelayIncreasesWithLoad) {
  const Library lib = default_library();
  const Cell& inv = lib.require("INV_X1");
  ASSERT_FALSE(inv.arcs.empty());
  const TimingArc& arc = inv.arcs.front();
  const double d_small = arc.delay_rise.lookup(20 * PS, 2 * FF);
  const double d_big = arc.delay_rise.lookup(20 * PS, 100 * FF);
  EXPECT_GT(d_big, d_small);
  // And with input slew.
  const double d_slow_in = arc.delay_rise.lookup(200 * PS, 2 * FF);
  EXPECT_GT(d_slow_in, d_small);
}

TEST(Cell, SlewIncreasesWithLoad) {
  const Library lib = default_library();
  const TimingArc& arc = lib.require("BUF_X1").arcs.front();
  EXPECT_GT(arc.slew_rise.lookup(20 * PS, 100 * FF),
            arc.slew_rise.lookup(20 * PS, 2 * FF));
}

TEST(Immunity, DecreasesWithWidthToDcMargin) {
  const TechParams tp;
  const Library lib = default_library(tp);
  const NoiseImmunity& im = lib.require("INV_X1").immunity;
  const double narrow = im.threshold(5 * PS);
  const double mid = im.threshold(100 * PS);
  const double wide = im.threshold(1 * NS);
  EXPECT_GT(narrow, mid);
  EXPECT_GT(mid, wide);
  // Wide-glitch immunity approaches the DC margin.
  EXPECT_NEAR(wide, tp.dc_margin_frac * tp.vdd, 0.05 * tp.vdd);
  // Narrow-glitch immunity approaches the rail.
  EXPECT_GT(narrow, 0.8 * tp.vdd);
}

TEST(Immunity, SlackSign) {
  const Library lib = default_library();
  const NoiseImmunity& im = lib.require("INV_X1").immunity;
  EXPECT_GT(im.slack(0.1, 50 * PS), 0.0);   // small glitch: safe
  EXPECT_LT(im.slack(1.15, 500 * PS), 0.0); // near-rail wide glitch: fails
}

TEST(Propagation, MonotoneInPeakAndWidth) {
  const Library lib = default_library();
  const NoisePropagation& np = lib.require("INV_X1").propagation;
  const double base = np.out_peak.lookup(0.5, 100 * PS);
  EXPECT_GT(np.out_peak.lookup(0.8, 100 * PS), base);
  EXPECT_GE(np.out_peak.lookup(0.5, 400 * PS), base);
  // Sub-threshold glitches attenuate, super-threshold amplify.
  const TechParams tp;
  const double below = np.out_peak.lookup(0.2 * tp.vdd, 200 * PS);
  EXPECT_LT(below, 0.2 * tp.vdd);
  const double above = np.out_peak.lookup(0.8 * tp.vdd, 400 * PS);
  EXPECT_GT(above, 0.6 * tp.vdd);
}

TEST(Propagation, WidthGrowsThroughGate) {
  const Library lib = default_library();
  const NoisePropagation& np = lib.require("INV_X1").propagation;
  EXPECT_GT(np.out_width.lookup(0.6, 100 * PS), 100 * PS);
}

TEST(Model, AnalyticFormsMatchTables) {
  const TechParams tp;
  const Library lib = default_library(tp);
  const Cell& inv = lib.require("INV_X1");
  // Tables were sampled from the model:: functions on their grid points,
  // so a grid-point lookup reproduces the function exactly.
  const double w = 60 * PS;
  EXPECT_NEAR(inv.immunity.threshold(w), model::immunity_threshold(tp, w), 1e-12);
  const double d = model::delay(inv.drive_resistance, tp.intrinsic_delay, 20 * PS, 20 * FF);
  EXPECT_NEAR(inv.arcs.front().delay_rise.lookup(20 * PS, 20 * FF), d, 1e-15);
}

}  // namespace
}  // namespace nw::lib
