// JSONL protocol robustness: malformed, truncated, hostile, and oversized
// input must yield exactly one structured error response per line — the
// server never throws, never aborts, never goes silent.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/bus.hpp"
#include "session/json.hpp"
#include "session/protocol.hpp"
#include "session/server.hpp"
#include "session/session.hpp"

namespace nw::session {
namespace {

Session make_session() {
  static const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 6;
  cfg.segments = 2;
  gen::Generated g = gen::make_bus(library, cfg);
  SessionConfig sc;
  sc.sta = g.sta_options;
  sc.noise.clock_period = g.sta_options.clock_period;
  return Session(std::move(g.design), std::move(g.para), std::move(sc));
}

/// Parse a response line and sanity-check the envelope.
Json parse_response(const std::string& line) {
  std::string err;
  const auto j = json_parse(line, &err);
  EXPECT_TRUE(j.has_value()) << err << " in: " << line;
  if (!j.has_value()) return Json{};
  EXPECT_TRUE(j->is_object());
  EXPECT_NE(j->find("id"), nullptr) << line;
  const Json* ok = j->find("ok");
  EXPECT_NE(ok, nullptr) << line;
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    EXPECT_NE(j->find("data"), nullptr) << line;
  } else {
    const Json* e = j->find("error");
    EXPECT_NE(e, nullptr) << line;
    if (e != nullptr) {
      EXPECT_NE(e->find("code"), nullptr) << line;
      EXPECT_NE(e->find("message"), nullptr) << line;
    }
  }
  return *j;
}

std::string error_code(const Json& resp) {
  const Json* e = resp.find("error");
  if (e == nullptr) return "";
  const Json* c = e->find("code");
  return c != nullptr && c->is_string() ? c->as_string() : "";
}

TEST(Protocol, MalformedLinesGetStructuredErrors) {
  Session s = make_session();
  Protocol p(s);
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"", "parse_error"},
      {"not json", "parse_error"},
      {"{", "parse_error"},
      {"{\"cmd\":\"hello\"", "parse_error"},
      {"\"just a string\"", "bad_request"},
      {"42", "bad_request"},
      {"[1,2,3]", "bad_request"},
      {"null", "bad_request"},
      {"{}", "bad_request"},                              // no cmd
      {"{\"cmd\":5}", "bad_request"},                     // cmd not a string
      {"{\"id\":[1],\"cmd\":\"hello\"}", "bad_request"},  // id wrong type
      {"{\"cmd\":\"definitely_not_a_command\"}", "unknown_cmd"},
      {"{\"cmd\":\"net_noise\"}", "bad_args"},            // args missing
      {"{\"cmd\":\"net_noise\",\"args\":7}", "bad_args"},
      {"{\"cmd\":\"net_noise\",\"args\":{\"net\":3}}", "bad_args"},
      {"{\"cmd\":\"net_noise\",\"args\":{\"net\":\"nope\"}}", "not_found"},
      {"{\"cmd\":\"violations\",\"args\":{\"limit\":-1}}", "bad_args"},
      {"{\"cmd\":\"violations\",\"args\":{\"limit\":1.5}}", "bad_args"},
      {"{\"cmd\":\"scale_net_parasitics\",\"args\":{\"net\":\"w1\","
       "\"cap_factor\":-2,\"res_factor\":1}}",
       "bad_args"},
      {"{\"cmd\":\"hello\"} trailing", "parse_error"},
  };
  for (const auto& [line, want_code] : cases) {
    const Json resp = parse_response(p.handle_line(line));
    const Json* ok = resp.find("ok");
    ASSERT_TRUE(ok != nullptr && ok->is_bool());
    EXPECT_FALSE(ok->as_bool()) << line;
    EXPECT_EQ(error_code(resp), want_code) << line;
  }
}

TEST(Protocol, TruncatedRequestsNeverCrash) {
  Session s = make_session();
  Protocol p(s);
  const std::string valid =
      "{\"id\": 7, \"cmd\": \"net_noise\", \"args\": {\"net\": \"w1\"}}";
  for (std::size_t n = 0; n < valid.size(); ++n) {
    const Json resp = parse_response(p.handle_line(valid.substr(0, n)));
    const Json* ok = resp.find("ok");
    ASSERT_TRUE(ok != nullptr && ok->is_bool()) << n;
    EXPECT_FALSE(ok->as_bool()) << "prefix length " << n;
  }
  // The full line works.
  const Json resp = parse_response(p.handle_line(valid));
  EXPECT_TRUE(resp.find("ok")->as_bool());
}

TEST(Protocol, HugeLinesAreRejectedNotBuffered) {
  Session s = make_session();
  Protocol p(s);
  std::string huge = "{\"cmd\":\"hello\",\"pad\":\"";
  huge.append(kMaxLineBytes + 10, 'x');
  huge += "\"}";
  const Json resp = parse_response(p.handle_line(huge));
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(error_code(resp), "bad_request");
}

TEST(Protocol, DeepNestingIsBounded) {
  Session s = make_session();
  Protocol p(s);
  std::string deep(500, '[');
  deep += std::string(500, ']');
  const Json resp = parse_response(p.handle_line(deep));
  EXPECT_FALSE(resp.find("ok")->as_bool());
  EXPECT_EQ(error_code(resp), "parse_error");
}

TEST(Protocol, DuplicateIdsEchoFaithfully) {
  Session s = make_session();
  Protocol p(s);
  for (int i = 0; i < 3; ++i) {
    const Json resp = parse_response(p.handle_line("{\"id\":42,\"cmd\":\"hello\"}"));
    ASSERT_TRUE(resp.find("id")->is_number());
    EXPECT_EQ(resp.find("id")->as_number(), 42.0);
  }
  // String ids come back as strings; absent ids come back null.
  const Json sid = parse_response(p.handle_line("{\"id\":\"abc\",\"cmd\":\"hello\"}"));
  ASSERT_TRUE(sid.find("id")->is_string());
  EXPECT_EQ(sid.find("id")->as_string(), "abc");
  const Json nid = parse_response(p.handle_line("{\"cmd\":\"hello\"}"));
  EXPECT_TRUE(nid.find("id")->is_null());
}

TEST(Protocol, ServeEmitsExactlyOneResponsePerLine) {
  Session s = make_session();
  std::istringstream in(
      "{\"id\":1,\"cmd\":\"hello\"}\n"
      "garbage\n"
      "\n"  // blank: skipped, no response
      "{\"id\":2,\"cmd\":\"violations\"}\n"
      "{\"id\":2,\"cmd\":\"violations\"}\n"  // duplicate id: still answered
      "{\"cmd\":\"unknown_thing\"}\n"
      "{\"id\":3,\"cmd\":\"undo\"}\r\n"      // CRLF client
      "[1,2]\n");
  std::ostringstream out;
  const std::size_t handled = serve(s, in, out);
  EXPECT_EQ(handled, 7u);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    (void)parse_response(line);
    ++count;
  }
  EXPECT_EQ(count, 7u);
}

TEST(Protocol, FuzzCorpusNeverAborts) {
  Session s = make_session();
  Protocol p(s);
  // Deterministic chaos: slice and splice fragments of real requests with
  // junk. Every line must produce one parsable response.
  const std::vector<std::string> fragments = {
      "{\"id\":1,", "\"cmd\":\"violations\"}", "\\u0000", "\"", "}}}}", "[[[",
      "1e999",      "-",
      "{\"cmd\":\"set_coupling_cap\",\"args\":{\"net_a\":\"w0\"",
      ",\"net_b\":\"w1\",\"cap\":1e-14}}", "\xff\xfe", "true", "nul",
      "{\"id\":null,\"cmd\":\"stats\"}",
  };
  std::size_t checked = 0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    for (std::size_t j = 0; j < fragments.size(); ++j) {
      const std::string line = fragments[i] + fragments[j];
      (void)parse_response(p.handle_line(line));
      ++checked;
    }
  }
  EXPECT_EQ(checked, fragments.size() * fragments.size());
}

TEST(Protocol, EndToEndEditQueryUndoConversation) {
  Session s = make_session();
  Protocol p(s);
  const Json v0 = parse_response(p.handle_line("{\"id\":1,\"cmd\":\"violations\"}"));
  ASSERT_TRUE(v0.find("ok")->as_bool());

  const Json edit = parse_response(p.handle_line(
      "{\"id\":2,\"cmd\":\"set_coupling_cap\","
      "\"args\":{\"net_a\":\"w1\",\"net_b\":\"w2\",\"cap\":5e-14}}"));
  ASSERT_TRUE(edit.find("ok")->as_bool());
  EXPECT_EQ(edit.find("data")->find("epoch")->as_number(), 1.0);

  const Json nn = parse_response(p.handle_line(
      "{\"id\":3,\"cmd\":\"net_noise\",\"args\":{\"net\":\"w1\"}}"));
  ASSERT_TRUE(nn.find("ok")->as_bool());

  const Json undo = parse_response(p.handle_line("{\"id\":4,\"cmd\":\"undo\"}"));
  ASSERT_TRUE(undo.find("ok")->as_bool());
  EXPECT_TRUE(undo.find("data")->find("undone")->as_bool());
  EXPECT_EQ(undo.find("data")->find("epoch")->as_number(), 0.0);

  const Json stats = parse_response(p.handle_line("{\"id\":5,\"cmd\":\"stats\"}"));
  ASSERT_TRUE(stats.find("ok")->as_bool());
  const Json* counters = stats.find("data")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->find(Session::kMetricFullAnalyses)->as_number(), 1.0);
}

// ---- Json unit coverage ----------------------------------------------------

TEST(Json, RoundTripsValues) {
  const std::string src =
      R"({"s":"a\"b\\c\nd","n":-1.25e-3,"i":12345,"b":true,"x":null,)"
      R"("a":[1,"two",[false]],"o":{"k":0.1}})";
  std::string err;
  const auto j = json_parse(src, &err);
  ASSERT_TRUE(j.has_value()) << err;
  // dump -> parse -> dump must be a fixpoint.
  const std::string once = j->dump();
  const auto j2 = json_parse(once, &err);
  ASSERT_TRUE(j2.has_value()) << err;
  EXPECT_EQ(once, j2->dump());
  EXPECT_EQ(j->find("s")->as_string(), "a\"b\\c\nd");
  EXPECT_EQ(j->find("i")->as_number(), 12345.0);
  EXPECT_EQ(j->find("a")->items().size(), 3u);
}

TEST(Json, IntegersRenderWithoutExponent) {
  Json o = Json::object();
  o.set("epoch", 1234567.0);
  o.set("frac", 0.5);
  EXPECT_EQ(o.dump(), "{\"epoch\":1234567,\"frac\":0.5}");
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const auto j = json_parse(R"("\u00e9\u20ac")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "\xc3\xa9\xe2\x82\xac");
}

TEST(Json, RejectsBadDocuments) {
  for (const char* bad :
       {"", "tru", "01x", "\"unterminated", "{\"a\":}", "{\"a\" 1}", "[1,]",
        "{\"a\":1,}", "\"bad \\q escape\"", "\"\\u12g4\"", "1 2"}) {
    std::string err;
    EXPECT_FALSE(json_parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

}  // namespace
}  // namespace nw::session
