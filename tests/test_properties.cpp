// Cross-module property sweeps (TEST_P): invariants that must hold over
// randomized designs and configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/bus.hpp"
#include "gen/randlogic.hpp"
#include "noise/analyzer.hpp"
#include "parasitics/reduce.hpp"
#include "sta/sta.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace nw {
namespace {

/// Randomized bus configs: pessimism ordering and window soundness must
/// hold for any geometry.
class BusProperty : public ::testing::TestWithParam<int> {
 protected:
  gen::BusConfig config() const {
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
    gen::BusConfig cfg;
    cfg.bits = 8 + 4 * rng.below(6);
    cfg.segments = 1 + rng.below(4);
    cfg.coupling_adj = rng.uniform(1 * FF, 8 * FF);
    cfg.coupling_2nd = rng.uniform(0.1 * FF, 2 * FF);
    cfg.port_res = rng.uniform(300.0, 3000.0);
    cfg.stagger_groups = 1 + rng.below(6);
    cfg.stagger = rng.uniform(50 * PS, 400 * PS);
    cfg.seed = rng.next();
    return cfg;
  }
};

TEST_P(BusProperty, PessimismOrderingHolds) {
  const lib::Library library = lib::default_library();
  const gen::Generated g = gen::make_bus(library, config());
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  noise::Options o;
  o.clock_period = g.sta_options.clock_period;
  o.mode = noise::AnalysisMode::kNoFiltering;
  const noise::Result none = noise::analyze(g.design, g.para, timing, o);
  o.mode = noise::AnalysisMode::kSwitchingWindows;
  const noise::Result sw = noise::analyze(g.design, g.para, timing, o);
  o.mode = noise::AnalysisMode::kNoiseWindows;
  const noise::Result nwm = noise::analyze(g.design, g.para, timing, o);

  for (std::size_t i = 0; i < g.design.net_count(); ++i) {
    EXPECT_GE(none.nets[i].total_peak + 1e-12, sw.nets[i].total_peak);
    EXPECT_GE(sw.nets[i].total_peak + 1e-12, nwm.nets[i].total_peak);
  }
  EXPECT_GE(none.violations.size(), sw.violations.size());
  EXPECT_GE(sw.violations.size(), nwm.violations.size());
}

TEST_P(BusProperty, WorstAlignmentIsAchievable) {
  // The reported worst alignment interval must lie inside every active
  // contribution's window (the combination is temporally feasible).
  const lib::Library library = lib::default_library();
  const gen::Generated g = gen::make_bus(library, config());
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  noise::Options o;
  o.mode = noise::AnalysisMode::kNoiseWindows;
  o.clock_period = g.sta_options.clock_period;
  const noise::Result r = noise::analyze(g.design, g.para, timing, o);

  for (const auto& nn : r.nets) {
    if (nn.total_peak <= 0.0 || nn.worst_alignment.is_empty()) continue;
    const double t = nn.worst_alignment.mid();
    double sum = 0.0;
    for (const auto& c : nn.contributions) {
      if (c.window.contains(t)) sum += c.peak;
    }
    EXPECT_NEAR(sum, nn.total_peak, 1e-9 + 1e-9 * nn.total_peak);
    // The noise window contains the worst alignment.
    EXPECT_TRUE(nn.window.contains(t));
  }
}

TEST_P(BusProperty, StaWindowsAreSound) {
  // Earliest arrival <= latest arrival everywhere; slew range ordered;
  // downstream windows never start before upstream ones.
  const lib::Library library = lib::default_library();
  const gen::Generated g = gen::make_bus(library, config());
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  for (std::size_t i = 0; i < g.design.net_count(); ++i) {
    const auto& nt = timing.nets[i];
    if (!nt.switches()) continue;
    EXPECT_LE(nt.window.lo, nt.window.hi);
    EXPECT_LE(nt.slew_min, nt.slew_max);
    EXPECT_GT(nt.slew_min, 0.0);
  }
  // Receiver-chain nets switch strictly after their wire nets.
  for (std::size_t b = 0; b < 4; ++b) {
    const auto w = *g.design.find_net("w" + std::to_string(b));
    const auto rn = *g.design.find_net("r" + std::to_string(b) + "_0");
    EXPECT_GT(timing.net(rn).window.lo, timing.net(w).window.lo);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusProperty, ::testing::Range(0, 12));

/// Elmore delay on random trees: matches an O(n^2) pairwise reference.
class ElmoreProperty : public ::testing::TestWithParam<int> {};

TEST_P(ElmoreProperty, MatchesQuadraticReference) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  para::RcNet rc;
  const int n = 2 + static_cast<int>(rng.below(20));
  std::vector<std::uint32_t> nodes{0};
  for (int i = 0; i < n; ++i) {
    const auto parent = nodes[rng.below(nodes.size())];
    const auto nd = rc.add_node(rng.uniform(0.5 * FF, 5 * FF));
    rc.add_res(parent, nd, rng.uniform(10.0, 200.0));
    nodes.push_back(nd);
  }
  rc.add_cap(0, rng.uniform(0.5 * FF, 2 * FF));
  ASSERT_TRUE(rc.is_tree());

  const auto fast = para::elmore_delays(rc);
  // Reference: delay(i) = sum_j C_j * R(path(i) ^ path(j)) via the
  // analysis structure.
  const auto t = para::analyze_tree(rc);
  auto path_res = [&](std::uint32_t node) {
    std::vector<std::pair<std::uint32_t, double>> edges;  // (child, r)
    for (std::uint32_t u = node; u != 0; u = t.parent[u]) {
      edges.emplace_back(u, t.res_to_parent[u]);
    }
    return edges;
  };
  auto on_path_of = [&](std::uint32_t anc_child, std::uint32_t node) {
    for (std::uint32_t u = node; u != 0; u = t.parent[u]) {
      if (u == anc_child) return true;
    }
    return false;
  };
  for (std::uint32_t i = 0; i < rc.node_count(); ++i) {
    double ref = 0.0;
    for (const auto& [child, r] : path_res(i)) {
      for (std::uint32_t j = 0; j < rc.node_count(); ++j) {
        if (on_path_of(child, j)) ref += r * t.cap_at[j];
      }
    }
    EXPECT_NEAR(fast[i], ref, 1e-18 + 1e-9 * ref) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElmoreProperty, ::testing::Range(0, 15));

/// Pi-model positivity and cap conservation over random trees.
class PiProperty : public ::testing::TestWithParam<int> {};

TEST_P(PiProperty, PositiveAndCapConserving) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 577 + 7);
  para::RcNet rc;
  std::vector<std::uint32_t> nodes{0};
  const int n = 1 + static_cast<int>(rng.below(15));
  for (int i = 0; i < n; ++i) {
    const auto parent = nodes[rng.below(nodes.size())];
    const auto nd = rc.add_node(rng.uniform(0.2 * FF, 6 * FF));
    rc.add_res(parent, nd, rng.uniform(5.0, 500.0));
    nodes.push_back(nd);
  }
  const para::PiModel pi = para::pi_model(rc);
  EXPECT_GE(pi.c_near, 0.0);
  EXPECT_GT(pi.c_far, 0.0);
  EXPECT_GT(pi.r, 0.0);
  EXPECT_NEAR(pi.total_cap(), rc.total_ground_cap(), 1e-9 * rc.total_ground_cap());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PiProperty, ::testing::Range(0, 15));

/// Noise-window soundness on random logic: every violation's noise window
/// must overlap its sensitivity window, and slacks must be consistent.
class RandLogicProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandLogicProperty, ViolationConsistency) {
  const lib::Library library = lib::default_library();
  gen::RandLogicConfig cfg;
  cfg.primary_inputs = 10;
  cfg.gates = 150;
  cfg.levels = 5;
  cfg.dff_fraction = 0.4;
  cfg.seed = static_cast<std::uint64_t>(GetParam()) * 41 + 11;
  const gen::Generated g = gen::make_rand_logic(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  noise::Options o;
  o.mode = noise::AnalysisMode::kNoiseWindows;
  o.clock_period = g.sta_options.clock_period;
  const noise::Result r = noise::analyze(g.design, g.para, timing, o);

  for (const auto& v : r.violations) {
    EXPECT_LE(v.threshold, v.peak);
    EXPECT_LT(v.slack(), 1e-12);
    EXPECT_TRUE(v.temporal);
    EXPECT_GE(v.width, 0.0);
  }
  EXPECT_EQ(r.endpoint_slacks.size(), r.endpoints_checked);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandLogicProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace nw
