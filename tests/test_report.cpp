// Text tables and unit formatting.
#include <gtest/gtest.h>

#include "report/table.hpp"

namespace nw::report {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("|   name | value |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer |    22 |"), std::string::npos) << s;
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, Csv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, Validation) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Fmt, Units) {
  EXPECT_EQ(fmt_ps(123.46e-12), "123.5 ps");
  EXPECT_EQ(fmt_mv(0.0873), "87.3 mV");
  EXPECT_EQ(fmt_ff(4e-15), "4.0 fF");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
  EXPECT_EQ(fmt_sci(12345.0), "1.23e+04");
}

}  // namespace
}  // namespace nw::report
