// Incremental (ECO) re-analysis: must match a full run when the changed
// set covers the real change.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gen/bus.hpp"
#include "gen/randlogic.hpp"
#include "noise/analyzer.hpp"
#include "noise/context.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

namespace nw::noise {
namespace {

void expect_same(const Result& a, const Result& b, const net::Design& d) {
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    EXPECT_NEAR(a.nets[i].total_peak, b.nets[i].total_peak, 1e-12)
        << "net " << d.net(NetId{i}).name;
    EXPECT_NEAR(a.nets[i].injected_peak, b.nets[i].injected_peak, 1e-12);
    EXPECT_NEAR(a.nets[i].width, b.nets[i].width, 1e-15);
    EXPECT_EQ(a.nets[i].contributions.size(), b.nets[i].contributions.size());
  }
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_EQ(a.noisy_nets, b.noisy_nets);
  EXPECT_EQ(a.endpoints_checked, b.endpoints_checked);
}

TEST(Incremental, NoChangeReproducesFullResult) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 16;
  cfg.segments = 3;
  const gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  Options o;
  o.clock_period = g.sta_options.clock_period;
  const Result full = analyze(g.design, g.para, timing, o);
  const Result inc =
      analyze_incremental(g.design, g.para, timing, o, full, {});
  expect_same(full, inc, g.design);
}

TEST(Incremental, CouplingChangeMatchesFullRerun) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 16;
  cfg.segments = 3;
  gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  Options o;
  o.clock_period = g.sta_options.clock_period;
  const Result before = analyze(g.design, g.para, timing, o);

  // ECO: add a strong coupling between w5 and w6 (an extra routed segment).
  const NetId w5 = *g.design.find_net("w5");
  const NetId w6 = *g.design.find_net("w6");
  g.para.add_coupling(w5, 1, w6, 1, 10 * FF);

  const Result full = analyze(g.design, g.para, timing, o);
  const std::vector<NetId> changed{w5, w6};
  const Result inc = analyze_incremental(g.design, g.para, timing, o, before, changed);
  expect_same(full, inc, g.design);
  // The change is visible (sanity that the test is not vacuous).
  EXPECT_GT(full.net(w5).total_peak, before.net(w5).total_peak);
}

TEST(Incremental, PropagationDownstreamOfChangeIsRefreshed) {
  // The changed victim feeds gates; its propagated noise must be updated
  // even on nets far from the coupling change.
  const lib::Library library = lib::default_library();
  gen::RandLogicConfig cfg;
  cfg.primary_inputs = 8;
  cfg.gates = 120;
  cfg.levels = 5;
  cfg.coupling_prob = 0.6;
  gen::Generated g = gen::make_rand_logic(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);

  Options o;
  o.clock_period = g.sta_options.clock_period;
  const Result before = analyze(g.design, g.para, timing, o);

  // Pick some coupled pair and crank its coupling.
  ASSERT_FALSE(g.para.couplings().empty());
  const auto& cc = g.para.couplings().front();
  const NetId a = cc.net_a;
  const NetId b = cc.net_b;
  g.para.add_coupling(a, cc.node_a, b, cc.node_b, 40 * FF);

  const Result full = analyze(g.design, g.para, timing, o);
  const std::vector<NetId> changed{a, b};
  const Result inc = analyze_incremental(g.design, g.para, timing, o, before, changed);
  expect_same(full, inc, g.design);
}

TEST(Incremental, BadChangedNetThrows) {
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 4;
  const gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  Options o;
  const Result full = analyze(g.design, g.para, timing, o);
  const std::vector<NetId> bogus{NetId{99999}};
  EXPECT_THROW(
      (void)analyze_incremental(g.design, g.para, timing, o, full, bogus),
      std::invalid_argument);
  const Result empty;
  const std::vector<NetId> none;
  EXPECT_THROW((void)analyze_incremental(g.design, g.para, timing, o, empty, none),
               std::invalid_argument);
}

TEST(Incremental, ValidationErrorsNameIdAndRange) {
  // Structured diagnostics: the exception says *which* id is bad and what
  // the valid range is — a session server forwards these verbatim.
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 4;
  const gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  Options o;
  const Result full = analyze(g.design, g.para, timing, o);

  try {
    (void)analyze_incremental(g.design, g.para, timing, o, full,
                              std::vector<NetId>{NetId{99999}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("99999"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(g.design.net_count())), std::string::npos)
        << msg;
  }

  // Previous-result coverage mismatch names both sizes.
  Result stale = full;
  stale.nets.resize(2);
  try {
    (void)analyze_incremental(g.design, g.para, timing, o, stale,
                              std::vector<NetId>{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 nets"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(g.design.net_count())), std::string::npos)
        << msg;
  }
}

TEST(Incremental, DirtyClosureCoversCoupledNeighbours) {
  // The public closure helper: changed nets plus everything they couple
  // to, from the *raw* coupling list (not the threshold-filtered adjacency).
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 6;
  cfg.segments = 2;
  const gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  const AnalysisContext ctx = AnalysisContext::build(g.design, g.para, timing, Options{});

  const NetId w2 = *g.design.find_net("w2");
  const std::vector<NetId> changed{w2};
  const std::vector<NetId> closure = ctx.dirty_closure(g.para, changed);

  // Sorted, unique, includes the seed.
  EXPECT_TRUE(std::is_sorted(closure.begin(), closure.end(),
                             [](NetId a, NetId b) { return a.value() < b.value(); }));
  EXPECT_NE(std::find(closure.begin(), closure.end(), w2), closure.end());
  // Every net coupled to w2 is in the closure.
  for (const auto ci : g.para.couplings_of(w2)) {
    const NetId other = g.para.coupling(ci).other_net(w2);
    EXPECT_NE(std::find(closure.begin(), closure.end(), other), closure.end())
        << "missing coupled net " << g.design.net(other).name;
  }
  // Out-of-range ids are rejected with the offending value in the message.
  try {
    (void)ctx.dirty_closure(g.para, std::vector<NetId>{NetId{777777}});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("777777"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace nw::noise
