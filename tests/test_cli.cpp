// The noisewin CLI driver, exercised in-process (file and demo flows).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/bus.hpp"
#include "library/liberty_io.hpp"
#include "netlist/verilog.hpp"
#include "parasitics/spef.hpp"
#include "tools/cli.hpp"
#include "util/units.hpp"

namespace nw {
namespace {

namespace fs = std::filesystem;

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

TEST(Cli, UsageErrors) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 1);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"--bogus"}, nullptr, &err), 1);
  EXPECT_EQ(run({"--mode", "nonsense", "--demo", "bus"}, nullptr, &err), 1);
  EXPECT_EQ(run({"--demo"}, nullptr, &err), 1);               // missing value
  EXPECT_EQ(run({"--demo", "bus", "--lib", "x"}, nullptr, &err), 1);  // both sources
}

TEST(Cli, DemoRuns) {
  for (const char* demo : {"bus", "logic", "pipeline"}) {
    std::string out;
    const int rc = run({"--demo", demo, "--mode", "noise-windows"}, &out);
    EXPECT_TRUE(rc == 0 || rc == 2) << demo;
    EXPECT_NE(out.find("noisewin report"), std::string::npos) << demo;
  }
}

TEST(Cli, DemoUnknownFails) {
  std::string err;
  EXPECT_EQ(run({"--demo", "nope"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown demo"), std::string::npos);
}

TEST(Cli, FileFlowEndToEnd) {
  // Write library/netlist/spef/arrivals for a generated bus, then run the
  // CLI against the files.
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 8;
  cfg.segments = 2;
  const gen::Generated g = gen::make_bus(library, cfg);

  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_test";
  fs::create_directories(dir);
  const auto lib_path = (dir / "lib.nlib").string();
  const auto nv_path = (dir / "top.nv").string();
  const auto spef_path = (dir / "top.nwspef").string();
  const auto arr_path = (dir / "arrivals.txt").string();
  const auto rpt_path = (dir / "out.rpt").string();

  {
    std::ofstream f(lib_path);
    lib::write_library(f, library);
  }
  {
    std::ofstream f(nv_path);
    net::write_netlist(f, g.design);
  }
  {
    std::ofstream f(spef_path);
    para::write_spef(f, g.design, g.para);
  }
  {
    std::ofstream f(arr_path);
    f << "# port lo hi\n";
    for (const auto& [port, win] : g.sta_options.input_arrivals) {
      f << port << ' ' << win.lo << ' ' << win.hi << "\n";
    }
  }

  std::string out;
  std::string err;
  const int rc = run({"--lib", lib_path, "--netlist", nv_path, "--spef", spef_path,
                      "--arrivals", arr_path, "--mode", "noise-windows", "--period",
                      "2e-9", "--report", rpt_path, "--delay-impact"},
                     &out, &err);
  EXPECT_TRUE(rc == 0 || rc == 2) << err;
  EXPECT_NE(out.find("report written to"), std::string::npos);
  std::ifstream rpt(rpt_path);
  ASSERT_TRUE(rpt.good());
  std::stringstream content;
  content << rpt.rdbuf();
  EXPECT_NE(content.str().find("noisewin report: design 'bus8'"), std::string::npos);
  EXPECT_NE(content.str().find("crosstalk delay impact"), std::string::npos);

  fs::remove_all(dir);
}

TEST(Cli, MissingFileFails) {
  std::string err;
  EXPECT_EQ(run({"--lib", "/nonexistent.nlib", "--netlist", "/x.nv", "--spef", "/x.sp"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Cli, ModelSelection) {
  std::string out;
  const int rc =
      run({"--demo", "bus", "--model", "reduced-mna", "--mode", "switching-windows"}, &out);
  EXPECT_TRUE(rc == 0 || rc == 2);
  EXPECT_NE(out.find("model: reduced-mna"), std::string::npos);
}

TEST(Cli, TraceAndStatsJsonOutputs) {
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_obs_test";
  fs::create_directories(dir);
  const auto trace_path = (dir / "trace.json").string();
  const auto stats_path = (dir / "stats.json").string();

  std::string err;
  const int rc = run({"--demo", "bus", "--threads", "2", "--trace-out", trace_path,
                      "--stats-json", stats_path},
                     nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2) << err;

  std::stringstream trace;
  {
    std::ifstream f(trace_path);
    ASSERT_TRUE(f.good());
    trace << f.rdbuf();
  }
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"estimate-injected\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"thread_name\""), std::string::npos);

  std::stringstream stats;
  {
    std::ifstream f(stats_path);
    ASSERT_TRUE(f.good());
    stats << f.rdbuf();
  }
  EXPECT_NE(stats.str().find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(stats.str().find("\"design\":\"bus64\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"victims_estimated\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"glitch_peak_v\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, VerboseLogsToErrorStream) {
  std::string err;
  const int rc = run({"--demo", "bus", "--verbose", "--verbose"}, nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2);
  // Debug-level pass summary from the analyzer, routed to the CLI's err.
  EXPECT_NE(err.find("[nw:debug]"), std::string::npos) << err;
}

TEST(Cli, StatsFooterLandsInReportFile) {
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_footer_test";
  fs::create_directories(dir);
  const auto rpt_path = (dir / "out.rpt").string();
  std::string out;
  const int rc =
      run({"--demo", "bus", "--stats", "--report", rpt_path}, &out);
  EXPECT_TRUE(rc == 0 || rc == 2);
  // --stats still prints the table on stdout...
  EXPECT_NE(out.find("analysis stats"), std::string::npos);
  std::stringstream content;
  {
    std::ifstream f(rpt_path);
    ASSERT_TRUE(f.good());
    content << f.rdbuf();
  }
  // ...and the report file carries the same footer.
  EXPECT_NE(content.str().find("analysis stats"), std::string::npos);
  EXPECT_NE(content.str().find("estimate-injected"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace nw
