// The noisewin CLI driver, exercised in-process (file and demo flows).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gen/bus.hpp"
#include "library/liberty_io.hpp"
#include "netlist/verilog.hpp"
#include "parasitics/spef.hpp"
#include "tools/cli.hpp"
#include "util/units.hpp"

namespace nw {
namespace {

namespace fs = std::filesystem;

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int rc = cli::run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

TEST(Cli, UsageErrors) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), 1);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"--bogus"}, nullptr, &err), 1);
  EXPECT_EQ(run({"--mode", "nonsense", "--demo", "bus"}, nullptr, &err), 1);
  EXPECT_EQ(run({"--demo"}, nullptr, &err), 1);               // missing value
  EXPECT_EQ(run({"--demo", "bus", "--lib", "x"}, nullptr, &err), 1);  // both sources
}

TEST(Cli, DemoRuns) {
  for (const char* demo : {"bus", "logic", "pipeline"}) {
    std::string out;
    const int rc = run({"--demo", demo, "--mode", "noise-windows"}, &out);
    EXPECT_TRUE(rc == 0 || rc == 2) << demo;
    EXPECT_NE(out.find("noisewin report"), std::string::npos) << demo;
  }
}

TEST(Cli, DemoUnknownFails) {
  std::string err;
  EXPECT_EQ(run({"--demo", "nope"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown demo"), std::string::npos);
}

TEST(Cli, SimdFlagAcceptsKnownValues) {
  for (const char* simd : {"auto", "scalar", "vector"}) {
    std::string out;
    const int rc = run({"--demo", "bus", "--simd", simd}, &out);
    EXPECT_TRUE(rc == 0 || rc == 2) << simd;
    EXPECT_NE(out.find("noisewin report"), std::string::npos) << simd;
  }
}

TEST(Cli, SimdFlagRejectsUnknownValue) {
  std::string err;
  EXPECT_EQ(run({"--demo", "bus", "--simd", "avx999"}, nullptr, &err), 1);
  // Fail-fast with the flag name and the accepted set.
  EXPECT_NE(err.find("unknown --simd value 'avx999'"), std::string::npos) << err;
  EXPECT_NE(err.find("auto | scalar | vector"), std::string::npos) << err;
  EXPECT_EQ(run({"--demo", "bus", "--simd"}, nullptr, &err), 1);  // missing value
}

TEST(Cli, SimdPathsProduceIdenticalReports) {
  std::string scalar_out;
  std::string vector_out;
  const int rc_s = run({"--demo", "bus", "--mode", "noise-windows", "--simd",
                        "scalar"},
                       &scalar_out);
  const int rc_v = run({"--demo", "bus", "--mode", "noise-windows", "--simd",
                        "vector"},
                       &vector_out);
  EXPECT_EQ(rc_s, rc_v);
  EXPECT_EQ(scalar_out, vector_out);
}

TEST(Cli, FileFlowEndToEnd) {
  // Write library/netlist/spef/arrivals for a generated bus, then run the
  // CLI against the files.
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 8;
  cfg.segments = 2;
  const gen::Generated g = gen::make_bus(library, cfg);

  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_test";
  fs::create_directories(dir);
  const auto lib_path = (dir / "lib.nlib").string();
  const auto nv_path = (dir / "top.nv").string();
  const auto spef_path = (dir / "top.nwspef").string();
  const auto arr_path = (dir / "arrivals.txt").string();
  const auto rpt_path = (dir / "out.rpt").string();

  {
    std::ofstream f(lib_path);
    lib::write_library(f, library);
  }
  {
    std::ofstream f(nv_path);
    net::write_netlist(f, g.design);
  }
  {
    std::ofstream f(spef_path);
    para::write_spef(f, g.design, g.para);
  }
  {
    std::ofstream f(arr_path);
    f << "# port lo hi\n";
    for (const auto& [port, win] : g.sta_options.input_arrivals) {
      f << port << ' ' << win.lo << ' ' << win.hi << "\n";
    }
  }

  std::string out;
  std::string err;
  const int rc = run({"--lib", lib_path, "--netlist", nv_path, "--spef", spef_path,
                      "--arrivals", arr_path, "--mode", "noise-windows", "--period",
                      "2e-9", "--report", rpt_path, "--delay-impact"},
                     &out, &err);
  EXPECT_TRUE(rc == 0 || rc == 2) << err;
  EXPECT_NE(out.find("report written to"), std::string::npos);
  std::ifstream rpt(rpt_path);
  ASSERT_TRUE(rpt.good());
  std::stringstream content;
  content << rpt.rdbuf();
  EXPECT_NE(content.str().find("noisewin report: design 'bus8'"), std::string::npos);
  EXPECT_NE(content.str().find("crosstalk delay impact"), std::string::npos);

  fs::remove_all(dir);
}

TEST(Cli, MissingFileFails) {
  std::string err;
  EXPECT_EQ(run({"--lib", "/nonexistent.nlib", "--netlist", "/x.nv", "--spef", "/x.sp"},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Cli, ModelSelection) {
  std::string out;
  const int rc =
      run({"--demo", "bus", "--model", "reduced-mna", "--mode", "switching-windows"}, &out);
  EXPECT_TRUE(rc == 0 || rc == 2);
  EXPECT_NE(out.find("model: reduced-mna"), std::string::npos);
}

TEST(Cli, TraceAndStatsJsonOutputs) {
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_obs_test";
  fs::create_directories(dir);
  const auto trace_path = (dir / "trace.json").string();
  const auto stats_path = (dir / "stats.json").string();

  std::string err;
  const int rc = run({"--demo", "bus", "--threads", "2", "--trace-out", trace_path,
                      "--stats-json", stats_path},
                     nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2) << err;

  std::stringstream trace;
  {
    std::ifstream f(trace_path);
    ASSERT_TRUE(f.good());
    trace << f.rdbuf();
  }
  EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"estimate-injected\""), std::string::npos);
  EXPECT_NE(trace.str().find("\"thread_name\""), std::string::npos);

  std::stringstream stats;
  {
    std::ifstream f(stats_path);
    ASSERT_TRUE(f.good());
    stats << f.rdbuf();
  }
  EXPECT_NE(stats.str().find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(stats.str().find("\"design\":\"bus64\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"victims_estimated\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"glitch_peak_v\""), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, VerboseLogsToErrorStream) {
  std::string err;
  const int rc = run({"--demo", "bus", "--verbose", "--verbose"}, nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2);
  // Debug-level pass summary from the analyzer, routed to the CLI's err.
  EXPECT_NE(err.find("[nw:debug]"), std::string::npos) << err;
}

TEST(Cli, StatsFooterLandsInReportFile) {
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_footer_test";
  fs::create_directories(dir);
  const auto rpt_path = (dir / "out.rpt").string();
  std::string out;
  const int rc =
      run({"--demo", "bus", "--stats", "--report", rpt_path}, &out);
  EXPECT_TRUE(rc == 0 || rc == 2);
  // --stats still prints the table on stdout...
  EXPECT_NE(out.find("analysis stats"), std::string::npos);
  std::stringstream content;
  {
    std::ifstream f(rpt_path);
    ASSERT_TRUE(f.good());
    content << f.rdbuf();
  }
  // ...and the report file carries the same footer.
  EXPECT_NE(content.str().find("analysis stats"), std::string::npos);
  EXPECT_NE(content.str().find("estimate-injected"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, UnwritableOutputPathsFailFastWithClearErrors) {
  // A typo'd output directory must fail before analysis, with a message
  // naming the flag that supplied the path, and a non-zero exit.
  const std::string bad = "/nonexistent_dir_for_noisewin_tests/out.file";
  for (const char* flag :
       {"--report", "--stats-json", "--trace-out", "--html-report",
        "--profile-out"}) {
    std::string err;
    EXPECT_EQ(run({"--demo", "bus", flag, bad}, nullptr, &err), 1) << flag;
    EXPECT_NE(err.find(std::string("cannot write ") + flag), std::string::npos)
        << flag << ": " << err;
    EXPECT_NE(err.find(bad), std::string::npos) << flag << ": " << err;
  }
  // serve validates its --stats-json destination up front too.
  std::string err;
  std::istringstream in("");
  std::ostringstream out, serr;
  EXPECT_EQ(cli::run_cli(std::vector<std::string>{"serve", "--demo", "bus",
                                                  "--stats-json", bad},
                         in, out, serr),
            1);
  EXPECT_NE(serr.str().find("cannot write --stats-json"), std::string::npos)
      << serr.str();
}

TEST(Cli, ProfileHzRejectsJunkAndOutOfRangeValues) {
  std::string err;
  EXPECT_EQ(run({"--demo", "bus", "--profile-hz", "abc"}, nullptr, &err), 1);
  EXPECT_NE(err.find("noisewin:"), std::string::npos) << err;
  EXPECT_EQ(run({"--demo", "bus", "--profile-hz", "99999"}, nullptr, &err), 1);
  EXPECT_NE(err.find("--profile-hz 99999 too high (max 20000)"),
            std::string::npos)
      << err;
  EXPECT_EQ(run({"--demo", "bus", "--profile-hz"}, nullptr, &err), 1);  // no value
}

TEST(Cli, ProfileOutWritesFoldedArtifactWithoutChangingTheReport) {
  const fs::path dir = fs::temp_directory_path() / "nw_cli_profile_test";
  fs::create_directories(dir);
  const std::string folded = (dir / "p.folded").string();

  // Reference report with profiling off.
  std::string plain_out;
  const int rc_plain = run({"--demo", "logic", "--mode", "noise-windows"},
                           &plain_out);
  ASSERT_TRUE(rc_plain == 0 || rc_plain == 2);

  // Same run, profiled hard: the report must be byte-identical (the
  // determinism contract) and the folded artifact well-formed.
  std::string prof_out;
  const int rc_prof = run({"--demo", "logic", "--mode", "noise-windows",
                           "--profile-out", folded, "--profile-hz", "9973"},
                          &prof_out);
  EXPECT_EQ(rc_prof, rc_plain);
  EXPECT_EQ(prof_out, plain_out);
  std::ifstream pf(folded);
  ASSERT_TRUE(pf.good());
  std::string line;
  while (std::getline(pf, line)) {
    const std::size_t sep = line.rfind(' ');
    ASSERT_NE(sep, std::string::npos) << line;
    EXPECT_GT(std::stoull(line.substr(sep + 1)), 0u) << line;
  }

  // --profile-hz 0 means off, but the (empty) artifact is still written so
  // downstream tooling never trips over a missing file.
  const std::string off = (dir / "off.folded").string();
  const int rc_off = run({"--demo", "bus", "--profile-out", off,
                          "--profile-hz", "0"});
  EXPECT_TRUE(rc_off == 0 || rc_off == 2);
  EXPECT_TRUE(fs::exists(off));
  EXPECT_EQ(fs::file_size(off), 0u);
  fs::remove_all(dir);
}

TEST(Cli, ExplainCommandPrintsProvenance) {
  // A clean net still explains (with a "no violations" note) and exits 0.
  std::string out;
  EXPECT_EQ(run({"explain", "w1", "--demo", "bus"}, &out), 0);
  EXPECT_NE(out.find("net 'w1'"), std::string::npos) << out;

  std::string err;
  EXPECT_EQ(run({"explain", "definitely_not_a_net", "--demo", "bus"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown net"), std::string::npos) << err;

  EXPECT_EQ(run({"explain", "--demo", "bus"}, nullptr, &err), 1);
  EXPECT_NE(err.find("explain needs a net name"), std::string::npos) << err;
}

TEST(Cli, HtmlReportArtifactIsSelfContained) {
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_html_test";
  fs::create_directories(dir);
  const auto html_path = (dir / "report.html").string();
  std::string err;
  const int rc = run({"--demo", "bus", "--html-report", html_path}, nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2) << err;

  std::stringstream html;
  {
    std::ifstream f(html_path);
    ASSERT_TRUE(f.good());
    html << f.rdbuf();
  }
  EXPECT_EQ(html.str().rfind("<!DOCTYPE html", 0), 0u);
  EXPECT_NE(html.str().find("<svg"), std::string::npos);
  for (const char* id : {"id=\"meta\"", "id=\"summary\"", "id=\"timelines\"",
                         "id=\"pareto\"", "id=\"slack\"", "id=\"phases\""}) {
    EXPECT_NE(html.str().find(id), std::string::npos) << id;
  }
  for (const char* banned : {"http", "<script", "<link", "url("}) {
    EXPECT_EQ(html.str().find(banned), std::string::npos) << banned;
  }
  fs::remove_all(dir);
}

TEST(Cli, ProgressFlagDrawsStderrMeter) {
  std::string err;
  const int rc = run({"--demo", "bus", "--progress"}, nullptr, &err);
  EXPECT_TRUE(rc == 0 || rc == 2);
  EXPECT_NE(err.find("[check-endpoints]"), std::string::npos) << err;
  // The meter redraws in place and ends with a newline, not a dangling line.
  EXPECT_NE(err.find('\r'), std::string::npos);
}

TEST(Cli, ServeProgressStreamsEventsWithTheResponse) {
  std::istringstream in("{\"id\":1,\"cmd\":\"violations\"}\n");
  std::ostringstream out, err;
  const int rc = cli::run_cli(
      std::vector<std::string>{"serve", "--demo", "bus", "--progress"}, in, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  // The analyzing request streams progress events before its response.
  EXPECT_NE(out.str().find("\"event\":\"progress\""), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("\"phase\":"), std::string::npos);
  EXPECT_NE(out.str().find("\"id\":1"), std::string::npos);
}

TEST(Cli, ServeProgressAnswersIdleCancel) {
  // No analysis in flight: the cancel reaches the dispatcher and reports
  // there was nothing to cancel. (Mid-analyze cancellation is exercised at
  // the session layer in test_progress.cpp and end-to-end by nwclient.py.)
  std::istringstream in("{\"id\":2,\"cmd\":\"cancel\"}\n");
  std::ostringstream out, err;
  const int rc = cli::run_cli(
      std::vector<std::string>{"serve", "--demo", "bus", "--progress"}, in, out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("\"cancelled\":false"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("\"id\":2"), std::string::npos);
}

TEST(Cli, ServeSubcommandSpeaksJsonl) {
  std::istringstream in(
      "{\"id\":1,\"cmd\":\"hello\"}\n"
      "{\"id\":2,\"cmd\":\"scale_net_parasitics\","
      "\"args\":{\"net\":\"w1\",\"cap_factor\":2.0,\"res_factor\":1.0}}\n"
      "{\"id\":3,\"cmd\":\"violations\",\"args\":{\"limit\":3}}\n"
      "junk line\n"
      "{\"id\":4,\"cmd\":\"undo\"}\n");
  std::ostringstream out, err;
  const fs::path dir = fs::temp_directory_path() / "noisewin_cli_serve_test";
  fs::create_directories(dir);
  const auto stats_path = (dir / "session.json").string();
  const int rc = cli::run_cli(
      std::vector<std::string>{"serve", "--demo", "bus", "--stats-json", stats_path},
      in, out, err);
  EXPECT_EQ(rc, 0) << err.str();

  // One response per line, ids echoed in order.
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 5u);
  EXPECT_NE(responses[0].find("\"id\":1"), std::string::npos);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(responses[0].find("\"design\":\"bus64\""), std::string::npos);
  EXPECT_NE(responses[3].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(responses[4].find("\"undone\":true"), std::string::npos);

  // The per-session stats artifact carries the session counters.
  std::stringstream stats;
  {
    std::ifstream f(stats_path);
    ASSERT_TRUE(f.good());
    stats << f.rdbuf();
  }
  EXPECT_NE(stats.str().find("\"session_full_analyses\":1"), std::string::npos)
      << stats.str();
  EXPECT_NE(stats.str().find("\"protocol_requests\":5"), std::string::npos);
  fs::remove_all(dir);
}

TEST(Cli, ShellSubcommandRunsCommands) {
  std::istringstream in(
      "violations 3\n"
      "noise w1\n"
      "scale w1 2.0 1.0\n"
      "undo\n"
      "bogus_command\n"
      "quit\n");
  std::ostringstream out, err;
  const int rc = cli::run_cli(std::vector<std::string>{"shell", "--demo", "bus"}, in,
                              out, err);
  EXPECT_EQ(rc, 0) << err.str();
  EXPECT_NE(out.str().find("noisewin>"), std::string::npos);
  EXPECT_NE(out.str().find("endpoints checked"), std::string::npos);
  EXPECT_NE(out.str().find("net w1:"), std::string::npos);
  EXPECT_NE(out.str().find("ok [epoch 1]"), std::string::npos);
  EXPECT_NE(out.str().find("undone"), std::string::npos);
  EXPECT_NE(out.str().find("unknown command 'bogus_command'"), std::string::npos);
}

TEST(Cli, UnknownSubcommandFails) {
  std::string err;
  EXPECT_EQ(run({"listen", "--demo", "bus"}, nullptr, &err), 1);
  EXPECT_NE(err.find("unknown command 'listen'"), std::string::npos);
}

}  // namespace
}  // namespace nw
