// Live-telemetry primitives (obs/timeseries.hpp): ring wraparound,
// rotating-quantile window expiry, sampler lifecycle, and the determinism
// property the whole subsystem is built on — sampling never changes
// analysis output.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gen/bus.hpp"
#include "noise/analyzer.hpp"
#include "noise/report_writer.hpp"
#include "obs/timeseries.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

namespace nw {
namespace {

TEST(TimeSeriesRing, WrapsAtCapacityKeepingNewestOldestFirst) {
  obs::TimeSeriesRing ring({"a", "b"}, 4);
  for (int i = 0; i < 6; ++i) {
    ring.record(static_cast<double>(i), {static_cast<double>(i), 10.0 + i});
  }
  EXPECT_EQ(ring.total(), 6u);
  EXPECT_EQ(ring.size(), 4u);  // bounded: only capacity samples retained

  const obs::TimeSeriesSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  EXPECT_EQ(snap.total, 6u);
  EXPECT_EQ(snap.capacity, 4u);
  ASSERT_EQ(snap.series.size(), 2u);
  // Oldest first: samples 2..5 survive, 0 and 1 were overwritten.
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(snap.samples[i].t_ms, static_cast<double>(i + 2));
    ASSERT_EQ(snap.samples[i].v.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.samples[i].v[0], static_cast<double>(i + 2));
    EXPECT_DOUBLE_EQ(snap.samples[i].v[1], 12.0 + static_cast<double>(i));
  }
  // last_n trims from the old end.
  const obs::TimeSeriesSnapshot tail = ring.snapshot(2);
  ASSERT_EQ(tail.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(tail.samples.front().t_ms, 4.0);
  EXPECT_DOUBLE_EQ(tail.samples.back().t_ms, 5.0);
}

TEST(TimeSeriesRing, PadsAndTruncatesValuesToSeriesArity) {
  obs::TimeSeriesRing ring({"x", "y", "z"}, 8);
  ring.record(0.0, {1.0});                  // short: padded with zeros
  ring.record(1.0, {1.0, 2.0, 3.0, 4.0});   // long: truncated
  const obs::TimeSeriesSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.samples.size(), 2u);
  ASSERT_EQ(snap.samples[0].v.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.samples[0].v[1], 0.0);
  ASSERT_EQ(snap.samples[1].v.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.samples[1].v[2], 3.0);
}

TEST(TimeSeriesRing, SnapshotJsonCarriesStructure) {
  obs::TimeSeriesRing ring({"q"}, 2);
  ring.set_interval_ms(250);
  ring.record(0.0, {3.0});
  ring.record(250.0, {4.0});
  const std::string js = ring.snapshot().json();
  EXPECT_NE(js.find("\"interval_ms\":250"), std::string::npos);
  EXPECT_NE(js.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(js.find("\"total\":2"), std::string::npos);
  EXPECT_NE(js.find("\"series\":[\"q\"]"), std::string::npos);
  EXPECT_NE(js.find("\"t_ms\":250.000"), std::string::npos);
  EXPECT_NE(js.find("\"v\":[4]"), std::string::npos);
}

TEST(RotatingQuantile, OldObservationsExpireAfterFullRotation) {
  obs::RotatingQuantile rq({1, 10, 100}, 4);
  for (int i = 0; i < 50; ++i) rq.observe(50.0);  // lands in (10, 100]
  EXPECT_EQ(rq.count(), 50u);
  EXPECT_GT(rq.quantile(0.5), 10.0);
  EXPECT_LE(rq.quantile(0.5), 100.0);

  // Three rotations: the samples' sub-window is still live.
  rq.rotate();
  rq.rotate();
  rq.rotate();
  EXPECT_EQ(rq.count(), 50u);
  // Fourth rotation clears the sub-window that held them.
  rq.rotate();
  EXPECT_EQ(rq.count(), 0u);
  EXPECT_DOUBLE_EQ(rq.quantile(0.5), 0.0);

  // New observations land in the (recycled) current window.
  rq.observe(5.0);
  EXPECT_EQ(rq.count(), 1u);
}

TEST(RotatingQuantile, MergesAcrossLiveWindows) {
  obs::RotatingQuantile rq({1, 2, 5, 10}, 3);
  rq.observe(0.5);
  rq.rotate();
  rq.observe(8.0);
  EXPECT_EQ(rq.count(), 2u);
  // Median of {0.5, 8.0} interpolates somewhere above the first bucket.
  EXPECT_GT(rq.quantile(0.95), 5.0);
  EXPECT_LE(rq.quantile(0.95), 10.0);
}

TEST(Sampler, StartStopAreIdempotentAndBounded) {
  obs::TimeSeriesRing ring({"n"}, 16);
  std::atomic<int> calls{0};
  obs::Sampler sampler(
      ring, [&] { return std::vector<double>{static_cast<double>(++calls)}; },
      5);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.start();  // second start is a no-op, not a second thread
  EXPECT_TRUE(sampler.running());
  // The first sample is recorded synchronously at start (t = 0).
  EXPECT_GE(ring.total(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const std::uint64_t after_stop = ring.total();
  sampler.stop();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ring.total(), after_stop);  // no straggler ticks after join
  const obs::TimeSeriesSnapshot snap = ring.snapshot();
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_GE(snap.samples[i].t_ms, snap.samples[i - 1].t_ms);
  }
  // Restart works after stop.
  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.stop();
}

TEST(Sampler, AnalysisIsByteIdenticalWithSamplingOnOrOff) {
  // The determinism property: a running sampler (read-only observer) must
  // not perturb analysis output, at any interval.
  const lib::Library library = lib::default_library();
  gen::BusConfig cfg;
  cfg.bits = 8;
  cfg.seed = 42;
  const gen::Generated g = gen::make_bus(library, cfg);
  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  noise::Options o;
  o.mode = noise::AnalysisMode::kNoiseWindows;
  o.clock_period = g.sta_options.clock_period;

  const noise::Result quiet = noise::analyze(g.design, g.para, timing, o);
  const std::string quiet_report = noise::report_string(g.design, o, quiet);

  obs::TimeSeriesRing ring({"tick"}, 64);
  obs::Sampler sampler(
      ring, [] { return std::vector<double>{1.0}; }, 1);  // aggressive: 1ms
  sampler.start();
  const noise::Result sampled = noise::analyze(g.design, g.para, timing, o);
  sampler.stop();
  const std::string sampled_report = noise::report_string(g.design, o, sampled);

  EXPECT_EQ(quiet_report, sampled_report);
  EXPECT_EQ(quiet.violations.size(), sampled.violations.size());
}

}  // namespace
}  // namespace nw
