// Geometric parasitic extraction: closed-form R/C values, coupling from
// spacing, route validation, and the routed-bus end-to-end flow.
#include <gtest/gtest.h>

#include <cmath>

#include "extract/extractor.hpp"
#include "gen/routed_bus.hpp"
#include "noise/analyzer.hpp"
#include "sta/sta.hpp"
#include "util/units.hpp"

namespace nw::extract {
namespace {

class ExtractTest : public ::testing::Test {
 protected:
  lib::Library library_ = lib::default_library();

  /// Two-wire design: in0 -> na -> rx0, in1 -> nb -> rx1.
  net::Design make_two_wire() {
    net::Design d(library_, "geo");
    for (int i = 0; i < 2; ++i) {
      const NetId n = d.add_net("n" + std::to_string(i));
      d.add_input_port("in" + std::to_string(i), n);
      const InstId rx = d.add_instance("rx" + std::to_string(i), "INV_X1");
      d.connect(rx, "A", n);
      const NetId y = d.add_net("y" + std::to_string(i));
      d.connect(rx, "Y", y);
      d.add_output_port("o" + std::to_string(i), y);
    }
    return d;
  }
};

TEST_F(ExtractTest, SingleSegmentValues) {
  net::Design d = make_two_wire();
  Tech tech = Tech::generic();
  const LayerTech& lt = tech.layer(0);

  Route r;
  r.net = *d.find_net("n0");
  Segment s;
  s.layer = 0;
  s.x0 = 0;
  s.x1 = 100e-6;
  s.y0 = s.y1 = 0;
  s.width = 0.2e-6;
  r.segments.push_back(s);
  r.pins.push_back({d.net(r.net).loads.front(), 0, false});

  ExtractStats st;
  const para::Parasitics p = extract(d, {&r, 1}, tech, &st);
  const para::RcNet& rc = p.net(r.net);
  ASSERT_EQ(rc.node_count(), 2u);
  ASSERT_EQ(rc.res_count(), 1u);
  // R = rho_sq * L / W.
  EXPECT_NEAR(rc.resistors()[0].r, lt.sheet_res * 100e-6 / 0.2e-6, 1e-9);
  // Cg = c_area*L*W + 2*c_fringe*L, split across two nodes.
  const double cg = lt.c_area * 100e-6 * 0.2e-6 + 2 * lt.c_fringe * 100e-6;
  EXPECT_NEAR(rc.total_ground_cap(), cg, 1e-20);
  EXPECT_NEAR(rc.node(0).cground, 0.5 * cg, 1e-20);
  // Pin attached at the far end.
  EXPECT_EQ(rc.node_of_pin(d.net(r.net).loads.front()), 1u);
  EXPECT_EQ(st.resistors, 1u);
  EXPECT_EQ(st.coupling_caps, 0u);
}

TEST_F(ExtractTest, CouplingScalesWithSpacingAndOverlap) {
  net::Design d = make_two_wire();
  const Tech tech = Tech::generic();
  const LayerTech& lt = tech.layer(0);

  auto wire = [&](const char* net, double y, double x0, double x1) {
    Route r;
    r.net = *d.find_net(net);
    Segment s;
    s.layer = 0;
    s.x0 = x0;
    s.x1 = x1;
    s.y0 = s.y1 = y;
    s.width = 0.2e-6;
    r.segments.push_back(s);
    r.pins.push_back({d.net(r.net).loads.front(), 0, false});
    return r;
  };

  // Full overlap at spacing 0.4 um.
  {
    const std::vector<Route> routes{wire("n0", 0.0, 0, 100e-6),
                                    wire("n1", 0.4e-6, 0, 100e-6)};
    ExtractStats st;
    const para::Parasitics p = extract(d, routes, tech, &st);
    ASSERT_EQ(st.coupling_caps, 1u);
    EXPECT_NEAR(p.couplings()[0].c, lt.c_couple * 100e-6 / 0.4e-6, 1e-20);
  }
  // Half overlap at double spacing: quarter the cap.
  {
    const std::vector<Route> routes{wire("n0", 0.0, 0, 100e-6),
                                    wire("n1", 0.8e-6, 50e-6, 150e-6)};
    ExtractStats st;
    const para::Parasitics p = extract(d, routes, tech, &st);
    ASSERT_EQ(st.coupling_caps, 1u);
    EXPECT_NEAR(p.couplings()[0].c, lt.c_couple * 50e-6 / 0.8e-6, 1e-20);
  }
  // Beyond the cutoff: no coupling.
  {
    const std::vector<Route> routes{wire("n0", 0.0, 0, 100e-6),
                                    wire("n1", 2e-6, 0, 100e-6)};
    ExtractStats st;
    (void)extract(d, routes, tech, &st);
    EXPECT_EQ(st.coupling_caps, 0u);
  }
  // Different layers never couple laterally here.
  {
    std::vector<Route> routes{wire("n0", 0.0, 0, 100e-6),
                              wire("n1", 0.4e-6, 0, 100e-6)};
    routes[1].segments[0].layer = 1;
    ExtractStats st;
    (void)extract(d, routes, tech, &st);
    EXPECT_EQ(st.coupling_caps, 0u);
  }
}

TEST_F(ExtractTest, MultiSegmentChainAndBend) {
  net::Design d = make_two_wire();
  const Tech tech = Tech::generic();
  Route r;
  r.net = *d.find_net("n0");
  // L-shape: east 50 um then north 30 um.
  Segment s1;
  s1.layer = 0;
  s1.x0 = 0;
  s1.x1 = 50e-6;
  s1.y0 = s1.y1 = 0;
  s1.width = 0.2e-6;
  Segment s2;
  s2.layer = 0;
  s2.x0 = s2.x1 = 50e-6;
  s2.y0 = 0;
  s2.y1 = 30e-6;
  s2.width = 0.2e-6;
  r.segments = {s1, s2};
  r.pins.push_back({d.net(r.net).loads.front(), 1, false});

  const para::Parasitics p = extract(d, {&r, 1}, tech);
  const para::RcNet& rc = p.net(r.net);
  EXPECT_EQ(rc.node_count(), 3u);  // shared corner node
  EXPECT_EQ(rc.res_count(), 2u);
  EXPECT_TRUE(rc.is_tree());
}

TEST_F(ExtractTest, Validation) {
  net::Design d = make_two_wire();
  const Tech tech = Tech::generic();
  Route r;
  r.net = *d.find_net("n0");
  EXPECT_THROW((void)extract(d, {&r, 1}, tech), std::invalid_argument);  // empty

  Segment diag;
  diag.x0 = 0;
  diag.y0 = 0;
  diag.x1 = 1e-6;
  diag.y1 = 1e-6;
  r.segments = {diag};
  EXPECT_THROW((void)extract(d, {&r, 1}, tech), std::invalid_argument);  // diagonal

  Segment ok;
  ok.layer = 9;
  ok.x0 = 0;
  ok.x1 = 1e-6;
  ok.y0 = ok.y1 = 0;
  ok.width = 0.2e-6;
  r.segments = {ok};
  EXPECT_THROW((void)extract(d, {&r, 1}, tech), std::out_of_range);  // bad layer

  // Disconnected pieces.
  Segment far_piece = ok;
  far_piece.layer = 0;
  far_piece.x0 = 10e-6;
  far_piece.x1 = 12e-6;
  Segment base = ok;
  base.layer = 0;
  r.segments = {base, far_piece};
  EXPECT_THROW((void)extract(d, {&r, 1}, tech), std::invalid_argument);
}

TEST_F(ExtractTest, RoutedBusEndToEnd) {
  gen::RoutedBusConfig cfg;
  cfg.bits = 12;
  cfg.segments = 3;
  gen::RoutedGenerated g =
      gen::make_routed_bus(library_, Tech::generic(), cfg);
  EXPECT_TRUE(g.design.lint().empty());
  EXPECT_GT(g.stats.coupling_caps, 0u);
  EXPECT_GT(g.stats.total_ground_cap, 0.0);

  const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
  noise::Options o;
  o.clock_period = g.sta_options.clock_period;
  const noise::Result r = noise::analyze(g.design, g.para, timing, o);
  const NetId mid = *g.design.find_net("w6");
  EXPECT_GT(r.net(mid).aggressor_count, 0u);
  EXPECT_GT(r.net(mid).total_peak, 0.0);
}

TEST_F(ExtractTest, WiderSpacingReducesNoise) {
  // The physical-design lever: doubling the pitch must cut the victim
  // glitch substantially (coupling ~ 1/spacing).
  auto peak_at_pitch = [&](double pitch) {
    gen::RoutedBusConfig cfg;
    cfg.bits = 8;
    cfg.pitch = pitch;
    gen::RoutedGenerated g =
        gen::make_routed_bus(library_, Tech::generic(), cfg);
    const sta::Result timing = sta::run(g.design, g.para, g.sta_options);
    noise::Options o;
    o.clock_period = g.sta_options.clock_period;
    const noise::Result r = noise::analyze(g.design, g.para, timing, o);
    return r.net(*g.design.find_net("w4")).total_peak;
  };
  const double tight = peak_at_pitch(0.5e-6);
  const double loose = peak_at_pitch(1.0e-6);
  EXPECT_LT(loose, 0.7 * tight);
}

}  // namespace
}  // namespace nw::extract
